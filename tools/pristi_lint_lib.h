#ifndef PRISTI_TOOLS_PRISTI_LINT_LIB_H_
#define PRISTI_TOOLS_PRISTI_LINT_LIB_H_

// Repo linter: enforces PriSTI source-tree invariants that no compiler
// checks. Run as the `pristi_lint` binary (registered as a ctest) against
// the repository root. Rules:
//
//   header-guard       every src/**/*.h uses the canonical
//                      PRISTI_<PATH>_H_ include guard.
//   banned-pattern     no `rand()` (use pristi::Rng), no `std::cout`
//                      (return values or use logging), and no naked `new`
//                      (use make_shared/make_unique/containers) in src/.
//   cmake-sources      every CMakeLists.txt under src/, tests/, tools/ and
//                      bench/ lists all sibling .cc files, so no
//                      translation unit (or test) silently drops out of
//                      the build.
//   grad-coverage      every differentiable op declared in
//                      src/autograd/ops.h is exercised somewhere in
//                      tests/autograd_test.cc (the finite-difference /
//                      closed-form gradient matrix).
//   serialize-version-guard
//                      the checkpoint-layout constants in
//                      src/serialize/format.h (between the
//                      serialize-layout-begin/-end markers) carry a
//                      fingerprint comment; editing the layout without
//                      refreshing it — i.e. without consciously bumping
//                      kFormatVersion — fails the lint.
//   no-materialized-transpose
//                      no `TransposeLast2(...)` / `Permute(...)` result fed
//                      directly into a `MatMul*` call in src/. The kernel
//                      layer's NT/TN entry points (MatMulNT, BatchedMatMulTN,
//                      MatMulLastDimT, ...) read the transposed operand in
//                      place; composing with TransposeLast2 materializes a
//                      full copy per call on the hottest paths. Suppress a
//                      deliberate composition with a trailing
//                      `// pristi-lint: allow-materialized-transpose`.
//   tensor-by-value    no pass-by-value `Tensor` / `Variable` function
//                      parameters in src/. Tensors are shared-storage
//                      headers, so a by-value parameter hides whether the
//                      callee shares or forks the buffer: take `const&`
//                      (share) or require an explicit Tensor::Clone() at
//                      the call site (fork). Suppress a deliberate copy
//                      with a trailing
//                      `// pristi-lint: allow-tensor-by-value`.
//
// Pattern rules operate on comment- and string-literal-stripped source, so
// mentioning a banned construct in documentation is fine.

#include <cstdint>
#include <string>
#include <vector>

namespace pristi::lint {

struct Violation {
  std::string file;     // repo-relative path
  int line = 0;         // 1-based; 0 when the rule is file-scoped
  std::string rule;     // rule id, e.g. "banned-pattern"
  std::string message;  // human-readable description
};

// Replaces comments, string literals, and char literals with spaces while
// preserving line structure (so reported line numbers stay meaningful).
// Raw string literals are not specially handled; the repo does not use
// them.
std::string StripCommentsAndStrings(const std::string& source);

// Canonical include guard for a header at `rel_path` below src/
// (e.g. "common/check.h" -> "PRISTI_COMMON_CHECK_H_").
std::string CanonicalHeaderGuard(const std::string& rel_path);

// Names of `Variable Foo(...)` operators declared in (already stripped)
// ops.h source.
std::vector<std::string> DifferentiableOps(const std::string& ops_header);

// FNV-1a 32-bit hash of `text`; the fingerprint the serialize-version-guard
// rule compares against the comment in src/serialize/format.h.
uint32_t LayoutFingerprint(const std::string& text);

// Individual rules; `repo_root` is the repository checkout root.
std::vector<Violation> CheckHeaderGuards(const std::string& repo_root);
std::vector<Violation> CheckBannedPatterns(const std::string& repo_root);
std::vector<Violation> CheckCmakeSourceLists(const std::string& repo_root);
std::vector<Violation> CheckGradCoverage(const std::string& repo_root);
std::vector<Violation> CheckSerializeVersionGuard(const std::string& repo_root);
std::vector<Violation> CheckNoMaterializedTranspose(const std::string& repo_root);
std::vector<Violation> CheckTensorByValueParams(const std::string& repo_root);

// All rules.
std::vector<Violation> LintRepo(const std::string& repo_root);

std::string FormatViolation(const Violation& v);

}  // namespace pristi::lint

#endif  // PRISTI_TOOLS_PRISTI_LINT_LIB_H_
