#include "pristi_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace pristi::lint {

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RelPath(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

// All regular files under `dir` (recursive) whose extension is in `exts`,
// sorted for deterministic reports.
std::vector<fs::path> CollectFiles(const fs::path& dir,
                                   const std::vector<std::string>& exts) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (std::find(exts.begin(), exts.end(), ext) != exts.end()) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Splits (already stripped) source into lines for per-line pattern rules.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

struct BannedPattern {
  std::regex re;
  std::string description;
};

const std::vector<BannedPattern>& BannedPatterns() {
  static const std::vector<BannedPattern> patterns{
      {std::regex(R"(\brand\s*\()"),
       "banned call `rand()`: use pristi::Rng for reproducible streams"},
      {std::regex(R"(std\s*::\s*cout)"),
       "banned `std::cout` in src/: return values or use PRISTI_LOG_*"},
      {std::regex(R"(\bnew\b)"),
       "banned naked `new` in src/: use std::make_shared, "
       "std::make_unique, or containers"},
  };
  return patterns;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char terminator = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == terminator) {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::string CanonicalHeaderGuard(const std::string& rel_path) {
  std::string guard = "PRISTI_";
  for (char c : rel_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

std::vector<std::string> DifferentiableOps(const std::string& ops_header) {
  std::vector<std::string> ops;
  static const std::regex decl(R"(^Variable\s+(\w+)\s*\()");
  for (const std::string& line : SplitLines(ops_header)) {
    std::smatch m;
    if (std::regex_search(line, m, decl)) {
      ops.push_back(m[1].str());
    }
  }
  return ops;
}

std::vector<Violation> CheckHeaderGuards(const std::string& repo_root) {
  std::vector<Violation> violations;
  fs::path src = fs::path(repo_root) / "src";
  for (const fs::path& header : CollectFiles(src, {".h"})) {
    std::string rel_to_src = RelPath(header, src);
    std::string expected = CanonicalHeaderGuard(rel_to_src);
    std::string stripped = StripCommentsAndStrings(ReadFile(header));
    std::smatch m;
    static const std::regex ifndef_re(R"(#ifndef\s+(\w+))");
    std::string rel = RelPath(header, repo_root);
    if (!std::regex_search(stripped, m, ifndef_re)) {
      violations.push_back({rel, 1, "header-guard",
                            "missing #ifndef include guard (expected " +
                                expected + ")"});
      continue;
    }
    std::string actual = m[1].str();
    if (actual != expected) {
      violations.push_back({rel, 1, "header-guard",
                            "include guard " + actual +
                                " does not match canonical " + expected});
      continue;
    }
    if (stripped.find("#define " + expected) == std::string::npos) {
      violations.push_back({rel, 1, "header-guard",
                            "guard " + expected +
                                " is tested but never #define'd"});
    }
  }
  return violations;
}

std::vector<Violation> CheckBannedPatterns(const std::string& repo_root) {
  std::vector<Violation> violations;
  fs::path src = fs::path(repo_root) / "src";
  for (const fs::path& file : CollectFiles(src, {".h", ".cc"})) {
    std::string stripped = StripCommentsAndStrings(ReadFile(file));
    std::vector<std::string> lines = SplitLines(stripped);
    std::string rel = RelPath(file, repo_root);
    for (size_t i = 0; i < lines.size(); ++i) {
      for (const BannedPattern& pattern : BannedPatterns()) {
        if (std::regex_search(lines[i], pattern.re)) {
          violations.push_back({rel, static_cast<int>(i + 1),
                                "banned-pattern", pattern.description});
        }
      }
    }
  }
  return violations;
}

std::vector<Violation> CheckCmakeSourceLists(const std::string& repo_root) {
  std::vector<Violation> violations;
  std::vector<fs::path> dirs;
  // tests/, tools/ and bench/ are audited alongside src/: a test file that
  // drops out of tests/CMakeLists.txt stops running without anything
  // failing, which is the worst kind of coverage loss.
  for (const char* root_dir : {"src", "tests", "tools", "bench"}) {
    fs::path root = fs::path(repo_root) / root_dir;
    if (!fs::exists(root)) continue;
    dirs.push_back(root);
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_directory()) dirs.push_back(entry.path());
    }
  }
  std::sort(dirs.begin(), dirs.end());
  for (const fs::path& dir : dirs) {
    fs::path cmake = dir / "CMakeLists.txt";
    if (!fs::exists(cmake)) continue;
    std::string cmake_text = ReadFile(cmake);
    std::vector<fs::path> sources;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".cc") {
        sources.push_back(entry.path());
      }
    }
    std::sort(sources.begin(), sources.end());
    for (const fs::path& source : sources) {
      std::string name = source.filename().string();
      // Accept either the file name or its stem as a whole token: the test
      // and bench CMake helpers register targets by stem
      // (`pristi_add_test(foo_test ...)`) rather than by foo_test.cc.
      std::regex stem_re(R"(\b)" + source.stem().string() + R"(\b)");
      if (cmake_text.find(name) == std::string::npos &&
          !std::regex_search(cmake_text, stem_re)) {
        violations.push_back(
            {RelPath(cmake, repo_root), 0, "cmake-sources",
             "sibling source " + name +
                 " is not listed; it silently drops out of the build"});
      }
    }
  }
  return violations;
}

std::vector<Violation> CheckGradCoverage(const std::string& repo_root) {
  std::vector<Violation> violations;
  fs::path ops_header = fs::path(repo_root) / "src" / "autograd" / "ops.h";
  fs::path test_file = fs::path(repo_root) / "tests" / "autograd_test.cc";
  if (!fs::exists(ops_header)) return violations;
  if (!fs::exists(test_file)) {
    violations.push_back({"tests/autograd_test.cc", 0, "grad-coverage",
                          "gradient test file is missing"});
    return violations;
  }
  std::string ops_src = StripCommentsAndStrings(ReadFile(ops_header));
  std::string test_src = StripCommentsAndStrings(ReadFile(test_file));
  for (const std::string& op : DifferentiableOps(ops_src)) {
    std::regex use(R"(\b)" + op + R"(\s*\()");
    if (!std::regex_search(test_src, use)) {
      violations.push_back(
          {"src/autograd/ops.h", 0, "grad-coverage",
           "differentiable op " + op +
               " has no gradient case in tests/autograd_test.cc"});
    }
  }
  return violations;
}

uint32_t LayoutFingerprint(const std::string& text) {
  uint32_t hash = 2166136261u;  // FNV-1a offset basis
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 16777619u;  // FNV prime
  }
  return hash;
}

std::vector<Violation> CheckSerializeVersionGuard(
    const std::string& repo_root) {
  std::vector<Violation> violations;
  const std::string rel = "src/serialize/format.h";
  fs::path header = fs::path(repo_root) / "src" / "serialize" / "format.h";
  if (!fs::exists(header)) return violations;
  // Raw text, not stripped: the markers and the fingerprint live in
  // comments by design.
  std::string text = ReadFile(header);
  // The markers must stand alone on their own comment lines; prose that
  // merely mentions them (like the format doc at the top of the header)
  // does not match.
  const std::string begin_marker = "\n// serialize-layout-begin\n";
  const std::string end_marker = "\n// serialize-layout-end\n";
  size_t begin = text.find(begin_marker);
  size_t end = text.find(end_marker);
  if (begin == std::string::npos || end == std::string::npos || end <= begin) {
    violations.push_back({rel, 0, "serialize-version-guard",
                          "serialize-layout-begin/-end markers are missing "
                          "or out of order"});
    return violations;
  }
  // Fingerprint the lines strictly between the marker lines.
  size_t region_start = begin + begin_marker.size();
  std::string region = text.substr(region_start, end + 1 - region_start);
  uint32_t actual = LayoutFingerprint(region);
  char expected_comment[64];
  std::snprintf(expected_comment, sizeof(expected_comment),
                "serialize-layout-fingerprint: 0x%08X", actual);
  static const std::regex fp_re(
      R"(serialize-layout-fingerprint:\s*0x([0-9a-fA-F]{8}))");
  std::smatch m;
  if (!std::regex_search(text, m, fp_re)) {
    violations.push_back({rel, 0, "serialize-version-guard",
                          "missing fingerprint comment; add `// " +
                              std::string(expected_comment) + "`"});
    return violations;
  }
  uint32_t stored =
      static_cast<uint32_t>(std::stoul(m[1].str(), nullptr, 16));
  if (stored != actual) {
    violations.push_back(
        {rel, 0, "serialize-version-guard",
         "checkpoint layout changed without a version bump: bump "
         "kFormatVersion, then update the comment to `// " +
             std::string(expected_comment) + "`"});
  }
  return violations;
}

std::vector<Violation> CheckNoMaterializedTranspose(
    const std::string& repo_root) {
  std::vector<Violation> violations;
  fs::path src = fs::path(repo_root) / "src";
  // Any MatMul-family call: MatMul, MatMulNT/TN, BatchedMatMul*,
  // MatMulLastDim[T], MatMulNodeDim[T] — in tensor or autograd spelling.
  static const std::regex call_re(R"((\b(?:Batched)?MatMul\w*)\s*\()");
  static const std::regex transpose_re(R"(\b(TransposeLast2|Permute)\s*\()");
  for (const fs::path& file : CollectFiles(src, {".h", ".cc"})) {
    std::string raw = ReadFile(file);
    std::string stripped = StripCommentsAndStrings(raw);
    std::vector<std::string> raw_lines = SplitLines(raw);
    std::string rel = RelPath(file, repo_root);
    for (auto it =
             std::sregex_iterator(stripped.begin(), stripped.end(), call_re);
         it != std::sregex_iterator(); ++it) {
      // Walk to the matching close paren so the argument text is exactly
      // what this call consumes (wrapped lines included).
      size_t open =
          static_cast<size_t>(it->position()) + it->str().size() - 1;
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t i = open; i < stripped.size(); ++i) {
        if (stripped[i] == '(') {
          ++depth;
        } else if (stripped[i] == ')' && --depth == 0) {
          close = i;
          break;
        }
      }
      // Unbalanced only when the file is cut mid-expression; nothing to do.
      if (close == std::string::npos) continue;
      std::string args = stripped.substr(open + 1, close - open - 1);
      std::smatch m;
      if (!std::regex_search(args, m, transpose_re)) continue;
      size_t pos = static_cast<size_t>(it->position());
      int line = 1 + static_cast<int>(std::count(
                         stripped.begin(),
                         stripped.begin() + static_cast<std::ptrdiff_t>(pos),
                         '\n'));
      if (line - 1 < static_cast<int>(raw_lines.size()) &&
          raw_lines[static_cast<size_t>(line - 1)].find(
              "pristi-lint: allow-materialized-transpose") !=
              std::string::npos) {
        continue;
      }
      violations.push_back(
          {rel, line, "no-materialized-transpose",
           m[1].str() + " result feeds " + (*it)[1].str() +
               " directly, materializing a transposed copy: use the NT/TN "
               "kernel entry points (MatMulNT, BatchedMatMulTN, "
               "MatMulLastDimT, ...) which read the operand transposed in "
               "place"});
    }
  }
  return violations;
}

std::vector<Violation> CheckTensorByValueParams(const std::string& repo_root) {
  std::vector<Violation> violations;
  fs::path src = fs::path(repo_root) / "src";
  // `(` or `,` followed by a (possibly alias-qualified) Tensor or Variable
  // parameter declared by value: `Foo(Tensor x)`, `..., Variable v)`,
  // including declarations wrapped onto a continuation line (\s spans
  // newlines). The lookahead pins the token after the parameter name to
  // `,`, `)` or a default argument, which excludes range-for bindings
  // (`:`); pointer/reference declarators never match because `*`/`&` break
  // the `\s+\w` sequence, and template arguments like std::vector<Tensor>
  // are not preceded by `(` or `,`.
  static const std::regex by_value_re(
      R"re([(,]\s*(?:pristi\s*::\s*)?(?:tensor\s*::\s*|autograd\s*::\s*|t\s*::\s*|ag\s*::\s*)?(Tensor|Variable)\s+\w+\s*(?=[,)=]))re");
  for (const fs::path& file : CollectFiles(src, {".h", ".cc"})) {
    std::string raw = ReadFile(file);
    std::string stripped = StripCommentsAndStrings(raw);
    std::vector<std::string> raw_lines = SplitLines(raw);
    std::string rel = RelPath(file, repo_root);
    for (auto it =
             std::sregex_iterator(stripped.begin(), stripped.end(), by_value_re);
         it != std::sregex_iterator(); ++it) {
      // Report the line of the type name (group 1), not of the opening
      // punctuation, so wrapped parameter lists point at the parameter.
      size_t pos = static_cast<size_t>(it->position(1));
      int line = 1 + static_cast<int>(std::count(
                         stripped.begin(),
                         stripped.begin() + static_cast<std::ptrdiff_t>(pos),
                         '\n'));
      if (line - 1 < static_cast<int>(raw_lines.size()) &&
          raw_lines[static_cast<size_t>(line - 1)].find(
              "pristi-lint: allow-tensor-by-value") != std::string::npos) {
        continue;
      }
      std::string type = (*it)[1].str();
      violations.push_back(
          {rel, line, "tensor-by-value",
           "pass-by-value " + type + " parameter: take `const " + type +
               "&` (tensor headers share storage) or require an explicit "
               "Tensor::Clone() at the call site"});
    }
  }
  return violations;
}

std::vector<Violation> LintRepo(const std::string& repo_root) {
  std::vector<Violation> all;
  for (auto* rule :
       {CheckHeaderGuards, CheckBannedPatterns, CheckCmakeSourceLists,
        CheckGradCoverage, CheckSerializeVersionGuard,
        CheckNoMaterializedTranspose, CheckTensorByValueParams}) {
    std::vector<Violation> found = rule(repo_root);
    all.insert(all.end(), found.begin(), found.end());
  }
  return all;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream out;
  out << v.file;
  if (v.line > 0) out << ":" << v.line;
  out << " [" << v.rule << "] " << v.message;
  return out.str();
}

}  // namespace pristi::lint
