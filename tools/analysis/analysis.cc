#include "analysis.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace pristi::analysis {

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

// Shell files get suppressions from a plain per-line scan: anything after a
// `#` is comment enough for our purposes.
std::map<int, std::set<std::string>> ShellSuppressions(
    const std::vector<std::string>& lines) {
  static const std::regex allow_re(R"(pristi-lint:\s*allow-([A-Za-z0-9-]+))");
  std::map<int, std::set<std::string>> result;
  for (size_t i = 0; i < lines.size(); ++i) {
    for (auto it =
             std::sregex_iterator(lines[i].begin(), lines[i].end(), allow_re);
         it != std::sregex_iterator(); ++it) {
      result[static_cast<int>(i + 1)].insert((*it)[1].str());
    }
  }
  return result;
}

}  // namespace

bool SourceFile::IsSuppressed(int line, const std::string& rule) const {
  for (int probe : {line, line - 1}) {
    auto it = suppressions.find(probe);
    if (it != suppressions.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

const SourceFile* RepoContext::Find(const std::string& rel) const {
  auto it = files_.find(rel);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<const SourceFile*> RepoContext::FilesUnder(
    const std::string& prefix) const {
  std::vector<const SourceFile*> result;
  for (const auto& [rel, file] : files_) {
    if (rel.rfind(prefix, 0) == 0) result.push_back(&file);
  }
  return result;  // map iteration is already sorted by path
}

void RepoContext::Insert(SourceFile file) {
  std::string rel = file.rel;
  files_[rel] = std::move(file);
}

std::vector<IncludeDirective> ParseIncludes(
    const std::vector<std::string>& raw_lines,
    const std::vector<std::string>& stripped_lines) {
  // The include path itself is a string literal, which the stripped text
  // blanks — so the path is read from the raw line, but only when the
  // stripped line still carries the directive (a commented-out include
  // leaves nothing behind in the stripped text).
  static const std::regex include_re(
      R"(^\s*#\s*include\s*(["<])([^">]+)([">]))");
  static const std::regex directive_re(R"(^\s*#\s*include\b)");
  std::vector<IncludeDirective> result;
  const size_t n = std::min(raw_lines.size(), stripped_lines.size());
  for (size_t i = 0; i < n; ++i) {
    std::smatch m;
    if (!std::regex_search(raw_lines[i], m, include_re)) continue;
    if (!std::regex_search(stripped_lines[i], directive_re)) continue;
    IncludeDirective inc;
    inc.path = m[2].str();
    inc.line = static_cast<int>(i + 1);
    inc.angled = m[1].str() == "<";
    result.push_back(inc);
  }
  return result;
}

RepoContext BuildRepoContext(const std::string& repo_root) {
  RepoContext ctx(repo_root);
  const fs::path root(repo_root);
  for (const char* top : {"src", "tools", "tests", "bench"}) {
    fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      bool cpp = ext == ".h" || ext == ".cc";
      bool shell = ext == ".sh" && std::string(top) == "tools";
      if (cpp || shell) paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
      SourceFile file;
      file.rel = fs::relative(path, root).generic_string();
      file.raw = ReadFile(path);
      file.raw_lines = SplitLines(file.raw);
      if (path.extension() == ".sh") {
        file.is_shell = true;
        file.stripped = file.raw;
        file.stripped_lines = file.raw_lines;
        file.suppressions = ShellSuppressions(file.raw_lines);
      } else {
        TokenizedSource tok = Tokenize(file.raw);
        file.stripped = std::move(tok.stripped);
        file.stripped_lines = SplitLines(file.stripped);
        file.tokens = std::move(tok.tokens);
        file.suppressions = std::move(tok.suppressions);
        file.includes = ParseIncludes(file.raw_lines, file.stripped_lines);
      }
      ctx.Insert(std::move(file));
    }
  }
  return ctx;
}

const std::vector<Pass>& Passes() {
  static const std::vector<Pass> passes{
      {"header-guard", "canonical PRISTI_<PATH>_H_ include guards",
       CheckHeaderGuards},
      {"banned-pattern", "no rand(), std::cout, or naked new in src/",
       CheckBannedPatterns},
      {"cmake-sources", "every sibling .cc is listed in its CMakeLists.txt",
       CheckCmakeSourceLists},
      {"grad-coverage", "every autograd op has a gradient test",
       CheckGradCoverage},
      {"serialize-version-guard",
       "checkpoint layout edits must bump kFormatVersion",
       CheckSerializeVersionGuard},
      {"no-materialized-transpose",
       "no TransposeLast2/Permute result fed into MatMul*",
       CheckNoMaterializedTranspose},
      {"tensor-by-value", "no pass-by-value Tensor/Variable parameters",
       CheckTensorByValueParams},
      {"layering", "module DAG from layers.manifest over the include graph",
       CheckLayering},
      {"env-registry",
       "PRISTI_* env knobs declared in src/common/env.h, none dead",
       CheckEnvRegistry},
      {"dcheck-purity", "no side effects inside PRISTI_DCHECK*",
       CheckDcheckPurity},
      {"parallel-region",
       "no locks, I/O, or Tensor allocation inside ParallelFor lambdas",
       CheckParallelRegion},
      {"fp-contraction",
       "no FMA/FP_CONTRACT; kernel accumulation only in blessed helpers",
       CheckFpContraction},
  };
  return passes;
}

std::vector<Violation> AnalyzeRepo(const RepoContext& ctx,
                                   const std::set<std::string>& rules) {
  std::vector<Violation> all;
  for (const Pass& pass : Passes()) {
    if (!rules.empty() && rules.count(pass.name) == 0) continue;
    std::vector<Violation> found = pass.run(ctx);
    for (Violation& v : found) {
      if (v.line > 0) {
        const SourceFile* file = ctx.Find(v.file);
        if (file != nullptr && file->IsSuppressed(v.line, v.rule)) continue;
      }
      all.push_back(std::move(v));
    }
  }
  std::sort(all.begin(), all.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return all;
}

std::vector<Violation> LintRepo(const std::string& repo_root) {
  RepoContext ctx = BuildRepoContext(repo_root);
  return AnalyzeRepo(ctx);
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream out;
  out << v.file;
  if (v.line > 0) out << ":" << v.line;
  out << " [" << v.rule << "] " << v.message;
  return out.str();
}

std::string CanonicalHeaderGuard(const std::string& rel_path) {
  std::string guard = "PRISTI_";
  for (char c : rel_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

std::vector<std::string> DifferentiableOps(const std::string& ops_header) {
  std::vector<std::string> ops;
  static const std::regex decl(R"(^Variable\s+(\w+)\s*\()");
  for (const std::string& line : SplitLines(ops_header)) {
    std::smatch m;
    if (std::regex_search(line, m, decl)) {
      ops.push_back(m[1].str());
    }
  }
  return ops;
}

uint32_t LayoutFingerprint(const std::string& text) {
  uint32_t hash = 2166136261u;  // FNV-1a offset basis
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 16777619u;  // FNV prime
  }
  return hash;
}

size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  if (open >= tokens.size() || tokens[open].kind != TokenKind::kPunct) {
    return tokens.size();
  }
  const std::string& o = tokens[open].text;
  std::string close = o == "(" ? ")" : o == "[" ? "]" : o == "{" ? "}" : "";
  if (close.empty()) return tokens.size();
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == o) {
      ++depth;
    } else if (tokens[i].text == close && --depth == 0) {
      return i;
    }
  }
  return tokens.size();
}

}  // namespace pristi::analysis
