// pristi_analyze — static-analysis driver over the shared RepoContext.
//
//   pristi_analyze [repo_root] [--rules=a,b,c] [--list]
//
// Loads every analyzed file once, runs the registered passes (all by
// default, or the comma-separated subset from --rules), prints one line
// per unsuppressed violation, and exits 0 (clean) / 1 (violations) /
// 2 (usage or not a repo root). The binary is also installed under the
// historical name `pristi_lint`; both spell the same engine.

#include <cstring>
#include <filesystem>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "analysis.h"

namespace {

const char* ProgramName(const char* argv0) {
  std::filesystem::path p(argv0 != nullptr ? argv0 : "pristi_analyze");
  static std::string name;
  name = p.filename().string();
  if (name.empty()) name = "pristi_analyze";
  return name.c_str();
}

int Usage(const char* prog) {
  std::cerr << "usage: " << prog << " [repo_root] [--rules=a,b,c] [--list]\n"
            << "  repo_root     directory containing src/ (default: .)\n"
            << "  --rules=...   run only the named passes\n"
            << "  --list        print the registered passes and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* prog = ProgramName(argc > 0 ? argv[0] : nullptr);
  std::string root = ".";
  bool root_set = false;
  bool list = false;
  std::set<std::string> rules;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::istringstream in(arg.substr(std::strlen("--rules=")));
      std::string rule;
      while (std::getline(in, rule, ',')) {
        if (!rule.empty()) rules.insert(rule);
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(prog);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << prog << ": unknown flag " << arg << "\n";
      return Usage(prog);
    } else if (!root_set) {
      root = arg;
      root_set = true;
    } else {
      return Usage(prog);
    }
  }

  if (list) {
    for (const pristi::analysis::Pass& pass : pristi::analysis::Passes()) {
      std::cout << pass.name << "\t" << pass.description << "\n";
    }
    return 0;
  }

  for (const std::string& rule : rules) {
    bool known = false;
    for (const pristi::analysis::Pass& pass : pristi::analysis::Passes()) {
      if (pass.name == rule) known = true;
    }
    if (!known) {
      std::cerr << prog << ": unknown rule '" << rule
                << "' (see --list)\n";
      return 2;
    }
  }

  if (!std::filesystem::exists(std::filesystem::path(root) / "src")) {
    std::cerr << prog << ": '" << root
              << "' does not look like a repo root (no src/ directory)\n";
    return 2;
  }

  pristi::analysis::RepoContext ctx =
      pristi::analysis::BuildRepoContext(root);
  std::vector<pristi::analysis::Violation> violations =
      pristi::analysis::AnalyzeRepo(ctx, rules);
  for (const pristi::analysis::Violation& v : violations) {
    std::cout << pristi::analysis::FormatViolation(v) << "\n";
  }
  if (violations.empty()) {
    std::cout << prog << ": clean\n";
    return 0;
  }
  std::cout << prog << ": " << violations.size() << " violation(s)\n";
  return 1;
}
