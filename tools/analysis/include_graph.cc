#include "include_graph.h"

#include <algorithm>
#include <set>

namespace pristi::analysis {

namespace {

// Lexically normalizes "a/b/../c" and "a/./b" without touching the
// filesystem (the context's keys are generic '/' paths).
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  auto flush = [&]() {
    if (part.empty() || part == ".") {
      part.clear();
      return;
    }
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else {
      parts.push_back(part);
    }
    part.clear();
  };
  for (char c : path) {
    if (c == '/') {
      flush();
    } else {
      part.push_back(c);
    }
  }
  flush();
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out.push_back('/');
    out += p;
  }
  return out;
}

std::string DirName(const std::string& rel) {
  size_t slash = rel.find_last_of('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

}  // namespace

const std::vector<IncludeEdge>& IncludeGraph::EdgesFrom(
    const std::string& rel) const {
  static const std::vector<IncludeEdge> kEmpty;
  auto it = by_source_.find(rel);
  return it == by_source_.end() ? kEmpty : it->second;
}

void IncludeGraph::AddEdge(IncludeEdge edge) {
  by_source_[edge.from].push_back(edge);
  edges_.push_back(std::move(edge));
}

std::vector<std::vector<std::string>> IncludeGraph::FindCycles(
    const std::string& prefix) const {
  // Iterative DFS with an explicit color map; a back edge to a gray node
  // closes a cycle, which is canonicalized (rotated to start at its
  // smallest member) and deduplicated.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> nodes;
  auto in_scope = [&](const std::string& rel) {
    return rel.rfind(prefix, 0) == 0;
  };
  for (const IncludeEdge& e : edges_) {
    if (in_scope(e.from) && color.emplace(e.from, Color::kWhite).second) {
      nodes.push_back(e.from);
    }
    if (in_scope(e.to) && color.emplace(e.to, Color::kWhite).second) {
      nodes.push_back(e.to);
    }
  }
  std::sort(nodes.begin(), nodes.end());

  std::set<std::vector<std::string>> seen;
  std::vector<std::vector<std::string>> cycles;
  std::vector<std::string> stack;

  // Recursive lambda via explicit frames to stay stack-safe on deep graphs.
  struct Frame {
    std::string node;
    size_t next_edge = 0;
  };
  for (const std::string& start : nodes) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    color[start] = Color::kGray;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::vector<IncludeEdge>& out = EdgesFrom(frame.node);
      bool descended = false;
      while (frame.next_edge < out.size()) {
        const IncludeEdge& e = out[frame.next_edge++];
        if (!in_scope(e.to)) continue;
        Color c = color[e.to];
        if (c == Color::kWhite) {
          color[e.to] = Color::kGray;
          stack.push_back(e.to);
          frames.push_back({e.to, 0});
          descended = true;
          break;
        }
        if (c == Color::kGray) {
          // stack holds the path; the cycle is from e.to to the top.
          auto it = std::find(stack.begin(), stack.end(), e.to);
          std::vector<std::string> cycle(it, stack.end());
          auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          cycle.push_back(cycle.front());
          if (seen.insert(cycle).second) cycles.push_back(cycle);
        }
      }
      if (!descended) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return cycles;
}

std::string ResolveInclude(const RepoContext& ctx, const std::string& from_rel,
                           const std::string& path) {
  const std::string dir = DirName(from_rel);
  const std::string candidates[] = {
      dir.empty() ? path : dir + "/" + path,  // relative to the includer
      "src/" + path,                          // the build's -I src
      path,                                   // repo-root relative
  };
  for (const std::string& candidate : candidates) {
    std::string normalized = NormalizePath(candidate);
    if (ctx.Find(normalized) != nullptr) return normalized;
  }
  return std::string();
}

IncludeGraph BuildIncludeGraph(const RepoContext& ctx) {
  IncludeGraph graph;
  for (const auto& [rel, file] : ctx.files()) {
    if (file.is_shell) continue;
    for (const IncludeDirective& inc : file.includes) {
      if (inc.angled) continue;  // system header: not a repo edge
      std::string target = ResolveInclude(ctx, rel, inc.path);
      if (target.empty()) continue;
      graph.AddEdge({rel, target, inc.line});
    }
  }
  return graph;
}

std::string ModuleOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return std::string();
  size_t start = 4;
  size_t slash = rel.find('/', start);
  if (slash == std::string::npos) return std::string();  // file directly in src/
  return rel.substr(start, slash - start);
}

}  // namespace pristi::analysis
