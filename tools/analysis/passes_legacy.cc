// The seven original pristi_lint rules, ported onto the shared analysis
// substrate: every pass reads pre-stripped text / pre-built token streams
// from the RepoContext instead of re-reading and re-stripping files, and
// suppression is handled centrally by AnalyzeRepo.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "analysis.h"

namespace pristi::analysis {

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

}  // namespace

std::vector<Violation> CheckHeaderGuards(const RepoContext& ctx) {
  std::vector<Violation> violations;
  static const std::regex ifndef_re(R"(#ifndef\s+(\w+))");
  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    if (file->rel.size() < 2 ||
        file->rel.compare(file->rel.size() - 2, 2, ".h") != 0) {
      continue;
    }
    std::string expected = CanonicalHeaderGuard(file->rel.substr(4));
    std::smatch m;
    if (!std::regex_search(file->stripped, m, ifndef_re)) {
      violations.push_back({file->rel, 1, "header-guard",
                            "missing #ifndef include guard (expected " +
                                expected + ")"});
      continue;
    }
    std::string actual = m[1].str();
    if (actual != expected) {
      violations.push_back({file->rel, 1, "header-guard",
                            "include guard " + actual +
                                " does not match canonical " + expected});
      continue;
    }
    if (file->stripped.find("#define " + expected) == std::string::npos) {
      violations.push_back({file->rel, 1, "header-guard",
                            "guard " + expected +
                                " is tested but never #define'd"});
    }
  }
  return violations;
}

std::vector<Violation> CheckBannedPatterns(const RepoContext& ctx) {
  std::vector<Violation> violations;
  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    const std::vector<Token>& tokens = file->tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "rand" && i + 1 < tokens.size() &&
          IsPunct(tokens[i + 1], "(")) {
        violations.push_back(
            {file->rel, t.line, "banned-pattern",
             "banned call `rand()`: use pristi::Rng for reproducible "
             "streams"});
      } else if (t.text == "std" && i + 2 < tokens.size() &&
                 IsPunct(tokens[i + 1], "::") && IsIdent(tokens[i + 2], "cout")) {
        violations.push_back(
            {file->rel, t.line, "banned-pattern",
             "banned `std::cout` in src/: return values or use PRISTI_LOG_*"});
      } else if (t.text == "new" &&
                 (i == 0 || !IsPunct(tokens[i - 1], "::"))) {
        violations.push_back({file->rel, t.line, "banned-pattern",
                              "banned naked `new` in src/: use "
                              "std::make_shared, std::make_unique, or "
                              "containers"});
      }
    }
  }
  return violations;
}

std::vector<Violation> CheckCmakeSourceLists(const RepoContext& ctx) {
  std::vector<Violation> violations;
  std::vector<fs::path> dirs;
  // tests/, tools/ and bench/ are audited alongside src/: a test file that
  // drops out of tests/CMakeLists.txt stops running without anything
  // failing, which is the worst kind of coverage loss.
  for (const char* root_dir : {"src", "tests", "tools", "bench"}) {
    fs::path root = fs::path(ctx.root()) / root_dir;
    if (!fs::exists(root)) continue;
    dirs.push_back(root);
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_directory()) dirs.push_back(entry.path());
    }
  }
  std::sort(dirs.begin(), dirs.end());
  for (const fs::path& dir : dirs) {
    fs::path cmake = dir / "CMakeLists.txt";
    if (!fs::exists(cmake)) continue;
    std::string cmake_text = ReadFile(cmake);
    std::vector<fs::path> sources;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".cc") {
        sources.push_back(entry.path());
      }
    }
    std::sort(sources.begin(), sources.end());
    for (const fs::path& source : sources) {
      std::string name = source.filename().string();
      // Accept either the file name or its stem as a whole token: the test
      // and bench CMake helpers register targets by stem
      // (`pristi_add_test(foo_test ...)`) rather than by foo_test.cc.
      std::regex stem_re(R"(\b)" + source.stem().string() + R"(\b)");
      if (cmake_text.find(name) == std::string::npos &&
          !std::regex_search(cmake_text, stem_re)) {
        violations.push_back(
            {fs::relative(cmake, ctx.root()).generic_string(), 0,
             "cmake-sources",
             "sibling source " + name +
                 " is not listed; it silently drops out of the build"});
      }
    }
  }
  return violations;
}

std::vector<Violation> CheckGradCoverage(const RepoContext& ctx) {
  std::vector<Violation> violations;
  const SourceFile* ops = ctx.Find("src/autograd/ops.h");
  if (ops == nullptr) return violations;
  const SourceFile* test = ctx.Find("tests/autograd_test.cc");
  if (test == nullptr) {
    violations.push_back({"tests/autograd_test.cc", 0, "grad-coverage",
                          "gradient test file is missing"});
    return violations;
  }
  for (const std::string& op : DifferentiableOps(ops->stripped)) {
    std::regex use(R"(\b)" + op + R"(\s*\()");
    if (!std::regex_search(test->stripped, use)) {
      violations.push_back(
          {"src/autograd/ops.h", 0, "grad-coverage",
           "differentiable op " + op +
               " has no gradient case in tests/autograd_test.cc"});
    }
  }
  return violations;
}

std::vector<Violation> CheckSerializeVersionGuard(const RepoContext& ctx) {
  std::vector<Violation> violations;
  const std::string rel = "src/serialize/format.h";
  const SourceFile* header = ctx.Find(rel);
  if (header == nullptr) return violations;
  // Raw text, not stripped: the markers and the fingerprint live in
  // comments by design.
  const std::string& text = header->raw;
  // The markers must stand alone on their own comment lines; prose that
  // merely mentions them (like the format doc at the top of the header)
  // does not match.
  const std::string begin_marker = "\n// serialize-layout-begin\n";
  const std::string end_marker = "\n// serialize-layout-end\n";
  size_t begin = text.find(begin_marker);
  size_t end = text.find(end_marker);
  if (begin == std::string::npos || end == std::string::npos || end <= begin) {
    violations.push_back({rel, 0, "serialize-version-guard",
                          "serialize-layout-begin/-end markers are missing "
                          "or out of order"});
    return violations;
  }
  // Fingerprint the lines strictly between the marker lines.
  size_t region_start = begin + begin_marker.size();
  std::string region = text.substr(region_start, end + 1 - region_start);
  uint32_t actual = LayoutFingerprint(region);
  char expected_comment[64];
  std::snprintf(expected_comment, sizeof(expected_comment),
                "serialize-layout-fingerprint: 0x%08X", actual);
  static const std::regex fp_re(
      R"(serialize-layout-fingerprint:\s*0x([0-9a-fA-F]{8}))");
  std::smatch m;
  if (!std::regex_search(text, m, fp_re)) {
    violations.push_back({rel, 0, "serialize-version-guard",
                          "missing fingerprint comment; add `// " +
                              std::string(expected_comment) + "`"});
    return violations;
  }
  uint32_t stored =
      static_cast<uint32_t>(std::stoul(m[1].str(), nullptr, 16));
  if (stored != actual) {
    violations.push_back(
        {rel, 0, "serialize-version-guard",
         "checkpoint layout changed without a version bump: bump "
         "kFormatVersion, then update the comment to `// " +
             std::string(expected_comment) + "`"});
  }
  return violations;
}

std::vector<Violation> CheckNoMaterializedTranspose(const RepoContext& ctx) {
  std::vector<Violation> violations;
  static const std::regex matmul_re(R"(^(Batched)?MatMul\w*$)");
  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    const std::vector<Token>& tokens = file->tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier ||
          !std::regex_match(tokens[i].text, matmul_re) ||
          !IsPunct(tokens[i + 1], "(")) {
        continue;
      }
      size_t close = MatchingClose(tokens, i + 1);
      // Unbalanced only when the file is cut mid-expression; nothing to do.
      if (close >= tokens.size()) continue;
      for (size_t j = i + 2; j < close; ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier &&
            (tokens[j].text == "TransposeLast2" ||
             tokens[j].text == "Permute") &&
            j + 1 < close && IsPunct(tokens[j + 1], "(")) {
          violations.push_back(
              {file->rel, tokens[i].line, "no-materialized-transpose",
               tokens[j].text + " result feeds " + tokens[i].text +
                   " directly, materializing a transposed copy: use the "
                   "NT/TN kernel entry points (MatMulNT, BatchedMatMulTN, "
                   "MatMulLastDimT, ...) which read the operand transposed "
                   "in place"});
          break;  // one report per call site
        }
      }
    }
  }
  return violations;
}

std::vector<Violation> CheckTensorByValueParams(const RepoContext& ctx) {
  std::vector<Violation> violations;
  // `(` or `,` followed by a (possibly alias-qualified) Tensor or Variable
  // parameter declared by value: `Foo(Tensor x)`, `..., Variable v)`,
  // including declarations wrapped onto a continuation line (\s spans
  // newlines). The lookahead pins the token after the parameter name to
  // `,`, `)` or a default argument, which excludes range-for bindings
  // (`:`); pointer/reference declarators never match because `*`/`&` break
  // the `\s+\w` sequence, and template arguments like std::vector<Tensor>
  // are not preceded by `(` or `,`.
  static const std::regex by_value_re(
      R"re([(,]\s*(?:pristi\s*::\s*)?(?:tensor\s*::\s*|autograd\s*::\s*|t\s*::\s*|ag\s*::\s*)?(Tensor|Variable)\s+\w+\s*(?=[,)=]))re");
  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    const std::string& stripped = file->stripped;
    for (auto it =
             std::sregex_iterator(stripped.begin(), stripped.end(), by_value_re);
         it != std::sregex_iterator(); ++it) {
      // Report the line of the type name (group 1), not of the opening
      // punctuation, so wrapped parameter lists point at the parameter.
      size_t pos = static_cast<size_t>(it->position(1));
      int line = 1 + static_cast<int>(std::count(
                         stripped.begin(),
                         stripped.begin() + static_cast<std::ptrdiff_t>(pos),
                         '\n'));
      std::string type = (*it)[1].str();
      violations.push_back(
          {file->rel, line, "tensor-by-value",
           "pass-by-value " + type + " parameter: take `const " + type +
               "&` (tensor headers share storage) or require an explicit "
               "Tensor::Clone() at the call site"});
    }
  }
  return violations;
}

}  // namespace pristi::analysis
