// dcheck-purity: PRISTI_DCHECK* compiles out under NDEBUG (unless
// PRISTI_DEBUG_CHECKS), so any side effect inside its arguments silently
// changes release behavior. Flags, inside the argument list of every
// PRISTI_DCHECK / PRISTI_DCHECK_EQ/NE/LT/LE/GT/GE invocation in src/:
//   * increment/decrement (`++`, `--`),
//   * assignment (`=`, `+=`, `-=`, ... — never `==` and friends; the
//     tokenizer's longest-match keeps them distinct), and
//   * calls to functions outside a small allowlist of known-pure
//     observers (size/shape/accessor-style). A DCHECK that must call
//     something impure-looking but actually pure can carry
//     `// pristi-lint: allow-dcheck-purity`.

#include <regex>
#include <set>

#include "analysis.h"

namespace pristi::analysis {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// Known-pure callees: const observers, shape/size accessors, cmath
// predicates. Everything else called inside a DCHECK is assumed
// side-effecting until allowlisted here or suppressed at the site.
const std::set<std::string>& PureCallees() {
  static const std::set<std::string> pure{
      "numel",     "size",       "dim",        "ndim",      "dims",
      "shape",     "empty",      "data",       "capacity",  "length",
      "count",     "begin",      "end",        "front",     "back",
      "at",        "find",       "get",        "value",     "has_value",
      "first",     "second",     "ok",         "code",      "name",
      "message",   "c_str",      "str",        "min",       "max",
      "abs",       "fabs",       "sqrt",       "isfinite",  "isnan",
      "isinf",     "load",       "ShapesEqual", "rank",     "rows",
      "cols",      "storage_id", "storage_offset", "storage_version",
      "GradModeEnabled", "InParallelRegion",
  };
  return pure;
}

const std::set<std::string>& AssignmentOps() {
  static const std::set<std::string> ops{"=",  "+=", "-=",  "*=",  "/=",
                                         "%=", "&=", "|=",  "^=",  "<<=",
                                         ">>="};
  return ops;
}

}  // namespace

std::vector<Violation> CheckDcheckPurity(const RepoContext& ctx) {
  std::vector<Violation> violations;
  static const std::regex dcheck_re(R"(^PRISTI_DCHECK(_[A-Z]+)*$)");
  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    const std::vector<Token>& tokens = file->tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier ||
          !std::regex_match(tokens[i].text, dcheck_re) ||
          !IsPunct(tokens[i + 1], "(")) {
        continue;
      }
      const size_t close = MatchingClose(tokens, i + 1);
      if (close >= tokens.size()) continue;
      for (size_t j = i + 2; j < close; ++j) {
        const Token& t = tokens[j];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "++" || t.text == "--") {
            violations.push_back(
                {file->rel, t.line, "dcheck-purity",
                 "`" + t.text + "` inside " + tokens[i].text +
                     ": the expression compiles out under release, taking "
                     "the side effect with it"});
          } else if (AssignmentOps().count(t.text) > 0) {
            violations.push_back(
                {file->rel, t.line, "dcheck-purity",
                 "assignment `" + t.text + "` inside " + tokens[i].text +
                     ": the expression compiles out under release, taking "
                     "the side effect with it"});
          }
          continue;
        }
        if (t.kind == TokenKind::kIdentifier && j + 1 < close &&
            IsPunct(tokens[j + 1], "(")) {
          // `cond` in the macro's own definition, casts, and allowlisted
          // observers are fine; anything else is a call we cannot prove
          // pure.
          if (PureCallees().count(t.text) > 0) continue;
          if (t.text == "static_cast" || t.text == "condition" ||
              t.text == "cond") {
            continue;
          }
          violations.push_back(
              {file->rel, t.line, "dcheck-purity",
               "call to `" + t.text + "(...)` inside " + tokens[i].text +
                   " is not on the known-pure allowlist: hoist it out of "
                   "the DCHECK or suppress if provably pure"});
        }
      }
    }
  }
  return violations;
}

}  // namespace pristi::analysis
