#include "token_stream.h"

#include <cctype>
#include <regex>

namespace pristi::analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character operators, longest first within each leading character so
// a greedy prefix match is a longest match.
const char* const kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
const char* const kPunct2[] = {"++", "--", "+=", "-=", "*=", "/=", "%=",
                               "&=", "|=", "^=", "==", "!=", "<=", ">=",
                               "&&", "||", "<<", ">>", "->", "::", "##"};

// Records every `pristi-lint: allow-<rule>` inside a comment. `comment` is
// the raw comment text (may span lines for block comments); `first_line` is
// the line its first character sits on.
void CollectSuppressions(const std::string& comment, int first_line,
                         std::map<int, std::set<std::string>>* out) {
  static const std::regex allow_re(R"(pristi-lint:\s*allow-([A-Za-z0-9-]+))");
  int line = first_line;
  size_t start = 0;
  while (start <= comment.size()) {
    size_t eol = comment.find('\n', start);
    std::string text = comment.substr(
        start, eol == std::string::npos ? std::string::npos : eol - start);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), allow_re);
         it != std::sregex_iterator(); ++it) {
      (*out)[line].insert((*it)[1].str());
    }
    if (eol == std::string::npos) break;
    start = eol + 1;
    ++line;
  }
}

}  // namespace

TokenizedSource Tokenize(const std::string& source) {
  TokenizedSource result;
  result.stripped.assign(source.size(), ' ');
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto keep = [&](size_t pos) { result.stripped[pos] = source[pos]; };

  while (i < n) {
    char c = source[i];
    char next = i + 1 < n ? source[i + 1] : '\0';

    if (c == '\n') {
      result.stripped[i] = '\n';
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      keep(i);
      ++i;
      continue;
    }

    // Comments: blanked in stripped text, scanned for suppressions.
    if (c == '/' && next == '/') {
      size_t start = i;
      while (i < n && source[i] != '\n') ++i;
      CollectSuppressions(source.substr(start, i - start), line,
                          &result.suppressions);
      continue;  // newline handled by the main loop
    }
    if (c == '/' && next == '*') {
      size_t start = i;
      int start_line = line;
      i += 2;
      while (i < n && !(source[i] == '*' && i + 1 < n && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          result.stripped[i] = '\n';
          ++line;
        }
        ++i;
      }
      if (i < n) i += 2;  // consume "*/"
      CollectSuppressions(source.substr(start, i - start), start_line,
                          &result.suppressions);
      continue;
    }

    // String / char literals: one token, blanked in stripped text.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t start = i + 1;
      ++i;
      std::string text;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          if (source[i + 1] == '\n') ++line;
          text += source[i];
          text += source[i + 1];
          i += 2;
          continue;
        }
        if (source[i] == '\n') {
          // Unterminated literal; keep line numbers honest and bail out of
          // the literal so the rest of the file still tokenizes.
          result.stripped[i] = '\n';
          ++line;
          break;
        }
        text += source[i];
        ++i;
      }
      if (i < n && source[i] == quote) ++i;
      (void)start;
      result.tokens.push_back(
          {quote == '"' ? TokenKind::kString : TokenKind::kCharLiteral, text,
           line});
      continue;
    }

    // Numbers — consumed before punctuation so `1'000'000` digit separators
    // and `1.5e-3` exponents never open a bogus char literal / operator.
    if (IsDigit(c) || (c == '.' && IsDigit(next))) {
      size_t start = i;
      ++i;
      while (i < n) {
        char d = source[i];
        char dn = i + 1 < n ? source[i + 1] : '\0';
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if (d == '\'' && IsIdentChar(dn)) {
          i += 2;  // digit separator
        } else if ((d == '+' || d == '-') &&
                   (source[i - 1] == 'e' || source[i - 1] == 'E' ||
                    source[i - 1] == 'p' || source[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      for (size_t p = start; p < i; ++p) keep(p);
      result.tokens.push_back(
          {TokenKind::kNumber, source.substr(start, i - start), line});
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      for (size_t p = start; p < i; ++p) keep(p);
      result.tokens.push_back(
          {TokenKind::kIdentifier, source.substr(start, i - start), line});
      continue;
    }

    // Punctuation, longest match first.
    size_t len = 1;
    if (i + 2 < n) {
      std::string three = source.substr(i, 3);
      for (const char* p : kPunct3) {
        if (three == p) {
          len = 3;
          break;
        }
      }
    }
    if (len == 1 && i + 1 < n) {
      std::string two = source.substr(i, 2);
      for (const char* p : kPunct2) {
        if (two == p) {
          len = 2;
          break;
        }
      }
    }
    for (size_t p = i; p < i + len; ++p) keep(p);
    result.tokens.push_back({TokenKind::kPunct, source.substr(i, len), line});
    i += len;
  }
  return result;
}

std::string StripCommentsAndStrings(const std::string& source) {
  return Tokenize(source).stripped;
}

}  // namespace pristi::analysis
