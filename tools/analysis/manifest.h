#ifndef PRISTI_TOOLS_ANALYSIS_MANIFEST_H_
#define PRISTI_TOOLS_ANALYSIS_MANIFEST_H_

// Checked-in analysis manifest (tools/analysis/layers.manifest).
//
// The manifest declares repo policy as data, so tightening or relaxing it
// is a reviewed diff instead of an analyzer code change. Two sections:
//
//   [layers]
//     <module> = <dep> <dep> ...
//   One line per directory directly under src/. A module may include
//   headers only from itself and its listed deps; the declared relation
//   must itself be a DAG. Order within a line is irrelevant.
//
//   [fp-blessed]
//     <FunctionName>
//   The blessed accumulation helpers: the only functions in
//   src/tensor/kernels/ allowed to contain raw `x += a * b` float
//   multiply-accumulate chains (the fp-contraction pass flags the rest).
//
// `#` starts a comment; blank lines are ignored.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pristi::analysis {

struct LayerManifest {
  bool loaded = false;  // manifest file existed and parsed
  // module -> allowed dependency modules (self-dependency implicit).
  std::map<std::string, std::set<std::string>> layers;
  std::set<std::string> blessed_accumulators;
  std::vector<std::string> parse_errors;  // malformed lines, with line numbers
};

// Repo-relative location of the manifest.
inline const char* kManifestRelPath = "tools/analysis/layers.manifest";

LayerManifest ParseLayerManifest(const std::string& text);

// Modules involved in a dependency cycle of the declared [layers] relation,
// sorted; empty when the manifest is a DAG.
std::vector<std::string> ManifestCycleMembers(const LayerManifest& manifest);

}  // namespace pristi::analysis

#endif  // PRISTI_TOOLS_ANALYSIS_MANIFEST_H_
