// parallel-region: hygiene inside ParallelFor lambda bodies in src/.
//
// The persistent pool's lambdas are the hottest code in the tree and are
// executed concurrently by design, so this pass flags constructs that are
// either serializing or allocating inside the lambda body tokens:
//   * mutex acquisition (std::mutex/lock_guard/unique_lock/scoped_lock,
//     `.lock()` / `.try_lock()` member calls) — a lock inside the region
//     serializes the whole pool;
//   * I/O (printf family, fopen, C++ streams, PRISTI_LOG_* except FATAL)
//     — interleaved output and syscalls in the hot loop;
//   * `Tensor` construction — per-PR-4 design, pool/storage requests
//     belong outside the hot lambda (construct outputs before ParallelFor,
//     write through raw pointers inside).
// The scan covers the textual lambda bodies inside the ParallelFor call's
// argument list (not code it calls; deeper effects belong to the callee's
// own review). Suppress a deliberate exception with
// `// pristi-lint: allow-parallel-region`.

#include <set>

#include "analysis.h"

namespace pristi::analysis {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

const std::set<std::string>& MutexIdents() {
  static const std::set<std::string> idents{
      "mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "condition_variable"};
  return idents;
}

const std::set<std::string>& IoIdents() {
  static const std::set<std::string> idents{
      "printf", "fprintf", "sprintf", "snprintf", "fopen",  "fwrite",
      "fread",  "fputs",   "fgets",   "ofstream", "ifstream", "fstream",
      "cout",   "cerr",    "clog",    "PRISTI_LOG_INFO", "PRISTI_LOG_WARNING",
      "PRISTI_LOG_ERROR"};
  return idents;
}

}  // namespace

std::vector<Violation> CheckParallelRegion(const RepoContext& ctx) {
  std::vector<Violation> violations;
  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    const std::vector<Token>& tokens = file->tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier ||
          tokens[i].text != "ParallelFor" || !IsPunct(tokens[i + 1], "(")) {
        continue;
      }
      const size_t close = MatchingClose(tokens, i + 1);
      if (close >= tokens.size()) continue;
      // Every braced region inside the call's argument list is a lambda
      // body (or a brace-init inside one — also part of the region).
      for (size_t j = i + 2; j < close; ++j) {
        if (!IsPunct(tokens[j], "{")) continue;
        const size_t body_close = MatchingClose(tokens, j);
        if (body_close >= tokens.size()) break;
        for (size_t k = j + 1; k < body_close; ++k) {
          const Token& t = tokens[k];
          if (t.kind != TokenKind::kIdentifier) continue;
          const bool member_call =
              k > 0 &&
              (IsPunct(tokens[k - 1], ".") || IsPunct(tokens[k - 1], "->"));
          if (MutexIdents().count(t.text) > 0 ||
              (member_call && (t.text == "lock" || t.text == "try_lock"))) {
            violations.push_back(
                {file->rel, t.line, "parallel-region",
                 "`" + t.text + "` inside a ParallelFor lambda: a lock in "
                 "the parallel region serializes the pool — acquire "
                 "outside, or restructure so workers own disjoint data"});
          } else if (IoIdents().count(t.text) > 0) {
            violations.push_back(
                {file->rel, t.line, "parallel-region",
                 "I/O (`" + t.text + "`) inside a ParallelFor lambda: "
                 "syscalls in the hot region stall every worker — collect "
                 "results and emit after the loop"});
          } else if (t.text == "Tensor" && k + 1 < body_close &&
                     (tokens[k + 1].kind == TokenKind::kIdentifier ||
                      IsPunct(tokens[k + 1], "(") ||
                      IsPunct(tokens[k + 1], "{"))) {
            // `Tensor out(...)` / `Tensor(...)` temporaries allocate from
            // the storage pool; `const Tensor&`/`Tensor*` bindings do not
            // and stay legal (next token is `&`, `*`, `>`...).
            violations.push_back(
                {file->rel, t.line, "parallel-region",
                 "Tensor construction inside a ParallelFor lambda "
                 "allocates per-iteration: hoist the allocation out of the "
                 "hot region and write through raw pointers (PR 4 memory "
                 "model)"});
          }
        }
        j = body_close;
      }
      i = close;
    }
  }
  return violations;
}

}  // namespace pristi::analysis
