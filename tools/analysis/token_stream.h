#ifndef PRISTI_TOOLS_ANALYSIS_TOKEN_STREAM_H_
#define PRISTI_TOOLS_ANALYSIS_TOKEN_STREAM_H_

// C++ tokenizer for the pristi_analyze static-analysis engine.
//
// One pass over a source file produces everything every analysis pass
// needs, so each file is read, stripped, and tokenized exactly once:
//
//   * a token stream (identifiers, numbers, string/char literals,
//     punctuation) with 1-based line numbers, so passes can match real
//     syntax ("identifier `getenv` followed by `(` and a string literal")
//     instead of fighting regex false positives;
//   * the comment/string-stripped source text (lines preserved) that the
//     line-oriented legacy rules and the include scanner consume;
//   * the per-line suppression table: every `pristi-lint: allow-<rule>`
//     found in a comment, attributed to the line it appears on. A
//     suppression silences its rule on its own line and on the following
//     line (so long violating lines can carry the comment just above).
//
// The tokenizer is deliberately approximate where precision does not pay:
// preprocessor directives are tokenized like ordinary code (passes that
// care about `#pragma`/`#include` lines use the stripped line text), and
// raw string literals are not specially handled (the repo bans them by
// convention; a raw string would tokenize as a plain string up to its
// first quote).

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pristi::analysis {

enum class TokenKind {
  kIdentifier,  // [A-Za-z_]\w* — keywords are identifiers too
  kNumber,      // numeric literal, including hex/float/digit separators
  kString,      // "..." — text holds the uninterpreted contents
  kCharLiteral, // '...' — text holds the uninterpreted contents
  kPunct,       // operator or punctuation, longest-match (e.g. "+=", "::")
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based
};

struct TokenizedSource {
  std::vector<Token> tokens;
  // Source with comments, string literals, and char literals replaced by
  // spaces; newlines preserved so line numbers stay meaningful.
  std::string stripped;
  // line -> rule ids suppressed by a `pristi-lint: allow-<rule>` comment
  // on that line.
  std::map<int, std::set<std::string>> suppressions;
};

TokenizedSource Tokenize(const std::string& source);

// Convenience for callers that only need the stripped text (the legacy
// rule entry point; equivalent to Tokenize(source).stripped).
std::string StripCommentsAndStrings(const std::string& source);

}  // namespace pristi::analysis

#endif  // PRISTI_TOOLS_ANALYSIS_TOKEN_STREAM_H_
