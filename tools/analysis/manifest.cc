#include "manifest.h"

#include <algorithm>
#include <sstream>

namespace pristi::analysis {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return std::string();
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream in(s);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

}  // namespace

LayerManifest ParseLayerManifest(const std::string& text) {
  LayerManifest manifest;
  manifest.loaded = true;
  enum class Section { kNone, kLayers, kFpBlessed };
  Section section = Section::kNone;
  int line_no = 0;
  std::istringstream in(text);
  std::string raw_line;
  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string line = raw_line;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line == "[layers]") {
        section = Section::kLayers;
      } else if (line == "[fp-blessed]") {
        section = Section::kFpBlessed;
      } else {
        manifest.parse_errors.push_back("line " + std::to_string(line_no) +
                                        ": unknown section " + line);
        section = Section::kNone;
      }
      continue;
    }
    switch (section) {
      case Section::kLayers: {
        size_t eq = line.find('=');
        if (eq == std::string::npos) {
          manifest.parse_errors.push_back(
              "line " + std::to_string(line_no) +
              ": expected `<module> = <deps...>`, got `" + line + "`");
          break;
        }
        std::string module = Trim(line.substr(0, eq));
        if (module.empty() || module.find(' ') != std::string::npos) {
          manifest.parse_errors.push_back("line " + std::to_string(line_no) +
                                          ": bad module name `" + module + "`");
          break;
        }
        std::set<std::string>& deps = manifest.layers[module];
        for (const std::string& dep : SplitWords(line.substr(eq + 1))) {
          deps.insert(dep);
        }
        break;
      }
      case Section::kFpBlessed: {
        std::vector<std::string> words = SplitWords(line);
        if (words.size() != 1) {
          manifest.parse_errors.push_back(
              "line " + std::to_string(line_no) +
              ": expected one function name per line, got `" + line + "`");
          break;
        }
        manifest.blessed_accumulators.insert(words[0]);
        break;
      }
      case Section::kNone:
        manifest.parse_errors.push_back("line " + std::to_string(line_no) +
                                        ": content outside any [section]");
        break;
    }
  }
  return manifest;
}

std::vector<std::string> ManifestCycleMembers(const LayerManifest& manifest) {
  // Kahn's algorithm over module -> dep edges; whatever cannot be
  // topologically ordered sits on (or depends into) a cycle. Deps that are
  // not themselves declared modules are ignored here — the layering pass
  // reports those separately.
  std::map<std::string, int> out_degree;  // unresolved declared deps
  std::map<std::string, std::vector<std::string>> dependents;
  for (const auto& [module, deps] : manifest.layers) {
    int degree = 0;
    for (const std::string& dep : deps) {
      if (dep == module) continue;
      if (manifest.layers.count(dep) == 0) continue;
      ++degree;
      dependents[dep].push_back(module);
    }
    out_degree[module] = degree;
  }
  std::vector<std::string> ready;
  for (const auto& [module, degree] : out_degree) {
    if (degree == 0) ready.push_back(module);
  }
  size_t resolved = 0;
  while (!ready.empty()) {
    std::string module = ready.back();
    ready.pop_back();
    ++resolved;
    for (const std::string& dependent : dependents[module]) {
      if (--out_degree[dependent] == 0) ready.push_back(dependent);
    }
  }
  std::vector<std::string> cyclic;
  if (resolved == out_degree.size()) return cyclic;
  for (const auto& [module, degree] : out_degree) {
    if (degree > 0) cyclic.push_back(module);
  }
  std::sort(cyclic.begin(), cyclic.end());
  return cyclic;
}

}  // namespace pristi::analysis
