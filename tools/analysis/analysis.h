#ifndef PRISTI_TOOLS_ANALYSIS_ANALYSIS_H_
#define PRISTI_TOOLS_ANALYSIS_ANALYSIS_H_

// pristi_analyze: the repo's static-analysis engine.
//
// The engine loads every C++ source file under src/, tools/, tests/ and
// bench/ (plus tools/*.sh for the env-knob pass) exactly once into a
// RepoContext — raw text, stripped text, token stream, per-line
// suppression table — and runs a registered list of passes over it. Each
// pass returns Violations; the engine then applies the uniform
// suppression mechanism (`// pristi-lint: allow-<rule>` on the violating
// line or the line above) and sorts the result for deterministic reports.
//
// Passes (rule ids):
//
//   header-guard         canonical PRISTI_<PATH>_H_ include guards (src/).
//   banned-pattern       no rand(), std::cout, or naked new in src/.
//   cmake-sources        every sibling .cc is listed in its CMakeLists.txt.
//   grad-coverage        every op in autograd/ops.h has a gradient test.
//   serialize-version-guard
//                        checkpoint layout edits must bump kFormatVersion.
//   no-materialized-transpose
//                        no TransposeLast2/Permute result fed into MatMul*.
//   tensor-by-value      no pass-by-value Tensor/Variable parameters.
//   layering             the module DAG declared in
//                        tools/analysis/layers.manifest is enforced over
//                        the real include graph (forbidden edges, include
//                        cycles, undeclared modules, manifest cycles).
//   env-registry         every getenv/GetEnvOr of a PRISTI_* name resolves
//                        to a knob documented in src/common/env.h between
//                        the pristi-env-registry markers, no documented
//                        knob is dead, and raw std::getenv("PRISTI_*")
//                        outside common/env.h routes through GetEnvOr.
//   dcheck-purity        no side effects (++/--/assignment/non-allowlisted
//                        calls) inside PRISTI_DCHECK*, which compiles out
//                        under release.
//   parallel-region      no mutex acquisition, I/O, or allocating Tensor
//                        construction inside ParallelFor lambda bodies.
//   fp-contraction       no std::fma/_mm*_fmadd_*/FP_CONTRACT pragmas in
//                        src/, and raw multiply-accumulate loops in
//                        src/tensor/kernels/ only inside the blessed
//                        accumulation helpers named in layers.manifest.
//
// See docs/static_analysis.md for the full architecture.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "token_stream.h"

namespace pristi::analysis {

struct Violation {
  std::string file;     // repo-relative path
  int line = 0;         // 1-based; 0 when the rule is file-scoped
  std::string rule;     // rule id, e.g. "layering"
  std::string message;  // human-readable description
};

struct IncludeDirective {
  std::string path;  // as written between the quotes/brackets
  int line = 0;
  bool angled = false;  // #include <...> (system headers; never resolved)
};

// One analyzed file. C++ sources carry the full token stream; shell
// scripts (env-registry scope) carry only raw/stripped-as-raw lines and
// suppressions found anywhere on a line.
struct SourceFile {
  std::string rel;  // repo-relative path, '/'-separated
  bool is_shell = false;
  std::string raw;
  std::vector<std::string> raw_lines;
  std::string stripped;  // == raw for shell files
  std::vector<std::string> stripped_lines;
  std::vector<Token> tokens;  // empty for shell files
  std::map<int, std::set<std::string>> suppressions;
  std::vector<IncludeDirective> includes;

  // True when `rule` is suppressed at `line` (suppression on the line
  // itself or on the line immediately above).
  bool IsSuppressed(int line, const std::string& rule) const;
};

// Every analyzed file, loaded once and shared by all passes.
class RepoContext {
 public:
  explicit RepoContext(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }
  const std::map<std::string, SourceFile>& files() const { return files_; }

  // nullptr when `rel` was not loaded.
  const SourceFile* Find(const std::string& rel) const;
  // All loaded files whose repo-relative path starts with `prefix`,
  // sorted by path.
  std::vector<const SourceFile*> FilesUnder(const std::string& prefix) const;

  void Insert(SourceFile file);

 private:
  std::string root_;
  std::map<std::string, SourceFile> files_;
};

// Loads .h/.cc files under src/, tools/, tests/, bench/ and .sh files
// under tools/ into a RepoContext.
RepoContext BuildRepoContext(const std::string& repo_root);

// Parses `#include` directives out of a file's raw + stripped lines
// (commented-out includes are ignored). Exposed for tests.
std::vector<IncludeDirective> ParseIncludes(
    const std::vector<std::string>& raw_lines,
    const std::vector<std::string>& stripped_lines);

// ---- Individual passes ----------------------------------------------------
// Each returns unfiltered violations; AnalyzeRepo applies suppressions.

std::vector<Violation> CheckHeaderGuards(const RepoContext& ctx);
std::vector<Violation> CheckBannedPatterns(const RepoContext& ctx);
std::vector<Violation> CheckCmakeSourceLists(const RepoContext& ctx);
std::vector<Violation> CheckGradCoverage(const RepoContext& ctx);
std::vector<Violation> CheckSerializeVersionGuard(const RepoContext& ctx);
std::vector<Violation> CheckNoMaterializedTranspose(const RepoContext& ctx);
std::vector<Violation> CheckTensorByValueParams(const RepoContext& ctx);
std::vector<Violation> CheckLayering(const RepoContext& ctx);
std::vector<Violation> CheckEnvRegistry(const RepoContext& ctx);
std::vector<Violation> CheckDcheckPurity(const RepoContext& ctx);
std::vector<Violation> CheckParallelRegion(const RepoContext& ctx);
std::vector<Violation> CheckFpContraction(const RepoContext& ctx);

struct Pass {
  std::string name;  // rule id emitted by the pass
  std::string description;
  std::vector<Violation> (*run)(const RepoContext&);
};

// All registered passes, in report order.
const std::vector<Pass>& Passes();

// Runs the selected passes (all when `rules` is empty), filters suppressed
// violations through the per-file suppression tables, and sorts by
// (file, line, rule). Unknown rule names in `rules` are ignored; the
// driver validates them against Passes() first.
std::vector<Violation> AnalyzeRepo(const RepoContext& ctx,
                                   const std::set<std::string>& rules = {});

// Convenience: BuildRepoContext + AnalyzeRepo with every pass.
std::vector<Violation> LintRepo(const std::string& repo_root);

std::string FormatViolation(const Violation& v);

// ---- Shared helpers reused by passes and tests ----------------------------

// Canonical include guard for a header at `rel_path` below src/
// (e.g. "common/check.h" -> "PRISTI_COMMON_CHECK_H_").
std::string CanonicalHeaderGuard(const std::string& rel_path);

// Names of `Variable Foo(...)` operators declared in (already stripped)
// ops.h source.
std::vector<std::string> DifferentiableOps(const std::string& ops_header);

// FNV-1a 32-bit hash; the fingerprint the serialize-version-guard rule
// compares against the comment in src/serialize/format.h.
uint32_t LayoutFingerprint(const std::string& text);

// Index of the token matching the `(` opened at `open` (which must be a
// "(" / "[" / "{" punct token); tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open);

}  // namespace pristi::analysis

#endif  // PRISTI_TOOLS_ANALYSIS_ANALYSIS_H_
