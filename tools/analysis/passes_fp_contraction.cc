// fp-contraction: compile-time extension of the PR 6 FMA-canary story.
//
// The kernel layer's bit-identity contract requires every `c += a*b` to
// round the multiply and the add separately (-ffp-contract=off build-wide,
// runtime canary in tensor_test). This pass makes the hazard visible at
// lint time, before a build or golden diff runs:
//   * anywhere in src/: explicit fused-multiply-add spellings (`std::fma`,
//     `fmaf`, `_mm*_fmadd_*` / `fmsub` / `fnmadd` intrinsics) and
//     FP_CONTRACT / fp_contract pragmas that would re-enable contraction
//     locally;
//   * in src/tensor/kernels/: raw multiply-accumulate statements
//     (`x += a * b` / `x -= a * b`) outside the blessed accumulation
//     helpers named in the [fp-blessed] section of layers.manifest. Those
//     helpers ARE the bit-identity contract (reference chain + the two
//     micro-kernels that reproduce it); any new accumulation loop must
//     either call them or be consciously added to the manifest.

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "analysis.h"
#include "manifest.h"

namespace pristi::analysis {

namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsFmaSpelling(const std::string& ident) {
  if (ident == "fma" || ident == "fmaf" || ident == "fmal") return true;
  return ident.find("fmadd") != std::string::npos ||
         ident.find("fmsub") != std::string::npos ||
         ident.find("fnmadd") != std::string::npos ||
         ident.find("fnmsub") != std::string::npos;
}

bool IsControlKeyword(const std::string& ident) {
  return ident == "if" || ident == "for" || ident == "while" ||
         ident == "switch" || ident == "catch" || ident == "return" ||
         ident == "sizeof" || ident == "alignof";
}

// Tracks the innermost *named* function definition enclosing each token.
// Heuristic on the token stream: a `{` preceded (modulo trailing
// specifiers like const/noexcept/override/-> trailing-return tokens) by a
// balanced `(...)` group whose head is an identifier opens that function;
// lambdas and plain blocks open anonymous scopes that inherit the name.
class FunctionTracker {
 public:
  explicit FunctionTracker(const std::vector<Token>& tokens)
      : tokens_(tokens) {}

  // Advances over token `i` (call once per index, in order).
  void Observe(size_t i) {
    const Token& t = tokens_[i];
    if (t.kind != TokenKind::kPunct) return;
    if (t.text == "{") {
      stack_.push_back(NameForBrace(i));
    } else if (t.text == "}") {
      if (!stack_.empty()) stack_.pop_back();
    }
  }

  // Innermost named enclosing function, or "" at namespace/file scope.
  std::string Current() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (!it->empty()) return *it;
    }
    return std::string();
  }

 private:
  std::string NameForBrace(size_t brace) const {
    // Walk back over trailing specifiers to the `)` of a parameter list.
    size_t i = brace;
    while (i > 0) {
      const Token& t = tokens_[i - 1];
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final" || t.text == "mutable")) {
        --i;
        continue;
      }
      // Trailing return type: `-> Type` tokens between `)` and `{`.
      if (t.kind == TokenKind::kIdentifier || IsPunct(t, "->") ||
          IsPunct(t, "::") || IsPunct(t, "<") || IsPunct(t, ">") ||
          IsPunct(t, "*") || IsPunct(t, "&")) {
        --i;
        continue;
      }
      break;
    }
    if (i == 0 || !IsPunct(tokens_[i - 1], ")")) return std::string();
    // Find the matching `(` backwards.
    int depth = 0;
    size_t j = i - 1;
    while (true) {
      const Token& t = tokens_[j];
      if (IsPunct(t, ")")) ++depth;
      if (IsPunct(t, "(") && --depth == 0) break;
      if (j == 0) return std::string();
      --j;
    }
    if (j == 0) return std::string();
    const Token& head = tokens_[j - 1];
    if (head.kind != TokenKind::kIdentifier || IsControlKeyword(head.text)) {
      return std::string();  // lambda `](...)`, control flow, cast, ...
    }
    return head.text;
  }

  const std::vector<Token>& tokens_;
  std::vector<std::string> stack_;
};

LayerManifest LoadManifest(const RepoContext& ctx) {
  const SourceFile* file = ctx.Find(kManifestRelPath);
  if (file != nullptr) return ParseLayerManifest(file->raw);
  std::filesystem::path path =
      std::filesystem::path(ctx.root()) / kManifestRelPath;
  if (!std::filesystem::exists(path)) return LayerManifest{};
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseLayerManifest(buf.str());
}

}  // namespace

std::vector<Violation> CheckFpContraction(const RepoContext& ctx) {
  std::vector<Violation> violations;
  static const std::regex pragma_re(
      R"(#\s*pragma\s.*\b(FP_CONTRACT|fp_contract)\b)");

  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    // FMA spellings and contraction pragmas, tree-wide.
    for (const Token& t : file->tokens) {
      if (t.kind == TokenKind::kIdentifier && IsFmaSpelling(t.text)) {
        violations.push_back(
            {file->rel, t.line, "fp-contraction",
             "`" + t.text + "` fuses multiply and add with a single "
             "rounding, breaking the build-wide bit-identity contract "
             "(docs/ARCHITECTURE.md): use separate mul/add"});
      }
    }
    for (size_t i = 0; i < file->stripped_lines.size(); ++i) {
      if (std::regex_search(file->stripped_lines[i], pragma_re)) {
        violations.push_back(
            {file->rel, static_cast<int>(i + 1), "fp-contraction",
             "FP_CONTRACT pragma re-enables fused multiply-add locally, "
             "defeating the build-wide -ffp-contract=off"});
      }
    }
  }

  // Raw multiply-accumulate chains in the kernel layer.
  std::vector<const SourceFile*> kernel_files =
      ctx.FilesUnder("src/tensor/kernels/");
  if (kernel_files.empty()) return violations;
  LayerManifest manifest = LoadManifest(ctx);

  for (const SourceFile* file : kernel_files) {
    const std::vector<Token>& tokens = file->tokens;
    FunctionTracker tracker(tokens);
    for (size_t i = 0; i < tokens.size(); ++i) {
      tracker.Observe(i);
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kPunct || (t.text != "+=" && t.text != "-="))
        continue;
      // Multiply on the right-hand side (up to the statement end) makes
      // this a contractible multiply-accumulate.
      bool has_mul = false;
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        const Token& r = tokens[j];
        if (r.kind == TokenKind::kPunct &&
            (r.text == ";" || r.text == "{" || r.text == "}")) {
          break;
        }
        if (r.kind == TokenKind::kPunct && r.text == "*" && j > i + 1) {
          has_mul = true;
          break;
        }
      }
      if (!has_mul) continue;
      std::string fn = tracker.Current();
      if (!fn.empty() && manifest.blessed_accumulators.count(fn) > 0) continue;
      violations.push_back(
          {file->rel, t.line, "fp-contraction",
           "raw multiply-accumulate `" + t.text + " ... * ...`" +
               (fn.empty() ? std::string() : " in " + fn + "()") +
               " outside the blessed accumulation helpers ([fp-blessed] in " +
               kManifestRelPath +
               "): route through the blessed chain or add the helper to "
               "the manifest deliberately"});
    }
  }
  return violations;
}

}  // namespace pristi::analysis
