// env-registry: every PRISTI_* environment knob read anywhere in src/,
// tools/, tests/ or bench/ must be declared in the registry block of
// src/common/env.h (between the pristi-env-registry-begin/-end markers),
// and every declared knob must be read somewhere (no dead documentation).
// Reads are
//   * C++: `getenv` / `GetEnvOr` / `GetEnvIntOr` called with a "PRISTI_*"
//     string literal (token-level match, so strings in comments, test
//     fixtures, or docs never count), and
//   * shell (tools/*.sh): `$PRISTI_FOO` / `${PRISTI_FOO...}` expansions.
// Raw `std::getenv("PRISTI_*")` outside common/env.h is additionally
// flagged: route it through GetEnvOr/GetEnvIntOr so defaulting and parsing
// stay in one place.

#include <map>
#include <regex>

#include "analysis.h"

namespace pristi::analysis {

namespace {

constexpr const char* kRegistryRel = "src/common/env.h";
constexpr const char* kBeginMarker = "pristi-env-registry-begin";
constexpr const char* kEndMarker = "pristi-env-registry-end";

struct KnobUse {
  std::string file;
  int line = 0;
  bool raw_getenv = false;
};

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// Declared knobs: registry lines of the form `//   PRISTI_NAME  <doc...>`
// between the markers. Returns name -> declaration line.
std::map<std::string, int> ParseRegistry(const SourceFile& env_header,
                                         bool* markers_found) {
  static const std::regex decl_re(R"(^\s*//\s+(PRISTI_[A-Z0-9_]+)\b)");
  std::map<std::string, int> declared;
  bool inside = false;
  *markers_found = false;
  for (size_t i = 0; i < env_header.raw_lines.size(); ++i) {
    const std::string& line = env_header.raw_lines[i];
    if (line.find(kBeginMarker) != std::string::npos) {
      inside = true;
      *markers_found = true;
      continue;
    }
    if (line.find(kEndMarker) != std::string::npos) {
      inside = false;
      continue;
    }
    if (!inside) continue;
    std::smatch m;
    if (std::regex_search(line, m, decl_re)) {
      declared.emplace(m[1].str(), static_cast<int>(i + 1));
    }
  }
  return declared;
}

}  // namespace

std::vector<Violation> CheckEnvRegistry(const RepoContext& ctx) {
  std::vector<Violation> violations;

  // Collect every knob read.
  std::map<std::string, std::vector<KnobUse>> uses;
  static const std::regex shell_re(R"(\$\{?(PRISTI_[A-Z0-9_]+))");
  for (const auto& [rel, file] : ctx.files()) {
    if (file.is_shell) {
      for (size_t i = 0; i < file.raw_lines.size(); ++i) {
        const std::string& line = file.raw_lines[i];
        for (auto it = std::sregex_iterator(line.begin(), line.end(), shell_re);
             it != std::sregex_iterator(); ++it) {
          uses[(*it)[1].str()].push_back({rel, static_cast<int>(i + 1), false});
        }
      }
      continue;
    }
    const std::vector<Token>& tokens = file.tokens;
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      bool raw = t.text == "getenv";
      bool wrapped = t.text == "GetEnvOr" || t.text == "GetEnvIntOr";
      if (!raw && !wrapped) continue;
      if (!IsPunct(tokens[i + 1], "(")) continue;
      const Token& arg = tokens[i + 2];
      if (arg.kind != TokenKind::kString) continue;
      if (arg.text.rfind("PRISTI_", 0) != 0) continue;
      uses[arg.text].push_back({rel, t.line, raw});
    }
  }

  // No env machinery in this tree at all: nothing to enforce. (Synthetic
  // fixture repos without an env.h stay clean as long as they read no
  // PRISTI_* knobs.)
  const SourceFile* env_header = ctx.Find(kRegistryRel);
  if (env_header == nullptr) {
    if (!uses.empty()) {
      const auto& [name, sites] = *uses.begin();
      violations.push_back(
          {sites.front().file, sites.front().line, "env-registry",
           "env knob " + name + " is read but " + kRegistryRel +
               " (the knob registry) does not exist"});
    }
    return violations;
  }

  bool markers_found = false;
  std::map<std::string, int> declared = ParseRegistry(*env_header,
                                                      &markers_found);
  if (!markers_found) {
    violations.push_back(
        {kRegistryRel, 0, "env-registry",
         std::string("registry markers missing: document knobs between `// ") +
             kBeginMarker + "` and `// " + kEndMarker + "`"});
    return violations;
  }

  for (const auto& [name, sites] : uses) {
    for (const KnobUse& use : sites) {
      if (declared.count(name) == 0) {
        violations.push_back(
            {use.file, use.line, "env-registry",
             "env knob " + name + " is not declared in the " + kRegistryRel +
                 " registry block: document it there (name, default, "
                 "effect) or rename the read"});
      }
      if (use.raw_getenv && use.file != kRegistryRel) {
        violations.push_back(
            {use.file, use.line, "env-registry",
             "raw std::getenv(\"" + name +
                 "\"): route PRISTI_* reads through GetEnvOr/GetEnvIntOr "
                 "(common/env.h) so defaults and parsing stay uniform"});
      }
    }
  }

  for (const auto& [name, line] : declared) {
    if (uses.count(name) == 0) {
      violations.push_back(
          {kRegistryRel, line, "env-registry",
           "documented env knob " + name +
               " is never read in src/, tools/, tests/ or bench/: remove "
               "the dead documentation or wire the knob up"});
    }
  }

  return violations;
}

}  // namespace pristi::analysis
