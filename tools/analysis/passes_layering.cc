// layering: enforces the module DAG declared in tools/analysis/layers.manifest
// over the real include graph of src/.
//
// The manifest is the single source of truth for which module may depend on
// which; this pass reports
//   * a missing or malformed manifest (the rule must not silently disable),
//   * cycles in the declared relation itself,
//   * modules present under src/ but undeclared, and declared but absent,
//   * forbidden include edges (file:line of the offending #include), and
//   * include cycles among src/ files (legal C++ with guards, but always a
//     layering smell — a cycle cannot be assigned to any DAG).

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis.h"
#include "include_graph.h"
#include "manifest.h"

namespace pristi::analysis {

namespace {

std::string JoinCycle(const std::vector<std::string>& cycle) {
  std::ostringstream out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) out << " -> ";
    out << cycle[i];
  }
  return out.str();
}

}  // namespace

std::vector<Violation> CheckLayering(const RepoContext& ctx) {
  std::vector<Violation> violations;
  if (ctx.FilesUnder("src/").empty()) return violations;

  const SourceFile* manifest_file = ctx.Find(kManifestRelPath);
  std::string manifest_text;
  if (manifest_file != nullptr) {
    manifest_text = manifest_file->raw;
  } else {
    // The manifest is not a .cc/.h/.sh file, so it is not in the context;
    // read it directly.
    std::filesystem::path path =
        std::filesystem::path(ctx.root()) / kManifestRelPath;
    if (std::filesystem::exists(path)) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      manifest_text = buf.str();
    } else {
      violations.push_back(
          {kManifestRelPath, 0, "layering",
           "layering manifest is missing: declare the module DAG "
           "([layers] section) so include edges can be checked"});
      return violations;
    }
  }

  LayerManifest manifest = ParseLayerManifest(manifest_text);
  for (const std::string& error : manifest.parse_errors) {
    violations.push_back({kManifestRelPath, 0, "layering",
                          "manifest parse error: " + error});
  }

  std::vector<std::string> cyclic = ManifestCycleMembers(manifest);
  if (!cyclic.empty()) {
    std::string members;
    for (const std::string& m : cyclic) {
      if (!members.empty()) members += ", ";
      members += m;
    }
    violations.push_back(
        {kManifestRelPath, 0, "layering",
         "declared layer relation is not a DAG; cycle members: " + members});
  }

  // Modules actually present under src/ (directories directly below src/
  // that contain at least one analyzed file).
  std::set<std::string> present;
  for (const SourceFile* file : ctx.FilesUnder("src/")) {
    std::string module = ModuleOf(file->rel);
    if (!module.empty()) present.insert(module);
  }
  for (const std::string& module : present) {
    if (manifest.layers.count(module) == 0) {
      violations.push_back(
          {kManifestRelPath, 0, "layering",
           "module `" + module +
               "` exists under src/ but is not declared in [layers]"});
    }
  }
  for (const auto& [module, deps] : manifest.layers) {
    (void)deps;
    if (present.count(module) == 0) {
      violations.push_back({kManifestRelPath, 0, "layering",
                            "module `" + module +
                                "` is declared in [layers] but has no files "
                                "under src/"});
    }
  }

  // Forbidden edges over the real include graph.
  IncludeGraph graph = BuildIncludeGraph(ctx);
  for (const IncludeEdge& edge : graph.edges()) {
    std::string from = ModuleOf(edge.from);
    std::string to = ModuleOf(edge.to);
    if (from.empty() || to.empty() || from == to) continue;
    auto it = manifest.layers.find(from);
    if (it == manifest.layers.end()) continue;  // undeclared: reported above
    if (it->second.count(to) > 0) continue;
    violations.push_back(
        {edge.from, edge.line, "layering",
         "forbidden include edge: module `" + from + "` may not depend on `" +
             to + "` (" + edge.to + "); allowed deps are listed in " +
             kManifestRelPath});
  }

  // Include cycles among src/ files.
  for (const std::vector<std::string>& cycle : graph.FindCycles("src/")) {
    violations.push_back({cycle.front(), 0, "layering",
                          "include cycle: " + JoinCycle(cycle)});
  }

  return violations;
}

}  // namespace pristi::analysis
