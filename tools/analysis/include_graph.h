#ifndef PRISTI_TOOLS_ANALYSIS_INCLUDE_GRAPH_H_
#define PRISTI_TOOLS_ANALYSIS_INCLUDE_GRAPH_H_

// Repo-wide include graph for the pristi_analyze engine.
//
// Nodes are repo-relative paths of files loaded into the RepoContext.
// Quoted includes are resolved the way the build resolves them: first
// relative to the including file's directory, then against src/ (the
// build adds -I src), then against the repo root. Angled includes are
// system headers and are never resolved (they are not graph edges).
// A quoted include that resolves to nothing known (e.g. a generated or
// third-party header) is silently skipped — the layering pass only judges
// edges between files it can see.

#include <map>
#include <string>
#include <vector>

#include "analysis.h"

namespace pristi::analysis {

struct IncludeEdge {
  std::string from;  // repo-relative path of the including file
  std::string to;    // repo-relative path of the resolved header
  int line = 0;      // line of the #include directive in `from`
};

class IncludeGraph {
 public:
  const std::vector<IncludeEdge>& edges() const { return edges_; }
  // Outgoing edges of one file (empty vector when the file has none).
  const std::vector<IncludeEdge>& EdgesFrom(const std::string& rel) const;

  // Every include cycle among files whose path starts with `prefix`,
  // reported as the chain of repo-relative paths ["a", "b", ..., "a"].
  // Each cycle is reported once (from its lexicographically smallest
  // member); an acyclic graph yields an empty result.
  std::vector<std::vector<std::string>> FindCycles(
      const std::string& prefix) const;

  void AddEdge(IncludeEdge edge);

 private:
  std::vector<IncludeEdge> edges_;
  std::map<std::string, std::vector<IncludeEdge>> by_source_;
};

// Resolves one quoted include `path` written in file `from_rel` against the
// context; returns the repo-relative path of the target, or "" when the
// include does not resolve to a loaded file.
std::string ResolveInclude(const RepoContext& ctx, const std::string& from_rel,
                           const std::string& path);

// Builds the graph over every C++ file in the context.
IncludeGraph BuildIncludeGraph(const RepoContext& ctx);

// Module of a repo-relative path under src/: "src/tensor/kernels/sgemm.cc"
// -> "tensor". Empty string for paths outside src/.
std::string ModuleOf(const std::string& rel);

}  // namespace pristi::analysis

#endif  // PRISTI_TOOLS_ANALYSIS_INCLUDE_GRAPH_H_
