// pristi_cli — command-line driver for the library, the entry point a
// downstream user scripts against.
//
//   pristi_cli generate --preset=aqi --nodes=36 --steps=2160 --out=data.bin
//   pristi_cli train    --data=data.bin --pattern=failure --epochs=60
//       ... --model-out=pristi.ckpt
//   pristi_cli impute   --data=data.bin --pattern=failure
//       ... --model=pristi.ckpt --out=imputed.csv
//   pristi_cli evaluate --data=data.bin --pattern=point --method=pristi
//
// All subcommands accept --seed, --window, --stride; train/impute share the
// model knobs (--channels --heads --layers --virtual-nodes --steps-diffusion).
// `evaluate --method=` also accepts the classic baselines (mean, da, knn,
// lin-itp, kf, mice, var, trmf, batf, stmvl, brits, grin, csdi).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "baselines/factorization.h"
#include "baselines/kalman.h"
#include "baselines/regression.h"
#include "baselines/rnn.h"
#include "baselines/simple.h"
#include "baselines/stmvl.h"
#include "common/env.h"
#include "common/flags.h"
#include "common/logging.h"
#include "data/io.h"
#include "eval/harness.h"
#include "serialize/checkpoint.h"
#include "serialize/format.h"

namespace pristi {
namespace {

// Preset name -> generator config; shared by `generate` and the on-the-fly
// fallback of every data-consuming subcommand.
data::SyntheticConfig PresetConfig(const std::string& preset, int64_t nodes,
                                   int64_t steps) {
  if (preset == "aqi") return data::Aqi36LikeConfig(nodes, steps);
  if (preset == "metr") return data::MetrLaLikeConfig(nodes, steps);
  if (preset == "pems") return data::PemsBayLikeConfig(nodes, steps);
  if (preset == "large") return data::LargeGraphLikeConfig(nodes, steps);
  PRISTI_LOG_FATAL << "unknown --preset " << preset
                   << " (aqi|metr|pems|large)";
  return {};
}

// Per-preset default sizes: the large preset exists to exercise the node
// axis, the classic three default to quick CI-scale shapes.
int64_t DefaultPresetNodes(const std::string& preset) {
  return preset == "large" ? 1024 : 16;
}
int64_t DefaultPresetSteps(const std::string& preset) {
  return preset == "large" ? 384 : 720;
}

data::SpatioTemporalDataset LoadOrGenerate(const Flags& flags, Rng& rng) {
  std::string path = flags.GetString("data");
  if (!path.empty()) {
    auto dataset = data::ReadBinaryDataset(path);
    CHECK_GT(dataset.num_steps, 0) << "failed to load " << path;
    return dataset;
  }
  // No --data: generate in place. --gen-steps (not --steps, which already
  // means kept reverse steps on these subcommands) controls the length.
  std::string preset = flags.GetString("preset", "aqi");
  int64_t nodes = flags.GetInt("nodes", DefaultPresetNodes(preset));
  int64_t steps = flags.GetInt("gen-steps", DefaultPresetSteps(preset));
  PRISTI_LOG_WARNING << "--data not given; generating a '" << preset
                     << "' dataset (" << nodes << " nodes x " << steps
                     << " steps)";
  return data::GenerateSynthetic(PresetConfig(preset, nodes, steps), rng);
}

data::MissingPattern PatternFromFlag(const std::string& name) {
  if (name == "point") return data::MissingPattern::kPoint;
  if (name == "block") return data::MissingPattern::kBlock;
  if (name == "failure" || name == "simulated_failure") {
    return data::MissingPattern::kSimulatedFailure;
  }
  PRISTI_LOG_FATAL << "unknown --pattern " << name
                   << " (point|block|failure)";
  return data::MissingPattern::kPoint;
}

core::PristiConfig ModelConfig(const Flags& flags,
                               const data::ImputationTask& task) {
  core::PristiConfig config;
  config.num_nodes = task.dataset.num_nodes;
  config.window_len = task.window_len;
  config.channels = flags.GetInt("channels", 16);
  config.heads = flags.GetInt("heads", 4);
  config.layers = flags.GetInt("layers", 2);
  config.virtual_nodes = flags.GetInt(
      "virtual-nodes", std::min<int64_t>(8, task.dataset.num_nodes / 2));
  config.diffusion_emb_dim = flags.GetInt("diff-emb", 32);
  config.temporal_emb_dim = flags.GetInt("temporal-emb", 32);
  config.node_emb_dim = flags.GetInt("node-emb", 16);
  config.adaptive_rank = flags.GetInt("adaptive-rank", 6);
  // CSR message passing: explicitly --sparse-mpnn=1/0, else on by default
  // once the graph is big enough that the thresholded adjacency is sparse
  // in practice (the large preset's whole point).
  config.use_sparse_mpnn =
      flags.GetInt("sparse-mpnn", task.dataset.num_nodes >= 256 ? 1 : 0) != 0;
  return config;
}

eval::DiffusionRunOptions RunOptions(const Flags& flags,
                                     const data::ImputationTask& task) {
  eval::DiffusionRunOptions options;
  options.diffusion_steps = flags.GetInt("steps-diffusion", 30);
  options.train.epochs = flags.GetInt("epochs", 40);
  options.train.batch_size = flags.GetInt("batch", 8);
  options.train.lr = static_cast<float>(flags.GetDouble("lr", 2e-3));
  options.train.high_t_bias = flags.GetDouble("high-t-bias", 0.5);
  options.impute.num_samples = flags.GetInt("samples", 15);
  // --sampler=ddpm|ddim|plms, --steps=K kept reverse steps (0 = full
  // schedule). The default (ddim, 10 of 30) is the old stride-3 DDIM.
  std::string sampler = flags.GetString("sampler", "ddim");
  if (!diffusion::ParseSamplerKind(sampler, &options.impute.sampler)) {
    PRISTI_LOG_FATAL << "unknown --sampler " << sampler
                     << " (ddpm|ddim|plms)";
  }
  options.impute.num_inference_steps = flags.GetInt("steps", 10);
  options.train.ema_decay =
      static_cast<float>(flags.GetDouble("ema-decay", 0.0));
  // Shard-parallel training (diffusion/sharded_train.h): --shards=K, env
  // fallback PRISTI_TRAIN_SHARDS, 0 = classic single-stream loop.
  options.train.num_shards =
      flags.GetInt("shards", GetEnvIntOr("PRISTI_TRAIN_SHARDS", 0));
  options.train.checkpoint_dir = flags.GetString("checkpoint-dir");
  options.train.checkpoint_every = flags.GetInt("checkpoint-every", 1);
  options.train.checkpoint_keep_last = flags.GetInt("keep-last", 3);
  options.train.resume_from = flags.GetString("resume");
  switch (task.pattern) {
    case data::MissingPattern::kPoint:
      options.train.mask_strategy = data::MaskStrategy::kPoint;
      break;
    case data::MissingPattern::kBlock:
      options.train.mask_strategy = data::MaskStrategy::kHybrid;
      break;
    case data::MissingPattern::kSimulatedFailure:
      options.train.mask_strategy = data::MaskStrategy::kHybridHistorical;
      break;
  }
  return options;
}

data::ImputationTask MakeTaskFromFlags(const Flags& flags, Rng& rng) {
  auto dataset = LoadOrGenerate(flags, rng);
  data::TaskOptions options;
  options.window_len = flags.GetInt("window", 16);
  options.stride = flags.GetInt("stride", 4);
  return data::MakeTask(std::move(dataset),
                        PatternFromFlag(flags.GetString("pattern", "point")),
                        options, rng);
}

int CmdGenerate(const Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  std::string preset = flags.GetString("preset", "aqi");
  int64_t nodes = flags.GetInt("nodes", DefaultPresetNodes(preset));
  int64_t steps = flags.GetInt("steps", DefaultPresetSteps(preset));
  auto dataset =
      data::GenerateSynthetic(PresetConfig(preset, nodes, steps), rng);
  std::string out = flags.GetString("out", "dataset.bin");
  CHECK(data::WriteBinaryDataset(dataset, out)) << "write failed: " << out;
  std::printf("wrote %s: %lld nodes x %lld steps (%s)\n", out.c_str(),
              static_cast<long long>(dataset.num_nodes),
              static_cast<long long>(dataset.num_steps),
              dataset.name.c_str());
  std::string csv = flags.GetString("csv");
  if (!csv.empty()) {
    CHECK(data::WriteCsvDataset(dataset, csv, flags.GetString("coords")));
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}

int CmdTrain(const Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  data::ImputationTask task = MakeTaskFromFlags(flags, rng);
  core::PristiConfig config = ModelConfig(flags, task);
  eval::DiffusionRunOptions options = RunOptions(flags, task);
  options.train.on_epoch = [](int64_t epoch, double loss) {
    if (epoch % 5 == 0) {
      std::printf("epoch %3lld  loss %.4f\n", static_cast<long long>(epoch),
                  loss);
      std::fflush(stdout);
    }
  };
  auto model = std::make_shared<core::PristiModel>(
      config, task.dataset.graph.adjacency, rng);
  auto schedule = diffusion::NoiseSchedule::Quadratic(
      options.diffusion_steps, options.beta_1, options.beta_end);
  std::printf("training PriSTI (%lld parameters)...\n",
              static_cast<long long>(model->ParameterCount()));
  diffusion::TrainDiffusionModel(model.get(), schedule, task, options.train,
                                 rng);
  std::string out = flags.GetString("model-out", "pristi.ckpt");
  serialize::Status status = serialize::SaveModuleCheckpointFile(*model, out);
  CHECK(status.ok()) << "checkpoint write failed: " << status.ToString();
  std::printf("saved checkpoint to %s\n", out.c_str());
  return 0;
}

int CmdImpute(const Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  data::ImputationTask task = MakeTaskFromFlags(flags, rng);
  core::PristiConfig config = ModelConfig(flags, task);
  eval::DiffusionRunOptions options = RunOptions(flags, task);
  auto model = std::make_shared<core::PristiModel>(
      config, task.dataset.graph.adjacency, rng);
  std::string ckpt = flags.GetString("model");
  if (!ckpt.empty()) {
    serialize::Status status =
        serialize::LoadModuleCheckpointFileAuto(*model, ckpt);
    CHECK(status.ok()) << "cannot load " << ckpt << ": "
                       << status.ToString();
    std::printf("loaded checkpoint %s\n", ckpt.c_str());
  } else {
    PRISTI_LOG_WARNING << "--model not given; imputing with an untrained "
                          "model (use `train` first)";
  }
  eval::DiffusionImputerAdapter adapter("PriSTI", model, options);
  tensor::Tensor completed = eval::ImputeSeries(&adapter, task, rng);
  // Write the completed series (no missing cells) as CSV.
  data::SpatioTemporalDataset out_dataset = task.dataset;
  out_dataset.values = completed;
  out_dataset.observed_mask =
      tensor::Tensor::Ones(completed.shape());
  std::string out = flags.GetString("out", "imputed.csv");
  CHECK(data::WriteCsvDataset(out_dataset, out));
  std::printf("wrote completed series to %s\n", out.c_str());
  return 0;
}

// `save`: writes a freshly initialized (untrained) model in the versioned
// checkpoint format — a quick way to materialize a checkpoint for a given
// architecture/seed without a training run.
int CmdSave(const Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  data::ImputationTask task = MakeTaskFromFlags(flags, rng);
  core::PristiConfig config = ModelConfig(flags, task);
  core::PristiModel model(config, task.dataset.graph.adjacency, rng);
  std::string out = flags.GetString("out", "pristi.ckpt");
  serialize::Status status = serialize::SaveModuleCheckpointFile(model, out);
  if (!status.ok()) {
    std::printf("save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %lld parameters to %s\n",
              static_cast<long long>(model.ParameterCount()), out.c_str());
  return 0;
}

// `load`: validates that a checkpoint (new format or legacy) restores into
// the model architecture described by the flags; with --out it re-saves in
// the current format, which migrates legacy checkpoints.
int CmdLoad(const Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  data::ImputationTask task = MakeTaskFromFlags(flags, rng);
  core::PristiConfig config = ModelConfig(flags, task);
  core::PristiModel model(config, task.dataset.graph.adjacency, rng);
  std::string path = flags.GetString("model");
  if (path.empty()) {
    std::printf("load: --model=<checkpoint> is required\n");
    return 2;
  }
  serialize::Status status =
      serialize::LoadModuleCheckpointFileAuto(model, path);
  if (!status.ok()) {
    std::printf("load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld parameters from %s\n",
              static_cast<long long>(model.ParameterCount()), path.c_str());
  std::string out = flags.GetString("out");
  if (!out.empty()) {
    status = serialize::SaveModuleCheckpointFile(model, out);
    if (!status.ok()) {
      std::printf("re-save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("re-saved in format v%u to %s\n", serialize::kFormatVersion,
                out.c_str());
  }
  return 0;
}

// `inspect`: dumps the container header and full record table (offsets,
// sizes, types, per-record checksum verdicts, tensor shapes). Parses as far
// as the structure allows so a damaged file still shows its intact prefix.
int CmdInspect(const Flags& flags) {
  std::string path = flags.GetString("file");
  if (path.empty()) {
    std::printf("inspect: --file=<checkpoint> is required\n");
    return 2;
  }
  serialize::CheckpointView view;
  serialize::Status status =
      serialize::ParseCheckpointFile(path, &view, /*keep_corrupt=*/true);
  if (view.records().empty() && !status.ok()) {
    std::printf("%s: %s\n", path.c_str(), status.ToString().c_str());
    return 1;
  }
  std::printf("%s: checkpoint format v%u, %zu records\n", path.c_str(),
              view.format_version(), view.records().size());
  std::printf("%10s %10s  %-8s %-4s name\n", "offset", "size", "type", "crc");
  for (const serialize::Record& record : view.records()) {
    std::string detail;
    if (record.tag == serialize::RecordTag::kTensor && record.crc_ok) {
      tensor::Tensor t;
      if (serialize::DecodeTensorPayload(record.payload, &t).ok()) {
        detail = "  shape " + tensor::ShapeToString(t.shape());
      }
    }
    std::printf("%10llu %10llu  %-8s %-4s %s%s\n",
                static_cast<unsigned long long>(record.offset),
                static_cast<unsigned long long>(record.byte_size),
                serialize::RecordTagName(record.tag),
                record.crc_ok ? "ok" : "BAD", record.name.c_str(),
                detail.c_str());
  }
  if (!status.ok()) {
    std::printf("damage detected: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

std::unique_ptr<baselines::Imputer> MakeBaseline(
    const std::string& method, const Flags& flags,
    const data::ImputationTask& task, Rng& rng) {
  baselines::RecurrentOptions rnn_options;
  rnn_options.epochs = flags.GetInt("epochs", 15);
  if (method == "mean") return std::make_unique<baselines::MeanImputer>();
  if (method == "da") {
    return std::make_unique<baselines::DailyAverageImputer>();
  }
  if (method == "knn") return std::make_unique<baselines::KnnImputer>();
  if (method == "lin-itp") {
    return std::make_unique<baselines::LinearInterpImputer>();
  }
  if (method == "kf") return std::make_unique<baselines::KalmanImputer>();
  if (method == "mice") return std::make_unique<baselines::MiceImputer>();
  if (method == "var") return std::make_unique<baselines::VarImputer>();
  if (method == "trmf") return std::make_unique<baselines::TrmfImputer>();
  if (method == "batf") return std::make_unique<baselines::BatfImputer>();
  if (method == "stmvl") return std::make_unique<baselines::StmvlImputer>();
  if (method == "brits") {
    return std::make_unique<baselines::BritsImputer>(task.dataset.num_nodes,
                                                     rnn_options, rng);
  }
  if (method == "grin") {
    return std::make_unique<baselines::GrinImputer>(
        task.dataset.num_nodes, task.dataset.graph.adjacency, rnn_options,
        rng);
  }
  return nullptr;
}

int CmdEvaluate(const Flags& flags) {
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  data::ImputationTask task = MakeTaskFromFlags(flags, rng);
  std::string method = flags.GetString("method", "pristi");
  std::unique_ptr<baselines::Imputer> imputer;
  if (method == "pristi" || method == "csdi") {
    eval::DiffusionRunOptions options = RunOptions(flags, task);
    if (method == "pristi") {
      imputer = eval::MakePristiImputer(ModelConfig(flags, task),
                                        task.dataset.graph.adjacency,
                                        options, rng);
    } else {
      baselines::CsdiConfig config;
      config.num_nodes = task.dataset.num_nodes;
      config.window_len = task.window_len;
      config.channels = flags.GetInt("channels", 16);
      config.heads = flags.GetInt("heads", 4);
      config.layers = flags.GetInt("layers", 2);
      imputer = eval::MakeCsdiImputer(config, options, rng);
    }
  } else {
    imputer = MakeBaseline(method, flags, task, rng);
    CHECK(imputer != nullptr) << "unknown --method " << method;
  }
  eval::EvaluateOptions eval_options;
  eval_options.crps_samples = flags.GetInt("crps-samples", 0);
  eval::MethodResult result =
      eval::EvaluateImputer(imputer.get(), task, rng, eval_options);
  std::printf("%s on %s/%s: MAE %.4f  MSE %.4f", result.method.c_str(),
              task.dataset.name.c_str(),
              data::MissingPatternName(task.pattern), result.mae,
              result.mse);
  if (eval_options.crps_samples > 0) {
    std::printf("  CRPS %.4f", result.crps);
  }
  std::printf("  (fit %.1fs, impute %.1fs)\n", result.fit_seconds,
              result.impute_seconds);
  return 0;
}

int Usage() {
  std::printf(
      "usage: pristi_cli "
      "<generate|train|impute|evaluate|save|load|inspect> [--flags]\n"
      "  generate --preset=aqi|metr|pems|large --nodes=N --steps=T "
      "--out=F.bin\n"
      "  train    --data=F.bin --pattern=point|block|failure --epochs=E\n"
      "           --model-out=F.ckpt [--shards=K] [--checkpoint-dir=D]\n"
      "           [--checkpoint-every=K] [--keep-last=K] [--ema-decay=D]\n"
      "           [--resume=D/ckpt-N.ckpt] [--sparse-mpnn=0|1]\n"
      "           (without --data: --preset --nodes --gen-steps generate\n"
      "           in place; --shards=K trains shard-parallel, bit-identical\n"
      "           for any K, env fallback PRISTI_TRAIN_SHARDS)\n"
      "  impute   --data=F.bin --pattern=... --model=F.ckpt --out=F.csv\n"
      "           [--sampler=ddpm|ddim|plms] [--steps=K]  (K kept reverse\n"
      "           steps, 0 = full schedule; default ddim, 10)\n"
      "  evaluate --data=F.bin --pattern=... --method=pristi|csdi|mean|...\n"
      "  save     --out=F.ckpt [model flags]    write a fresh model\n"
      "  load     --model=F.ckpt [--out=G.ckpt] validate / migrate\n"
      "  inspect  --file=F.ckpt                 dump the record table\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags = Flags::Parse(argc - 1, argv + 1);
  int status;
  if (command == "generate") {
    status = CmdGenerate(flags);
  } else if (command == "train") {
    status = CmdTrain(flags);
  } else if (command == "impute") {
    status = CmdImpute(flags);
  } else if (command == "evaluate") {
    status = CmdEvaluate(flags);
  } else if (command == "save") {
    status = CmdSave(flags);
  } else if (command == "load") {
    status = CmdLoad(flags);
  } else if (command == "inspect") {
    status = CmdInspect(flags);
  } else {
    return Usage();
  }
  for (const std::string& key : flags.UnqueriedKeys()) {
    PRISTI_LOG_WARNING << "unused flag --" << key;
  }
  return status;
}

}  // namespace
}  // namespace pristi

int main(int argc, char** argv) { return pristi::Main(argc, argv); }
