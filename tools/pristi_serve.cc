// pristi_serve — long-running imputation daemon over serve::ServeSession.
//
//   pristi_serve --data=data.bin --pattern=failure --model=pristi.ckpt
//       [--samples=15 --sampler=ddim --steps=10]
//       [--max-batch=8 --max-wait-ms=5 --queue-cap=64]
//
// Reads line commands from stdin (a scriptable stand-in for an RPC front
// end) and answers on stdout:
//
//   impute <start> <seed> [sampler [steps]]
//                           submit the (N, L) window starting at step
//                           <start>; responses are collected with `wait`.
//                           Back-to-back submits coalesce into one model
//                           call (watch the batch= field). The optional
//                           sampler (ddpm|ddim|plms) and kept-step count
//                           override the session defaults per request; an
//                           unknown sampler name is rejected as an invalid
//                           request without submitting.
//   wait                    block until every outstanding request resolves,
//                           print one line per request in submission order
//   reload <path>           hot-swap weights from a checkpoint; a damaged
//                           file is reported and the old weights keep
//                           serving
//   stats                   session counters
//   quit                    drain and exit (EOF does the same)
//
// Batching knobs default from the PRISTI_SERVE_* environment registry
// (src/common/env.h); flags override.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/flags.h"
#include "common/logging.h"
#include "data/io.h"
#include "data/windows.h"
#include "diffusion/schedule.h"
#include "pristi/pristi_model.h"
#include "serialize/checkpoint.h"
#include "serve/session.h"

namespace pristi {
namespace {

data::MissingPattern PatternFromFlag(const std::string& name) {
  if (name == "point") return data::MissingPattern::kPoint;
  if (name == "block") return data::MissingPattern::kBlock;
  if (name == "failure" || name == "simulated_failure") {
    return data::MissingPattern::kSimulatedFailure;
  }
  PRISTI_LOG_FATAL << "unknown --pattern " << name
                   << " (point|block|failure)";
  return data::MissingPattern::kPoint;
}

struct Outstanding {
  int64_t id = 0;
  int64_t start = 0;
  uint64_t seed = 0;
  std::future<serve::ImputeResponse> future;
};

void PrintResponse(const Outstanding& entry, serve::ImputeResponse response) {
  if (!response.status.ok()) {
    std::printf("request %lld: ERROR %s%s\n",
                static_cast<long long>(entry.id),
                response.status.ToString().c_str(),
                response.status.retryable() ? " (retryable)" : "");
    return;
  }
  const tensor::Tensor& median = response.result.median;
  double mean = 0.0;
  const float* m = median.data();
  for (int64_t i = 0; i < median.numel(); ++i) mean += m[i];
  mean /= static_cast<double>(median.numel());
  std::printf(
      "request %lld: ok start=%lld seed=%llu batch=%lld queue_us=%lld "
      "total_us=%lld median_mean=%.4f\n",
      static_cast<long long>(entry.id), static_cast<long long>(entry.start),
      static_cast<unsigned long long>(entry.seed),
      static_cast<long long>(response.batch_size),
      static_cast<long long>(response.queue_nanos / 1000),
      static_cast<long long>(response.total_nanos / 1000), mean);
}

void PrintStats(const serve::ServeSession& session) {
  serve::ServeSession::Stats stats = session.stats();
  std::printf(
      "admitted=%lld completed=%lld batches=%lld max_batch=%lld "
      "rejected_full=%lld rejected_invalid=%lld cancelled=%lld "
      "reloads_applied=%lld reloads_rejected=%lld\n",
      static_cast<long long>(stats.admitted),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.max_batch_observed),
      static_cast<long long>(stats.rejected_full),
      static_cast<long long>(stats.rejected_invalid),
      static_cast<long long>(stats.cancelled),
      static_cast<long long>(stats.reloads_applied),
      static_cast<long long>(stats.reloads_rejected));
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));

  std::string data_path = flags.GetString("data");
  data::SpatioTemporalDataset dataset;
  if (!data_path.empty()) {
    dataset = data::ReadBinaryDataset(data_path);
    CHECK_GT(dataset.num_steps, 0) << "failed to load " << data_path;
  } else {
    PRISTI_LOG_WARNING << "--data not given; generating a default dataset";
    dataset = data::GenerateSynthetic(data::Aqi36LikeConfig(16, 720), rng);
  }
  data::TaskOptions task_options;
  task_options.window_len = flags.GetInt("window", 16);
  task_options.stride = flags.GetInt("stride", 4);
  data::ImputationTask task =
      data::MakeTask(std::move(dataset),
                     PatternFromFlag(flags.GetString("pattern", "point")),
                     task_options, rng);

  core::PristiConfig model_config;
  model_config.num_nodes = task.dataset.num_nodes;
  model_config.window_len = task.window_len;
  model_config.channels = flags.GetInt("channels", 16);
  model_config.heads = flags.GetInt("heads", 4);
  model_config.layers = flags.GetInt("layers", 2);
  model_config.virtual_nodes = flags.GetInt(
      "virtual-nodes", std::min<int64_t>(8, task.dataset.num_nodes / 2));
  model_config.diffusion_emb_dim = flags.GetInt("diff-emb", 32);
  model_config.temporal_emb_dim = flags.GetInt("temporal-emb", 32);
  model_config.node_emb_dim = flags.GetInt("node-emb", 16);
  model_config.adaptive_rank = flags.GetInt("adaptive-rank", 6);
  tensor::Tensor adjacency = task.dataset.graph.adjacency;

  auto model = std::make_shared<core::PristiModel>(model_config, adjacency,
                                                   rng);
  std::string ckpt = flags.GetString("model");
  if (!ckpt.empty()) {
    Status status = serialize::LoadModuleCheckpointFileAuto(*model, ckpt);
    CHECK(status.ok()) << "cannot load " << ckpt << ": " << status.ToString();
    std::printf("loaded checkpoint %s\n", ckpt.c_str());
  } else {
    PRISTI_LOG_WARNING << "--model not given; serving an untrained model";
  }

  serve::ServeConfig config = serve::ServeConfig::FromEnv();
  config.num_nodes = task.dataset.num_nodes;
  config.window_len = task.window_len;
  config.max_batch = flags.GetInt("max-batch", config.max_batch);
  config.max_wait_nanos =
      flags.GetInt("max-wait-ms", config.max_wait_nanos / 1'000'000) *
      1'000'000;
  config.queue_capacity = flags.GetInt("queue-cap", config.queue_capacity);
  config.impute.num_samples = flags.GetInt("samples", 15);
  // --sampler/--steps override the PRISTI_SERVE_SAMPLER / PRISTI_SERVE_STEPS
  // env defaults; the built-in default (ddim, 10 of 30) is the old
  // stride-3 DDIM.
  std::string env_sampler = GetEnvOr("PRISTI_SERVE_SAMPLER", "");
  std::string sampler_flag =
      flags.GetString("sampler", env_sampler.empty() ? "ddim" : "");
  if (!sampler_flag.empty()) {
    Status sampler_status =
        serve::ParseSamplerName(sampler_flag, &config.impute.sampler);
    CHECK(sampler_status.ok()) << "--sampler: " << sampler_status.ToString();
  }
  config.impute.num_inference_steps =
      flags.GetInt("steps", GetEnvIntOr("PRISTI_SERVE_STEPS", 10));

  auto schedule = diffusion::NoiseSchedule::Quadratic(
      flags.GetInt("steps-diffusion", 30),
      static_cast<float>(flags.GetDouble("beta-1", 1e-4)),
      static_cast<float>(flags.GetDouble("beta-end", 0.2)));

  // The staging factory builds a blank same-architecture model for
  // ReloadCheckpoint to restore into; the seed is irrelevant because the
  // load overwrites every parameter.
  serve::ModelFactory factory = [model_config, adjacency]() {
    Rng staging_rng(1);
    auto staging = std::make_shared<core::PristiModel>(model_config,
                                                       adjacency,
                                                       staging_rng);
    return serve::ModelSlot{staging, staging.get()};
  };

  serve::ServeSession session(serve::ModelSlot{model, model.get()},
                              std::move(factory), schedule, config);
  for (const std::string& key : flags.UnqueriedKeys()) {
    PRISTI_LOG_WARNING << "unused flag --" << key;
  }
  std::printf(
      "serving %s: N=%lld L=%lld max_batch=%lld max_wait_ms=%lld "
      "queue_cap=%lld\n",
      task.dataset.name.c_str(),
      static_cast<long long>(task.dataset.num_nodes),
      static_cast<long long>(task.window_len),
      static_cast<long long>(config.max_batch),
      static_cast<long long>(config.max_wait_nanos / 1'000'000),
      static_cast<long long>(config.queue_capacity));
  std::fflush(stdout);

  std::vector<Outstanding> outstanding;
  int64_t next_id = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream tokens(line);
    std::string command;
    tokens >> command;
    if (command.empty()) continue;
    if (command == "quit") break;
    if (command == "impute") {
      int64_t start = 0;
      uint64_t seed = 0;
      tokens >> start >> seed;
      std::string sampler_name;
      int64_t request_steps = -1;
      bool has_steps = false;
      if (tokens >> sampler_name) {
        has_steps = static_cast<bool>(tokens >> request_steps);
      }
      diffusion::SamplerKind request_sampler;
      if (!sampler_name.empty()) {
        Status sampler_status =
            serve::ParseSamplerName(sampler_name, &request_sampler);
        if (!sampler_status.ok()) {
          std::printf("impute: REJECTED %s\n",
                      sampler_status.ToString().c_str());
          std::fflush(stdout);
          continue;
        }
      }
      if (start < 0 || start + task.window_len > task.dataset.num_steps) {
        std::printf("impute: start %lld out of range [0, %lld]\n",
                    static_cast<long long>(start),
                    static_cast<long long>(task.dataset.num_steps -
                                           task.window_len));
      } else {
        serve::ImputeRequest request;
        request.window = data::ExtractWindow(task, start);
        request.seed = seed;
        if (!sampler_name.empty()) request.sampler = request_sampler;
        if (has_steps) request.num_inference_steps = request_steps;
        Outstanding entry;
        entry.id = next_id++;
        entry.start = start;
        entry.seed = seed;
        entry.future = session.Submit(std::move(request));
        std::printf("submitted request %lld\n",
                    static_cast<long long>(entry.id));
        outstanding.push_back(std::move(entry));
      }
    } else if (command == "wait") {
      for (Outstanding& entry : outstanding) {
        PrintResponse(entry, entry.future.get());
      }
      outstanding.clear();
    } else if (command == "reload") {
      std::string path;
      tokens >> path;
      Status status = session.ReloadCheckpoint(path);
      if (status.ok()) {
        std::printf("reload staged: %s\n", path.c_str());
      } else {
        std::printf("reload REJECTED (old model keeps serving): %s\n",
                    status.ToString().c_str());
      }
    } else if (command == "stats") {
      PrintStats(session);
    } else {
      std::printf("unknown command: %s (impute|wait|reload|stats|quit)\n",
                  command.c_str());
    }
    std::fflush(stdout);
  }

  session.Shutdown(serve::ServeSession::DrainMode::kDrain);
  for (Outstanding& entry : outstanding) {
    PrintResponse(entry, entry.future.get());
  }
  PrintStats(session);
  std::fflush(stdout);
  return 0;
}

}  // namespace
}  // namespace pristi

int main(int argc, char** argv) { return pristi::Main(argc, argv); }
