#!/usr/bin/env bash
# Static-analysis + sanitizer matrix driver.
#
# Legs, in order (each independently gating):
#   1. analyze     — build the pristi_analyze engine and run every pass
#                    over the checkout (seconds; also `--analyze-only`).
#   2. werror      — a -Werror leg: the tree already builds with
#                    -Wall -Wextra, this leg promotes them so new warnings
#                    gate instead of scrolling by.
#   3. sanitizers  — for each preset (default "address+undefined thread",
#                    override with PRISTI_SANITIZE_CONFIGS), a dedicated
#                    build tree with -DPRISTI_SANITIZE=<preset> running the
#                    gating ctest suite under instrumented binaries
#                    (`-LE bench`: the perf sweeps measure throughput and
#                    the parity sweep trains a model — their code paths
#                    are exercised by the gating suites, and a training
#                    run under TSan would dominate the matrix runtime).
#                    RelWithDebInfo keeps optimized codegen (so data races
#                    in the batch-parallel kernels still manifest) while
#                    retaining debug info; PRISTI_DEBUG_CHECKS=ON keeps
#                    PRISTI_DCHECK live despite NDEBUG; PRISTI_THREADS=4
#                    forces ParallelFor to actually spawn workers.
#   4. native-biteq — bit-identity suites on the host's native arch (the
#                    sanitizer legs build with PRISTI_NATIVE_ARCH=OFF,
#                    where baseline x86-64 has no FMA and can never
#                    contract mul/add chains — exactly the configuration
#                    that masks a missing -ffp-contract=off). Skip with
#                    PRISTI_NATIVE_BITEQ=0.
#
# Usage: run_static_analysis.sh [--analyze-only]
#   --analyze-only  run only leg 1: configure/build the analyzer and run
#                   `ctest -L analysis` (pristi_analyze + pristi_lint +
#                   lint_test). The fast pre-commit gate.
#
# Exits nonzero if any configure, build, or test step fails (including a
# sanitizer report, since -fno-sanitize-recover=all makes reports fatal,
# and including any pristi_analyze violation).

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
configs="${PRISTI_SANITIZE_CONFIGS:-address+undefined thread}"
jobs="$(nproc 2>/dev/null || echo 4)"
status=0
analyze_only=0

for arg in "$@"; do
  case "$arg" in
    --analyze-only) analyze_only=1 ;;
    *)
      echo "usage: $0 [--analyze-only]" >&2
      exit 2
      ;;
  esac
done

# ---- leg 1: pristi_analyze -------------------------------------------------
build_dir="$repo_root/build-analyze"
echo "==== [analyze] configure -> $build_dir ===="
if cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
    && cmake --build "$build_dir" -j "$jobs" \
        --target pristi_analyze pristi_lint lint_test \
    && (cd "$build_dir" && ctest --output-on-failure -j "$jobs" -L analysis); then
  echo "==== [analyze] OK ===="
else
  echo "==== [analyze] FAILED ===="
  status=1
fi

if [ "$analyze_only" -eq 1 ]; then
  if [ "$status" -ne 0 ]; then
    echo "run_static_analysis: analyzer violations (see log above)"
  else
    echo "run_static_analysis: analyzer clean"
  fi
  exit "$status"
fi

# ---- leg 2: warnings-as-errors ---------------------------------------------
build_dir="$repo_root/build-werror"
echo "==== [werror] configure -> $build_dir ===="
if cmake -S "$repo_root" -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS=-Werror \
    && cmake --build "$build_dir" -j "$jobs"; then
  echo "==== [werror] OK ===="
else
  echo "==== [werror] FAILED ===="
  status=1
fi

# ---- leg 3: sanitizer matrix -----------------------------------------------
for mode in $configs; do
  build_dir="$repo_root/build-san-${mode//+/-}"
  echo "==== [$mode] configure -> $build_dir ===="
  if ! cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPRISTI_SANITIZE="$mode" \
      -DPRISTI_NATIVE_ARCH=OFF \
      -DPRISTI_DEBUG_CHECKS=ON; then
    echo "==== [$mode] CONFIGURE FAILED ===="
    status=1
    continue
  fi
  echo "==== [$mode] build ===="
  if ! cmake --build "$build_dir" -j "$jobs"; then
    echo "==== [$mode] BUILD FAILED ===="
    status=1
    continue
  fi
  echo "==== [$mode] ctest ===="
  if ! (cd "$build_dir" && \
        ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
        UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
        TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:die_after_fork=0}" \
        PRISTI_THREADS="${PRISTI_THREADS:-4}" \
        ctest --output-on-failure -j "$jobs" -LE bench); then
    echo "==== [$mode] TESTS FAILED ===="
    status=1
    continue
  fi
  echo "==== [$mode] OK ===="
done

# ---- leg 4: native-arch bit-identity ---------------------------------------
if [ "${PRISTI_NATIVE_BITEQ:-1}" != "0" ]; then
  build_dir="$repo_root/build-native-biteq"
  echo "==== [native-biteq] configure -> $build_dir ===="
  if cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=Release \
      -DPRISTI_NATIVE_ARCH=ON \
      -DPRISTI_DEBUG_CHECKS=ON \
      && cmake --build "$build_dir" -j "$jobs" \
      && (cd "$build_dir" && PRISTI_THREADS="${PRISTI_THREADS:-4}" \
          ctest --output-on-failure -j "$jobs" -LE bench); then
    echo "==== [native-biteq] OK ===="
  else
    echo "==== [native-biteq] FAILED ===="
    status=1
  fi
fi

# ---- leg 5: shard-parallel training bit-identity ---------------------------
# Trains the same seeded task twice through pristi_cli — 1 shard on 1 thread
# vs 4 shards on 4 threads — and byte-compares the final model checkpoints.
# This is the sharded engine's contract (diffusion/sharded_train.h) enforced
# end-to-end through the CLI, the env knob and the serializer. Skip with
# PRISTI_SHARD_BITEQ=0.
if [ "${PRISTI_SHARD_BITEQ:-1}" != "0" ]; then
  build_dir="$repo_root/build-shard-biteq"
  echo "==== [shard-biteq] configure -> $build_dir ===="
  shard_tmp="$build_dir/shard-biteq-out"
  if cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
      && cmake --build "$build_dir" -j "$jobs" --target pristi_cli \
      && mkdir -p "$shard_tmp" \
      && PRISTI_THREADS=1 PRISTI_TRAIN_SHARDS=1 "$build_dir/tools/pristi_cli" \
          train --preset=aqi --nodes=12 --gen-steps=120 --window=8 \
          --stride=8 --epochs=2 --batch=4 --steps-diffusion=8 \
          --model-out="$shard_tmp/k1.ckpt" > "$shard_tmp/k1.log" 2>&1 \
      && PRISTI_THREADS=4 PRISTI_TRAIN_SHARDS=4 "$build_dir/tools/pristi_cli" \
          train --preset=aqi --nodes=12 --gen-steps=120 --window=8 \
          --stride=8 --epochs=2 --batch=4 --steps-diffusion=8 \
          --model-out="$shard_tmp/k4.ckpt" > "$shard_tmp/k4.log" 2>&1 \
      && cmp "$shard_tmp/k1.ckpt" "$shard_tmp/k4.ckpt"; then
    echo "==== [shard-biteq] OK (1-shard/1-thread == 4-shard/4-thread) ===="
  else
    echo "==== [shard-biteq] FAILED ===="
    status=1
  fi
fi

# ---- leg 6: fused-attention sampler-output parity ---------------------------
# Trains a tiny seeded model once, then imputes the same task twice through
# pristi_cli — PRISTI_ATTN_FUSED=1 vs PRISTI_ATTN_FUSED=0 — and compares the
# completed-series CSVs cell by cell under a tolerance. The fused kernel's
# contract is <= 1e-5 vs the reference per attention forward; through the
# full reverse-diffusion chain and denormalization the divergence stays far
# below 0.05 in data units, while a wrong attention output diverges by
# orders of magnitude more. Skip with PRISTI_ATTN_PARITY=0.
if [ "${PRISTI_ATTN_PARITY:-1}" != "0" ]; then
  build_dir="$repo_root/build-shard-biteq"
  echo "==== [attn-parity] configure -> $build_dir ===="
  attn_tmp="$build_dir/attn-parity-out"
  attn_flags="--preset=aqi --nodes=12 --gen-steps=120 --window=8 --stride=8"
  if cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
      && cmake --build "$build_dir" -j "$jobs" --target pristi_cli \
      && mkdir -p "$attn_tmp" \
      && "$build_dir/tools/pristi_cli" train $attn_flags \
          --epochs=2 --batch=4 --steps-diffusion=8 \
          --model-out="$attn_tmp/model.ckpt" > "$attn_tmp/train.log" 2>&1 \
      && PRISTI_ATTN_FUSED=1 "$build_dir/tools/pristi_cli" impute \
          $attn_flags --steps-diffusion=8 --samples=4 --seed=5 \
          --model="$attn_tmp/model.ckpt" \
          --out="$attn_tmp/fused.csv" > "$attn_tmp/fused.log" 2>&1 \
      && PRISTI_ATTN_FUSED=0 "$build_dir/tools/pristi_cli" impute \
          $attn_flags --steps-diffusion=8 --samples=4 --seed=5 \
          --model="$attn_tmp/model.ckpt" \
          --out="$attn_tmp/reference.csv" > "$attn_tmp/reference.log" 2>&1 \
      && awk -F, -v tol=0.05 '
          NR == FNR { a[FNR] = $0; rows = FNR; next }
          {
            n = split(a[FNR], x, ",");
            if (n != NF) { print "column count mismatch at line " FNR; bad = 1; exit 1 }
            for (i = 1; i <= NF; ++i) {
              # Empty cells (masked-missing in the CSV format) must agree
              # on emptiness; numeric cells compare under tol.
              if (x[i] == "" || $i == "") {
                if (x[i] != $i) { print "emptiness mismatch line " FNR " col " i; bad = 1; exit 1 }
                continue;
              }
              d = x[i] - $i; if (d < 0) d = -d;
              if (d > max) max = d;
              if (d > tol) {
                print "parity exceeded at line " FNR " col " i ": " x[i] " vs " $i " (|d|=" d ")";
                bad = 1; exit 1;
              }
            }
          }
          END {
            if (!bad && FNR != rows) { print "row count mismatch"; bad = 1 }
            if (!bad) printf "max |fused - reference| = %.3g (tol %.3g)\n", max, tol;
            exit bad;
          }' "$attn_tmp/fused.csv" "$attn_tmp/reference.csv"; then
    echo "==== [attn-parity] OK (fused-on == fused-off within tolerance) ===="
  else
    echo "==== [attn-parity] FAILED ===="
    status=1
  fi
fi

if [ "$status" -ne 0 ]; then
  echo "run_static_analysis: FAILURES detected (see logs above)"
else
  echo "run_static_analysis: all legs clean"
fi
exit "$status"
