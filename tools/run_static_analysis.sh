#!/usr/bin/env bash
# Sanitizer build matrix + repo lint driver.
#
# For each sanitizer preset (default: "address+undefined thread", override
# with PRISTI_SANITIZE_CONFIGS), configures a dedicated build tree with
# -DPRISTI_SANITIZE=<preset> and runs the full ctest suite under the
# instrumented binaries. RelWithDebInfo keeps optimized codegen (so data
# races in the batch-parallel kernels still manifest) while retaining debug
# info for readable sanitizer reports; PRISTI_DEBUG_CHECKS=ON keeps
# PRISTI_DCHECK live despite NDEBUG. PRISTI_THREADS=4 forces ParallelFor to
# actually spawn workers so TSan exercises the fork-join paths even on
# low-core CI machines.
#
# Exits nonzero if any configure, build, or test step fails (including a
# sanitizer report, since -fno-sanitize-recover=all makes reports fatal,
# and including the pristi_lint ctest).

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
configs="${PRISTI_SANITIZE_CONFIGS:-address+undefined thread}"
jobs="$(nproc 2>/dev/null || echo 4)"
status=0

for mode in $configs; do
  build_dir="$repo_root/build-san-${mode//+/-}"
  echo "==== [$mode] configure -> $build_dir ===="
  if ! cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPRISTI_SANITIZE="$mode" \
      -DPRISTI_NATIVE_ARCH=OFF \
      -DPRISTI_DEBUG_CHECKS=ON; then
    echo "==== [$mode] CONFIGURE FAILED ===="
    status=1
    continue
  fi
  echo "==== [$mode] build ===="
  if ! cmake --build "$build_dir" -j "$jobs"; then
    echo "==== [$mode] BUILD FAILED ===="
    status=1
    continue
  fi
  echo "==== [$mode] ctest ===="
  if ! (cd "$build_dir" && \
        ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
        UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
        TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:die_after_fork=0}" \
        PRISTI_THREADS="${PRISTI_THREADS:-4}" \
        ctest --output-on-failure -j "$jobs"); then
    echo "==== [$mode] TESTS FAILED ===="
    status=1
    continue
  fi
  echo "==== [$mode] OK ===="
done

# Native-arch bit-identity leg (skip with PRISTI_NATIVE_BITEQ=0). The
# sanitizer matrix above builds with PRISTI_NATIVE_ARCH=OFF, where baseline
# x86-64 has no FMA instruction and so can never contract mul/add chains —
# which is exactly the configuration that masks a missing -ffp-contract=off.
# Build once with the default native flags on the actual host and run the
# exact-equality / golden suites (benches excluded) so a contraction
# regression surfaces on FMA-capable hardware.
if [ "${PRISTI_NATIVE_BITEQ:-1}" != "0" ]; then
  build_dir="$repo_root/build-native-biteq"
  echo "==== [native-biteq] configure -> $build_dir ===="
  if cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_BUILD_TYPE=Release \
      -DPRISTI_NATIVE_ARCH=ON \
      -DPRISTI_DEBUG_CHECKS=ON \
      && cmake --build "$build_dir" -j "$jobs" \
      && (cd "$build_dir" && PRISTI_THREADS="${PRISTI_THREADS:-4}" \
          ctest --output-on-failure -j "$jobs" -LE bench); then
    echo "==== [native-biteq] OK ===="
  else
    echo "==== [native-biteq] FAILED ===="
    status=1
  fi
fi

if [ "$status" -ne 0 ]; then
  echo "run_static_analysis: FAILURES detected (see logs above)"
else
  echo "run_static_analysis: all sanitizer configs clean"
fi
exit "$status"
