// Repo linter CLI: `pristi_lint [repo_root]`. Prints every violation of the
// source-tree invariants documented in pristi_lint_lib.h and exits nonzero
// if any were found, so CI (and ctest) can gate on it.

#include <filesystem>
#include <iostream>

#include "pristi_lint_lib.h"

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : ".";
  if (!std::filesystem::exists(std::filesystem::path(root) / "src")) {
    std::cerr << "pristi_lint: '" << root
              << "' does not look like a repo root (no src/ directory)\n";
    return 2;
  }
  std::vector<pristi::lint::Violation> violations =
      pristi::lint::LintRepo(root);
  for (const pristi::lint::Violation& v : violations) {
    std::cout << pristi::lint::FormatViolation(v) << "\n";
  }
  if (violations.empty()) {
    std::cout << "pristi_lint: clean\n";
    return 0;
  }
  std::cout << "pristi_lint: " << violations.size() << " violation(s)\n";
  return 1;
}
