file(REMOVE_RECURSE
  "CMakeFiles/ext_mnar_robustness.dir/ext_mnar_robustness.cc.o"
  "CMakeFiles/ext_mnar_robustness.dir/ext_mnar_robustness.cc.o.d"
  "ext_mnar_robustness"
  "ext_mnar_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mnar_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
