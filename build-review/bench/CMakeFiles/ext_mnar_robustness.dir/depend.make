# Empty dependencies file for ext_mnar_robustness.
# This may be replaced when dependencies are built.
