file(REMOVE_RECURSE
  "CMakeFiles/fig9_time_costs.dir/fig9_time_costs.cc.o"
  "CMakeFiles/fig9_time_costs.dir/fig9_time_costs.cc.o.d"
  "fig9_time_costs"
  "fig9_time_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_time_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
