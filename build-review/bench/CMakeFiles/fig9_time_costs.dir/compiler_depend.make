# Empty compiler generated dependencies file for fig9_time_costs.
# This may be replaced when dependencies are built.
