file(REMOVE_RECURSE
  "CMakeFiles/table4_crps.dir/table4_crps.cc.o"
  "CMakeFiles/table4_crps.dir/table4_crps.cc.o.d"
  "table4_crps"
  "table4_crps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_crps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
