# Empty compiler generated dependencies file for table4_crps.
# This may be replaced when dependencies are built.
