file(REMOVE_RECURSE
  "CMakeFiles/table6_ablation.dir/table6_ablation.cc.o"
  "CMakeFiles/table6_ablation.dir/table6_ablation.cc.o.d"
  "table6_ablation"
  "table6_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
