# Empty dependencies file for table6_ablation.
# This may be replaced when dependencies are built.
