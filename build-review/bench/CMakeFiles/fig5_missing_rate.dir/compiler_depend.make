# Empty compiler generated dependencies file for fig5_missing_rate.
# This may be replaced when dependencies are built.
