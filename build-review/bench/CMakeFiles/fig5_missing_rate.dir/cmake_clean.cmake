file(REMOVE_RECURSE
  "CMakeFiles/fig5_missing_rate.dir/fig5_missing_rate.cc.o"
  "CMakeFiles/fig5_missing_rate.dir/fig5_missing_rate.cc.o.d"
  "fig5_missing_rate"
  "fig5_missing_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_missing_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
