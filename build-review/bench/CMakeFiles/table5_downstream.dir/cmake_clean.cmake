file(REMOVE_RECURSE
  "CMakeFiles/table5_downstream.dir/table5_downstream.cc.o"
  "CMakeFiles/table5_downstream.dir/table5_downstream.cc.o.d"
  "table5_downstream"
  "table5_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
