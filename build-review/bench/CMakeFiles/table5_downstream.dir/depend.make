# Empty dependencies file for table5_downstream.
# This may be replaced when dependencies are built.
