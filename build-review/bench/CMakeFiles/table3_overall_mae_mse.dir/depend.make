# Empty dependencies file for table3_overall_mae_mse.
# This may be replaced when dependencies are built.
