file(REMOVE_RECURSE
  "CMakeFiles/table3_overall_mae_mse.dir/table3_overall_mae_mse.cc.o"
  "CMakeFiles/table3_overall_mae_mse.dir/table3_overall_mae_mse.cc.o.d"
  "table3_overall_mae_mse"
  "table3_overall_mae_mse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_overall_mae_mse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
