file(REMOVE_RECURSE
  "../lib/libpristi_bench_common.a"
  "../lib/libpristi_bench_common.pdb"
  "CMakeFiles/pristi_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/pristi_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
