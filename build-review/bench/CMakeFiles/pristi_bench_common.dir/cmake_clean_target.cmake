file(REMOVE_RECURSE
  "../lib/libpristi_bench_common.a"
)
