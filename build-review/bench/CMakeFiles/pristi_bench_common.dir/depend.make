# Empty dependencies file for pristi_bench_common.
# This may be replaced when dependencies are built.
