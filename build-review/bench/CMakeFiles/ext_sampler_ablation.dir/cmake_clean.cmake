file(REMOVE_RECURSE
  "CMakeFiles/ext_sampler_ablation.dir/ext_sampler_ablation.cc.o"
  "CMakeFiles/ext_sampler_ablation.dir/ext_sampler_ablation.cc.o.d"
  "ext_sampler_ablation"
  "ext_sampler_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sampler_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
