# Empty dependencies file for fig6_case_study.
# This may be replaced when dependencies are built.
