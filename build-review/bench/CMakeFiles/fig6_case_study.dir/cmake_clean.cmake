file(REMOVE_RECURSE
  "CMakeFiles/fig6_case_study.dir/fig6_case_study.cc.o"
  "CMakeFiles/fig6_case_study.dir/fig6_case_study.cc.o.d"
  "fig6_case_study"
  "fig6_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
