# Empty compiler generated dependencies file for bench_train_shards.
# This may be replaced when dependencies are built.
