file(REMOVE_RECURSE
  "CMakeFiles/bench_train_shards.dir/bench_train_shards.cc.o"
  "CMakeFiles/bench_train_shards.dir/bench_train_shards.cc.o.d"
  "bench_train_shards"
  "bench_train_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_train_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
