file(REMOVE_RECURSE
  "CMakeFiles/fig8_hyperparams.dir/fig8_hyperparams.cc.o"
  "CMakeFiles/fig8_hyperparams.dir/fig8_hyperparams.cc.o.d"
  "fig8_hyperparams"
  "fig8_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
