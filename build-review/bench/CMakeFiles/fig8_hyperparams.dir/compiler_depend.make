# Empty compiler generated dependencies file for fig8_hyperparams.
# This may be replaced when dependencies are built.
