file(REMOVE_RECURSE
  "CMakeFiles/fig7_sensor_failure.dir/fig7_sensor_failure.cc.o"
  "CMakeFiles/fig7_sensor_failure.dir/fig7_sensor_failure.cc.o.d"
  "fig7_sensor_failure"
  "fig7_sensor_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sensor_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
