# Empty dependencies file for fig7_sensor_failure.
# This may be replaced when dependencies are built.
