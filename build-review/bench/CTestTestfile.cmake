# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_train_shards "/root/repo/build-review/bench/bench_train_shards")
set_tests_properties(bench_train_shards PROPERTIES  LABELS "bench" TIMEOUT "1800" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
