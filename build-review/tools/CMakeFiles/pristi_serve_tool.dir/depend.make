# Empty dependencies file for pristi_serve_tool.
# This may be replaced when dependencies are built.
