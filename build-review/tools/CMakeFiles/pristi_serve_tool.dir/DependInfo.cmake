
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/pristi_serve.cc" "tools/CMakeFiles/pristi_serve_tool.dir/pristi_serve.cc.o" "gcc" "tools/CMakeFiles/pristi_serve_tool.dir/pristi_serve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/serve/CMakeFiles/pristi_serve.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pristi/CMakeFiles/pristi_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/diffusion/CMakeFiles/pristi_diffusion.dir/DependInfo.cmake"
  "/root/repo/build-review/src/serialize/CMakeFiles/pristi_serialize.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/pristi_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/pristi_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/autograd/CMakeFiles/pristi_autograd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/pristi_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/pristi_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pristi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
