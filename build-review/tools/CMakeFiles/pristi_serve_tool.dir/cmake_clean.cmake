file(REMOVE_RECURSE
  "CMakeFiles/pristi_serve_tool.dir/pristi_serve.cc.o"
  "CMakeFiles/pristi_serve_tool.dir/pristi_serve.cc.o.d"
  "pristi_serve"
  "pristi_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_serve_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
