file(REMOVE_RECURSE
  "CMakeFiles/pristi_cli.dir/pristi_cli.cc.o"
  "CMakeFiles/pristi_cli.dir/pristi_cli.cc.o.d"
  "pristi_cli"
  "pristi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
