# Empty dependencies file for pristi_cli.
# This may be replaced when dependencies are built.
