# Empty compiler generated dependencies file for pristi_analyze.
# This may be replaced when dependencies are built.
