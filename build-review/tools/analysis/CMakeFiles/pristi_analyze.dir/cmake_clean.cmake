file(REMOVE_RECURSE
  "CMakeFiles/pristi_analyze.dir/pristi_analyze.cc.o"
  "CMakeFiles/pristi_analyze.dir/pristi_analyze.cc.o.d"
  "pristi_analyze"
  "pristi_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
