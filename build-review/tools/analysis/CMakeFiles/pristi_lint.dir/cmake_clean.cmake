file(REMOVE_RECURSE
  "CMakeFiles/pristi_lint.dir/pristi_analyze.cc.o"
  "CMakeFiles/pristi_lint.dir/pristi_analyze.cc.o.d"
  "pristi_lint"
  "pristi_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
