# Empty dependencies file for pristi_lint.
# This may be replaced when dependencies are built.
