
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/analysis/analysis.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/analysis.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/analysis.cc.o.d"
  "/root/repo/tools/analysis/include_graph.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/include_graph.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/include_graph.cc.o.d"
  "/root/repo/tools/analysis/manifest.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/manifest.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/manifest.cc.o.d"
  "/root/repo/tools/analysis/passes_dcheck_purity.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_dcheck_purity.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_dcheck_purity.cc.o.d"
  "/root/repo/tools/analysis/passes_env_registry.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_env_registry.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_env_registry.cc.o.d"
  "/root/repo/tools/analysis/passes_fp_contraction.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_fp_contraction.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_fp_contraction.cc.o.d"
  "/root/repo/tools/analysis/passes_layering.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_layering.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_layering.cc.o.d"
  "/root/repo/tools/analysis/passes_legacy.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_legacy.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_legacy.cc.o.d"
  "/root/repo/tools/analysis/passes_parallel_region.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_parallel_region.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/passes_parallel_region.cc.o.d"
  "/root/repo/tools/analysis/token_stream.cc" "tools/analysis/CMakeFiles/pristi_analysis.dir/token_stream.cc.o" "gcc" "tools/analysis/CMakeFiles/pristi_analysis.dir/token_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
