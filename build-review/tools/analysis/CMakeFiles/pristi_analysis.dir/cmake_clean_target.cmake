file(REMOVE_RECURSE
  "libpristi_analysis.a"
)
