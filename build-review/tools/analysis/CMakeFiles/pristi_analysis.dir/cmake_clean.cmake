file(REMOVE_RECURSE
  "CMakeFiles/pristi_analysis.dir/analysis.cc.o"
  "CMakeFiles/pristi_analysis.dir/analysis.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/include_graph.cc.o"
  "CMakeFiles/pristi_analysis.dir/include_graph.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/manifest.cc.o"
  "CMakeFiles/pristi_analysis.dir/manifest.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/passes_dcheck_purity.cc.o"
  "CMakeFiles/pristi_analysis.dir/passes_dcheck_purity.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/passes_env_registry.cc.o"
  "CMakeFiles/pristi_analysis.dir/passes_env_registry.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/passes_fp_contraction.cc.o"
  "CMakeFiles/pristi_analysis.dir/passes_fp_contraction.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/passes_layering.cc.o"
  "CMakeFiles/pristi_analysis.dir/passes_layering.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/passes_legacy.cc.o"
  "CMakeFiles/pristi_analysis.dir/passes_legacy.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/passes_parallel_region.cc.o"
  "CMakeFiles/pristi_analysis.dir/passes_parallel_region.cc.o.d"
  "CMakeFiles/pristi_analysis.dir/token_stream.cc.o"
  "CMakeFiles/pristi_analysis.dir/token_stream.cc.o.d"
  "libpristi_analysis.a"
  "libpristi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
