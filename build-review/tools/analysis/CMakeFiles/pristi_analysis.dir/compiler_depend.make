# Empty compiler generated dependencies file for pristi_analysis.
# This may be replaced when dependencies are built.
