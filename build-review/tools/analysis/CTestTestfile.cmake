# CMake generated Testfile for 
# Source directory: /root/repo/tools/analysis
# Build directory: /root/repo/build-review/tools/analysis
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(pristi_analyze "/root/repo/build-review/tools/analysis/pristi_analyze" "/root/repo")
set_tests_properties(pristi_analyze PROPERTIES  LABELS "analysis" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/analysis/CMakeLists.txt;27;add_test;/root/repo/tools/analysis/CMakeLists.txt;0;")
add_test(pristi_lint "/root/repo/build-review/tools/analysis/pristi_lint" "/root/repo")
set_tests_properties(pristi_lint PROPERTIES  LABELS "analysis" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/analysis/CMakeLists.txt;29;add_test;/root/repo/tools/analysis/CMakeLists.txt;0;")
