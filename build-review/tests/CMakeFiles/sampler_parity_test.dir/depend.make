# Empty dependencies file for sampler_parity_test.
# This may be replaced when dependencies are built.
