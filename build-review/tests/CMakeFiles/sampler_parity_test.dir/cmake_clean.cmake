file(REMOVE_RECURSE
  "CMakeFiles/sampler_parity_test.dir/sampler_parity_test.cc.o"
  "CMakeFiles/sampler_parity_test.dir/sampler_parity_test.cc.o.d"
  "sampler_parity_test"
  "sampler_parity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
