# Empty dependencies file for kernel_bench_test.
# This may be replaced when dependencies are built.
