file(REMOVE_RECURSE
  "CMakeFiles/kernel_bench_test.dir/kernel_bench_test.cc.o"
  "CMakeFiles/kernel_bench_test.dir/kernel_bench_test.cc.o.d"
  "kernel_bench_test"
  "kernel_bench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_bench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
