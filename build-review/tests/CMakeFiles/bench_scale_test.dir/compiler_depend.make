# Empty compiler generated dependencies file for bench_scale_test.
# This may be replaced when dependencies are built.
