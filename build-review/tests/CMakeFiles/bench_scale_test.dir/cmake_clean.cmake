file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_test.dir/bench_scale_test.cc.o"
  "CMakeFiles/bench_scale_test.dir/bench_scale_test.cc.o.d"
  "bench_scale_test"
  "bench_scale_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
