# Empty dependencies file for sharded_train_test.
# This may be replaced when dependencies are built.
