file(REMOVE_RECURSE
  "CMakeFiles/sharded_train_test.dir/sharded_train_test.cc.o"
  "CMakeFiles/sharded_train_test.dir/sharded_train_test.cc.o.d"
  "sharded_train_test"
  "sharded_train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
