file(REMOVE_RECURSE
  "CMakeFiles/io_flags_test.dir/io_flags_test.cc.o"
  "CMakeFiles/io_flags_test.dir/io_flags_test.cc.o.d"
  "io_flags_test"
  "io_flags_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
