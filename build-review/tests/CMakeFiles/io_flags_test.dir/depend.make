# Empty dependencies file for io_flags_test.
# This may be replaced when dependencies are built.
