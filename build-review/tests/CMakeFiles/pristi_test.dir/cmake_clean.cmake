file(REMOVE_RECURSE
  "CMakeFiles/pristi_test.dir/pristi_test.cc.o"
  "CMakeFiles/pristi_test.dir/pristi_test.cc.o.d"
  "pristi_test"
  "pristi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
