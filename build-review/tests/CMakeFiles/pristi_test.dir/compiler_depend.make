# Empty compiler generated dependencies file for pristi_test.
# This may be replaced when dependencies are built.
