# Empty dependencies file for diffusion_test.
# This may be replaced when dependencies are built.
