file(REMOVE_RECURSE
  "CMakeFiles/diffusion_test.dir/diffusion_test.cc.o"
  "CMakeFiles/diffusion_test.dir/diffusion_test.cc.o.d"
  "diffusion_test"
  "diffusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
