# Empty compiler generated dependencies file for diffusion_test.
# This may be replaced when dependencies are built.
