# Empty dependencies file for serve_bench_test.
# This may be replaced when dependencies are built.
