file(REMOVE_RECURSE
  "CMakeFiles/serve_bench_test.dir/serve_bench_test.cc.o"
  "CMakeFiles/serve_bench_test.dir/serve_bench_test.cc.o.d"
  "serve_bench_test"
  "serve_bench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_bench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
