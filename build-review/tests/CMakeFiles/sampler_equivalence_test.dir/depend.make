# Empty dependencies file for sampler_equivalence_test.
# This may be replaced when dependencies are built.
