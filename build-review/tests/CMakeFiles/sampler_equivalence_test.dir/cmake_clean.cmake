file(REMOVE_RECURSE
  "CMakeFiles/sampler_equivalence_test.dir/sampler_equivalence_test.cc.o"
  "CMakeFiles/sampler_equivalence_test.dir/sampler_equivalence_test.cc.o.d"
  "sampler_equivalence_test"
  "sampler_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
