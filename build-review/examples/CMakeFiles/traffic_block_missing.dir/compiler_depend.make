# Empty compiler generated dependencies file for traffic_block_missing.
# This may be replaced when dependencies are built.
