file(REMOVE_RECURSE
  "CMakeFiles/traffic_block_missing.dir/traffic_block_missing.cpp.o"
  "CMakeFiles/traffic_block_missing.dir/traffic_block_missing.cpp.o.d"
  "traffic_block_missing"
  "traffic_block_missing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_block_missing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
