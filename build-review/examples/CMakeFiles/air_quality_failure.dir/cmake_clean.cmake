file(REMOVE_RECURSE
  "CMakeFiles/air_quality_failure.dir/air_quality_failure.cpp.o"
  "CMakeFiles/air_quality_failure.dir/air_quality_failure.cpp.o.d"
  "air_quality_failure"
  "air_quality_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_quality_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
