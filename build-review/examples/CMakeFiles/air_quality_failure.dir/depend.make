# Empty dependencies file for air_quality_failure.
# This may be replaced when dependencies are built.
