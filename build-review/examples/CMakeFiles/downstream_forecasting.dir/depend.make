# Empty dependencies file for downstream_forecasting.
# This may be replaced when dependencies are built.
