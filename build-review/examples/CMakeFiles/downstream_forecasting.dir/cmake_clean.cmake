file(REMOVE_RECURSE
  "CMakeFiles/downstream_forecasting.dir/downstream_forecasting.cpp.o"
  "CMakeFiles/downstream_forecasting.dir/downstream_forecasting.cpp.o.d"
  "downstream_forecasting"
  "downstream_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downstream_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
