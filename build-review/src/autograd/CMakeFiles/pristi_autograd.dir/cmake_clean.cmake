file(REMOVE_RECURSE
  "CMakeFiles/pristi_autograd.dir/grad_check.cc.o"
  "CMakeFiles/pristi_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/pristi_autograd.dir/ops.cc.o"
  "CMakeFiles/pristi_autograd.dir/ops.cc.o.d"
  "CMakeFiles/pristi_autograd.dir/variable.cc.o"
  "CMakeFiles/pristi_autograd.dir/variable.cc.o.d"
  "libpristi_autograd.a"
  "libpristi_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
