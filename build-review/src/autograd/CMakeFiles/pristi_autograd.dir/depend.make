# Empty dependencies file for pristi_autograd.
# This may be replaced when dependencies are built.
