file(REMOVE_RECURSE
  "libpristi_autograd.a"
)
