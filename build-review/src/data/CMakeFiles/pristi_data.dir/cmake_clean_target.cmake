file(REMOVE_RECURSE
  "libpristi_data.a"
)
