file(REMOVE_RECURSE
  "CMakeFiles/pristi_data.dir/dataset.cc.o"
  "CMakeFiles/pristi_data.dir/dataset.cc.o.d"
  "CMakeFiles/pristi_data.dir/io.cc.o"
  "CMakeFiles/pristi_data.dir/io.cc.o.d"
  "CMakeFiles/pristi_data.dir/missing.cc.o"
  "CMakeFiles/pristi_data.dir/missing.cc.o.d"
  "CMakeFiles/pristi_data.dir/windows.cc.o"
  "CMakeFiles/pristi_data.dir/windows.cc.o.d"
  "libpristi_data.a"
  "libpristi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
