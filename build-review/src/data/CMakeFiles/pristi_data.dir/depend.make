# Empty dependencies file for pristi_data.
# This may be replaced when dependencies are built.
