
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/pristi_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/pristi_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/pristi_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/pristi_data.dir/io.cc.o.d"
  "/root/repo/src/data/missing.cc" "src/data/CMakeFiles/pristi_data.dir/missing.cc.o" "gcc" "src/data/CMakeFiles/pristi_data.dir/missing.cc.o.d"
  "/root/repo/src/data/windows.cc" "src/data/CMakeFiles/pristi_data.dir/windows.cc.o" "gcc" "src/data/CMakeFiles/pristi_data.dir/windows.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/graph/CMakeFiles/pristi_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/pristi_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pristi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
