file(REMOVE_RECURSE
  "CMakeFiles/pristi_tensor.dir/kernels/pack_cache.cc.o"
  "CMakeFiles/pristi_tensor.dir/kernels/pack_cache.cc.o.d"
  "CMakeFiles/pristi_tensor.dir/kernels/sgemm.cc.o"
  "CMakeFiles/pristi_tensor.dir/kernels/sgemm.cc.o.d"
  "CMakeFiles/pristi_tensor.dir/storage.cc.o"
  "CMakeFiles/pristi_tensor.dir/storage.cc.o.d"
  "CMakeFiles/pristi_tensor.dir/tensor.cc.o"
  "CMakeFiles/pristi_tensor.dir/tensor.cc.o.d"
  "libpristi_tensor.a"
  "libpristi_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
