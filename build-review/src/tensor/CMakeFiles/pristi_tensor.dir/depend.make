# Empty dependencies file for pristi_tensor.
# This may be replaced when dependencies are built.
