file(REMOVE_RECURSE
  "libpristi_tensor.a"
)
