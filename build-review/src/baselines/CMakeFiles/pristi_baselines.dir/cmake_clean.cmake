file(REMOVE_RECURSE
  "CMakeFiles/pristi_baselines.dir/csdi.cc.o"
  "CMakeFiles/pristi_baselines.dir/csdi.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/factorization.cc.o"
  "CMakeFiles/pristi_baselines.dir/factorization.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/kalman.cc.o"
  "CMakeFiles/pristi_baselines.dir/kalman.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/linalg.cc.o"
  "CMakeFiles/pristi_baselines.dir/linalg.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/regression.cc.o"
  "CMakeFiles/pristi_baselines.dir/regression.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/rnn.cc.o"
  "CMakeFiles/pristi_baselines.dir/rnn.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/simple.cc.o"
  "CMakeFiles/pristi_baselines.dir/simple.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/stmvl.cc.o"
  "CMakeFiles/pristi_baselines.dir/stmvl.cc.o.d"
  "CMakeFiles/pristi_baselines.dir/vae.cc.o"
  "CMakeFiles/pristi_baselines.dir/vae.cc.o.d"
  "libpristi_baselines.a"
  "libpristi_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
