file(REMOVE_RECURSE
  "libpristi_baselines.a"
)
