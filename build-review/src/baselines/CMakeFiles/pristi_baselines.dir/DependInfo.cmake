
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/csdi.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/csdi.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/csdi.cc.o.d"
  "/root/repo/src/baselines/factorization.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/factorization.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/factorization.cc.o.d"
  "/root/repo/src/baselines/kalman.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/kalman.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/kalman.cc.o.d"
  "/root/repo/src/baselines/linalg.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/linalg.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/linalg.cc.o.d"
  "/root/repo/src/baselines/regression.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/regression.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/regression.cc.o.d"
  "/root/repo/src/baselines/rnn.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/rnn.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/rnn.cc.o.d"
  "/root/repo/src/baselines/simple.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/simple.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/simple.cc.o.d"
  "/root/repo/src/baselines/stmvl.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/stmvl.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/stmvl.cc.o.d"
  "/root/repo/src/baselines/vae.cc" "src/baselines/CMakeFiles/pristi_baselines.dir/vae.cc.o" "gcc" "src/baselines/CMakeFiles/pristi_baselines.dir/vae.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/pristi/CMakeFiles/pristi_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/diffusion/CMakeFiles/pristi_diffusion.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/pristi_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/pristi_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/serialize/CMakeFiles/pristi_serialize.dir/DependInfo.cmake"
  "/root/repo/build-review/src/autograd/CMakeFiles/pristi_autograd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/pristi_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/pristi_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pristi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
