# Empty compiler generated dependencies file for pristi_baselines.
# This may be replaced when dependencies are built.
