file(REMOVE_RECURSE
  "libpristi_serve.a"
)
