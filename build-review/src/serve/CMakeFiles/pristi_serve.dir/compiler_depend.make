# Empty compiler generated dependencies file for pristi_serve.
# This may be replaced when dependencies are built.
