file(REMOVE_RECURSE
  "CMakeFiles/pristi_serve.dir/session.cc.o"
  "CMakeFiles/pristi_serve.dir/session.cc.o.d"
  "libpristi_serve.a"
  "libpristi_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
