file(REMOVE_RECURSE
  "libpristi_serialize.a"
)
