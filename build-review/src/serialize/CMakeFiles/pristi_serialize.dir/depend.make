# Empty dependencies file for pristi_serialize.
# This may be replaced when dependencies are built.
