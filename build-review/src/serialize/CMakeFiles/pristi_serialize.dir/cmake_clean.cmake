file(REMOVE_RECURSE
  "CMakeFiles/pristi_serialize.dir/checkpoint.cc.o"
  "CMakeFiles/pristi_serialize.dir/checkpoint.cc.o.d"
  "CMakeFiles/pristi_serialize.dir/format.cc.o"
  "CMakeFiles/pristi_serialize.dir/format.cc.o.d"
  "libpristi_serialize.a"
  "libpristi_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
