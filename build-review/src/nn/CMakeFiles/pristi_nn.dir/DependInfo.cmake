
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/pristi_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/ema.cc" "src/nn/CMakeFiles/pristi_nn.dir/ema.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/ema.cc.o.d"
  "/root/repo/src/nn/embeddings.cc" "src/nn/CMakeFiles/pristi_nn.dir/embeddings.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/embeddings.cc.o.d"
  "/root/repo/src/nn/graph_conv.cc" "src/nn/CMakeFiles/pristi_nn.dir/graph_conv.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/graph_conv.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/pristi_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/pristi_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/pristi_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/pristi_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/pristi_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/autograd/CMakeFiles/pristi_autograd.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/pristi_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/pristi_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pristi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
