file(REMOVE_RECURSE
  "libpristi_nn.a"
)
