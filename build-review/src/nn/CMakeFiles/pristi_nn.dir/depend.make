# Empty dependencies file for pristi_nn.
# This may be replaced when dependencies are built.
