file(REMOVE_RECURSE
  "CMakeFiles/pristi_nn.dir/attention.cc.o"
  "CMakeFiles/pristi_nn.dir/attention.cc.o.d"
  "CMakeFiles/pristi_nn.dir/ema.cc.o"
  "CMakeFiles/pristi_nn.dir/ema.cc.o.d"
  "CMakeFiles/pristi_nn.dir/embeddings.cc.o"
  "CMakeFiles/pristi_nn.dir/embeddings.cc.o.d"
  "CMakeFiles/pristi_nn.dir/graph_conv.cc.o"
  "CMakeFiles/pristi_nn.dir/graph_conv.cc.o.d"
  "CMakeFiles/pristi_nn.dir/gru.cc.o"
  "CMakeFiles/pristi_nn.dir/gru.cc.o.d"
  "CMakeFiles/pristi_nn.dir/layers.cc.o"
  "CMakeFiles/pristi_nn.dir/layers.cc.o.d"
  "CMakeFiles/pristi_nn.dir/module.cc.o"
  "CMakeFiles/pristi_nn.dir/module.cc.o.d"
  "CMakeFiles/pristi_nn.dir/optimizer.cc.o"
  "CMakeFiles/pristi_nn.dir/optimizer.cc.o.d"
  "libpristi_nn.a"
  "libpristi_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
