file(REMOVE_RECURSE
  "libpristi_diffusion.a"
)
