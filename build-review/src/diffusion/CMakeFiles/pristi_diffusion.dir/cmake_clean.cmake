file(REMOVE_RECURSE
  "CMakeFiles/pristi_diffusion.dir/ddpm.cc.o"
  "CMakeFiles/pristi_diffusion.dir/ddpm.cc.o.d"
  "CMakeFiles/pristi_diffusion.dir/sampler.cc.o"
  "CMakeFiles/pristi_diffusion.dir/sampler.cc.o.d"
  "CMakeFiles/pristi_diffusion.dir/schedule.cc.o"
  "CMakeFiles/pristi_diffusion.dir/schedule.cc.o.d"
  "CMakeFiles/pristi_diffusion.dir/sharded_train.cc.o"
  "CMakeFiles/pristi_diffusion.dir/sharded_train.cc.o.d"
  "libpristi_diffusion.a"
  "libpristi_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
