# Empty dependencies file for pristi_diffusion.
# This may be replaced when dependencies are built.
