file(REMOVE_RECURSE
  "CMakeFiles/pristi_eval.dir/forecaster.cc.o"
  "CMakeFiles/pristi_eval.dir/forecaster.cc.o.d"
  "CMakeFiles/pristi_eval.dir/harness.cc.o"
  "CMakeFiles/pristi_eval.dir/harness.cc.o.d"
  "libpristi_eval.a"
  "libpristi_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
