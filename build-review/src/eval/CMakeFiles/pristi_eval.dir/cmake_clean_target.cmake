file(REMOVE_RECURSE
  "libpristi_eval.a"
)
