# Empty dependencies file for pristi_eval.
# This may be replaced when dependencies are built.
