# Empty dependencies file for pristi_graph.
# This may be replaced when dependencies are built.
