file(REMOVE_RECURSE
  "libpristi_graph.a"
)
