file(REMOVE_RECURSE
  "CMakeFiles/pristi_graph.dir/adjacency.cc.o"
  "CMakeFiles/pristi_graph.dir/adjacency.cc.o.d"
  "CMakeFiles/pristi_graph.dir/sparse.cc.o"
  "CMakeFiles/pristi_graph.dir/sparse.cc.o.d"
  "libpristi_graph.a"
  "libpristi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
