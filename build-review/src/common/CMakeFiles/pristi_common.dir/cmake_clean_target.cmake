file(REMOVE_RECURSE
  "libpristi_common.a"
)
