file(REMOVE_RECURSE
  "CMakeFiles/pristi_common.dir/check.cc.o"
  "CMakeFiles/pristi_common.dir/check.cc.o.d"
  "CMakeFiles/pristi_common.dir/clock.cc.o"
  "CMakeFiles/pristi_common.dir/clock.cc.o.d"
  "CMakeFiles/pristi_common.dir/flags.cc.o"
  "CMakeFiles/pristi_common.dir/flags.cc.o.d"
  "CMakeFiles/pristi_common.dir/parallel.cc.o"
  "CMakeFiles/pristi_common.dir/parallel.cc.o.d"
  "CMakeFiles/pristi_common.dir/table_printer.cc.o"
  "CMakeFiles/pristi_common.dir/table_printer.cc.o.d"
  "libpristi_common.a"
  "libpristi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
