# Empty dependencies file for pristi_common.
# This may be replaced when dependencies are built.
