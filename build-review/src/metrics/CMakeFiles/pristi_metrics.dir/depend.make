# Empty dependencies file for pristi_metrics.
# This may be replaced when dependencies are built.
