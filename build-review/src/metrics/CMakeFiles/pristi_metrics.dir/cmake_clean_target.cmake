file(REMOVE_RECURSE
  "libpristi_metrics.a"
)
