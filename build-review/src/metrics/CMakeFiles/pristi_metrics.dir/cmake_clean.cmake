file(REMOVE_RECURSE
  "CMakeFiles/pristi_metrics.dir/calibration.cc.o"
  "CMakeFiles/pristi_metrics.dir/calibration.cc.o.d"
  "CMakeFiles/pristi_metrics.dir/metrics.cc.o"
  "CMakeFiles/pristi_metrics.dir/metrics.cc.o.d"
  "libpristi_metrics.a"
  "libpristi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
