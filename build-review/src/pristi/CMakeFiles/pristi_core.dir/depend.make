# Empty dependencies file for pristi_core.
# This may be replaced when dependencies are built.
