file(REMOVE_RECURSE
  "libpristi_core.a"
)
