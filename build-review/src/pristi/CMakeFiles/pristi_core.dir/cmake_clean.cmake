file(REMOVE_RECURSE
  "CMakeFiles/pristi_core.dir/pristi_model.cc.o"
  "CMakeFiles/pristi_core.dir/pristi_model.cc.o.d"
  "libpristi_core.a"
  "libpristi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pristi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
