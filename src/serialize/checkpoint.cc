#include "serialize/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace pristi::serialize {

namespace fs = std::filesystem;
namespace t = ::pristi::tensor;

using autograd::Variable;
using tensor::Tensor;

// ---- Module ----------------------------------------------------------------

void AppendModule(nn::Module& module, CheckpointWriter* writer,
                  const std::string& prefix) {
  auto named = module.NamedParameters();
  writer->AddI64(prefix + "__count", static_cast<int64_t>(named.size()));
  for (auto& [name, param] : named) {
    writer->AddTensor(prefix + name, param.value());
  }
}

Status LoadModule(nn::Module& module, const CheckpointView& view,
                  const std::string& prefix) {
  auto named = module.NamedParameters();
  int64_t stored_count = 0;
  Status status = view.GetI64(prefix + "__count", &stored_count);
  if (!status.ok()) return status;
  if (stored_count != static_cast<int64_t>(named.size())) {
    return Status::Error(
        ErrorCode::kCountMismatch,
        "checkpoint stores " + std::to_string(stored_count) +
            " parameters, model has " + std::to_string(named.size()));
  }
  // Stage every tensor before touching the module, so a failure partway
  // through leaves the live weights untouched.
  std::vector<Tensor> staged(named.size());
  for (size_t i = 0; i < named.size(); ++i) {
    const std::string& name = named[i].first;
    status = view.GetTensor(prefix + name, &staged[i]);
    if (!status.ok()) return status;
    const t::Shape& expected = named[i].second.value().shape();
    if (!t::ShapesEqual(staged[i].shape(), expected)) {
      return Status::Error(
          ErrorCode::kShapeMismatch,
          "parameter '" + name + "' has shape " +
              t::ShapeToString(expected) + " but the checkpoint stores " +
              t::ShapeToString(staged[i].shape()));
    }
  }
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value() = std::move(staged[i]);
  }
  return Status::Ok();
}

// ---- Adam ------------------------------------------------------------------

void AppendAdam(const nn::Adam& optimizer, CheckpointWriter* writer,
                const std::string& prefix) {
  const nn::AdamOptions& options = optimizer.options();
  writer->AddI64(prefix + "step", optimizer.step_count());
  writer->AddF64(prefix + "lr", options.lr);
  writer->AddF64(prefix + "beta1", options.beta1);
  writer->AddF64(prefix + "beta2", options.beta2);
  writer->AddF64(prefix + "eps", options.eps);
  writer->AddF64(prefix + "weight_decay", options.weight_decay);
  const std::vector<Tensor>& m = optimizer.moment1();
  const std::vector<Tensor>& v = optimizer.moment2();
  writer->AddI64(prefix + "__count", static_cast<int64_t>(m.size()));
  for (size_t i = 0; i < m.size(); ++i) {
    writer->AddTensor(prefix + "m." + std::to_string(i), m[i]);
    writer->AddTensor(prefix + "v." + std::to_string(i), v[i]);
  }
}

Status LoadAdam(nn::Adam* optimizer, const CheckpointView& view,
                const std::string& prefix) {
  int64_t step = 0, count = 0;
  double lr = 0, beta1 = 0, beta2 = 0, eps = 0, weight_decay = 0;
  Status status;
  if (!(status = view.GetI64(prefix + "step", &step)).ok()) return status;
  if (!(status = view.GetF64(prefix + "lr", &lr)).ok()) return status;
  if (!(status = view.GetF64(prefix + "beta1", &beta1)).ok()) return status;
  if (!(status = view.GetF64(prefix + "beta2", &beta2)).ok()) return status;
  if (!(status = view.GetF64(prefix + "eps", &eps)).ok()) return status;
  if (!(status = view.GetF64(prefix + "weight_decay", &weight_decay)).ok()) {
    return status;
  }
  if (!(status = view.GetI64(prefix + "__count", &count)).ok()) return status;
  if (step < 0) {
    return Status::Error(ErrorCode::kBadRecord,
                         "negative optimizer step count in checkpoint");
  }
  const nn::AdamOptions& options = optimizer->options();
  // beta/eps/weight-decay are configuration: a silent difference would make
  // the resumed trajectory diverge, so it is rejected rather than ignored.
  // The learning rate is *state* (the LR schedule mutates it) and is
  // restored below instead of checked.
  if (static_cast<float>(beta1) != options.beta1 ||
      static_cast<float>(beta2) != options.beta2 ||
      static_cast<float>(eps) != options.eps ||
      static_cast<float>(weight_decay) != options.weight_decay) {
    return Status::Error(ErrorCode::kConfigMismatch,
                         "checkpoint Adam hyperparameters differ from the "
                         "live optimizer's configuration");
  }
  const std::vector<Tensor>& live_m = optimizer->moment1();
  if (count != static_cast<int64_t>(live_m.size())) {
    return Status::Error(
        ErrorCode::kCountMismatch,
        "checkpoint stores " + std::to_string(count) +
            " moment buffers, optimizer tracks " +
            std::to_string(live_m.size()) + " parameters");
  }
  std::vector<Tensor> m(live_m.size()), v(live_m.size());
  for (size_t i = 0; i < live_m.size(); ++i) {
    std::string index = std::to_string(i);
    if (!(status = view.GetTensor(prefix + "m." + index, &m[i])).ok()) {
      return status;
    }
    if (!(status = view.GetTensor(prefix + "v." + index, &v[i])).ok()) {
      return status;
    }
    if (!t::ShapesEqual(m[i].shape(), live_m[i].shape()) ||
        !t::ShapesEqual(v[i].shape(), live_m[i].shape())) {
      return Status::Error(ErrorCode::kShapeMismatch,
                           "optimizer moment " + index +
                               " shape differs from the live parameter");
    }
  }
  optimizer->RestoreState(step, std::move(m), std::move(v));
  optimizer->set_lr(static_cast<float>(lr));
  return Status::Ok();
}

// ---- EMA -------------------------------------------------------------------

void AppendEma(const nn::EmaWeights& ema, CheckpointWriter* writer,
               const std::string& prefix) {
  writer->AddF64(prefix + "decay", ema.decay());
  const std::vector<Tensor>& shadow = ema.shadow();
  writer->AddI64(prefix + "__count", static_cast<int64_t>(shadow.size()));
  for (size_t i = 0; i < shadow.size(); ++i) {
    writer->AddTensor(prefix + "shadow." + std::to_string(i), shadow[i]);
  }
}

Status LoadEma(nn::EmaWeights* ema, const CheckpointView& view,
               const std::string& prefix) {
  double decay = 0;
  int64_t count = 0;
  Status status;
  if (!(status = view.GetF64(prefix + "decay", &decay)).ok()) return status;
  if (!(status = view.GetI64(prefix + "__count", &count)).ok()) return status;
  if (static_cast<float>(decay) != ema->decay()) {
    return Status::Error(ErrorCode::kConfigMismatch,
                         "checkpoint EMA decay differs from the live EMA");
  }
  const std::vector<Tensor>& live = ema->shadow();
  if (count != static_cast<int64_t>(live.size())) {
    return Status::Error(ErrorCode::kCountMismatch,
                         "checkpoint stores " + std::to_string(count) +
                             " EMA shadows, live EMA tracks " +
                             std::to_string(live.size()));
  }
  std::vector<Tensor> shadow(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    std::string name = prefix + "shadow." + std::to_string(i);
    if (!(status = view.GetTensor(name, &shadow[i])).ok()) return status;
    if (!t::ShapesEqual(shadow[i].shape(), live[i].shape())) {
      return Status::Error(ErrorCode::kShapeMismatch,
                           "EMA shadow " + std::to_string(i) +
                               " shape differs from the live parameter");
    }
  }
  ema->RestoreShadow(std::move(shadow));
  return Status::Ok();
}

// ---- RNG -------------------------------------------------------------------

void AppendRng(const Rng& rng, CheckpointWriter* writer,
               const std::string& name) {
  writer->AddString(name, rng.SaveStateString());
}

Status LoadRng(Rng* rng, const CheckpointView& view, const std::string& name) {
  std::string state;
  Status status = view.GetString(name, &state);
  if (!status.ok()) return status;
  if (!rng->LoadStateString(state)) {
    return Status::Error(ErrorCode::kBadRecord,
                         "record '" + name +
                             "' is not a valid mt19937_64 stream state");
  }
  return Status::Ok();
}

// ---- Atomic file write -----------------------------------------------------

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream&)>& write_fn) {
  // Single-writer-per-path assumption: the temp name is deterministic so a
  // crashed writer's leftover is reclaimed (overwritten) by the next save.
  std::string tmp = path + ".tmp";
  Status status;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Error(ErrorCode::kIoError,
                           "cannot open '" + tmp + "' for writing");
    }
    status = write_fn(out);
    if (status.ok() && !out) {
      status = Status::Error(ErrorCode::kIoError,
                             "write to '" + tmp + "' failed");
    }
    out.flush();
    if (status.ok() && !out) {
      status = Status::Error(ErrorCode::kIoError,
                             "flush of '" + tmp + "' failed");
    }
  }
  if (!status.ok()) {
    std::error_code ec;
    fs::remove(tmp, ec);  // best effort; never mask the original error
    return status;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Error(ErrorCode::kIoError,
                         "rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::Ok();
}

Status ParseCheckpointFile(const std::string& path, CheckpointView* view,
                           bool keep_corrupt) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(ErrorCode::kIoError, "cannot open '" + path + "'");
  }
  return CheckpointView::Parse(in, view, keep_corrupt);
}

// ---- Whole-module checkpoint files -----------------------------------------

Status SaveModuleCheckpointFile(nn::Module& module, const std::string& path) {
  return WriteFileAtomic(path, [&](std::ostream& out) {
    CheckpointWriter writer(out);
    writer.AddString("meta.kind", "pristi-module");
    AppendModule(module, &writer);
    if (!writer.Finish()) {
      return Status::Error(ErrorCode::kIoError, "checkpoint write failed");
    }
    return Status::Ok();
  });
}

Status LoadModuleCheckpointFile(nn::Module& module, const std::string& path) {
  CheckpointView view;
  Status status = ParseCheckpointFile(path, &view);
  if (!status.ok()) return status;
  return LoadModule(module, view);
}

Status LoadModuleCheckpointFileAuto(nn::Module& module,
                                    const std::string& path) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::Error(ErrorCode::kIoError, "cannot open '" + path + "'");
    }
    char magic[sizeof(kMagic)] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
        std::equal(magic, magic + sizeof(magic), kMagic)) {
      return LoadModuleCheckpointFile(module, path);
    }
  }
  // Legacy (pre-versioned) checkpoint written by Module::SaveToFile; its
  // loader keeps the historical CHECK-on-mismatch behavior.
  if (!module.LoadFromFile(path)) {
    return Status::Error(ErrorCode::kIoError,
                         "cannot load legacy checkpoint '" + path + "'");
  }
  return Status::Ok();
}

// ---- Retention -------------------------------------------------------------

std::string CheckpointFileName(const std::string& dir,
                               const std::string& prefix, int64_t epoch) {
  return (fs::path(dir) / (prefix + "-" + std::to_string(epoch) + ".ckpt"))
      .string();
}

Status PruneCheckpoints(const std::string& dir, const std::string& prefix,
                        int64_t keep_last) {
  if (keep_last <= 0) return Status::Ok();
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::Error(ErrorCode::kIoError,
                         "cannot list checkpoint dir '" + dir + "'");
  }
  std::vector<std::pair<int64_t, fs::path>> found;
  std::string head = prefix + "-";
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= head.size() + 5 || name.rfind(head, 0) != 0 ||
        name.substr(name.size() - 5) != ".ckpt") {
      continue;
    }
    std::string digits = name.substr(head.size(),
                                     name.size() - head.size() - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::stoll(digits), entry.path());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = static_cast<size_t>(keep_last); i < found.size(); ++i) {
    fs::remove(found[i].second, ec);  // best effort
  }
  return Status::Ok();
}

}  // namespace pristi::serialize

// ---- nn::Module checkpoint entry points ------------------------------------
// Declared in nn/module.h, defined here so the nn layer does not link
// against pristi_serialize; callers of these members must.

namespace pristi::nn {

serialize::Status Module::SaveCheckpoint(std::ostream& out) {
  serialize::CheckpointWriter writer(out);
  writer.AddString("meta.kind", "pristi-module");
  serialize::AppendModule(*this, &writer);
  if (!writer.Finish()) {
    return serialize::Status::Error(serialize::ErrorCode::kIoError,
                                    "checkpoint write failed");
  }
  return serialize::Status::Ok();
}

serialize::Status Module::LoadCheckpoint(std::istream& in) {
  serialize::CheckpointView view;
  serialize::Status status = serialize::CheckpointView::Parse(in, &view);
  if (!status.ok()) return status;
  return serialize::LoadModule(*this, view);
}

}  // namespace pristi::nn
