#ifndef PRISTI_SERIALIZE_STATUS_H_
#define PRISTI_SERIALIZE_STATUS_H_

// Compatibility shim: Status moved to common/status.h so that interfaces
// below serialize in the layering DAG (nn::Module's checkpoint entry
// points) can mention it without a forbidden nn -> serialize include
// edge. Existing pristi::serialize::Status spellings keep working through
// these aliases; new code should include "common/status.h" directly.

#include "common/status.h"

namespace pristi::serialize {

using pristi::ErrorCode;
using pristi::ErrorCodeName;
using pristi::Status;

}  // namespace pristi::serialize

#endif  // PRISTI_SERIALIZE_STATUS_H_
