#include "serialize/format.h"

#include <array>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace pristi::serialize {

namespace t = ::pristi::tensor;

namespace {

// Record names are free-form but short; a multi-megabyte length is always
// corruption, and bounding it keeps a flipped length bit from triggering a
// giant allocation before the CRC check can reject the record.
constexpr uint64_t kMaxNameLen = 1 << 16;
constexpr int64_t kMaxTensorRank = 8;
constexpr int64_t kMaxTensorNumel = int64_t{1} << 31;

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

template <typename T>
void AppendRaw(std::string* out, const T& value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out->append(bytes, sizeof(T));
}

// Reads a fixed-size little-endian value from `bytes` at `pos`; the caller
// has already bounds-checked.
template <typename T>
T ReadRaw(const std::string& bytes, size_t pos) {
  T value;
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  return value;
}

}  // namespace

const char* RecordTagName(RecordTag tag) {
  switch (tag) {
    case RecordTag::kEnd: return "end";
    case RecordTag::kTensor: return "tensor";
    case RecordTag::kI64: return "i64";
    case RecordTag::kF64: return "f64";
    case RecordTag::kF64List: return "f64-list";
    case RecordTag::kString: return "string";
  }
  return "unknown";
}

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static constexpr std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

// ---- Writer ----------------------------------------------------------------

CheckpointWriter::CheckpointWriter(std::ostream& out) : out_(out) {
  out_.write(kMagic, sizeof(kMagic));
  uint32_t version = kFormatVersion;
  out_.write(reinterpret_cast<const char*>(&version), sizeof(version));
}

void CheckpointWriter::AddRecord(RecordTag tag, const std::string& name,
                                 const std::string& payload) {
  std::string record;
  record.reserve(20 + name.size() + payload.size());
  AppendRaw(&record, static_cast<uint32_t>(tag));
  AppendRaw(&record, static_cast<uint32_t>(name.size()));
  record.append(name);
  AppendRaw(&record, static_cast<uint64_t>(payload.size()));
  record.append(payload);
  uint32_t crc = Crc32(record.data(), record.size());
  AppendRaw(&record, crc);
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
}

void CheckpointWriter::AddTensor(const std::string& name,
                                 const tensor::Tensor& tensor) {
  std::string payload;
  payload.reserve(4 + 8 * static_cast<size_t>(tensor.ndim()) +
                  4 * static_cast<size_t>(tensor.numel()));
  AppendRaw(&payload, static_cast<uint32_t>(tensor.ndim()));
  for (int64_t i = 0; i < tensor.ndim(); ++i) {
    AppendRaw(&payload, tensor.dim(i));
  }
  if (tensor.numel() > 0) {  // a numel-0 tensor may have a null data pointer
    payload.append(reinterpret_cast<const char*>(tensor.data()),
                   static_cast<size_t>(tensor.numel()) * sizeof(float));
  }
  AddRecord(RecordTag::kTensor, name, payload);
}

void CheckpointWriter::AddI64(const std::string& name, int64_t value) {
  std::string payload;
  AppendRaw(&payload, value);
  AddRecord(RecordTag::kI64, name, payload);
}

void CheckpointWriter::AddF64(const std::string& name, double value) {
  std::string payload;
  AppendRaw(&payload, value);
  AddRecord(RecordTag::kF64, name, payload);
}

void CheckpointWriter::AddF64List(const std::string& name,
                                  const std::vector<double>& values) {
  std::string payload;
  payload.reserve(8 + 8 * values.size());
  AppendRaw(&payload, static_cast<uint64_t>(values.size()));
  for (double value : values) AppendRaw(&payload, value);
  AddRecord(RecordTag::kF64List, name, payload);
}

void CheckpointWriter::AddString(const std::string& name,
                                 const std::string& value) {
  AddRecord(RecordTag::kString, name, value);
}

bool CheckpointWriter::Finish() {
  if (!finished_) {
    AddRecord(RecordTag::kEnd, "", "");
    out_.flush();
    finished_ = true;
  }
  return static_cast<bool>(out_);
}

// ---- Reader ----------------------------------------------------------------

namespace {

// Reads exactly `n` bytes into `out`; false on short read.
bool ReadBytes(std::istream& in, size_t n, std::string* out) {
  out->resize(n);
  if (n == 0) return true;
  in.read(out->data(), static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

}  // namespace

Status CheckpointView::Parse(std::istream& in, CheckpointView* view,
                             bool keep_corrupt) {
  view->records_.clear();
  view->format_version_ = 0;

  in.clear();
  in.seekg(0, std::ios::end);
  if (!in.good()) {
    return Status::Error(ErrorCode::kIoError, "stream is not seekable");
  }
  uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  std::string header;
  if (file_size < sizeof(kMagic) + sizeof(uint32_t) ||
      !ReadBytes(in, sizeof(kMagic) + sizeof(uint32_t), &header)) {
    return Status::Error(ErrorCode::kTruncated,
                         "file is shorter than the checkpoint header");
  }
  if (std::memcmp(header.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Error(ErrorCode::kBadMagic,
                         "missing PRSTCKPT magic; not a checkpoint file");
  }
  view->format_version_ = ReadRaw<uint32_t>(header, sizeof(kMagic));
  if (view->format_version_ != kFormatVersion) {
    return Status::Error(
        ErrorCode::kVersionSkew,
        "checkpoint format version " + std::to_string(view->format_version_) +
            " does not match this build's version " +
            std::to_string(kFormatVersion));
  }

  uint64_t pos = sizeof(kMagic) + sizeof(uint32_t);
  Status first_error = Status::Ok();
  auto fail = [&](ErrorCode code, const std::string& message) {
    if (first_error.ok()) first_error = Status::Error(code, message);
    return first_error;
  };

  bool saw_end = false;
  while (!saw_end) {
    Record record;
    record.offset = pos;
    std::string fixed;
    if (file_size - pos < 8 || !ReadBytes(in, 8, &fixed)) {
      return fail(ErrorCode::kTruncated,
                  "file ends before the end record (offset " +
                      std::to_string(pos) + ")");
    }
    uint32_t raw_tag = ReadRaw<uint32_t>(fixed, 0);
    uint64_t name_len = ReadRaw<uint32_t>(fixed, 4);
    pos += 8;
    if (name_len > kMaxNameLen || name_len > file_size - pos) {
      return fail(ErrorCode::kBadRecord,
                  "implausible record name length " +
                      std::to_string(name_len) + " at offset " +
                      std::to_string(record.offset));
    }
    if (!ReadBytes(in, static_cast<size_t>(name_len), &record.name)) {
      return fail(ErrorCode::kTruncated, "file ends inside a record name");
    }
    pos += name_len;
    std::string len_bytes;
    if (file_size - pos < 8 || !ReadBytes(in, 8, &len_bytes)) {
      return fail(ErrorCode::kTruncated,
                  "file ends before the payload length of record '" +
                      record.name + "'");
    }
    uint64_t payload_len = ReadRaw<uint64_t>(len_bytes, 0);
    pos += 8;
    if (payload_len > file_size - pos) {
      return fail(ErrorCode::kTruncated,
                  "payload of record '" + record.name + "' (" +
                      std::to_string(payload_len) +
                      " bytes) extends past the end of the file");
    }
    if (!ReadBytes(in, static_cast<size_t>(payload_len), &record.payload)) {
      return fail(ErrorCode::kTruncated,
                  "file ends inside the payload of record '" + record.name +
                      "'");
    }
    pos += payload_len;
    std::string crc_bytes;
    if (file_size - pos < 4 || !ReadBytes(in, 4, &crc_bytes)) {
      return fail(ErrorCode::kTruncated,
                  "file ends before the checksum of record '" + record.name +
                      "'");
    }
    record.stored_crc = ReadRaw<uint32_t>(crc_bytes, 0);
    pos += 4;

    uint32_t crc = Crc32(fixed.data(), fixed.size());
    crc = Crc32(record.name.data(), record.name.size(), crc);
    crc = Crc32(len_bytes.data(), len_bytes.size(), crc);
    crc = Crc32(record.payload.data(), record.payload.size(), crc);
    record.crc_ok = crc == record.stored_crc;
    record.tag = static_cast<RecordTag>(raw_tag);
    record.byte_size = pos - record.offset;
    if (!record.crc_ok) {
      Status error = Status::Error(
          ErrorCode::kChecksumMismatch,
          "record '" + record.name + "' at offset " +
              std::to_string(record.offset) + " failed its CRC-32 check");
      if (!keep_corrupt) return error;
      if (first_error.ok()) first_error = error;
    }
    saw_end = record.crc_ok && record.tag == RecordTag::kEnd;
    view->records_.push_back(std::move(record));
    if (!saw_end && pos >= file_size) {
      return fail(ErrorCode::kTruncated,
                  "file ends before the end record");
    }
  }
  if (pos != file_size) {
    return fail(ErrorCode::kBadRecord,
                std::to_string(file_size - pos) +
                    " trailing bytes after the end record");
  }
  return first_error;
}

const Record* CheckpointView::Find(const std::string& name) const {
  for (const Record& record : records_) {
    if (record.tag != RecordTag::kEnd && record.name == name) return &record;
  }
  return nullptr;
}

Status CheckpointView::CheckedRecord(const std::string& name, RecordTag tag,
                                     const Record** out) const {
  const Record* record = Find(name);
  if (record == nullptr) {
    return Status::Error(ErrorCode::kMissingRecord,
                         "checkpoint has no record named '" + name + "'");
  }
  if (!record->crc_ok) {
    return Status::Error(ErrorCode::kChecksumMismatch,
                         "record '" + name + "' failed its CRC-32 check");
  }
  if (record->tag != tag) {
    return Status::Error(
        ErrorCode::kTypeMismatch,
        "record '" + name + "' holds " +
            std::string(RecordTagName(record->tag)) + ", expected " +
            RecordTagName(tag));
  }
  *out = record;
  return Status::Ok();
}

Status DecodeTensorPayload(const std::string& payload, tensor::Tensor* out) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::Error(ErrorCode::kBadRecord,
                         "tensor payload shorter than its rank field");
  }
  uint32_t ndim = ReadRaw<uint32_t>(payload, 0);
  if (ndim > kMaxTensorRank) {
    return Status::Error(ErrorCode::kBadRecord,
                         "implausible tensor rank " + std::to_string(ndim));
  }
  size_t header = sizeof(uint32_t) + sizeof(int64_t) * ndim;
  if (payload.size() < header) {
    return Status::Error(ErrorCode::kBadRecord,
                         "tensor payload shorter than its shape");
  }
  t::Shape shape(ndim);
  int64_t numel = 1;
  for (uint32_t i = 0; i < ndim; ++i) {
    int64_t dim = ReadRaw<int64_t>(payload, sizeof(uint32_t) +
                                                sizeof(int64_t) * i);
    if (dim < 0 || (dim > 0 && numel > kMaxTensorNumel / dim)) {
      return Status::Error(ErrorCode::kBadRecord,
                           "implausible tensor dimension " +
                               std::to_string(dim));
    }
    shape[i] = dim;
    numel *= dim;
  }
  // An empty shape denotes a scalar (numel 1) in this library, matching
  // Tensor's convention; zero dims give numel 0.
  size_t expected = header + sizeof(float) * static_cast<size_t>(numel);
  if (payload.size() != expected) {
    return Status::Error(
        ErrorCode::kBadRecord,
        "tensor payload is " + std::to_string(payload.size()) +
            " bytes, expected " + std::to_string(expected) + " for shape " +
            t::ShapeToString(shape));
  }
  t::Tensor result(shape);
  if (numel > 0) {  // a numel-0 tensor may have a null data pointer
    std::memcpy(result.data(), payload.data() + header,
                sizeof(float) * static_cast<size_t>(numel));
  }
  *out = std::move(result);
  return Status::Ok();
}

Status CheckpointView::GetTensor(const std::string& name,
                                 tensor::Tensor* out) const {
  const Record* record = nullptr;
  Status status = CheckedRecord(name, RecordTag::kTensor, &record);
  if (!status.ok()) return status;
  status = DecodeTensorPayload(record->payload, out);
  if (!status.ok()) {
    return Status::Error(status.code(),
                         "record '" + name + "': " + status.message());
  }
  return Status::Ok();
}

Status CheckpointView::GetI64(const std::string& name, int64_t* out) const {
  const Record* record = nullptr;
  Status status = CheckedRecord(name, RecordTag::kI64, &record);
  if (!status.ok()) return status;
  if (record->payload.size() != sizeof(int64_t)) {
    return Status::Error(ErrorCode::kBadRecord,
                         "record '" + name + "' has a malformed i64 payload");
  }
  *out = ReadRaw<int64_t>(record->payload, 0);
  return Status::Ok();
}

Status CheckpointView::GetF64(const std::string& name, double* out) const {
  const Record* record = nullptr;
  Status status = CheckedRecord(name, RecordTag::kF64, &record);
  if (!status.ok()) return status;
  if (record->payload.size() != sizeof(double)) {
    return Status::Error(ErrorCode::kBadRecord,
                         "record '" + name + "' has a malformed f64 payload");
  }
  *out = ReadRaw<double>(record->payload, 0);
  return Status::Ok();
}

Status CheckpointView::GetF64List(const std::string& name,
                                  std::vector<double>* out) const {
  const Record* record = nullptr;
  Status status = CheckedRecord(name, RecordTag::kF64List, &record);
  if (!status.ok()) return status;
  const std::string& payload = record->payload;
  if (payload.size() < sizeof(uint64_t)) {
    return Status::Error(ErrorCode::kBadRecord,
                         "record '" + name + "' has a malformed list payload");
  }
  uint64_t count = ReadRaw<uint64_t>(payload, 0);
  if (payload.size() != sizeof(uint64_t) + sizeof(double) * count) {
    return Status::Error(ErrorCode::kBadRecord,
                         "record '" + name +
                             "' list length disagrees with its payload size");
  }
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    (*out)[i] = ReadRaw<double>(payload, sizeof(uint64_t) + sizeof(double) * i);
  }
  return Status::Ok();
}

Status CheckpointView::GetString(const std::string& name,
                                 std::string* out) const {
  const Record* record = nullptr;
  Status status = CheckedRecord(name, RecordTag::kString, &record);
  if (!status.ok()) return status;
  *out = record->payload;
  return Status::Ok();
}

}  // namespace pristi::serialize
