#ifndef PRISTI_SERIALIZE_CHECKPOINT_H_
#define PRISTI_SERIALIZE_CHECKPOINT_H_

// High-level checkpoint assembly on top of the record format (format.h):
// named parameter maps for nn::Module trees, Adam optimizer state (step
// count + moment buffers + hyperparameters), EMA shadow weights, RNG stream
// positions and the diffusion noise schedule — everything a training run
// needs to resume bit-identically — plus crash-safe file handling (atomic
// write-to-temp + rename) and keep-last-K retention.
//
// Record naming convention inside one checkpoint file:
//   meta.kind                "pristi-module" | "pristi-training"
//   model.__count            number of parameter records
//   model.<hierarchical name>  one tensor per named parameter
//   adam.step / adam.lr / adam.beta1 / adam.beta2 / adam.eps
//   adam.weight_decay / adam.__count / adam.m.<i> / adam.v.<i>
//   ema.decay / ema.__count / ema.shadow.<i>
//   rng.train                textual mt19937_64 stream state
//   schedule.beta            the beta vector the model was trained under
//   train.epoch              epochs completed (index of the next epoch)
//   train.losses             per-epoch mean training loss so far

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/ema.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "serialize/format.h"
#include "serialize/status.h"

namespace pristi::serialize {

// ---- Component writers/loaders ---------------------------------------------
// Writers append records under `prefix`; loaders validate names, shapes and
// counts against the live object and return typed errors without mutating
// it on failure (a partially-applied restore would be worse than a crash).

void AppendModule(nn::Module& module, CheckpointWriter* writer,
                  const std::string& prefix = "model.");
Status LoadModule(nn::Module& module, const CheckpointView& view,
                  const std::string& prefix = "model.");

void AppendAdam(const nn::Adam& optimizer, CheckpointWriter* writer,
                const std::string& prefix = "adam.");
Status LoadAdam(nn::Adam* optimizer, const CheckpointView& view,
                const std::string& prefix = "adam.");

void AppendEma(const nn::EmaWeights& ema, CheckpointWriter* writer,
               const std::string& prefix = "ema.");
Status LoadEma(nn::EmaWeights* ema, const CheckpointView& view,
               const std::string& prefix = "ema.");

void AppendRng(const Rng& rng, CheckpointWriter* writer,
               const std::string& name = "rng.train");
Status LoadRng(Rng* rng, const CheckpointView& view,
               const std::string& name = "rng.train");

// ---- Whole-module checkpoint files -----------------------------------------
// A standalone model checkpoint ("pristi-module" kind): header + named
// parameters. Save is atomic (temp file + rename).
Status SaveModuleCheckpointFile(nn::Module& module, const std::string& path);
Status LoadModuleCheckpointFile(nn::Module& module, const std::string& path);
// Sniffs the magic: new-format files go through LoadModuleCheckpointFile;
// anything else falls back to the legacy Module::LoadFromFile format so
// pre-existing checkpoints keep working.
Status LoadModuleCheckpointFileAuto(nn::Module& module,
                                    const std::string& path);

// ---- Crash-safe file write -------------------------------------------------
// Runs `write_fn` against a temporary file next to `path`, then renames it
// over `path` only if every write succeeded. On any failure the temporary
// is removed and `path` is left untouched, so a reader never observes a
// partial checkpoint under the final name.
Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::ostream&)>& write_fn);

// Parses `path` into `view` (strict mode unless keep_corrupt).
Status ParseCheckpointFile(const std::string& path, CheckpointView* view,
                           bool keep_corrupt = false);

// ---- Retention -------------------------------------------------------------
// "<dir>/<prefix>-<epoch>.ckpt".
std::string CheckpointFileName(const std::string& dir,
                               const std::string& prefix, int64_t epoch);
// Deletes all but the `keep_last` highest-epoch "<prefix>-<N>.ckpt" files
// in `dir`. keep_last <= 0 keeps everything.
Status PruneCheckpoints(const std::string& dir, const std::string& prefix,
                        int64_t keep_last);

}  // namespace pristi::serialize

#endif  // PRISTI_SERIALIZE_CHECKPOINT_H_
