#ifndef PRISTI_SERIALIZE_FORMAT_H_
#define PRISTI_SERIALIZE_FORMAT_H_

// The PriSTI checkpoint container format (version 1).
//
// Layout (all integers little-endian; big-endian hosts are rejected at
// compile time):
//
//   [8]  magic "PRSTCKPT"
//   [4]  uint32 format version (kFormatVersion)
//   ...  records, each:
//          [4] uint32 tag              (RecordTag)
//          [4] uint32 name length
//          [n] name bytes
//          [8] uint64 payload length
//          [p] payload bytes
//          [4] uint32 CRC-32 of everything from the tag through the payload
//              (so a flipped bit in ANY field of the record — including the
//              length prefixes — is detected)
//   ...  a final record with tag kEnd, empty name, empty payload. A file
//        that ends before the end record is truncated by definition, which
//        is how mid-write crashes are detected even without the atomic
//        rename protection in checkpoint.h.
//
// Payload encodings per tag:
//   kTensor  : uint32 ndim, ndim x int64 dims, numel x float32 (raw bits,
//              so round trips are bit-exact including NaN payloads)
//   kI64     : int64
//   kF64     : double (raw IEEE-754 bits)
//   kF64List : uint64 count, count x double
//   kString  : raw bytes (e.g. the textual std::mt19937_64 stream state)
//
// Changing any of the layout constants between the serialize-layout-begin /
// serialize-layout-end markers below REQUIRES bumping kFormatVersion and
// refreshing the fingerprint comment — tools/pristi_lint enforces the
// fingerprint (rule `serialize-version-guard`), so a layout edit cannot
// land silently.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serialize/status.h"
#include "tensor/tensor.h"

namespace pristi::serialize {

static_assert(std::endian::native == std::endian::little,
              "checkpoint format is defined little-endian");

// serialize-layout-begin
inline constexpr char kMagic[8] = {'P', 'R', 'S', 'T', 'C', 'K', 'P', 'T'};
inline constexpr uint32_t kFormatVersion = 1;

enum class RecordTag : uint32_t {
  kEnd = 0,
  kTensor = 1,
  kI64 = 2,
  kF64 = 3,
  kF64List = 4,
  kString = 5,
};
// serialize-layout-end
// serialize-layout-fingerprint: 0x963CC961

const char* RecordTagName(RecordTag tag);

// ---- CRC-32 (IEEE 802.3 / zlib polynomial, table-driven) -------------------
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// ---- Writer ----------------------------------------------------------------
// Streams records to `out`. Every Add* buffers one record, checksums it and
// writes it; Finish() appends the end record. The writer never leaves a
// readable file behind on failure when used through WriteFileAtomic
// (checkpoint.h).
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::ostream& out);

  void AddTensor(const std::string& name, const tensor::Tensor& t);
  void AddI64(const std::string& name, int64_t value);
  void AddF64(const std::string& name, double value);
  void AddF64List(const std::string& name, const std::vector<double>& values);
  void AddString(const std::string& name, const std::string& value);

  // Writes the end record and flushes. Returns false if any write failed.
  bool Finish();

 private:
  void AddRecord(RecordTag tag, const std::string& name,
                 const std::string& payload);

  std::ostream& out_;
  bool finished_ = false;
};

// ---- Reader ----------------------------------------------------------------
// One parsed record. `offset`/`byte_size` describe the record's position in
// the file (used by the fault-injection tests to truncate at exact record
// boundaries and by `pristi_cli inspect` to report layout).
struct Record {
  RecordTag tag = RecordTag::kEnd;
  std::string name;
  std::string payload;     // raw payload bytes (already length-validated)
  uint32_t stored_crc = 0;
  bool crc_ok = false;
  uint64_t offset = 0;     // byte offset of the record's tag field
  uint64_t byte_size = 0;  // total record size including the CRC field
};

// Parsed view of a checkpoint stream: the record table plus typed accessors.
// Parse() in strict mode (keep_corrupt = false) fails on the FIRST structural
// or checksum problem; with keep_corrupt = true it parses as far as the
// structure allows, marks bad checksums per record, and still returns the
// first error so `inspect` can both render the table and report damage.
class CheckpointView {
 public:
  static Status Parse(std::istream& in, CheckpointView* view,
                      bool keep_corrupt = false);

  uint32_t format_version() const { return format_version_; }
  // All records, end record included (its tag is RecordTag::kEnd).
  const std::vector<Record>& records() const { return records_; }

  // First record with this name, or nullptr.
  const Record* Find(const std::string& name) const;

  // Typed decoders: kMissingRecord when absent, kTypeMismatch on a wrong
  // tag, kBadRecord on a malformed payload, kChecksumMismatch when the
  // record failed its CRC (possible in keep_corrupt views).
  Status GetTensor(const std::string& name, tensor::Tensor* out) const;
  Status GetI64(const std::string& name, int64_t* out) const;
  Status GetF64(const std::string& name, double* out) const;
  Status GetF64List(const std::string& name, std::vector<double>* out) const;
  Status GetString(const std::string& name, std::string* out) const;

 private:
  Status CheckedRecord(const std::string& name, RecordTag tag,
                       const Record** out) const;

  uint32_t format_version_ = 0;
  std::vector<Record> records_;
};

// Decodes a kTensor payload; shared by CheckpointView and `inspect` (which
// wants shapes for the record table without a full load).
Status DecodeTensorPayload(const std::string& payload, tensor::Tensor* out);

}  // namespace pristi::serialize

#endif  // PRISTI_SERIALIZE_FORMAT_H_
