#include "serve/session.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "serialize/checkpoint.h"
#include "tensor/tensor.h"

namespace pristi::serve {

ServeConfig ServeConfig::FromEnv() {
  ServeConfig config;
  config.max_batch = GetEnvIntOr("PRISTI_SERVE_MAX_BATCH", config.max_batch);
  config.max_wait_nanos =
      GetEnvIntOr("PRISTI_SERVE_MAX_WAIT_MS", 5) * 1'000'000;
  config.queue_capacity =
      GetEnvIntOr("PRISTI_SERVE_QUEUE_CAP", config.queue_capacity);
  std::string sampler = GetEnvOr("PRISTI_SERVE_SAMPLER", "");
  if (!sampler.empty()) {
    PRISTI_CHECK(
        diffusion::ParseSamplerKind(sampler, &config.impute.sampler))
        << "PRISTI_SERVE_SAMPLER: unknown sampler '" << sampler
        << "' (ddpm|ddim|plms)";
  }
  config.impute.num_inference_steps = GetEnvIntOr(
      "PRISTI_SERVE_STEPS", config.impute.num_inference_steps);
  return config;
}

Status ParseSamplerName(const std::string& name,
                        diffusion::SamplerKind* out) {
  if (!diffusion::ParseSamplerKind(name, out)) {
    return Status::Error(ErrorCode::kInvalidRequest,
                         "unknown sampler '" + name + "' (ddpm|ddim|plms)");
  }
  return Status::Ok();
}

ServeSession::ServeSession(ModelSlot initial, ModelFactory factory,
                           diffusion::NoiseSchedule schedule,
                           const ServeConfig& config, Clock* clock)
    : config_(config),
      schedule_(std::move(schedule)),
      clock_(clock != nullptr ? clock : RealClock()),
      factory_(std::move(factory)),
      active_(std::move(initial)),
      queue_(config.queue_capacity, clock_) {
  PRISTI_CHECK(active_.predictor != nullptr);
  PRISTI_CHECK_GE(config_.num_nodes, 1);
  PRISTI_CHECK_GE(config_.window_len, 1);
  PRISTI_CHECK_GE(config_.max_batch, 1);
  PRISTI_CHECK_GE(config_.max_wait_nanos, 0);
  PRISTI_CHECK_GT(config_.impute.num_samples, 0);
  if (config_.start_worker) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

ServeSession::~ServeSession() { Shutdown(DrainMode::kDrain); }

std::future<ImputeResponse> ServeSession::Submit(ImputeRequest request) {
  std::promise<ImputeResponse> promise;
  std::future<ImputeResponse> future = promise.get_future();
  const tensor::Tensor& values = request.window.values;
  bool shape_ok = values.ndim() == 2 && values.dim(0) == config_.num_nodes &&
                  values.dim(1) == config_.window_len &&
                  tensor::ShapesEqual(values.shape(),
                                      request.window.observed.shape());
  if (!shape_ok) {
    ImputeResponse response;
    response.status = Status::Error(
        ErrorCode::kInvalidRequest,
        "request window must be (" + std::to_string(config_.num_nodes) +
            ", " + std::to_string(config_.window_len) +
            ") with a matching observed mask");
    std::lock_guard<std::mutex> guard(mu_);
    ++stats_.rejected_invalid;
    promise.set_value(std::move(response));
    return future;
  }
  if (request.num_inference_steps.has_value() &&
      *request.num_inference_steps < 0) {
    ImputeResponse response;
    response.status = Status::Error(
        ErrorCode::kInvalidRequest,
        "num_inference_steps must be >= 0 (0 = full schedule), got " +
            std::to_string(*request.num_inference_steps));
    std::lock_guard<std::mutex> guard(mu_);
    ++stats_.rejected_invalid;
    promise.set_value(std::move(response));
    return future;
  }

  Pending pending;
  pending.request = std::move(request);
  pending.admitted_nanos = clock_->NowNanos();
  pending.promise = std::move(promise);
  Status admitted = queue_.TryPush(&pending);
  if (!admitted.ok()) {
    // TryPush consumes `pending` only on success, so the promise is still
    // ours to resolve with the typed rejection.
    ImputeResponse response;
    response.status = admitted;
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (admitted.code() == ErrorCode::kQueueFull) {
        ++stats_.rejected_full;
      } else {
        ++stats_.cancelled;
      }
    }
    pending.promise.set_value(std::move(response));
    return future;
  }
  std::lock_guard<std::mutex> guard(mu_);
  ++stats_.admitted;
  return future;
}

Status ServeSession::ReloadCheckpoint(const std::string& path) {
  if (!factory_) {
    return Status::Error(ErrorCode::kInvalidRequest,
                         "session has no model factory; hot reload disabled");
  }
  ModelSlot staging = factory_();
  PRISTI_CHECK(staging.predictor != nullptr);
  if (staging.module == nullptr) {
    return Status::Error(ErrorCode::kInvalidRequest,
                         "staging model is not an nn::Module");
  }
  Status status =
      serialize::LoadModuleCheckpointFileAuto(*staging.module, path);
  if (!status.ok()) {
    std::lock_guard<std::mutex> guard(mu_);
    ++stats_.reloads_rejected;
    return status;  // live model untouched, keeps serving
  }
  std::lock_guard<std::mutex> guard(mu_);
  staged_ = std::move(staging);  // newest staged model wins
  return Status::Ok();
}

void ServeSession::ApplyStagedReload() {
  ModelSlot staged;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (staged_.predictor == nullptr) return;
    staged = std::move(staged_);
    staged_ = ModelSlot{};
    ++stats_.reloads_applied;
  }
  // The worker is the only model user, and it is between batches here, so
  // the swap is atomic from every client's point of view: a batch runs
  // entirely on old weights or entirely on new ones.
  active_ = std::move(staged);
}

void ServeSession::RunBatch(std::vector<Pending> batch) {
  int64_t start_nanos = clock_->NowNanos();
  std::vector<data::Sample> windows;
  std::vector<uint64_t> seeds;
  std::vector<diffusion::ImputeOptions> options;
  windows.reserve(batch.size());
  seeds.reserve(batch.size());
  options.reserve(batch.size());
  for (Pending& pending : batch) {
    windows.push_back(pending.request.window);
    seeds.push_back(pending.request.seed);
    // Effective options: the session default with this request's sampler
    // overrides applied. The coalescing layer groups like-configured
    // requests; each response stays bit-identical to its solo run.
    diffusion::ImputeOptions effective = config_.impute;
    if (pending.request.sampler.has_value()) {
      effective.sampler = *pending.request.sampler;
    }
    if (pending.request.num_inference_steps.has_value()) {
      effective.num_inference_steps = *pending.request.num_inference_steps;
    }
    options.push_back(effective);
  }
  std::vector<diffusion::ImputationResult> results =
      diffusion::ImputeWindowsCoalesced(active_.predictor.get(), schedule_,
                                        windows, seeds, options);
  int64_t end_nanos = clock_->NowNanos();
  for (size_t i = 0; i < batch.size(); ++i) {
    ImputeResponse response;
    response.status = Status::Ok();
    response.result = std::move(results[i]);
    response.batch_size = static_cast<int64_t>(batch.size());
    response.queue_nanos = start_nanos - batch[i].admitted_nanos;
    response.total_nanos = end_nanos - batch[i].admitted_nanos;
    batch[i].promise.set_value(std::move(response));
  }
  std::lock_guard<std::mutex> guard(mu_);
  ++stats_.batches;
  stats_.completed += static_cast<int64_t>(batch.size());
  stats_.max_batch_observed = std::max(
      stats_.max_batch_observed, static_cast<int64_t>(batch.size()));
}

bool ServeSession::PumpOnce() {
  std::vector<Pending> batch =
      queue_.PopBatch(config_.max_batch, config_.max_wait_nanos);
  if (batch.empty()) return false;
  ApplyStagedReload();
  RunBatch(std::move(batch));
  return true;
}

void ServeSession::WorkerLoop() {
  while (PumpOnce()) {
  }
}

void ServeSession::Shutdown(DrainMode mode) {
  // call_once makes shutdown idempotent and safe for concurrent callers:
  // the first caller's mode wins and later callers block until it is done.
  std::call_once(shutdown_once_, [&] {
    if (mode == DrainMode::kCancel) {
      std::vector<Pending> cancelled = queue_.CancelPending();
      for (Pending& pending : cancelled) {
        ImputeResponse response;
        response.status = Status::Error(
            ErrorCode::kCancelled, "session shut down before the request ran");
        pending.promise.set_value(std::move(response));
      }
      std::lock_guard<std::mutex> guard(mu_);
      stats_.cancelled += static_cast<int64_t>(cancelled.size());
    } else {
      queue_.Close();
    }
    if (worker_.joinable()) {
      worker_.join();  // drains remaining batches, finishes in-flight work
    } else if (mode == DrainMode::kDrain) {
      // Manual-pump mode: drain inline on the caller.
      while (PumpOnce()) {
      }
    }
  });
}

ServeSession::Stats ServeSession::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

}  // namespace pristi::serve
