#ifndef PRISTI_SERVE_SESSION_H_
#define PRISTI_SERVE_SESSION_H_

// The serving layer: a long-running session that accepts concurrent
// imputation requests (sliding (N, L) windows over sensor streams), admits
// them through a bounded queue, coalesces waiting requests into one
// (R*S, N, L) reverse-diffusion call (diffusion::ImputeWindowsCoalesced),
// and answers each with its per-request quantiles/median.
//
// Contracts the test layer (tests/serve_test.cc) enforces:
//
//   * Determinism — a request's response depends only on (window, seed,
//     model weights, ImputeOptions): it is bit-identical to running the
//     request solo through diffusion::ImputeWindow with Rng(seed), no
//     matter which other requests shared its batch, in which order they
//     arrived, or how many pool threads ran the kernels. Batching is a
//     latency policy, never a numerics policy.
//   * Admission — Submit never blocks. A full queue resolves the future
//     immediately with the retryable kQueueFull status; a mis-shaped
//     window with kInvalidRequest; a closed session with kCancelled.
//   * Batching policy — a batch flushes when max_batch requests are
//     waiting or when the OLDEST queued request has waited max_wait_nanos,
//     whichever comes first (see common/bounded_queue.h). Time is read
//     from an injected Clock so the policy is testable without sleeps.
//   * Hot reload — ReloadCheckpoint stages new weights into a fresh model
//     instance off the serving path and swaps it in between batches. A
//     damaged checkpoint returns the typed serialize error and the old
//     model keeps serving untouched.
//   * Shutdown — kDrain answers everything already admitted, kCancel
//     resolves queued (not yet running) requests with kCancelled; both
//     wait for the in-flight batch to finish before returning.
//
// One session serializes all model access on its single batch worker, so a
// session is the supported way to share one model between threads (see
// diffusion::ModelAccessGuard).

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/clock.h"
#include "common/status.h"
#include "data/windows.h"
#include "diffusion/ddpm.h"
#include "diffusion/schedule.h"
#include "nn/module.h"

namespace pristi::serve {

// A noise predictor plus its nn::Module view (the same object, seen twice:
// PristiModel and CsdiModel both inherit from each). `module` may be null
// for predictors that are not Modules — the session then serves but cannot
// hot-reload.
struct ModelSlot {
  std::shared_ptr<diffusion::ConditionalNoisePredictor> predictor;
  nn::Module* module = nullptr;
};

// Builds a fresh, uninitialized-weights ModelSlot for checkpoint staging.
// Called off the serving path by ReloadCheckpoint; must be thread-safe
// with respect to the session's own model calls (constructing a new
// PristiModel is).
using ModelFactory = std::function<ModelSlot()>;

struct ServeConfig {
  int64_t num_nodes = 0;    // N — every request window must match (required)
  int64_t window_len = 0;   // L (required)
  // Batching policy: flush on size or oldest-waiter deadline.
  int64_t max_batch = 8;
  int64_t max_wait_nanos = 5'000'000;  // 5 ms
  int64_t queue_capacity = 64;
  // Sampling settings every request starts from. A request may override
  // the sampler and step count (see ImputeRequest); requests with the same
  // effective (sampler, steps, samples) coalesce into one model call, and
  // mixed batches are partitioned by diffusion::ImputeWindowsCoalesced's
  // per-request-options overload without giving up per-request
  // bit-identity.
  diffusion::ImputeOptions impute;
  // false: no worker thread is started and the owner drives batches
  // explicitly with PumpOnce() — single-threaded, fully deterministic mode
  // for tests and embedders with their own executor.
  bool start_worker = true;

  // Defaults with the PRISTI_SERVE_MAX_BATCH / PRISTI_SERVE_MAX_WAIT_MS /
  // PRISTI_SERVE_QUEUE_CAP / PRISTI_SERVE_SAMPLER / PRISTI_SERVE_STEPS
  // knobs applied (num_nodes/window_len and the remaining impute fields
  // are not env-controlled; callers fill them in afterwards). An unknown
  // PRISTI_SERVE_SAMPLER name is fatal — a typo must not silently serve
  // with a different sampler.
  static ServeConfig FromEnv();
};

// Parses a sampler name ("ddpm" | "ddim" | "plms") into `*out`; unknown
// names return the typed kInvalidRequest status (and leave `*out`
// untouched) so protocol front ends reject them like any other malformed
// request field.
Status ParseSamplerName(const std::string& name, diffusion::SamplerKind* out);

struct ImputeRequest {
  data::Sample window;  // values + observed mask, (N, L)
  // The request's determinism key: the response equals
  // ImputeWindow(model, schedule, window, effective options, Rng(seed))
  // bitwise, where the effective options are the session's
  // ServeConfig::impute with the overrides below applied. Callers wanting
  // diverse draws submit distinct seeds.
  uint64_t seed = 0;
  // Per-request sampler overrides; unset fields keep the session default.
  // A negative step count is rejected at admission with kInvalidRequest
  // (0 means full schedule). Requests with different effective settings
  // may share a batch — the session partitions them into coalescible
  // groups without changing any request's bits.
  std::optional<diffusion::SamplerKind> sampler;
  std::optional<int64_t> num_inference_steps;
};

struct ImputeResponse {
  Status status;  // result fields below are meaningful only when ok()
  diffusion::ImputationResult result;
  int64_t batch_size = 0;   // requests coalesced into this model call
  int64_t queue_nanos = 0;  // admission -> batch start
  int64_t total_nanos = 0;  // admission -> response ready
};

class ServeSession {
 public:
  // `initial` is the model to serve; `factory` builds staging instances
  // for hot reload (pass nullptr to disable reload). `clock` must outlive
  // the session; nullptr selects the process steady clock.
  ServeSession(ModelSlot initial, ModelFactory factory,
               diffusion::NoiseSchedule schedule, const ServeConfig& config,
               Clock* clock = nullptr);
  ~ServeSession();  // Shutdown(DrainMode::kDrain)

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  // Non-blocking admission; the future resolves when the request's batch
  // completes (or immediately, with a typed non-ok status, when it is
  // rejected). Safe to call from any number of client threads.
  std::future<ImputeResponse> Submit(ImputeRequest request);

  // Loads `path` into a fresh staging model and, on success, schedules an
  // atomic swap before the next batch. On ANY failure (damaged file,
  // wrong kind, shape skew) returns the typed error and the live model
  // keeps serving, untouched — reload is never allowed to take down a
  // serving session. Thread-safe; the swap applies the newest staged
  // model.
  Status ReloadCheckpoint(const std::string& path);

  enum class DrainMode {
    kDrain,   // answer everything already admitted, then stop
    kCancel,  // resolve queued requests with kCancelled, finish in-flight
  };
  // Stops admission and brings the worker to rest. Idempotent; the first
  // call's mode wins. Submit after shutdown resolves with kCancelled.
  void Shutdown(DrainMode mode);

  // Manual-pump mode (start_worker = false): processes exactly one batch
  // on the calling thread — applying any staged reload first — and
  // resolves its futures. Blocks per the batching policy if the queue is
  // non-empty but under max_batch (set max_wait_nanos = 0 for tests that
  // must never wait). Returns false once the queue is closed and drained.
  bool PumpOnce();

  struct Stats {
    int64_t admitted = 0;
    int64_t rejected_full = 0;     // typed-retryable queue-full rejections
    int64_t rejected_invalid = 0;  // shape mismatches
    int64_t cancelled = 0;         // resolved with kCancelled
    int64_t completed = 0;
    int64_t batches = 0;           // model calls issued
    int64_t max_batch_observed = 0;
    int64_t reloads_applied = 0;
    int64_t reloads_rejected = 0;
  };
  Stats stats() const;

  const ServeConfig& config() const { return config_; }

 private:
  struct Pending {
    ImputeRequest request;
    std::promise<ImputeResponse> promise;
    int64_t admitted_nanos = 0;
  };

  void WorkerLoop();
  void ApplyStagedReload();                   // worker/pump thread only
  void RunBatch(std::vector<Pending> batch);  // worker/pump thread only

  const ServeConfig config_;
  const diffusion::NoiseSchedule schedule_;
  Clock* const clock_;
  ModelFactory factory_;

  // The live model. Only the batch worker (or PumpOnce caller) touches
  // predictor state; `staged_` hands freshly-loaded weights across.
  ModelSlot active_;

  mutable std::mutex mu_;          // guards staged_ and stats_
  ModelSlot staged_;               // non-null predictor => swap pending
  Stats stats_;
  std::once_flag shutdown_once_;

  BoundedQueue<Pending> queue_;
  std::thread worker_;
};

}  // namespace pristi::serve

#endif  // PRISTI_SERVE_SESSION_H_
