#ifndef PRISTI_BASELINES_LINALG_H_
#define PRISTI_BASELINES_LINALG_H_

// Small dense linear-algebra helpers for the classic-ML baselines (ridge
// regression systems for VAR/MICE, ALS updates for TRMF/BATF). Sizes are at
// most a few hundred, so a straightforward Cholesky is plenty.

#include <vector>

#include "tensor/tensor.h"

namespace pristi::baselines {

using tensor::Tensor;

// Solves A x = b for symmetric positive-definite A (n x n, row-major).
// CHECK-fails if A is not positive definite (add ridge before calling).
std::vector<double> SolveSpd(std::vector<double> a, std::vector<double> b,
                             int64_t n);

// Ridge regression W = argmin ||X W - Y||^2 + lambda ||W||^2.
// X: (rows, features), Y: (rows, targets) -> W: (features, targets).
Tensor RidgeFit(const Tensor& x, const Tensor& y, double lambda);

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_LINALG_H_
