#ifndef PRISTI_BASELINES_SIMPLE_H_
#define PRISTI_BASELINES_SIMPLE_H_

// Statistic baselines from Table III: MEAN, DA (daily average), KNN
// (geographic nearest neighbours) and Lin-ITP (per-node linear
// interpolation).

#include <vector>

#include "baselines/imputer.h"

namespace pristi::baselines {

// MEAN: each node's historical average over the training range.
class MeanImputer : public Imputer {
 public:
  std::string name() const override { return "MEAN"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  std::vector<float> node_means_;
};

// DA: the average of each (node, time-of-day) cell over the training range.
class DailyAverageImputer : public Imputer {
 public:
  std::string name() const override { return "DA"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  int64_t steps_per_day_ = 0;
  // (steps_per_day, N) profile; falls back to the node mean for empty cells.
  Tensor profile_;
  std::vector<float> node_means_;
};

// KNN: distance-weighted average of the k geographically nearest nodes'
// values at the same time step.
class KnnImputer : public Imputer {
 public:
  explicit KnnImputer(int64_t k = 5) : k_(k) {}
  std::string name() const override { return "KNN"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  int64_t k_;
  // Per node: (neighbour index, kernel weight), strongest first.
  std::vector<std::vector<std::pair<int64_t, float>>> neighbours_;
  std::vector<float> node_means_;
};

// Lin-ITP: linear interpolation along each node's time series.
class LinearInterpImputer : public Imputer {
 public:
  std::string name() const override { return "Lin-ITP"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_SIMPLE_H_
