#ifndef PRISTI_BASELINES_IMPUTER_H_
#define PRISTI_BASELINES_IMPUTER_H_

// Common interface for every imputation method in the benchmark suite
// (Table III): statistics, classic ML, matrix factorization, RNN-based deep
// models and (via the eval-layer adapter) the diffusion models.

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/windows.h"
#include "tensor/tensor.h"

namespace pristi::baselines {

using tensor::Tensor;

class Imputer {
 public:
  virtual ~Imputer() = default;

  virtual std::string name() const = 0;

  // Fits on the task's training range. Only `model_observed_mask` entries
  // are visible; withheld (eval) entries must never be read.
  virtual void Fit(const data::ImputationTask& task, Rng& rng) = 0;

  // Deterministic imputation of one normalized window: returns (N, L) with
  // an estimate at every entry (observed entries may be passed through).
  virtual Tensor Impute(const data::Sample& sample, Rng& rng) = 0;

  // Probabilistic imputation; the default wraps the deterministic output
  // (a point mass), which is the correct degenerate distribution for
  // deterministic methods when computing CRPS.
  virtual std::vector<Tensor> ImputeSamples(const data::Sample& sample,
                                            int64_t num_samples, Rng& rng) {
    std::vector<Tensor> out;
    Tensor point = Impute(sample, rng);
    out.assign(static_cast<size_t>(num_samples), point);
    return out;
  }
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_IMPUTER_H_
