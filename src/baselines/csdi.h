#ifndef PRISTI_BASELINES_CSDI_H_
#define PRISTI_BASELINES_CSDI_H_

// CSDI (Tashiro et al., NeurIPS 2021): the conditional diffusion baseline
// PriSTI improves on. Shares the DDPM substrate with PriSTI but differs in
// exactly the ways the paper contrasts (Sec. I, III-B, V):
//   * conditioning is the raw observed values concatenated with the noisy
//     sample, distinguished only by a mask channel — no interpolation, no
//     conditional feature prior;
//   * two-dimensional self-attention (temporal + feature/node) computed on
//     the mixed stream itself;
//   * no message passing / geographic information at all.

#include <memory>
#include <vector>

#include "diffusion/ddpm.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace pristi::baselines {

using autograd::Variable;
using diffusion::DiffusionBatch;
using tensor::Tensor;

struct CsdiConfig {
  int64_t num_nodes = 0;
  int64_t window_len = 0;
  int64_t channels = 16;
  int64_t heads = 4;
  int64_t layers = 2;
  int64_t diffusion_emb_dim = 32;
  int64_t temporal_emb_dim = 32;
  int64_t node_emb_dim = 16;
};

class CsdiModel : public nn::Module,
                  public diffusion::ConditionalNoisePredictor {
 public:
  CsdiModel(const CsdiConfig& config, Rng& rng);
  // Out of line: Layer is an incomplete type here.
  ~CsdiModel() override;

  Variable PredictNoise(const Tensor& noisy, const DiffusionBatch& batch,
                        int64_t t) override;
  std::vector<Variable> Parameters() override {
    return nn::Module::Parameters();
  }
  void ZeroGrad() override { nn::Module::ZeroGrad(); }

  const CsdiConfig& config() const { return config_; }

 private:
  class Layer;
  Variable AuxiliaryInfo(int64_t batch_size,
                         const Tensor& cond_mask) const;

  const CsdiConfig config_;
  nn::Conv1x1 input_conv_;  // 2 -> d (observed ‖ noisy)
  std::vector<std::unique_ptr<Layer>> layers_;
  nn::Linear diff_mlp1_;
  nn::Linear diff_mlp2_;
  Variable node_embedding_;
  Tensor temporal_encoding_;
  nn::Linear aux_proj_;  // (temporal + node + mask channel) -> d
  nn::Conv1x1 out_conv1_;
  nn::Conv1x1 out_conv2_;
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_CSDI_H_
