#ifndef PRISTI_BASELINES_REGRESSION_H_
#define PRISTI_BASELINES_REGRESSION_H_

// Classic machine-learning baselines: VAR(1) (vector autoregressive
// single-step predictor) and MICE (multiple imputation by chained
// equations, ridge-regularized).

#include "baselines/imputer.h"

namespace pristi::baselines {

// VAR: x_{t+1} = W [x_t; 1], fitted by ridge regression on the (linearly
// interpolation-completed) training range. Imputation runs the one-step
// predictor forward through the window, feeding estimates back in at
// missing positions.
class VarImputer : public Imputer {
 public:
  explicit VarImputer(double ridge = 1.0) : ridge_(ridge) {}
  std::string name() const override { return "VAR"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  double ridge_;
  Tensor weights_;  // (N+1, N), last row = intercept
};

// MICE: per-node ridge regressions on all other nodes at the same step,
// fitted on the completed training range; imputation initializes missing
// entries by interpolation and applies the chained equations for a few
// rounds.
class MiceImputer : public Imputer {
 public:
  MiceImputer(double ridge = 1.0, int64_t rounds = 3)
      : ridge_(ridge), rounds_(rounds) {}
  std::string name() const override { return "MICE"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  double ridge_;
  int64_t rounds_;
  Tensor weights_;  // (N, N): row i = coefficients predicting node i
  Tensor intercepts_;  // (N,)
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_REGRESSION_H_
