#ifndef PRISTI_BASELINES_KALMAN_H_
#define PRISTI_BASELINES_KALMAN_H_

// KF baseline: a per-node local-level (random walk + observation noise)
// Kalman RTS smoother over each window, skipping the update step at missing
// observations. Matches the role of the filterpy-based baseline in the
// paper: temporal-only, no spatial information.

#include "baselines/imputer.h"

namespace pristi::baselines {

class KalmanImputer : public Imputer {
 public:
  // `process_var` (q) and `obs_var` (r) are in normalized units; the default
  // ratio favours smoothness, which is what a local-level model should do.
  KalmanImputer(double process_var = 0.05, double obs_var = 0.5)
      : process_var_(process_var), obs_var_(obs_var) {}

  std::string name() const override { return "KF"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

  // Smooths a single series with a missing mask; exposed for testing.
  static std::vector<float> SmoothSeries(const std::vector<float>& values,
                                         const std::vector<bool>& observed,
                                         double process_var, double obs_var);

 private:
  double process_var_;
  double obs_var_;
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_KALMAN_H_
