#include "baselines/linalg.h"

#include <cmath>

#include "common/logging.h"

namespace pristi::baselines {

std::vector<double> SolveSpd(std::vector<double> a, std::vector<double> b,
                             int64_t n) {
  CHECK_EQ(static_cast<int64_t>(a.size()), n * n);
  CHECK_EQ(static_cast<int64_t>(b.size()), n);
  // In-place Cholesky: A = L L^T (lower triangle of `a` becomes L).
  for (int64_t j = 0; j < n; ++j) {
    double diag = a[static_cast<size_t>(j * n + j)];
    for (int64_t k = 0; k < j; ++k) {
      double v = a[static_cast<size_t>(j * n + k)];
      diag -= v * v;
    }
    CHECK_GT(diag, 0.0) << "matrix not positive definite at pivot " << j;
    double ljj = std::sqrt(diag);
    a[static_cast<size_t>(j * n + j)] = ljj;
    for (int64_t i = j + 1; i < n; ++i) {
      double sum = a[static_cast<size_t>(i * n + j)];
      for (int64_t k = 0; k < j; ++k) {
        sum -= a[static_cast<size_t>(i * n + k)] *
               a[static_cast<size_t>(j * n + k)];
      }
      a[static_cast<size_t>(i * n + j)] = sum / ljj;
    }
  }
  // Forward solve L y = b.
  for (int64_t i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) {
      sum -= a[static_cast<size_t>(i * n + k)] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i * n + i)];
  }
  // Backward solve L^T x = y.
  for (int64_t i = n; i-- > 0;) {
    double sum = b[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) {
      sum -= a[static_cast<size_t>(k * n + i)] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = sum / a[static_cast<size_t>(i * n + i)];
  }
  return b;
}

Tensor RidgeFit(const Tensor& x, const Tensor& y, double lambda) {
  CHECK_EQ(x.ndim(), 2);
  CHECK_EQ(y.ndim(), 2);
  int64_t rows = x.dim(0), features = x.dim(1), targets = y.dim(1);
  CHECK_EQ(rows, y.dim(0));
  CHECK_GT(rows, 0);
  // Gram matrix X^T X + lambda I (double precision accumulate).
  std::vector<double> gram(static_cast<size_t>(features * features), 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x.data() + r * features;
    for (int64_t i = 0; i < features; ++i) {
      double xi = row[i];
      if (xi == 0.0) continue;
      for (int64_t j = 0; j < features; ++j) {
        gram[static_cast<size_t>(i * features + j)] += xi * row[j];
      }
    }
  }
  for (int64_t i = 0; i < features; ++i) {
    gram[static_cast<size_t>(i * features + i)] += lambda;
  }
  Tensor w(tensor::Shape{features, targets});
  for (int64_t target = 0; target < targets; ++target) {
    std::vector<double> rhs(static_cast<size_t>(features), 0.0);
    for (int64_t r = 0; r < rows; ++r) {
      double yv = y.at({r, target});
      if (yv == 0.0) continue;
      const float* row = x.data() + r * features;
      for (int64_t i = 0; i < features; ++i) {
        rhs[static_cast<size_t>(i)] += row[i] * yv;
      }
    }
    std::vector<double> solution = SolveSpd(gram, std::move(rhs), features);
    for (int64_t i = 0; i < features; ++i) {
      w.at({i, target}) = static_cast<float>(solution[static_cast<size_t>(i)]);
    }
  }
  return w;
}

}  // namespace pristi::baselines
