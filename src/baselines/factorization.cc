#include "baselines/factorization.h"

#include <vector>

#include "baselines/linalg.h"
#include "common/logging.h"

namespace pristi::baselines {

namespace t = ::pristi::tensor;

void TrmfImputer::Fit(const data::ImputationTask&, Rng&) {}

Tensor TrmfImputer::FactorizeWindow(const Tensor& values, const Tensor& mask,
                                    const FactorizationOptions& options,
                                    Rng& rng) {
  int64_t n = values.dim(0), l = values.dim(1);
  int64_t r = options.rank;
  Tensor w = Tensor::Randn({n, r}, rng);
  w.ScaleInPlace(0.1f);
  Tensor f = Tensor::Randn({r, l}, rng);
  f.ScaleInPlace(0.1f);

  for (int64_t iter = 0; iter < options.iterations; ++iter) {
    // --- Update node factors w_i: (F M_i F^T + ridge I) w_i = F M_i x_i.
    for (int64_t node = 0; node < n; ++node) {
      std::vector<double> gram(static_cast<size_t>(r * r), 0.0);
      std::vector<double> rhs(static_cast<size_t>(r), 0.0);
      for (int64_t step = 0; step < l; ++step) {
        if (mask.at({node, step}) < 0.5f) continue;
        double x = values.at({node, step});
        for (int64_t a = 0; a < r; ++a) {
          double fa = f.at({a, step});
          rhs[static_cast<size_t>(a)] += fa * x;
          for (int64_t b = 0; b < r; ++b) {
            gram[static_cast<size_t>(a * r + b)] += fa * f.at({b, step});
          }
        }
      }
      for (int64_t a = 0; a < r; ++a) {
        gram[static_cast<size_t>(a * r + a)] += options.ridge;
      }
      std::vector<double> sol = SolveSpd(std::move(gram), std::move(rhs), r);
      for (int64_t a = 0; a < r; ++a) {
        w.at({node, a}) = static_cast<float>(sol[static_cast<size_t>(a)]);
      }
    }
    // --- Update time factors f_t with the temporal coupling (Gauss-Seidel
    // sweep; neighbours enter through the AR penalty).
    for (int64_t step = 0; step < l; ++step) {
      int64_t neighbours =
          (step > 0 ? 1 : 0) + (step + 1 < l ? 1 : 0);
      std::vector<double> gram(static_cast<size_t>(r * r), 0.0);
      std::vector<double> rhs(static_cast<size_t>(r), 0.0);
      for (int64_t node = 0; node < n; ++node) {
        if (mask.at({node, step}) < 0.5f) continue;
        double x = values.at({node, step});
        for (int64_t a = 0; a < r; ++a) {
          double wa = w.at({node, a});
          rhs[static_cast<size_t>(a)] += wa * x;
          for (int64_t b = 0; b < r; ++b) {
            gram[static_cast<size_t>(a * r + b)] += wa * w.at({node, b});
          }
        }
      }
      for (int64_t a = 0; a < r; ++a) {
        gram[static_cast<size_t>(a * r + a)] +=
            options.ridge + options.temporal_reg * neighbours;
        if (step > 0) {
          rhs[static_cast<size_t>(a)] +=
              options.temporal_reg * f.at({a, step - 1});
        }
        if (step + 1 < l) {
          rhs[static_cast<size_t>(a)] +=
              options.temporal_reg * f.at({a, step + 1});
        }
      }
      std::vector<double> sol = SolveSpd(std::move(gram), std::move(rhs), r);
      for (int64_t a = 0; a < r; ++a) {
        f.at({a, step}) = static_cast<float>(sol[static_cast<size_t>(a)]);
      }
    }
  }
  return t::MatMul(w, f);
}

Tensor TrmfImputer::Impute(const data::Sample& sample, Rng& rng) {
  Tensor reconstruction =
      FactorizeWindow(sample.values, sample.observed, options_, rng);
  Tensor out = sample.values;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (sample.observed[i] < 0.5f) out[i] = reconstruction[i];
  }
  return out;
}

// ---------------------------------------------------------------------------
// BATF-lite
// ---------------------------------------------------------------------------

void BatfImputer::Fit(const data::ImputationTask&, Rng&) {}

Tensor BatfImputer::Impute(const data::Sample& sample, Rng& rng) {
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  // Estimate global mean, node biases and time biases from observed entries
  // (two alternating passes suffice for this additive model).
  double mu = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < sample.values.numel(); ++i) {
    if (sample.observed[i] > 0.5f) {
      mu += sample.values[i];
      ++count;
    }
  }
  mu = count > 0 ? mu / count : 0.0;
  std::vector<double> node_bias(static_cast<size_t>(n), 0.0);
  std::vector<double> time_bias(static_cast<size_t>(l), 0.0);
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t node = 0; node < n; ++node) {
      double sum = 0.0;
      int64_t c = 0;
      for (int64_t step = 0; step < l; ++step) {
        if (sample.observed.at({node, step}) > 0.5f) {
          sum += sample.values.at({node, step}) - mu -
                 time_bias[static_cast<size_t>(step)];
          ++c;
        }
      }
      node_bias[static_cast<size_t>(node)] = c > 0 ? sum / c : 0.0;
    }
    for (int64_t step = 0; step < l; ++step) {
      double sum = 0.0;
      int64_t c = 0;
      for (int64_t node = 0; node < n; ++node) {
        if (sample.observed.at({node, step}) > 0.5f) {
          sum += sample.values.at({node, step}) - mu -
                 node_bias[static_cast<size_t>(node)];
          ++c;
        }
      }
      time_bias[static_cast<size_t>(step)] = c > 0 ? sum / c : 0.0;
    }
  }
  // Low-rank residual factorization.
  Tensor residual = sample.values;
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      residual.at({node, step}) -= static_cast<float>(
          mu + node_bias[static_cast<size_t>(node)] +
          time_bias[static_cast<size_t>(step)]);
    }
  }
  Tensor low_rank =
      TrmfImputer::FactorizeWindow(residual, sample.observed, options_, rng);
  Tensor out = sample.values;
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if (sample.observed.at({node, step}) < 0.5f) {
        out.at({node, step}) = static_cast<float>(
            mu + node_bias[static_cast<size_t>(node)] +
            time_bias[static_cast<size_t>(step)] +
            low_rank.at({node, step}));
      }
    }
  }
  return out;
}

}  // namespace pristi::baselines
