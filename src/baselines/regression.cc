#include "baselines/regression.h"

#include "baselines/linalg.h"
#include "common/logging.h"

namespace pristi::baselines {

namespace t = ::pristi::tensor;

namespace {

// The training range, normalized and completed by per-node linear
// interpolation, as a (T_train, N) matrix.
Tensor CompletedTrainingMatrix(const data::ImputationTask& task) {
  int64_t t_train = task.train_end;
  Tensor values = task.normalizer.Apply(
      t::SliceAxis(task.dataset.values, 0, 0, t_train), /*node_major=*/false);
  Tensor mask = t::SliceAxis(task.model_observed_mask, 0, 0, t_train);
  // LinearInterpolate expects node-major (N, L).
  Tensor filled = data::LinearInterpolate(t::TransposeLast2(values),
                                          t::TransposeLast2(mask));
  return t::TransposeLast2(filled);
}

}  // namespace

// ---------------------------------------------------------------------------
// VAR(1)
// ---------------------------------------------------------------------------

void VarImputer::Fit(const data::ImputationTask& task, Rng&) {
  Tensor train = CompletedTrainingMatrix(task);
  int64_t t_train = train.dim(0), n = train.dim(1);
  CHECK_GT(t_train, 2);
  // Rows: [x_t, 1] -> x_{t+1}.
  Tensor x(t::Shape{t_train - 1, n + 1});
  Tensor y(t::Shape{t_train - 1, n});
  for (int64_t step = 0; step + 1 < t_train; ++step) {
    for (int64_t node = 0; node < n; ++node) {
      x.at({step, node}) = train.at({step, node});
      y.at({step, node}) = train.at({step + 1, node});
    }
    x.at({step, n}) = 1.0f;
  }
  weights_ = RidgeFit(x, y, ridge_);
}

Tensor VarImputer::Impute(const data::Sample& sample, Rng&) {
  CHECK_GT(weights_.numel(), 0) << "Fit() must run first";
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  // Start from the interpolation completion, then replace missing entries by
  // one-step predictions from the (partially imputed) previous step.
  Tensor filled = data::LinearInterpolate(sample.values, sample.observed);
  Tensor out = sample.values;
  for (int64_t step = 0; step < l; ++step) {
    for (int64_t node = 0; node < n; ++node) {
      if (sample.observed.at({node, step}) > 0.5f) continue;
      if (step == 0) {
        out.at({node, step}) = filled.at({node, step});
        continue;
      }
      double pred = weights_.at({n, node});  // intercept
      for (int64_t other = 0; other < n; ++other) {
        float prev = sample.observed.at({other, step - 1}) > 0.5f
                         ? sample.values.at({other, step - 1})
                         : out.at({other, step - 1});
        pred += weights_.at({other, node}) * prev;
      }
      out.at({node, step}) = static_cast<float>(pred);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MICE
// ---------------------------------------------------------------------------

void MiceImputer::Fit(const data::ImputationTask& task, Rng&) {
  Tensor train = CompletedTrainingMatrix(task);
  int64_t t_train = train.dim(0), n = train.dim(1);
  weights_ = Tensor(t::Shape{n, n});
  intercepts_ = Tensor(t::Shape{n});
  // One ridge regression per node on all the others (+ intercept).
  for (int64_t node = 0; node < n; ++node) {
    Tensor x(t::Shape{t_train, n});  // others + intercept column at `node`
    Tensor y(t::Shape{t_train, 1});
    for (int64_t step = 0; step < t_train; ++step) {
      for (int64_t other = 0; other < n; ++other) {
        x.at({step, other}) =
            other == node ? 1.0f : train.at({step, other});
      }
      y.at({step, 0}) = train.at({step, node});
    }
    Tensor w = RidgeFit(x, y, ridge_);
    for (int64_t other = 0; other < n; ++other) {
      weights_.at({node, other}) = other == node ? 0.0f : w.at({other, 0});
    }
    intercepts_[node] = w.at({node, 0});
  }
}

Tensor MiceImputer::Impute(const data::Sample& sample, Rng&) {
  CHECK_GT(weights_.numel(), 0) << "Fit() must run first";
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  Tensor current = data::LinearInterpolate(sample.values, sample.observed);
  for (int64_t round = 0; round < rounds_; ++round) {
    for (int64_t node = 0; node < n; ++node) {
      for (int64_t step = 0; step < l; ++step) {
        if (sample.observed.at({node, step}) > 0.5f) continue;
        double pred = intercepts_[node];
        for (int64_t other = 0; other < n; ++other) {
          pred += weights_.at({node, other}) * current.at({other, step});
        }
        current.at({node, step}) = static_cast<float>(pred);
      }
    }
  }
  return current;
}

}  // namespace pristi::baselines
