#include "baselines/stmvl.h"

#include <cmath>

#include "baselines/linalg.h"
#include "common/logging.h"

namespace pristi::baselines {

namespace t = ::pristi::tensor;

void StmvlImputer::Fit(const data::ImputationTask& task, Rng&) {
  // Inverse-distance spatial weights.
  int64_t n = task.dataset.num_nodes;
  inv_dist_ = Tensor({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double d = task.dataset.graph.distances.at({i, j});
      inv_dist_.at({i, j}) =
          static_cast<float>(1.0 / std::pow(std::max(d, 1e-3), idw_power_));
    }
  }
  // Fit blend weights on training windows: predict observed entries from
  // the views computed with that entry held out.
  std::vector<float> rows_x;
  std::vector<float> rows_y;
  int64_t count = 0;
  Rng unused(0);
  for (const data::Sample& sample : data::ExtractSamples(task, "train")) {
    int64_t len = sample.values.dim(1);
    for (int64_t node = 0; node < n && count < 4000; ++node) {
      for (int64_t step = 0; step < len && count < 4000; ++step) {
        if (sample.observed.at({node, step}) < 0.5f) continue;
        data::Sample holdout = sample;
        holdout.observed.at({node, step}) = 0.0f;
        float idw = 0, ses = 0;
        if (!ViewFeatures(holdout, inv_dist_, node, step, &idw, &ses)) {
          continue;
        }
        rows_x.push_back(idw);
        rows_x.push_back(ses);
        rows_x.push_back(1.0f);
        rows_y.push_back(sample.values.at({node, step}));
        ++count;
      }
    }
  }
  CHECK_GT(count, 10) << "not enough training entries for ST-MVL";
  Tensor x({count, 3}, std::move(rows_x));
  Tensor y({count, 1}, std::move(rows_y));
  weights_ = RidgeFit(x, y, 1e-3);
}

bool StmvlImputer::ViewFeatures(const data::Sample& sample,
                                const Tensor& inv_dist, int64_t node,
                                int64_t step, float* idw, float* ses) const {
  int64_t n = sample.values.dim(0), len = sample.values.dim(1);
  // IDW view: spatial neighbours at the same step.
  double idw_num = 0, idw_den = 0;
  for (int64_t other = 0; other < n; ++other) {
    if (other == node || sample.observed.at({other, step}) < 0.5f) continue;
    double w = inv_dist.at({node, other});
    idw_num += w * sample.values.at({other, step});
    idw_den += w;
  }
  // SES view: exponentially decayed nearby observations of the same node,
  // looking both directions in time.
  double ses_num = 0, ses_den = 0;
  for (int64_t other = 0; other < len; ++other) {
    if (other == step || sample.observed.at({node, other}) < 0.5f) continue;
    double w = std::pow(ses_decay_, std::llabs(other - step));
    ses_num += w * sample.values.at({node, other});
    ses_den += w;
  }
  if (idw_den <= 0 && ses_den <= 0) return false;
  // Fall back to the other view (or 0) when one view has no support.
  *idw = idw_den > 0 ? static_cast<float>(idw_num / idw_den)
                     : (ses_den > 0 ? static_cast<float>(ses_num / ses_den)
                                    : 0.0f);
  *ses = ses_den > 0 ? static_cast<float>(ses_num / ses_den) : *idw;
  return true;
}

Tensor StmvlImputer::Impute(const data::Sample& sample, Rng&) {
  CHECK_GT(weights_.numel(), 0) << "Fit() must run first";
  Tensor out = sample.values;
  int64_t n = out.dim(0), len = out.dim(1);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < len; ++step) {
      if (sample.observed.at({node, step}) > 0.5f) continue;
      float idw = 0, ses = 0;
      if (!ViewFeatures(sample, inv_dist_, node, step, &idw, &ses)) {
        out.at({node, step}) = 0.0f;  // node mean in normalized space
        continue;
      }
      out.at({node, step}) = weights_.at({0, 0}) * idw +
                             weights_.at({1, 0}) * ses + weights_.at({2, 0});
    }
  }
  return out;
}

}  // namespace pristi::baselines
