#include "baselines/csdi.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/logging.h"
#include "nn/embeddings.h"
#include "pristi/pristi_model.h"

namespace pristi::baselines {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;
using core::FlattenSpatial;
using core::FlattenTemporal;
using core::UnflattenSpatial;
using core::UnflattenTemporal;

// One CSDI residual layer: temporal self-attention, feature (node)
// self-attention, gated residual/skip.
class CsdiModel::Layer : public nn::Module {
 public:
  Layer(const CsdiConfig& config, Rng& rng)
      : channels_(config.channels),
        diff_proj_(config.diffusion_emb_dim, config.channels, rng),
        attn_tem_(config.channels, config.heads, rng),
        attn_spa_(config.channels, config.heads, rng),
        mid_conv_(config.channels, 2 * config.channels, rng),
        out_conv_(config.channels, 2 * config.channels, rng) {
    AddChild("diff_proj", &diff_proj_);
    AddChild("attn_tem", &attn_tem_);
    AddChild("attn_spa", &attn_spa_);
    AddChild("mid_conv", &mid_conv_);
    AddChild("out_conv", &out_conv_);
  }

  struct Output {
    Variable residual;
    Variable skip;
  };

  Output Forward(const Variable& h_in, const Variable& diff_emb) const {
    int64_t b = h_in.value().dim(0);
    int64_t n = h_in.value().dim(1);
    int64_t l = h_in.value().dim(2);
    Variable y = ag::Add(h_in, diff_proj_.Forward(diff_emb));
    // Temporal transformer layer (self-attention on the mixed stream).
    y = UnflattenTemporal(attn_tem_.Forward(FlattenTemporal(y)), b, n);
    // Feature/node transformer layer.
    y = UnflattenSpatial(attn_spa_.Forward(FlattenSpatial(y)), b, l);
    Variable gated = nn::GatedActivation(mid_conv_.Forward(y));
    Variable both = out_conv_.Forward(gated);
    Variable residual_part = ag::SliceAxis(both, -1, 0, channels_);
    Variable skip = ag::SliceAxis(both, -1, channels_, channels_);
    constexpr float kInvSqrt2 = 0.70710678f;
    return {ag::MulScalar(ag::Add(h_in, residual_part), kInvSqrt2), skip};
  }

 private:
  int64_t channels_;
  nn::Linear diff_proj_;
  nn::MultiHeadAttention attn_tem_;
  nn::MultiHeadAttention attn_spa_;
  nn::Conv1x1 mid_conv_;
  nn::Conv1x1 out_conv_;
};

CsdiModel::CsdiModel(const CsdiConfig& config, Rng& rng)
    : config_(config),
      input_conv_(2, config.channels, rng),
      diff_mlp1_(config.diffusion_emb_dim, config.diffusion_emb_dim, rng),
      diff_mlp2_(config.diffusion_emb_dim, config.diffusion_emb_dim, rng),
      temporal_encoding_(
          nn::SinusoidalEncoding(config.window_len, config.temporal_emb_dim)),
      aux_proj_(config.temporal_emb_dim + config.node_emb_dim + 1,
                config.channels, rng),
      out_conv1_(config.channels, config.channels, rng),
      out_conv2_(config.channels, 1, rng) {
  CHECK_GT(config.num_nodes, 0);
  CHECK_GT(config.window_len, 0);
  AddChild("input_conv", &input_conv_);
  AddChild("diff_mlp1", &diff_mlp1_);
  AddChild("diff_mlp2", &diff_mlp2_);
  AddChild("aux_proj", &aux_proj_);
  AddChild("out_conv1", &out_conv1_);
  AddChild("out_conv2", &out_conv2_);
  node_embedding_ = AddParameter(
      "node_embedding",
      NormalInit({config.num_nodes, config.node_emb_dim}, 0.1f, rng));
  for (int64_t i = 0; i < config_.layers; ++i) {
    layers_.push_back(std::make_unique<Layer>(config_, rng));
    AddChild("layer" + std::to_string(i), layers_.back().get());
  }
}

CsdiModel::~CsdiModel() = default;

Variable CsdiModel::AuxiliaryInfo(int64_t batch_size,
                                  const Tensor& cond_mask) const {
  int64_t n = config_.num_nodes;
  int64_t l = config_.window_len;
  Variable u_tem = ag::Add(
      ag::Constant(
          Tensor::Zeros({batch_size, n, l, config_.temporal_emb_dim})),
      ag::Constant(
          temporal_encoding_.Reshaped({1, 1, l, config_.temporal_emb_dim})));
  Variable u_spa = ag::Add(
      ag::Constant(Tensor::Zeros({batch_size, n, l, config_.node_emb_dim})),
      ag::Reshape(node_embedding_, {1, n, 1, config_.node_emb_dim}));
  // CSDI feeds the conditional mask as side information.
  Variable mask_channel =
      ag::Constant(cond_mask.Reshaped({batch_size, n, l, 1}));
  return aux_proj_.Forward(ag::Concat({u_tem, u_spa, mask_channel}, -1));
}

Variable CsdiModel::PredictNoise(const Tensor& noisy,
                                 const DiffusionBatch& batch, int64_t t) {
  CHECK_EQ(noisy.ndim(), 3);
  int64_t b = noisy.dim(0);
  int64_t n = noisy.dim(1);
  int64_t l = noisy.dim(2);
  CHECK_EQ(n, config_.num_nodes);
  CHECK_EQ(l, config_.window_len);

  // Raw observed values (no interpolation) ‖ noisy sample.
  Variable cond_channel =
      ag::Reshape(ag::Constant(batch.cond_values), {b, n, l, 1});
  Variable noisy_channel = ag::Reshape(ag::Constant(noisy), {b, n, l, 1});
  Variable h = input_conv_.Forward(
      ag::Concat({cond_channel, noisy_channel}, -1));
  h = ag::Add(h, AuxiliaryInfo(b, batch.cond_mask));

  Variable diff_emb = ag::Constant(
      nn::DiffusionStepEncoding(t, config_.diffusion_emb_dim));
  diff_emb = diff_mlp2_.Forward(ag::Relu(diff_mlp1_.Forward(diff_emb)));

  Variable skip_sum;
  for (const auto& layer : layers_) {
    Layer::Output out = layer->Forward(h, diff_emb);
    h = out.residual;
    skip_sum = skip_sum.defined() ? ag::Add(skip_sum, out.skip) : out.skip;
  }
  float inv_sqrt_layers =
      1.0f / std::sqrt(static_cast<float>(config_.layers));
  Variable y = ag::MulScalar(skip_sum, inv_sqrt_layers);
  y = out_conv2_.Forward(ag::Relu(out_conv1_.Forward(ag::Relu(y))));
  return ag::Reshape(y, {b, n, l});
}

}  // namespace pristi::baselines
