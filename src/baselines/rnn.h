#ifndef PRISTI_BASELINES_RNN_H_
#define PRISTI_BASELINES_RNN_H_

// Deep autoregressive baselines:
//   * BritsImputer — bidirectional recurrent imputation (BRITS-like): a GRU
//     per direction predicts each step's values from history, missing inputs
//     are replaced by the model's own predictions, and the two directions
//     are averaged.
//   * GrinImputer  — graph recurrent imputation (GRIN-like): node-wise GRUs
//     with spatial message passing on inputs and hidden states, giving the
//     model the geographic inductive bias (and the ability to reconstruct
//     fully unobserved sensors, paper RQ5).
//   * RgainImputer — rGAIN-lite: the bidirectional recurrent generator
//     trained with an additional per-entry adversarial discriminator.

#include <memory>

#include "baselines/imputer.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace pristi::baselines {

using autograd::Variable;

struct RecurrentOptions {
  int64_t hidden = 32;
  int64_t epochs = 25;
  int64_t batch_size = 8;
  float lr = 5e-3f;
  // Extra observed entries withheld from the inputs during training so the
  // network learns to bridge holes rather than copy inputs.
  double extra_mask_rate = 0.25;
  // Weight of the forward/backward consistency term (BRITS).
  float consistency_weight = 0.1f;
};

// One direction of the recurrent imputer: predicts step t from the hidden
// state after step t-1, then feeds the observation (or its own prediction)
// back in.
class RecurrentDirection : public nn::Module {
 public:
  RecurrentDirection(int64_t num_nodes, int64_t hidden, Rng& rng);

  // values/input_mask: (B, N, L) constants; `reversed` runs right-to-left.
  // Returns per-step predictions stacked to (B, N, L).
  Variable Run(const tensor::Tensor& values, const tensor::Tensor& input_mask,
               bool reversed) const;

 private:
  int64_t num_nodes_;
  nn::GruCell cell_;
  nn::Linear head_;
};

class BritsImputer : public Imputer {
 public:
  BritsImputer(int64_t num_nodes, RecurrentOptions options, Rng& rng);
  std::string name() const override { return "BRITS"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

  nn::Module& module() { return *module_; }

 private:
  struct Net;
  RecurrentOptions options_;
  std::shared_ptr<Net> net_;
  std::shared_ptr<nn::Module> module_;
};

// GRIN-like: node-wise recurrence with spatial message passing.
class GrinImputer : public Imputer {
 public:
  GrinImputer(int64_t num_nodes, const Tensor& adjacency,
              RecurrentOptions options, Rng& rng);
  std::string name() const override { return "GRIN"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  struct Net;
  RecurrentOptions options_;
  std::shared_ptr<Net> net_;
};

// rGAIN-lite: BRITS-style generator + per-entry discriminator.
class RgainImputer : public Imputer {
 public:
  RgainImputer(int64_t num_nodes, RecurrentOptions options, Rng& rng);
  std::string name() const override { return "rGAIN"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  struct Net;
  RecurrentOptions options_;
  std::shared_ptr<Net> net_;
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_RNN_H_
