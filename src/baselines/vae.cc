#include "baselines/vae.h"

#include <algorithm>

#include "autograd/ops.h"
#include "common/logging.h"
#include "nn/optimizer.h"

namespace pristi::baselines {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;

namespace {

Tensor StackWindows(const std::vector<const data::Sample*>& samples,
                    bool values) {
  int64_t b = static_cast<int64_t>(samples.size());
  int64_t n = samples[0]->values.dim(0), l = samples[0]->values.dim(1);
  Tensor out({b, n, l});
  for (int64_t i = 0; i < b; ++i) {
    const Tensor& src = values ? samples[i]->values : samples[i]->observed;
    std::copy(src.data(), src.data() + n * l, out.data() + i * n * l);
  }
  return out;
}

Tensor DropFromMask(const Tensor& mask, double rate, Rng& rng) {
  Tensor out = mask;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.5f && rng.Bernoulli(rate)) out[i] = 0.0f;
  }
  return out;
}

// GRU encoder over the window: input per step [x*m, m] of width 2N.
// Returns the sequence of hidden states, one (B, hidden) per step.
std::vector<Variable> EncodeSequence(const nn::GruCell& cell,
                                     const Tensor& values,
                                     const Tensor& mask) {
  int64_t b = values.dim(0), n = values.dim(1), l = values.dim(2);
  Variable h = cell.InitialState(b);
  std::vector<Variable> hidden;
  hidden.reserve(static_cast<size_t>(l));
  for (int64_t step = 0; step < l; ++step) {
    Tensor x_t({b, n}), m_t({b, n});
    for (int64_t bi = 0; bi < b; ++bi) {
      for (int64_t node = 0; node < n; ++node) {
        float m = mask.at({bi, node, step});
        m_t.at({bi, node}) = m;
        x_t.at({bi, node}) = values.at({bi, node, step}) * m;
      }
    }
    Variable input =
        ag::Concat({ag::Constant(x_t), ag::Constant(m_t)}, -1);
    h = cell.Forward(input, h);
    hidden.push_back(h);
  }
  return hidden;
}

// Standard normal KL for diagonal Gaussians:
// 0.5 * sum(mu^2 + exp(logvar) - logvar - 1), averaged over elements.
Variable GaussianKl(const Variable& mu, const Variable& logvar) {
  Variable term = ag::Sub(ag::Add(ag::Square(mu), ag::Exp(logvar)),
                          ag::AddScalar(logvar, 1.0f));
  return ag::MulScalar(ag::MeanAll(term), 0.5f);
}

// Reparameterized sample z = mu + exp(0.5 logvar) * eps.
Variable Reparameterize(const Variable& mu, const Variable& logvar,
                        Rng& rng) {
  Tensor eps = Tensor::Randn(mu.value().shape(), rng);
  return ag::Add(mu, ag::Mul(ag::Exp(ag::MulScalar(logvar, 0.5f)),
                             ag::Constant(eps)));
}

Tensor MergeObserved(const data::Sample& sample, const Tensor& decoded) {
  Tensor out = sample.values;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (sample.observed[i] < 0.5f) out[i] = decoded[i];
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// VRIN-lite
// ---------------------------------------------------------------------------

struct VrinImputer::Net : public nn::Module {
  Net(int64_t num_nodes, int64_t window_len, const VaeOptions& options,
      Rng& rng)
      : n(num_nodes),
        l(window_len),
        encoder(2 * num_nodes, options.hidden, rng),
        to_mu(options.hidden, options.latent, rng),
        to_logvar(options.hidden, options.latent, rng),
        decoder(options.latent, options.hidden, num_nodes * window_len, rng) {
    AddChild("encoder", &encoder);
    AddChild("to_mu", &to_mu);
    AddChild("to_logvar", &to_logvar);
    AddChild("decoder", &decoder);
  }

  struct Encoding {
    Variable mu;
    Variable logvar;
  };

  Encoding Encode(const Tensor& values, const Tensor& mask) const {
    std::vector<Variable> hidden = EncodeSequence(encoder, values, mask);
    Variable last = hidden.back();
    return {to_mu.Forward(last), to_logvar.Forward(last)};
  }

  // z: (B, latent) -> (B, N, L).
  Variable Decode(const Variable& z) const {
    int64_t b = z.value().dim(0);
    return ag::Reshape(decoder.Forward(z), {b, n, l});
  }

  int64_t n;
  int64_t l;
  nn::GruCell encoder;
  nn::Linear to_mu;
  nn::Linear to_logvar;
  nn::Mlp decoder;
};

VrinImputer::VrinImputer(int64_t num_nodes, int64_t window_len,
                         VaeOptions options, Rng& rng)
    : options_(options),
      net_(std::make_shared<Net>(num_nodes, window_len, options, rng)) {}

void VrinImputer::Fit(const data::ImputationTask& task, Rng& rng) {
  std::vector<data::Sample> samples = data::ExtractSamples(task, "train");
  CHECK(!samples.empty());
  nn::Adam optimizer(net_->Parameters(), {.lr = options_.lr});
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<int64_t> order =
        rng.Permutation(static_cast<int64_t>(samples.size()));
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(order.size(),
                            begin + static_cast<size_t>(options_.batch_size));
      std::vector<const data::Sample*> batch;
      for (size_t i = begin; i < end; ++i) {
        batch.push_back(&samples[static_cast<size_t>(order[i])]);
      }
      Tensor values = StackWindows(batch, true);
      Tensor observed = StackWindows(batch, false);
      Tensor input_mask =
          DropFromMask(observed, options_.extra_mask_rate, rng);
      net_->ZeroGrad();
      auto [mu, logvar] = net_->Encode(values, input_mask);
      Variable z = Reparameterize(mu, logvar, rng);
      Variable decoded = net_->Decode(z);
      Variable recon =
          ag::MaskedMse(decoded, t::Mul(values, observed), observed);
      Variable loss = ag::Add(
          recon, ag::MulScalar(GaussianKl(mu, logvar), options_.kl_weight));
      loss.Backward();
      optimizer.Step();
    }
  }
}

Tensor VrinImputer::Impute(const data::Sample& sample, Rng&) {
  std::vector<const data::Sample*> batch = {&sample};
  Tensor values = StackWindows(batch, true);
  Tensor observed = StackWindows(batch, false);
  auto [mu, logvar] = net_->Encode(values, observed);
  (void)logvar;
  Tensor decoded =
      net_->Decode(mu).value().Reshaped(sample.values.shape());
  return MergeObserved(sample, decoded);
}

std::vector<Tensor> VrinImputer::ImputeSamples(const data::Sample& sample,
                                               int64_t num_samples,
                                               Rng& rng) {
  std::vector<const data::Sample*> batch = {&sample};
  Tensor values = StackWindows(batch, true);
  Tensor observed = StackWindows(batch, false);
  auto [mu, logvar] = net_->Encode(values, observed);
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(num_samples));
  for (int64_t i = 0; i < num_samples; ++i) {
    Variable z = Reparameterize(mu, logvar, rng);
    Tensor decoded =
        net_->Decode(z).value().Reshaped(sample.values.shape());
    out.push_back(MergeObserved(sample, decoded));
  }
  return out;
}

// ---------------------------------------------------------------------------
// GP-VAE-lite
// ---------------------------------------------------------------------------

struct GpVaeImputer::Net : public nn::Module {
  Net(int64_t num_nodes, const VaeOptions& options, Rng& rng)
      : n(num_nodes),
        encoder(2 * num_nodes, options.hidden, rng),
        to_mu(options.hidden, options.latent, rng),
        to_logvar(options.hidden, options.latent, rng),
        decoder(options.latent, options.hidden, num_nodes, rng) {
    AddChild("encoder", &encoder);
    AddChild("to_mu", &to_mu);
    AddChild("to_logvar", &to_logvar);
    AddChild("decoder", &decoder);
  }

  struct Encoding {
    std::vector<Variable> mu;      // per step, (B, latent)
    std::vector<Variable> logvar;  // per step, (B, latent)
  };

  Encoding Encode(const Tensor& values, const Tensor& mask) const {
    Encoding enc;
    for (const Variable& h : EncodeSequence(encoder, values, mask)) {
      enc.mu.push_back(to_mu.Forward(h));
      enc.logvar.push_back(to_logvar.Forward(h));
    }
    return enc;
  }

  // Per-step latents -> (B, N, L).
  Variable DecodeSequence(const std::vector<Variable>& z) const {
    std::vector<Variable> steps;
    steps.reserve(z.size());
    for (const Variable& zt : z) {
      int64_t b = zt.value().dim(0);
      steps.push_back(ag::Reshape(decoder.Forward(zt), {b, n, 1}));
    }
    return ag::Concat(steps, -1);
  }

  int64_t n;
  nn::GruCell encoder;
  nn::Linear to_mu;
  nn::Linear to_logvar;
  nn::Mlp decoder;
};

GpVaeImputer::GpVaeImputer(int64_t num_nodes, VaeOptions options, Rng& rng)
    : options_(options),
      net_(std::make_shared<Net>(num_nodes, options, rng)) {}

void GpVaeImputer::Fit(const data::ImputationTask& task, Rng& rng) {
  std::vector<data::Sample> samples = data::ExtractSamples(task, "train");
  CHECK(!samples.empty());
  nn::Adam optimizer(net_->Parameters(), {.lr = options_.lr});
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<int64_t> order =
        rng.Permutation(static_cast<int64_t>(samples.size()));
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(order.size(),
                            begin + static_cast<size_t>(options_.batch_size));
      std::vector<const data::Sample*> batch;
      for (size_t i = begin; i < end; ++i) {
        batch.push_back(&samples[static_cast<size_t>(order[i])]);
      }
      Tensor values = StackWindows(batch, true);
      Tensor observed = StackWindows(batch, false);
      Tensor input_mask =
          DropFromMask(observed, options_.extra_mask_rate, rng);
      net_->ZeroGrad();
      Net::Encoding enc = net_->Encode(values, input_mask);
      std::vector<Variable> z;
      z.reserve(enc.mu.size());
      Variable kl, smooth;
      for (size_t step = 0; step < enc.mu.size(); ++step) {
        z.push_back(Reparameterize(enc.mu[step], enc.logvar[step], rng));
        Variable kl_t = GaussianKl(enc.mu[step], enc.logvar[step]);
        kl = kl.defined() ? ag::Add(kl, kl_t) : kl_t;
        if (step > 0) {
          // GP prior reduced to a latent random-walk smoothness penalty.
          Variable diff = ag::MeanAll(
              ag::Square(ag::Sub(enc.mu[step], enc.mu[step - 1])));
          smooth = smooth.defined() ? ag::Add(smooth, diff) : diff;
        }
      }
      Variable decoded = net_->DecodeSequence(z);
      Variable recon =
          ag::MaskedMse(decoded, t::Mul(values, observed), observed);
      float inv_l = 1.0f / static_cast<float>(enc.mu.size());
      Variable loss = ag::Add(
          recon,
          ag::Add(ag::MulScalar(kl, options_.kl_weight * inv_l),
                  ag::MulScalar(smooth,
                                options_.smoothness_weight * inv_l)));
      loss.Backward();
      optimizer.Step();
    }
  }
}

Tensor GpVaeImputer::Impute(const data::Sample& sample, Rng&) {
  std::vector<const data::Sample*> batch = {&sample};
  Tensor values = StackWindows(batch, true);
  Tensor observed = StackWindows(batch, false);
  Net::Encoding enc = net_->Encode(values, observed);
  Tensor decoded = net_->DecodeSequence(enc.mu)
                       .value()
                       .Reshaped(sample.values.shape());
  return MergeObserved(sample, decoded);
}

std::vector<Tensor> GpVaeImputer::ImputeSamples(const data::Sample& sample,
                                                int64_t num_samples,
                                                Rng& rng) {
  std::vector<const data::Sample*> batch = {&sample};
  Tensor values = StackWindows(batch, true);
  Tensor observed = StackWindows(batch, false);
  Net::Encoding enc = net_->Encode(values, observed);
  std::vector<Tensor> out;
  out.reserve(static_cast<size_t>(num_samples));
  for (int64_t i = 0; i < num_samples; ++i) {
    std::vector<Variable> z;
    z.reserve(enc.mu.size());
    for (size_t step = 0; step < enc.mu.size(); ++step) {
      z.push_back(Reparameterize(enc.mu[step], enc.logvar[step], rng));
    }
    Tensor decoded = net_->DecodeSequence(z)
                         .value()
                         .Reshaped(sample.values.shape());
    out.push_back(MergeObserved(sample, decoded));
  }
  return out;
}

}  // namespace pristi::baselines
