#include "baselines/kalman.h"

#include <vector>

#include "common/logging.h"

namespace pristi::baselines {

void KalmanImputer::Fit(const data::ImputationTask&, Rng&) {}

std::vector<float> KalmanImputer::SmoothSeries(
    const std::vector<float>& values, const std::vector<bool>& observed,
    double process_var, double obs_var) {
  size_t length = values.size();
  CHECK_EQ(length, observed.size());
  std::vector<double> mean_filt(length), var_filt(length);
  std::vector<double> mean_pred(length), var_pred(length);

  // Forward filter. Diffuse-ish prior around the first observation (or 0).
  double mean = 0.0;
  double var = 10.0;
  for (size_t step = 0; step < length; ++step) {
    // Predict (random walk).
    if (step > 0) var += process_var;
    mean_pred[step] = mean;
    var_pred[step] = var;
    // Update when observed.
    if (observed[step]) {
      double gain = var / (var + obs_var);
      mean += gain * (values[step] - mean);
      var *= (1.0 - gain);
    }
    mean_filt[step] = mean;
    var_filt[step] = var;
  }

  // RTS backward smoother.
  std::vector<float> smoothed(length);
  double mean_next = mean_filt[length - 1];
  smoothed[length - 1] = static_cast<float>(mean_next);
  for (size_t step = length - 1; step-- > 0;) {
    double gain = var_filt[step] / var_pred[step + 1];
    double mean_s =
        mean_filt[step] + gain * (mean_next - mean_pred[step + 1]);
    smoothed[step] = static_cast<float>(mean_s);
    mean_next = mean_s;
  }
  return smoothed;
}

Tensor KalmanImputer::Impute(const data::Sample& sample, Rng&) {
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  Tensor out = sample.values;
  for (int64_t node = 0; node < n; ++node) {
    std::vector<float> series(static_cast<size_t>(l));
    std::vector<bool> observed(static_cast<size_t>(l));
    bool any = false;
    for (int64_t step = 0; step < l; ++step) {
      series[static_cast<size_t>(step)] = sample.values.at({node, step});
      observed[static_cast<size_t>(step)] =
          sample.observed.at({node, step}) > 0.5f;
      any = any || observed[static_cast<size_t>(step)];
    }
    if (!any) {
      for (int64_t step = 0; step < l; ++step) out.at({node, step}) = 0.0f;
      continue;
    }
    std::vector<float> smoothed =
        SmoothSeries(series, observed, process_var_, obs_var_);
    for (int64_t step = 0; step < l; ++step) {
      if (sample.observed.at({node, step}) < 0.5f) {
        out.at({node, step}) = smoothed[static_cast<size_t>(step)];
      }
    }
  }
  return out;
}

}  // namespace pristi::baselines
