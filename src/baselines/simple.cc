#include "baselines/simple.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace pristi::baselines {

namespace {

// Per-node mean of normalized values over the training range; ~0 by
// construction of the normalizer but computed honestly (the normalizer is
// fitted on the same mask, so this guards against drift if that changes).
std::vector<float> TrainNodeMeans(const data::ImputationTask& task) {
  int64_t n = task.dataset.num_nodes;
  std::vector<double> sums(static_cast<size_t>(n), 0.0);
  std::vector<int64_t> counts(static_cast<size_t>(n), 0);
  Tensor normalized =
      task.normalizer.Apply(task.dataset.values, /*node_major=*/false);
  for (int64_t step = 0; step < task.train_end; ++step) {
    for (int64_t node = 0; node < n; ++node) {
      if (task.model_observed_mask.at({step, node}) > 0.5f) {
        sums[static_cast<size_t>(node)] += normalized.at({step, node});
        ++counts[static_cast<size_t>(node)];
      }
    }
  }
  std::vector<float> means(static_cast<size_t>(n), 0.0f);
  for (int64_t node = 0; node < n; ++node) {
    if (counts[static_cast<size_t>(node)] > 0) {
      means[static_cast<size_t>(node)] = static_cast<float>(
          sums[static_cast<size_t>(node)] / counts[static_cast<size_t>(node)]);
    }
  }
  return means;
}

// Copies observations through and fills the rest from `fill`.
Tensor FillMissing(const data::Sample& sample,
                   const std::function<float(int64_t, int64_t)>& fill) {
  Tensor out = sample.values;
  int64_t n = out.dim(0), l = out.dim(1);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if (sample.observed.at({node, step}) < 0.5f) {
        out.at({node, step}) = fill(node, step);
      }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// MEAN
// ---------------------------------------------------------------------------

void MeanImputer::Fit(const data::ImputationTask& task, Rng&) {
  node_means_ = TrainNodeMeans(task);
}

Tensor MeanImputer::Impute(const data::Sample& sample, Rng&) {
  CHECK(!node_means_.empty()) << "Fit() must run first";
  return FillMissing(sample, [&](int64_t node, int64_t) {
    return node_means_[static_cast<size_t>(node)];
  });
}

// ---------------------------------------------------------------------------
// DA
// ---------------------------------------------------------------------------

void DailyAverageImputer::Fit(const data::ImputationTask& task, Rng&) {
  steps_per_day_ = task.dataset.steps_per_day;
  int64_t n = task.dataset.num_nodes;
  node_means_ = TrainNodeMeans(task);
  Tensor sums = Tensor::Zeros({steps_per_day_, n});
  Tensor counts = Tensor::Zeros({steps_per_day_, n});
  Tensor normalized =
      task.normalizer.Apply(task.dataset.values, /*node_major=*/false);
  for (int64_t step = 0; step < task.train_end; ++step) {
    int64_t tod = step % steps_per_day_;
    for (int64_t node = 0; node < n; ++node) {
      if (task.model_observed_mask.at({step, node}) > 0.5f) {
        sums.at({tod, node}) += normalized.at({step, node});
        counts.at({tod, node}) += 1.0f;
      }
    }
  }
  profile_ = Tensor({steps_per_day_, n});
  for (int64_t tod = 0; tod < steps_per_day_; ++tod) {
    for (int64_t node = 0; node < n; ++node) {
      profile_.at({tod, node}) =
          counts.at({tod, node}) > 0.0f
              ? sums.at({tod, node}) / counts.at({tod, node})
              : node_means_[static_cast<size_t>(node)];
    }
  }
}

Tensor DailyAverageImputer::Impute(const data::Sample& sample, Rng&) {
  CHECK_GT(steps_per_day_, 0) << "Fit() must run first";
  return FillMissing(sample, [&](int64_t node, int64_t step) {
    int64_t tod = (sample.start + step) % steps_per_day_;
    return profile_.at({tod, node});
  });
}

// ---------------------------------------------------------------------------
// KNN
// ---------------------------------------------------------------------------

void KnnImputer::Fit(const data::ImputationTask& task, Rng&) {
  int64_t n = task.dataset.num_nodes;
  node_means_ = TrainNodeMeans(task);
  neighbours_.assign(static_cast<size_t>(n), {});
  const Tensor& adjacency = task.dataset.graph.adjacency;
  for (int64_t node = 0; node < n; ++node) {
    std::vector<std::pair<int64_t, float>> candidates;
    for (int64_t other = 0; other < n; ++other) {
      if (other == node) continue;
      float weight = adjacency.at({node, other});
      if (weight > 0.0f) candidates.emplace_back(other, weight);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (static_cast<int64_t>(candidates.size()) > k_) {
      candidates.resize(static_cast<size_t>(k_));
    }
    neighbours_[static_cast<size_t>(node)] = std::move(candidates);
  }
}

Tensor KnnImputer::Impute(const data::Sample& sample, Rng&) {
  CHECK(!neighbours_.empty()) << "Fit() must run first";
  return FillMissing(sample, [&](int64_t node, int64_t step) {
    double weighted = 0.0, weight_sum = 0.0;
    for (const auto& [other, weight] : neighbours_[static_cast<size_t>(node)]) {
      if (sample.observed.at({other, step}) > 0.5f) {
        weighted += weight * sample.values.at({other, step});
        weight_sum += weight;
      }
    }
    if (weight_sum <= 0.0) return node_means_[static_cast<size_t>(node)];
    return static_cast<float>(weighted / weight_sum);
  });
}

// ---------------------------------------------------------------------------
// Lin-ITP
// ---------------------------------------------------------------------------

void LinearInterpImputer::Fit(const data::ImputationTask&, Rng&) {}

Tensor LinearInterpImputer::Impute(const data::Sample& sample, Rng&) {
  return data::LinearInterpolate(sample.values, sample.observed);
}

}  // namespace pristi::baselines
