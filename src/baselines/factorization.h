#ifndef PRISTI_BASELINES_FACTORIZATION_H_
#define PRISTI_BASELINES_FACTORIZATION_H_

// Low-rank matrix/tensor factorization baselines: TRMF (temporal-regularized
// matrix factorization, Yu et al.) and a bias-augmented variant standing in
// for BATF (Chen et al.). Both are transductive: each window is factorized
// on its own observed entries via masked ALS and the missing entries are
// reconstructed from the factors.

#include "baselines/imputer.h"

namespace pristi::baselines {

struct FactorizationOptions {
  int64_t rank = 6;
  int64_t iterations = 25;
  double ridge = 0.1;
  // Temporal-smoothness regularization strength on the time factors (the
  // "TR" of TRMF); 0 disables it.
  double temporal_reg = 1.0;
};

// X ~= W F with masked ALS and an AR(1)-style penalty ||f_t - f_{t-1}||^2.
class TrmfImputer : public Imputer {
 public:
  explicit TrmfImputer(FactorizationOptions options = {})
      : options_(options) {}
  std::string name() const override { return "TRMF"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

  // Masked factorization of one (N, L) matrix; exposed for testing.
  static Tensor FactorizeWindow(const Tensor& values, const Tensor& mask,
                                const FactorizationOptions& options, Rng& rng);

 private:
  FactorizationOptions options_;
};

// BATF-lite: X ~= mu + a_i + b_t + low-rank residual; the bias terms encode
// the "domain knowledge" (node level, time-of-window profile) of BATF.
class BatfImputer : public Imputer {
 public:
  explicit BatfImputer(FactorizationOptions options = {})
      : options_(options) {
    options_.temporal_reg = 0.0;  // biases already capture smooth structure
  }
  std::string name() const override { return "BATF"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  FactorizationOptions options_;
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_FACTORIZATION_H_
