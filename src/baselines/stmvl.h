#ifndef PRISTI_BASELINES_STMVL_H_
#define PRISTI_BASELINES_STMVL_H_

// ST-MVL-lite (Yi et al., IJCAI 2016): the classic multi-view geo-sensory
// imputation method whose evaluation protocol the paper adopts for AQI-36.
// Four views are blended by weights fitted on observed data:
//   * IDW  — inverse-distance-weighted spatial average at the same step;
//   * SES  — exponential smoothing from temporally nearby observations,
//            forward and backward;
//   * node mean (global fallback view).
// The blend weights are fitted by ridge regression on training entries
// (ST-MVL's "multi-view learning" step, reduced to its linear core).

#include "baselines/imputer.h"

namespace pristi::baselines {

class StmvlImputer : public Imputer {
 public:
  StmvlImputer(double idw_power = 2.0, double ses_decay = 0.6)
      : idw_power_(idw_power), ses_decay_(ses_decay) {}

  std::string name() const override { return "ST-MVL"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;

 private:
  // View features for entry (node, step) of a window: {idw, ses, 1}.
  // Returns false when no view has support (fully isolated entry).
  bool ViewFeatures(const data::Sample& sample, const Tensor& inv_dist,
                    int64_t node, int64_t step, float* idw, float* ses) const;

  double idw_power_;
  double ses_decay_;
  Tensor inv_dist_;   // (N, N) inverse-distance weights, zero diagonal
  Tensor weights_;    // (3, 1): blend of {idw, ses, bias}
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_STMVL_H_
