#ifndef PRISTI_BASELINES_VAE_H_
#define PRISTI_BASELINES_VAE_H_

// VAE-based probabilistic imputation baselines:
//   * VrinImputer  — VRIN-lite: a recurrent encoder produces a global latent
//     whose decoder reconstructs the window; imputation uncertainty comes
//     from latent sampling.
//   * GpVaeImputer — GP-VAE-lite: per-step latents with a temporal
//     smoothness prior (the stationary kernel of GP-VAE reduced to a random
//     walk penalty), decoded step-wise.

#include <memory>

#include "baselines/imputer.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace pristi::baselines {

using autograd::Variable;

struct VaeOptions {
  int64_t hidden = 32;
  int64_t latent = 8;
  int64_t epochs = 30;
  int64_t batch_size = 8;
  float lr = 5e-3f;
  float kl_weight = 0.05f;
  // GP-VAE only: weight of the latent smoothness penalty.
  float smoothness_weight = 0.5f;
  double extra_mask_rate = 0.25;
};

class VrinImputer : public Imputer {
 public:
  VrinImputer(int64_t num_nodes, int64_t window_len, VaeOptions options,
              Rng& rng);
  std::string name() const override { return "V-RIN"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;
  std::vector<Tensor> ImputeSamples(const data::Sample& sample,
                                    int64_t num_samples, Rng& rng) override;

 private:
  struct Net;
  VaeOptions options_;
  std::shared_ptr<Net> net_;
};

class GpVaeImputer : public Imputer {
 public:
  GpVaeImputer(int64_t num_nodes, VaeOptions options, Rng& rng);
  std::string name() const override { return "GP-VAE"; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;
  std::vector<Tensor> ImputeSamples(const data::Sample& sample,
                                    int64_t num_samples, Rng& rng) override;

 private:
  struct Net;
  VaeOptions options_;
  std::shared_ptr<Net> net_;
};

}  // namespace pristi::baselines

#endif  // PRISTI_BASELINES_VAE_H_
