#include "baselines/rnn.h"

#include <algorithm>

#include "autograd/ops.h"
#include "common/logging.h"
#include "graph/adjacency.h"
#include "nn/optimizer.h"

namespace pristi::baselines {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;

namespace {

// Stacks per-sample (N, L) windows into (B, N, L) constants.
Tensor StackWindows(const std::vector<const data::Sample*>& samples,
                    bool values) {
  int64_t b = static_cast<int64_t>(samples.size());
  int64_t n = samples[0]->values.dim(0), l = samples[0]->values.dim(1);
  Tensor out({b, n, l});
  for (int64_t i = 0; i < b; ++i) {
    const Tensor& src = values ? samples[i]->values : samples[i]->observed;
    std::copy(src.data(), src.data() + n * l, out.data() + i * n * l);
  }
  return out;
}

// Randomly hides `rate` of the 1-entries of `mask` (training-time extra
// masking so the recurrent nets learn to bridge holes).
Tensor DropFromMask(const Tensor& mask, double rate, Rng& rng) {
  Tensor out = mask;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.5f && rng.Bernoulli(rate)) out[i] = 0.0f;
  }
  return out;
}

// (B, N, L) -> per-step (B, N) constant slice.
Tensor StepSlice(const Tensor& x, int64_t step) {
  int64_t b = x.dim(0), n = x.dim(1), l = x.dim(2);
  Tensor out({b, n});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t node = 0; node < n; ++node) {
      out.at({bi, node}) = x.at({bi, node, step * 1});
    }
  }
  (void)l;
  return out;
}

// Stacks per-step (B, N) predictions into (B, N, L) along the last axis.
Variable StackSteps(const std::vector<Variable>& steps) {
  std::vector<Variable> reshaped;
  reshaped.reserve(steps.size());
  for (const Variable& s : steps) {
    int64_t b = s.value().dim(0), n = s.value().dim(1);
    reshaped.push_back(ag::Reshape(s, {b, n, 1}));
  }
  return ag::Concat(reshaped, -1);
}

// Masked mse between a prediction variable and constant targets.
Variable MaskedLoss(const Variable& pred, const Tensor& target,
                    const Tensor& mask) {
  return ag::MaskedMse(pred, t::Mul(target, mask), mask);
}

}  // namespace

// ---------------------------------------------------------------------------
// RecurrentDirection
// ---------------------------------------------------------------------------

RecurrentDirection::RecurrentDirection(int64_t num_nodes, int64_t hidden,
                                       Rng& rng)
    : num_nodes_(num_nodes), cell_(2 * num_nodes, hidden, rng),
      head_(hidden, num_nodes, rng) {
  AddChild("cell", &cell_);
  AddChild("head", &head_);
}

Variable RecurrentDirection::Run(const Tensor& values,
                                 const Tensor& input_mask,
                                 bool reversed) const {
  int64_t b = values.dim(0), l = values.dim(2);
  CHECK_EQ(values.dim(1), num_nodes_);
  Variable h = cell_.InitialState(b);
  std::vector<Variable> preds(static_cast<size_t>(l));
  for (int64_t idx = 0; idx < l; ++idx) {
    int64_t step = reversed ? l - 1 - idx : idx;
    // Predict this step from history.
    Variable pred = head_.Forward(h);  // (B, N)
    preds[static_cast<size_t>(step)] = pred;
    // Feed back: observation where present, prediction elsewhere.
    Tensor x_t = StepSlice(values, step);
    Tensor m_t = StepSlice(input_mask, step);
    Variable filled = ag::Add(
        ag::Constant(t::Mul(x_t, m_t)),
        ag::Mul(pred, ag::Constant(t::AddScalar(t::Neg(m_t), 1.0f))));
    Variable input = ag::Concat({filled, ag::Constant(m_t)}, -1);
    h = cell_.Forward(input, h);
  }
  return StackSteps(preds);
}

// ---------------------------------------------------------------------------
// BRITS-like
// ---------------------------------------------------------------------------

struct BritsImputer::Net : public nn::Module {
  Net(int64_t num_nodes, int64_t hidden, Rng& rng)
      : fwd(num_nodes, hidden, rng), bwd(num_nodes, hidden, rng) {
    AddChild("fwd", &fwd);
    AddChild("bwd", &bwd);
  }
  // Returns {fwd_pred, bwd_pred}, each (B, N, L).
  std::pair<Variable, Variable> Run(const Tensor& values,
                                    const Tensor& input_mask) const {
    return {fwd.Run(values, input_mask, /*reversed=*/false),
            bwd.Run(values, input_mask, /*reversed=*/true)};
  }
  RecurrentDirection fwd;
  RecurrentDirection bwd;
};

BritsImputer::BritsImputer(int64_t num_nodes, RecurrentOptions options,
                           Rng& rng)
    : options_(options),
      net_(std::make_shared<Net>(num_nodes, options.hidden, rng)) {
  module_ = net_;
}

void BritsImputer::Fit(const data::ImputationTask& task, Rng& rng) {
  std::vector<data::Sample> samples = data::ExtractSamples(task, "train");
  CHECK(!samples.empty());
  nn::Adam optimizer(net_->Parameters(), {.lr = options_.lr});
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<int64_t> order =
        rng.Permutation(static_cast<int64_t>(samples.size()));
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(order.size(),
                            begin + static_cast<size_t>(options_.batch_size));
      std::vector<const data::Sample*> batch;
      for (size_t i = begin; i < end; ++i) {
        batch.push_back(&samples[static_cast<size_t>(order[i])]);
      }
      Tensor values = StackWindows(batch, /*values=*/true);
      Tensor observed = StackWindows(batch, /*values=*/false);
      Tensor input_mask =
          DropFromMask(observed, options_.extra_mask_rate, rng);
      net_->ZeroGrad();
      auto [pred_f, pred_b] = net_->Run(values, input_mask);
      // Reconstruction on every observed entry + consistency between the
      // two directions.
      Variable loss = ag::Add(MaskedLoss(pred_f, values, observed),
                              MaskedLoss(pred_b, values, observed));
      loss = ag::Add(loss,
                     ag::MulScalar(ag::MeanAll(ag::Square(
                                       ag::Sub(pred_f, pred_b))),
                                   options_.consistency_weight));
      loss.Backward();
      optimizer.Step();
    }
  }
}

Tensor BritsImputer::Impute(const data::Sample& sample, Rng&) {
  std::vector<const data::Sample*> batch = {&sample};
  Tensor values = StackWindows(batch, /*values=*/true);
  Tensor observed = StackWindows(batch, /*values=*/false);
  auto [pred_f, pred_b] = net_->Run(values, observed);
  Tensor mean = t::MulScalar(
      t::Add(pred_f.value(), pred_b.value()), 0.5f);
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  Tensor out = sample.values;
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if (sample.observed.at({node, step}) < 0.5f) {
        out.at({node, step}) = mean.at({0, node, step});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// GRIN-like
// ---------------------------------------------------------------------------

namespace {

// One direction of the node-wise graph recurrent imputer.
class GraphDirection : public nn::Module {
 public:
  GraphDirection(int64_t num_nodes, int64_t hidden, const Tensor& transition,
                 Rng& rng)
      : num_nodes_(num_nodes),
        hidden_(hidden),
        transition_(ag::Constant(transition)),
        cell_(3, hidden, rng),
        head_self_(hidden, 1, rng),
        head_spatial_(2 * hidden, 1, rng) {
    AddChild("cell", &cell_);
    AddChild("head_self", &head_self_);
    AddChild("head_spatial", &head_spatial_);
  }

  // Returns {first_stage, second_stage} predictions, each (B, N, L).
  std::pair<Variable, Variable> Run(const Tensor& values,
                                    const Tensor& input_mask,
                                    bool reversed) const {
    int64_t b = values.dim(0), n = values.dim(1), l = values.dim(2);
    CHECK_EQ(n, num_nodes_);
    // Node-wise hidden state: (B*N, hidden) -> view (B, N, hidden).
    Variable h = cell_.InitialState(b * n);
    std::vector<Variable> stage1(static_cast<size_t>(l));
    std::vector<Variable> stage2(static_cast<size_t>(l));
    for (int64_t idx = 0; idx < l; ++idx) {
      int64_t step = reversed ? l - 1 - idx : idx;
      // First stage: per-node prediction from its own hidden state.
      Variable y1 = head_self_.Forward(h);  // (B*N, 1)
      // Second stage: add spatially aggregated hidden states.
      Variable h3 = ag::Reshape(h, {b, n, hidden_});
      Variable h_nbr = ag::MatMulNodeDim(transition_, h3);
      Variable y2 = head_spatial_.Forward(
          ag::Concat({h3, h_nbr}, -1));  // (B, N, 1)
      Variable y1_bn = ag::Reshape(y1, {b, n});
      Variable y2_bn = ag::Reshape(y2, {b, n});
      stage1[static_cast<size_t>(step)] = y1_bn;
      stage2[static_cast<size_t>(step)] = y2_bn;
      // Feed back second-stage predictions at missing inputs.
      Tensor x_t = StepSlice(values, step);
      Tensor m_t = StepSlice(input_mask, step);
      Variable filled = ag::Add(
          ag::Constant(t::Mul(x_t, m_t)),
          ag::Mul(y2_bn, ag::Constant(t::AddScalar(t::Neg(m_t), 1.0f))));
      // Spatial input feature: neighbour average of the filled values.
      Variable filled3 = ag::Reshape(filled, {b, n, 1});
      Variable x_nbr = ag::MatMulNodeDim(transition_, filled3);
      Variable mask3 = ag::Constant(m_t.Reshaped({b, n, 1}));
      Variable input = ag::Reshape(
          ag::Concat({filled3, mask3, x_nbr}, -1), {b * n, 3});
      h = cell_.Forward(input, h);
    }
    return {StackSteps(stage1), StackSteps(stage2)};
  }

 private:
  int64_t num_nodes_;
  int64_t hidden_;
  Variable transition_;
  nn::GruCell cell_;
  nn::Linear head_self_;
  nn::Linear head_spatial_;
};

}  // namespace

struct GrinImputer::Net : public nn::Module {
  Net(int64_t num_nodes, int64_t hidden, const Tensor& adjacency, Rng& rng)
      : fwd(num_nodes, hidden, graph::TransitionMatrix(adjacency), rng),
        bwd(num_nodes, hidden, graph::TransitionMatrix(adjacency), rng) {
    AddChild("fwd", &fwd);
    AddChild("bwd", &bwd);
  }
  GraphDirection fwd;
  GraphDirection bwd;
};

GrinImputer::GrinImputer(int64_t num_nodes, const Tensor& adjacency,
                         RecurrentOptions options, Rng& rng)
    : options_(options),
      net_(std::make_shared<Net>(num_nodes, options.hidden, adjacency, rng)) {}

void GrinImputer::Fit(const data::ImputationTask& task, Rng& rng) {
  std::vector<data::Sample> samples = data::ExtractSamples(task, "train");
  CHECK(!samples.empty());
  nn::Adam optimizer(net_->Parameters(), {.lr = options_.lr});
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<int64_t> order =
        rng.Permutation(static_cast<int64_t>(samples.size()));
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(order.size(),
                            begin + static_cast<size_t>(options_.batch_size));
      std::vector<const data::Sample*> batch;
      for (size_t i = begin; i < end; ++i) {
        batch.push_back(&samples[static_cast<size_t>(order[i])]);
      }
      Tensor values = StackWindows(batch, /*values=*/true);
      Tensor observed = StackWindows(batch, /*values=*/false);
      Tensor input_mask =
          DropFromMask(observed, options_.extra_mask_rate, rng);
      net_->ZeroGrad();
      auto [f1, f2] = net_->fwd.Run(values, input_mask, /*reversed=*/false);
      auto [b1, b2] = net_->bwd.Run(values, input_mask, /*reversed=*/true);
      // Both stages and both directions are supervised (as in GRIN).
      Variable loss = ag::Add(
          ag::Add(MaskedLoss(f1, values, observed),
                  MaskedLoss(f2, values, observed)),
          ag::Add(MaskedLoss(b1, values, observed),
                  MaskedLoss(b2, values, observed)));
      loss.Backward();
      optimizer.Step();
    }
  }
}

Tensor GrinImputer::Impute(const data::Sample& sample, Rng&) {
  std::vector<const data::Sample*> batch = {&sample};
  Tensor values = StackWindows(batch, /*values=*/true);
  Tensor observed = StackWindows(batch, /*values=*/false);
  auto [f1, f2] = net_->fwd.Run(values, observed, /*reversed=*/false);
  auto [b1, b2] = net_->bwd.Run(values, observed, /*reversed=*/true);
  (void)f1;
  (void)b1;
  Tensor mean = t::MulScalar(t::Add(f2.value(), b2.value()), 0.5f);
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  Tensor out = sample.values;
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if (sample.observed.at({node, step}) < 0.5f) {
        out.at({node, step}) = mean.at({0, node, step});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// rGAIN-lite
// ---------------------------------------------------------------------------

namespace {

// Per-entry discriminator: [value, hint] -> P(entry was observed).
class EntryDiscriminator : public nn::Module {
 public:
  EntryDiscriminator(int64_t hidden, Rng& rng)
      : fc1_(2, hidden, rng), fc2_(hidden, 1, rng) {
    AddChild("fc1", &fc1_);
    AddChild("fc2", &fc2_);
  }
  // imputed, hint: (B, N, L) -> probabilities (B, N, L).
  Variable Forward(const Variable& imputed, const Tensor& hint) const {
    const t::Shape& s = imputed.value().shape();
    Variable channels = ag::Concat(
        {ag::Reshape(imputed, {s[0], s[1], s[2], 1}),
         ag::Constant(hint.Reshaped({s[0], s[1], s[2], 1}))},
        -1);
    Variable p = ag::Sigmoid(
        fc2_.Forward(ag::Relu(fc1_.Forward(channels))));
    return ag::Reshape(p, {s[0], s[1], s[2]});
  }

 private:
  nn::Linear fc1_;
  nn::Linear fc2_;
};

// Numerically clamped binary cross entropy against constant labels,
// restricted to `weight_mask` entries.
Variable MaskedBce(const Variable& prob, const Tensor& labels,
                   const Tensor& weight_mask) {
  Variable p = ag::AddScalar(ag::MulScalar(prob, 0.998f), 0.001f);
  Variable pos = ag::Mul(ag::Log(p), ag::Constant(labels));
  Variable neg = ag::Mul(ag::Log(ag::AddScalar(ag::Neg(p), 1.0f)),
                         ag::Constant(t::AddScalar(t::Neg(labels), 1.0f)));
  Variable nll = ag::Neg(ag::Add(pos, neg));
  float denom = std::max(1.0f, t::SumAll(weight_mask));
  return ag::MulScalar(ag::SumAll(ag::Mul(nll, ag::Constant(weight_mask))),
                       1.0f / denom);
}

}  // namespace

struct RgainImputer::Net : public nn::Module {
  Net(int64_t num_nodes, int64_t hidden, Rng& rng)
      : fwd(num_nodes, hidden, rng),
        bwd(num_nodes, hidden, rng),
        disc(hidden, rng) {
    AddChild("fwd", &fwd);
    AddChild("bwd", &bwd);
    AddChild("disc", &disc);
  }
  // Generator output: average of the two directions, observations passed
  // through, (B, N, L).
  Variable Generate(const Tensor& values, const Tensor& input_mask) const {
    Variable mean = ag::MulScalar(
        ag::Add(fwd.Run(values, input_mask, false),
                bwd.Run(values, input_mask, true)),
        0.5f);
    // imputed = m * x + (1 - m) * pred
    return ag::Add(
        ag::Constant(t::Mul(values, input_mask)),
        ag::Mul(mean, ag::Constant(t::AddScalar(t::Neg(input_mask), 1.0f))));
  }
  RecurrentDirection fwd;
  RecurrentDirection bwd;
  EntryDiscriminator disc;
};

RgainImputer::RgainImputer(int64_t num_nodes, RecurrentOptions options,
                           Rng& rng)
    : options_(options),
      net_(std::make_shared<Net>(num_nodes, options.hidden, rng)) {}

void RgainImputer::Fit(const data::ImputationTask& task, Rng& rng) {
  std::vector<data::Sample> samples = data::ExtractSamples(task, "train");
  CHECK(!samples.empty());
  nn::Adam gen_opt(net_->fwd.Parameters(), {.lr = options_.lr});
  nn::Adam gen_opt_b(net_->bwd.Parameters(), {.lr = options_.lr});
  nn::Adam disc_opt(net_->disc.Parameters(), {.lr = options_.lr});
  const float kAdvWeight = 0.1f;
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<int64_t> order =
        rng.Permutation(static_cast<int64_t>(samples.size()));
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(order.size(),
                            begin + static_cast<size_t>(options_.batch_size));
      std::vector<const data::Sample*> batch;
      for (size_t i = begin; i < end; ++i) {
        batch.push_back(&samples[static_cast<size_t>(order[i])]);
      }
      Tensor values = StackWindows(batch, /*values=*/true);
      Tensor observed = StackWindows(batch, /*values=*/false);
      Tensor input_mask =
          DropFromMask(observed, options_.extra_mask_rate, rng);
      // GAIN hint: reveal the true mask at 90% of entries, 0.5 elsewhere.
      Tensor hint = input_mask;
      for (int64_t i = 0; i < hint.numel(); ++i) {
        if (!rng.Bernoulli(0.9)) hint[i] = 0.5f;
      }
      Tensor ones = Tensor::Ones(values.shape());

      // --- Discriminator step (generator detached).
      net_->ZeroGrad();
      Variable imputed_detached =
          net_->Generate(values, input_mask).Detach();
      Variable d_prob = net_->disc.Forward(imputed_detached, hint);
      Variable d_loss = MaskedBce(d_prob, input_mask, ones);
      d_loss.Backward();
      disc_opt.Step();

      // --- Generator step: reconstruction + fooling the discriminator on
      // the imputed entries.
      net_->ZeroGrad();
      Variable imputed = net_->Generate(values, input_mask);
      Variable g_prob = net_->disc.Forward(imputed, hint);
      Tensor missing_mask = t::AddScalar(t::Neg(input_mask), 1.0f);
      Variable adv = MaskedBce(g_prob, ones, missing_mask);
      Variable recon = ag::MaskedMse(imputed, t::Mul(values, observed),
                                     observed);
      Variable g_loss = ag::Add(recon, ag::MulScalar(adv, kAdvWeight));
      g_loss.Backward();
      gen_opt.Step();
      gen_opt_b.Step();
      net_->disc.ZeroGrad();  // discard leaked discriminator grads
    }
  }
}

Tensor RgainImputer::Impute(const data::Sample& sample, Rng&) {
  std::vector<const data::Sample*> batch = {&sample};
  Tensor values = StackWindows(batch, /*values=*/true);
  Tensor observed = StackWindows(batch, /*values=*/false);
  Tensor imputed = net_->Generate(values, observed).value();
  return imputed.Reshaped(sample.values.shape());
}

}  // namespace pristi::baselines
