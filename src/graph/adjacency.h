#ifndef PRISTI_GRAPH_ADJACENCY_H_
#define PRISTI_GRAPH_ADJACENCY_H_

// Sensor-graph construction: geographic coordinates, thresholded Gaussian
// kernel adjacency (paper Section IV-A: "We build the adjacency matrix for
// the three datasets using thresholded Gaussian kernel [Shuman et al.]"),
// and the row-normalized transition matrices consumed by GraphConv.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace pristi::graph {

using tensor::Tensor;

// A static sensor network: positions, pairwise distances, and the weighted
// adjacency derived from them. Matches the paper's static-graph setting.
struct SensorGraph {
  int64_t num_nodes = 0;
  Tensor coords;     // (N, 2) planar positions
  Tensor distances;  // (N, N) Euclidean distances
  Tensor adjacency;  // (N, N) thresholded Gaussian kernel weights, zero diag
};

// Scatters `n` sensors as a handful of spatial clusters (sensor networks are
// deployed along corridors/urban clusters, which is what gives geographic
// proximity its predictive value). `cluster_spread` controls how tight the
// clusters are; smaller values plant stronger spatial correlation.
Tensor GenerateSensorLocations(int64_t n, Rng& rng, int64_t num_clusters = 4,
                               double cluster_spread = 0.08);

// (N, N) Euclidean distance matrix from (N, 2) coordinates.
Tensor PairwiseDistances(const Tensor& coords);

// Thresholded Gaussian kernel: w_ij = exp(-d_ij^2 / sigma^2) when that
// exceeds `threshold`, else 0; diagonal forced to 0. `sigma` defaults to the
// standard deviation of the distance entries (the convention from the DCRNN
// line of work) when passed <= 0.
Tensor GaussianKernelAdjacency(const Tensor& distances, double sigma = -1.0,
                               double threshold = 0.1);

// Builds the full sensor graph for `n` nodes. `num_clusters` is forwarded
// to GenerateSensorLocations and `kernel_threshold` to
// GaussianKernelAdjacency. Because the kernel's sigma adapts to the
// distance distribution, cluster count alone barely moves the edge density;
// raising the threshold toward exp(-1) ~ 0.37 is what actually prunes
// cross-cluster pairs. The large-graph presets combine many clusters with a
// high threshold to keep adjacency nnz ~ O(n) (CSR-friendly).
SensorGraph BuildSensorGraph(int64_t n, Rng& rng, int64_t num_clusters = 4,
                             double kernel_threshold = 0.1);

// Row-normalized transition matrix D^-1 A (rows summing to 1 where a node
// has any neighbour). The "bidirectional" supports of Graph WaveNet are
// {Transition(A), Transition(A^T)}.
Tensor TransitionMatrix(const Tensor& adjacency);
std::vector<Tensor> BidirectionalTransitions(const Tensor& adjacency);

// Weighted degree (row sum of adjacency) per node.
std::vector<double> NodeDegrees(const Tensor& adjacency);
// Index of the node with the highest / lowest weighted degree — the paper's
// "highest and lowest connectivity" stations for the sensor-failure study.
int64_t HighestConnectivityNode(const Tensor& adjacency);
int64_t LowestConnectivityNode(const Tensor& adjacency);

}  // namespace pristi::graph

#endif  // PRISTI_GRAPH_ADJACENCY_H_
