#ifndef PRISTI_GRAPH_SPARSE_H_
#define PRISTI_GRAPH_SPARSE_H_

// Sparse (CSR) adjacency support — the scalability direction the paper
// lists as future work ("improving the scalability and computation
// efficiency of existing frameworks on larger scale spatiotemporal
// datasets"). Thresholded Gaussian kernels are naturally sparse for large
// N, so message passing can run in O(nnz * d) instead of O(N^2 * d).

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace pristi::graph {

using tensor::Tensor;

// Compressed sparse row matrix over float weights.
class CsrMatrix {
 public:
  // Builds from a dense (N, N) matrix, dropping entries with |w| <= eps.
  static CsrMatrix FromDense(const Tensor& dense, float eps = 0.0f);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  // Fill fraction, for deciding sparse vs dense dispatch.
  double density() const;

  // Back to dense (N, N); for tests and fallback paths.
  Tensor ToDense() const;

  // y = A x over the node axis: x is (..., cols, d) -> (..., rows, d),
  // matching tensor::MatMulNodeDim semantics.
  Tensor MatMulNodeDim(const Tensor& x) const;

  // Transposed product: y = A^T x, x is (..., rows, d) -> (..., cols, d).
  // This is the adjoint needed for backprop through MatMulNodeDim.
  Tensor TransposedMatMulNodeDim(const Tensor& x) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;   // size rows + 1
  std::vector<int64_t> col_idx_;   // size nnz
  std::vector<float> values_;      // size nnz
};

}  // namespace pristi::graph

#endif  // PRISTI_GRAPH_SPARSE_H_
