#include "graph/adjacency.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pristi::graph {

Tensor GenerateSensorLocations(int64_t n, Rng& rng, int64_t num_clusters,
                               double cluster_spread) {
  CHECK_GT(n, 0);
  CHECK_GT(num_clusters, 0);
  // Cluster centers uniform in the unit square, sensors Gaussian around them.
  std::vector<std::pair<double, double>> centers;
  centers.reserve(static_cast<size_t>(num_clusters));
  for (int64_t c = 0; c < num_clusters; ++c) {
    centers.emplace_back(rng.Uniform(0.15, 0.85), rng.Uniform(0.15, 0.85));
  }
  Tensor coords(tensor::Shape{n, 2});
  for (int64_t i = 0; i < n; ++i) {
    const auto& [cx, cy] = centers[static_cast<size_t>(
        rng.UniformInt(0, num_clusters - 1))];
    coords.at({i, 0}) =
        static_cast<float>(std::clamp(cx + rng.Normal(0, cluster_spread),
                                      0.0, 1.0));
    coords.at({i, 1}) =
        static_cast<float>(std::clamp(cy + rng.Normal(0, cluster_spread),
                                      0.0, 1.0));
  }
  return coords;
}

Tensor PairwiseDistances(const Tensor& coords) {
  CHECK_EQ(coords.ndim(), 2);
  CHECK_EQ(coords.dim(1), 2);
  int64_t n = coords.dim(0);
  Tensor dist(tensor::Shape{n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double dx = coords.at({i, 0}) - coords.at({j, 0});
      double dy = coords.at({i, 1}) - coords.at({j, 1});
      float d = static_cast<float>(std::sqrt(dx * dx + dy * dy));
      dist.at({i, j}) = d;
      dist.at({j, i}) = d;
    }
  }
  return dist;
}

Tensor GaussianKernelAdjacency(const Tensor& distances, double sigma,
                               double threshold) {
  CHECK_EQ(distances.ndim(), 2);
  int64_t n = distances.dim(0);
  CHECK_EQ(n, distances.dim(1));
  if (sigma <= 0.0) {
    // Standard deviation of off-diagonal distances.
    double mean = 0.0;
    int64_t count = 0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        mean += distances.at({i, j});
        ++count;
      }
    }
    mean /= std::max<int64_t>(count, 1);
    double var = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double d = distances.at({i, j}) - mean;
        var += d * d;
      }
    }
    var /= std::max<int64_t>(count, 1);
    sigma = std::sqrt(std::max(var, 1e-12));
  }
  Tensor adj(tensor::Shape{n, n});
  double inv_sigma2 = 1.0 / (sigma * sigma);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double d = distances.at({i, j});
      double w = std::exp(-d * d * inv_sigma2);
      if (w >= threshold) adj.at({i, j}) = static_cast<float>(w);
    }
  }
  return adj;
}

SensorGraph BuildSensorGraph(int64_t n, Rng& rng, int64_t num_clusters,
                             double kernel_threshold) {
  SensorGraph graph;
  graph.num_nodes = n;
  graph.coords = GenerateSensorLocations(n, rng, num_clusters);
  graph.distances = PairwiseDistances(graph.coords);
  graph.adjacency =
      GaussianKernelAdjacency(graph.distances, -1.0, kernel_threshold);
  return graph;
}

Tensor TransitionMatrix(const Tensor& adjacency) {
  CHECK_EQ(adjacency.ndim(), 2);
  int64_t n = adjacency.dim(0);
  CHECK_EQ(n, adjacency.dim(1));
  Tensor transition(adjacency.shape());
  for (int64_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < n; ++j) row_sum += adjacency.at({i, j});
    if (row_sum <= 0.0) continue;  // isolated node: zero row
    float inv = static_cast<float>(1.0 / row_sum);
    for (int64_t j = 0; j < n; ++j) {
      transition.at({i, j}) = adjacency.at({i, j}) * inv;
    }
  }
  return transition;
}

std::vector<Tensor> BidirectionalTransitions(const Tensor& adjacency) {
  return {TransitionMatrix(adjacency),
          TransitionMatrix(tensor::TransposeLast2(adjacency))};
}

std::vector<double> NodeDegrees(const Tensor& adjacency) {
  int64_t n = adjacency.dim(0);
  std::vector<double> degrees(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      degrees[static_cast<size_t>(i)] += adjacency.at({i, j});
    }
  }
  return degrees;
}

int64_t HighestConnectivityNode(const Tensor& adjacency) {
  std::vector<double> degrees = NodeDegrees(adjacency);
  return static_cast<int64_t>(
      std::max_element(degrees.begin(), degrees.end()) - degrees.begin());
}

int64_t LowestConnectivityNode(const Tensor& adjacency) {
  std::vector<double> degrees = NodeDegrees(adjacency);
  return static_cast<int64_t>(
      std::min_element(degrees.begin(), degrees.end()) - degrees.begin());
}

}  // namespace pristi::graph
