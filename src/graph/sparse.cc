#include "graph/sparse.h"

#include <cmath>

#include "common/logging.h"

namespace pristi::graph {

CsrMatrix CsrMatrix::FromDense(const Tensor& dense, float eps) {
  CHECK_EQ(dense.ndim(), 2);
  CsrMatrix csr;
  csr.rows_ = dense.dim(0);
  csr.cols_ = dense.dim(1);
  csr.row_ptr_.reserve(static_cast<size_t>(csr.rows_) + 1);
  csr.row_ptr_.push_back(0);
  for (int64_t r = 0; r < csr.rows_; ++r) {
    for (int64_t c = 0; c < csr.cols_; ++c) {
      float w = dense.at({r, c});
      if (std::fabs(w) > eps) {
        csr.col_idx_.push_back(c);
        csr.values_.push_back(w);
      }
    }
    csr.row_ptr_.push_back(static_cast<int64_t>(csr.values_.size()));
  }
  return csr;
}

double CsrMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

Tensor CsrMatrix::ToDense() const {
  Tensor dense = Tensor::Zeros({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      dense.at({r, col_idx_[static_cast<size_t>(k)]}) =
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

Tensor CsrMatrix::MatMulNodeDim(const Tensor& x) const {
  CHECK_GE(x.ndim(), 2);
  CHECK_EQ(x.dim(-2), cols_) << "sparse MatMulNodeDim node-axis mismatch";
  int64_t d = x.dim(-1);
  int64_t batch = x.numel() / (cols_ * d);
  tensor::Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = rows_;
  Tensor out(out_shape);
  const float* px = x.data();
  float* po = out.data();
  for (int64_t bi = 0; bi < batch; ++bi) {
    const float* xb = px + bi * cols_ * d;
    float* ob = po + bi * rows_ * d;
    for (int64_t r = 0; r < rows_; ++r) {
      float* orow = ob + r * d;
      for (int64_t k = row_ptr_[static_cast<size_t>(r)];
           k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
        float w = values_[static_cast<size_t>(k)];
        const float* xrow = xb + col_idx_[static_cast<size_t>(k)] * d;
        for (int64_t j = 0; j < d; ++j) orow[j] += w * xrow[j];
      }
    }
  }
  return out;
}

Tensor CsrMatrix::TransposedMatMulNodeDim(const Tensor& x) const {
  CHECK_GE(x.ndim(), 2);
  CHECK_EQ(x.dim(-2), rows_)
      << "sparse TransposedMatMulNodeDim node-axis mismatch";
  int64_t d = x.dim(-1);
  int64_t batch = x.numel() / (rows_ * d);
  tensor::Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = cols_;
  Tensor out(out_shape);
  const float* px = x.data();
  float* po = out.data();
  for (int64_t bi = 0; bi < batch; ++bi) {
    const float* xb = px + bi * rows_ * d;
    float* ob = po + bi * cols_ * d;
    // Scatter: row r of A contributes to out[col] += w * x[r].
    for (int64_t r = 0; r < rows_; ++r) {
      const float* xrow = xb + r * d;
      for (int64_t k = row_ptr_[static_cast<size_t>(r)];
           k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
        float w = values_[static_cast<size_t>(k)];
        float* orow = ob + col_idx_[static_cast<size_t>(k)] * d;
        for (int64_t j = 0; j < d; ++j) orow[j] += w * xrow[j];
      }
    }
  }
  return out;
}

}  // namespace pristi::graph
