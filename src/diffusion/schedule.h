#ifndef PRISTI_DIFFUSION_SCHEDULE_H_
#define PRISTI_DIFFUSION_SCHEDULE_H_

// DDPM noise schedules. The paper uses the quadratic schedule (Eq. 13) with
// beta_1 = 1e-4 and beta_T = 0.2 adopted from CSDI; the linear schedule is
// provided for the hyperparameter-sensitivity study (Fig. 8 varies beta_T).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pristi::diffusion {

class NoiseSchedule {
 public:
  // Quadratic interpolation in sqrt-beta space (paper Eq. 13):
  //   beta_t = ((T-t)/(T-1) sqrt(beta_1) + (t-1)/(T-1) sqrt(beta_T))^2.
  static NoiseSchedule Quadratic(int64_t num_steps, float beta_1,
                                 float beta_t_max);
  // Linear interpolation of beta itself.
  static NoiseSchedule Linear(int64_t num_steps, float beta_1,
                              float beta_t_max);

  int64_t num_steps() const { return static_cast<int64_t>(beta_.size()); }

  // 1-based diffusion step t in [1, T], matching the paper's notation.
  float beta(int64_t t) const { return beta_[Index(t)]; }
  float alpha(int64_t t) const { return alpha_[Index(t)]; }
  // alpha_bar_t = prod_{i<=t} alpha_i; alpha_bar(0) == 1.
  float alpha_bar(int64_t t) const;
  // Posterior variance sigma_t^2 = (1 - alpha_bar_{t-1}) / (1 - alpha_bar_t)
  // * beta_t (paper Eq. 3).
  float sigma2(int64_t t) const;

 private:
  explicit NoiseSchedule(std::vector<float> beta);
  size_t Index(int64_t t) const;

  std::vector<float> beta_;
  std::vector<float> alpha_;
  std::vector<float> alpha_bar_;
};

}  // namespace pristi::diffusion

#endif  // PRISTI_DIFFUSION_SCHEDULE_H_
