#ifndef PRISTI_DIFFUSION_SAMPLER_H_
#define PRISTI_DIFFUSION_SAMPLER_H_

// The reverse-process sampler family: step-subset planning shared by every
// sampler, and the per-step transition objects that advance a stacked
// (num_chains, N, L) chain state through one kept step each.
//
// Three samplers share one interface:
//
//   * kDdpm — the paper's ancestral sampler (Algorithm 2): posterior-mean
//     step in x0 form plus fresh per-chain noise each step.
//   * kDdim — deterministic eta = 0 steps; with a step subset this is the
//     classic strided DDIM accelerator.
//   * kPlms — pseudo linear multistep (PNDM / FastSTI): a 4th-order
//     Adams–Bashforth combination of the last four noise predictions drives
//     the same eta = 0 transfer, after a pseudo Runge–Kutta warm-up for the
//     first three kept steps. Reaches DDIM-at-full-schedule quality at a
//     fraction of the model calls (tests/sampler_parity_test.cc pins the
//     CRPS/MAE bands).
//
// Per-chain state: kDdpm/kDdim are memoryless between steps; kPlms retains
// the last (up to) 3 raw noise predictions, i.e. 3 extra N*L floats per
// chain, plus two transient (num_chains, N, L) work buffers during a step.
// Because every retained tensor is stacked chain-major and every per-entry
// operation is independent of the leading batch index, a chain's history in
// a coalesced batch is bit-identical to the history the same chain would
// accumulate solo — which is what keeps ImputeWindowsCoalesced bit-identical
// to per-request ImputeWindow for all three samplers.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "diffusion/schedule.h"
#include "tensor/tensor.h"

namespace pristi::diffusion {

using tensor::Tensor;

class ConditionalNoisePredictor;  // ddpm.h
struct DiffusionBatch;            // ddpm.h

enum class SamplerKind { kDdpm, kDdim, kPlms };

// "ddpm" | "ddim" | "plms".
const char* SamplerKindName(SamplerKind kind);
// Parses a sampler name; returns false (leaving *out untouched) on unknown
// names. The serving layer wraps this with its typed kInvalidRequest status
// (serve::ParseSamplerName).
bool ParseSamplerKind(const std::string& name, SamplerKind* out);

// Schedule constants for one kept reverse step, precomputed once per window
// so the per-step (and, sequentially, per-chain) loop does no schedule
// lookups or sqrt work. One plan serves all three samplers: each stepper
// reads only the fields it needs.
struct ReverseStep {
  int64_t step = 0;       // 1-based diffusion step fed to the model
  int64_t prev_step = 0;  // previous KEPT step toward t = 0 (0 at the end)
  float inv_sqrt_ab = 0;  // 1 / sqrt(alpha_bar_t)
  float sqrt_1m_ab = 0;   // sqrt(1 - alpha_bar_t)
  // eta = 0 transfer coefficients toward prev_step (DDIM and PLMS).
  float sqrt_ab_prev = 0;
  float sqrt_1m_ab_prev = 0;
  // DDPM posterior-mean coefficients (x0 form) and noise scale. When the
  // plan skips steps these generalize to the kept subset (effective
  // alpha = alpha_bar_t / alpha_bar_prev); on a consecutive plan they are
  // the schedule's exact stored constants.
  float c0 = 0;
  float ct = 0;
  float sigma = 0;  // 0 at the final step (no noise added)
  // PLMS Runge–Kutta warm-up midpoint between step and prev_step.
  int64_t mid_step = 0;
  float sqrt_ab_mid = 0;
  float sqrt_1m_ab_mid = 0;
};

// Selects the kept step subset and precomputes every constant above.
// `num_inference_steps` <= 0 or >= num_steps keeps the full schedule;
// otherwise K evenly spaced steps t_i = T - floor(i*T/K) (i = 0..K-1) are
// kept — for T divisible by K this reproduces the classic stride-T/K
// subset. The SAME plan is valid for all three samplers, which is what
// makes sampler quality sweeps step-subset-comparable.
std::vector<ReverseStep> PlanReverseSteps(const NoiseSchedule& schedule,
                                          int64_t num_inference_steps);

// Fills `out` (B, N, L) with one N(0,1) draw per entry, chain-major: chain
// b consumes exactly N*L draws from its own stream, in row-major order, so
// the draw sequence per chain is independent of how many chains share the
// tensor. `target_masks` is stacked per chain — (B, N, L) like `out` — so
// chains belonging to different coalesced requests each project onto their
// own mask. Entries outside a chain's mask are zeroed after drawing (the
// draw still happens, keeping streams aligned across masks). Used for the
// initial x_T draw and by the DDPM stepper's per-step noise.
void FillChainNoise(Tensor* out, Rng* chain_rngs, int64_t num_chains,
                    const Tensor& target_masks);

// Advances the stacked chain state through one kept step. A stepper is
// stateful (PLMS owns its noise-prediction history), so use a fresh one per
// reverse chain run; it may call the model several times per step (the PLMS
// warm-up makes 4 calls). `target_masks` is stacked per chain like `x`;
// entries outside a chain's mask stay 0.
class SamplerStepper {
 public:
  virtual ~SamplerStepper() = default;
  virtual void Step(ConditionalNoisePredictor* model,
                    const DiffusionBatch& batch,
                    const std::vector<ReverseStep>& plan, size_t index,
                    Tensor* x, Rng* chain_rngs, int64_t num_chains,
                    const Tensor& target_masks) = 0;
};

// `plan_size` fixes the PLMS warm-up length (min(3, plan_size - 1)); the
// other samplers ignore it.
std::unique_ptr<SamplerStepper> MakeSamplerStepper(SamplerKind kind,
                                                   size_t plan_size);

}  // namespace pristi::diffusion

#endif  // PRISTI_DIFFUSION_SAMPLER_H_
