#ifndef PRISTI_DIFFUSION_SHARDED_TRAIN_H_
#define PRISTI_DIFFUSION_SHARDED_TRAIN_H_

// Shard-parallel training: the per-window ShardStep unit extracted from
// TrainDiffusionModel, the declarative shard layout, and the deterministic
// tree all-reduce that merges per-shard gradients.
//
// ## Determinism contract
//
// A sharded training run is bit-identical at ANY shard count K >= 1 and any
// ParallelFor thread count. Three mechanisms combine to give that:
//
//   1. Per-window leaves. The unit of work is one window ("leaf"), not one
//      K-dependent slice of the batch: every leaf's forward/backward is a
//      (1, N, L) micro-batch whose arithmetic involves no other leaf, so
//      partitioning leaves across shards changes scheduling only. (The
//      pool's own contract covers the thread axis: chunked and inline
//      execution of each tensor op are bit-identical.)
//   2. Counter-seeded leaf RNG streams (MakeChainStreams): each optimizer
//      step draws the diffusion step t and then one stream root from the
//      epoch RNG — a fixed number of draws independent of K — and leaf i's
//      masking/noise draws come from stream mix(root, i).
//   3. Fixed-topology tree all-reduce. Per-leaf gradients (captured into
//      private buffers by autograd::GradCaptureScope) and per-leaf losses
//      are combined pairwise over the leaf axis: level 0 combines leaves
//      (0,1), (2,3), ...; each level halves the list until one remains. The
//      topology depends only on the leaf count, never on K or the thread
//      schedule, so the merged gradient is one fixed floating-point
//      summation order.
//
// Checkpoints fall out shard-count-invariant: a training checkpoint stores
// the epoch RNG stream and no shard count, so a run saved at K and resumed
// at K' != K stays bit-identical to the uninterrupted run at either count.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/missing.h"
#include "data/windows.h"
#include "diffusion/ddpm.h"
#include "diffusion/schedule.h"
#include "nn/ema.h"
#include "nn/optimizer.h"

namespace pristi::diffusion {

// ---- Shard layout ----------------------------------------------------------
// The leaf -> shard assignment, declared as data (not control flow): shard s
// owns the contiguous leaf range [bounds[s], bounds[s+1]). Balanced so shard
// sizes differ by at most one leaf. The layout only steers scheduling — the
// reduction below never consults it — which is the structural reason shard
// count cannot reach the numbers.
struct ShardLayout {
  int64_t num_leaves = 0;
  std::vector<int64_t> bounds;  // size num_shards + 1, bounds[0] == 0
  int64_t num_shards() const {
    return static_cast<int64_t>(bounds.size()) - 1;
  }
};

// Builds the balanced layout; num_shards is clamped to [1, num_leaves] (an
// empty shard would be pure overhead). num_leaves == 0 yields one empty
// shard.
ShardLayout MakeShardLayout(int64_t num_leaves, int64_t num_shards);

// ---- Deterministic tree reduction ------------------------------------------
// Pairwise tree sum over the input order: (0,1), (2,3), ... per level, an
// odd tail carried up unchanged. One fixed summation order for a given
// element count — the all-reduce the gradient merge uses.
double TreeReduce(std::vector<double> values);
float TreeReduce(std::vector<float> values);

// Tree-combines per-leaf gradient buffers for one parameter. Empty tensors
// (leaves whose backward never reached the parameter) are identities: the
// other operand passes through unchanged, so a partially-touched parameter
// still sums in one fixed order. Returns an empty tensor when no leaf
// touched the parameter. Consumes `parts` (buffers are moved and added in
// place).
tensor::Tensor TreeReduceGrads(std::vector<tensor::Tensor> parts);

// ---- ShardStep -------------------------------------------------------------
// One prepared micro-batch: everything a forward/backward needs, built from
// one window by BuildLeafStep. All tensors (1, N, L).
struct LeafStep {
  DiffusionBatch batch;
  tensor::Tensor noisy;       // q-sampled target, masked
  tensor::Tensor eps_target;  // drawn noise * target_mask (the regressand)
  float mask_sum = 0.0f;      // SumAll(target_mask), for the global denom
};

// Builds the conditioning tensors for one training window, consuming the
// mask-strategy draws from `rng` exactly as the classic single-stream loop
// does (historical-pattern pick first when the strategy wants one, then
// ApplyMaskStrategy). All tensors (N, L).
struct WindowExample {
  tensor::Tensor cond_values;
  tensor::Tensor cond_mask;
  tensor::Tensor interpolated;
  tensor::Tensor target_mask;
  tensor::Tensor x0;  // values * target_mask (the diffusion target)
};
WindowExample BuildWindowExample(const std::vector<data::Sample>& samples,
                                 int64_t index, data::MaskStrategy strategy,
                                 Rng& rng);

// Builds one leaf's micro-batch: window conditioning from `leaf_rng`, then
// the noise draw and q-sample at diffusion step `step`.
LeafStep BuildLeafStep(const std::vector<data::Sample>& samples,
                       int64_t index, data::MaskStrategy strategy,
                       const NoiseSchedule& schedule, int64_t step,
                       Rng& leaf_rng);

// The ShardStep unit: one forward/backward over a prepared micro-batch,
// returning the (double-widened) loss value. `denom` is the masked-entry
// normalizer of the loss: the classic path passes
// max(1, SumAll(batch.target_mask)) — which reproduces ag::MaskedMse
// bit-for-bit — and the sharded path passes the tree-reduced global sum, so
// every leaf of one optimizer step is normalized by the same scalar. When
// `capture` is non-null, leaf gradients land in those buffers (one per
// entry of `params`, opened as a GradCaptureScope) instead of the shared
// parameter nodes; `params` is ignored when `capture` is null. The caller
// owns ZeroGrad/optimizer sequencing.
double ShardStep(ConditionalNoisePredictor* model,
                 const std::vector<Variable>& params,
                 const tensor::Tensor& noisy, const DiffusionBatch& batch,
                 const tensor::Tensor& eps_target, int64_t step, float denom,
                 std::vector<tensor::Tensor>* capture);

// ---- Sharded epoch ---------------------------------------------------------
// Runs one epoch of shard-parallel training (options.num_shards >= 1):
// permutes the epoch's windows, and per optimizer step builds each batch
// window as an independent leaf, partitions leaves across shards on the
// persistent pool, merges gradients and losses through the tree reduce, and
// applies one optimizer (+ EMA) update. Returns the epoch's mean loss over
// optimizer steps. `ema` may be null.
double RunShardedEpoch(ConditionalNoisePredictor* model,
                       const NoiseSchedule& schedule,
                       const std::vector<data::Sample>& samples,
                       const TrainOptions& options, nn::Adam* optimizer,
                       nn::EmaWeights* ema, Rng& rng);

}  // namespace pristi::diffusion

#endif  // PRISTI_DIFFUSION_SHARDED_TRAIN_H_
