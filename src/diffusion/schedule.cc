#include "diffusion/schedule.h"

#include <cmath>

#include "common/check.h"

namespace pristi::diffusion {

NoiseSchedule::NoiseSchedule(std::vector<float> beta)
    : beta_(std::move(beta)) {
  PRISTI_CHECK(!beta_.empty());
  alpha_.reserve(beta_.size());
  alpha_bar_.reserve(beta_.size());
  float running = 1.0f;
  for (float b : beta_) {
    PRISTI_CHECK_GT(b, 0.0f);
    PRISTI_CHECK_LT(b, 1.0f);
    float a = 1.0f - b;
    alpha_.push_back(a);
    running *= a;
    alpha_bar_.push_back(running);
  }
}

NoiseSchedule NoiseSchedule::Quadratic(int64_t num_steps, float beta_1,
                                       float beta_t_max) {
  PRISTI_CHECK_GT(num_steps, 1);
  std::vector<float> beta(static_cast<size_t>(num_steps));
  float s1 = std::sqrt(beta_1);
  float st = std::sqrt(beta_t_max);
  for (int64_t t = 1; t <= num_steps; ++t) {
    float w = static_cast<float>(t - 1) / static_cast<float>(num_steps - 1);
    float root = (1.0f - w) * s1 + w * st;
    beta[static_cast<size_t>(t - 1)] = root * root;
  }
  return NoiseSchedule(std::move(beta));
}

NoiseSchedule NoiseSchedule::Linear(int64_t num_steps, float beta_1,
                                    float beta_t_max) {
  PRISTI_CHECK_GT(num_steps, 1);
  std::vector<float> beta(static_cast<size_t>(num_steps));
  for (int64_t t = 1; t <= num_steps; ++t) {
    float w = static_cast<float>(t - 1) / static_cast<float>(num_steps - 1);
    beta[static_cast<size_t>(t - 1)] = beta_1 + w * (beta_t_max - beta_1);
  }
  return NoiseSchedule(std::move(beta));
}

size_t NoiseSchedule::Index(int64_t t) const {
  PRISTI_CHECK_GE(t, 1);
  PRISTI_CHECK_LE(t, num_steps());
  return static_cast<size_t>(t - 1);
}

float NoiseSchedule::alpha_bar(int64_t t) const {
  if (t == 0) return 1.0f;
  return alpha_bar_[Index(t)];
}

float NoiseSchedule::sigma2(int64_t t) const {
  float numerator = 1.0f - alpha_bar(t - 1);
  float denominator = 1.0f - alpha_bar(t);
  return numerator / denominator * beta(t);
}

}  // namespace pristi::diffusion
