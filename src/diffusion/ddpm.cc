#include "diffusion/ddpm.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "common/check.h"
#include "nn/optimizer.h"

namespace pristi::diffusion {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;

Tensor QSample(const Tensor& x0, const Tensor& eps,
               const NoiseSchedule& schedule, int64_t t) {
  PRISTI_CHECK(t::ShapesEqual(x0.shape(), eps.shape()));
  float ab = schedule.alpha_bar(t);
  Tensor out = t::MulScalar(x0, std::sqrt(ab));
  out.AddInPlace(t::MulScalar(eps, std::sqrt(1.0f - ab)));
  return out;
}

DiffusionBatch MakeSingleWindowBatch(const Tensor& values,
                                     const Tensor& cond_mask,
                                     const Tensor& target_mask) {
  PRISTI_CHECK_EQ(values.ndim(), 2);
  int64_t n = values.dim(0), l = values.dim(1);
  DiffusionBatch batch;
  batch.cond_mask = cond_mask.Reshaped({1, n, l});
  batch.cond_values = t::Mul(values, cond_mask).Reshaped({1, n, l});
  batch.interpolated =
      data::LinearInterpolate(values, cond_mask).Reshaped({1, n, l});
  batch.target_mask = target_mask.Reshaped({1, n, l});
  return batch;
}


std::vector<double> TrainDiffusionModel(ConditionalNoisePredictor* model,
                                        const NoiseSchedule& schedule,
                                        const data::ImputationTask& task,
                                        const TrainOptions& options,
                                        Rng& rng) {
  PRISTI_CHECK(model != nullptr);
  std::vector<data::Sample> samples = data::ExtractSamples(task, "train");
  PRISTI_CHECK(!samples.empty()) << "no training windows";

  nn::Adam optimizer(model->Parameters(), {.lr = options.lr});
  std::vector<int64_t> milestones;
  for (double frac : options.lr_milestone_fracs) {
    milestones.push_back(static_cast<int64_t>(frac * options.epochs));
  }
  nn::MultiStepLr scheduler(&optimizer, milestones, options.lr_decay);

  std::vector<double> epoch_losses;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<int64_t> order = rng.Permutation(
        static_cast<int64_t>(samples.size()));
    double loss_sum = 0.0;
    int64_t step_count = 0;
    for (size_t batch_begin = 0; batch_begin < order.size();
         batch_begin += static_cast<size_t>(options.batch_size)) {
      size_t batch_end = std::min(
          order.size(), batch_begin + static_cast<size_t>(options.batch_size));
      std::vector<Tensor> cond_values, cond_masks, interpolated, target_masks,
          x0_parts;
      for (size_t i = batch_begin; i < batch_end; ++i) {
        const data::Sample& sample =
            samples[static_cast<size_t>(order[i])];
        // Historical-pattern option: borrow another window's observed mask.
        const Tensor* historical = nullptr;
        Tensor historical_mask;
        if (options.mask_strategy ==
            data::MaskStrategy::kHybridHistorical) {
          const data::Sample& other = samples[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(samples.size()) - 1))];
          historical_mask = other.observed;
          historical = &historical_mask;
        }
        Tensor target = data::ApplyMaskStrategy(
            sample.observed, options.mask_strategy, rng, historical);
        Tensor cond_mask = data::MaskMinus(sample.observed, target);
        cond_masks.push_back(cond_mask);
        cond_values.push_back(t::Mul(sample.values, cond_mask));
        interpolated.push_back(
            data::LinearInterpolate(sample.values, cond_mask));
        target_masks.push_back(target);
        x0_parts.push_back(t::Mul(sample.values, target));
      }
      DiffusionBatch batch;
      batch.cond_values = t::Stack(cond_values);
      batch.cond_mask = t::Stack(cond_masks);
      batch.interpolated = t::Stack(interpolated);
      batch.target_mask = t::Stack(target_masks);
      Tensor x0 = t::Stack(x0_parts);

      int64_t step =
          (options.high_t_bias > 0 && rng.Bernoulli(options.high_t_bias))
              ? rng.UniformInt(schedule.num_steps() / 2,
                               schedule.num_steps())
              : rng.UniformInt(1, schedule.num_steps());
      Tensor eps = Tensor::Randn(x0.shape(), rng);
      Tensor noisy = t::Mul(QSample(x0, eps, schedule, step),
                            batch.target_mask);

      model->ZeroGrad();
      Variable eps_hat = model->PredictNoise(noisy, batch, step);
      Variable loss =
          ag::MaskedMse(eps_hat, t::Mul(eps, batch.target_mask),
                        batch.target_mask);
      loss.Backward();
      optimizer.Step();
      loss_sum += loss.value()[0];
      ++step_count;
    }
    double mean_loss = loss_sum / std::max<int64_t>(step_count, 1);
    epoch_losses.push_back(mean_loss);
    scheduler.Step(epoch + 1);
    if (options.on_epoch) options.on_epoch(epoch, mean_loss);
  }
  return epoch_losses;
}

float ImputationResult::Quantile(int64_t node, int64_t step, double q) const {
  PRISTI_CHECK(!samples.empty());
  std::vector<float> values;
  values.reserve(samples.size());
  for (const Tensor& s : samples) values.push_back(s.at({node, step}));
  std::sort(values.begin(), values.end());
  double pos = q * (static_cast<double>(values.size()) - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return static_cast<float>(values[lo] * (1.0 - frac) + values[hi] * frac);
}

ImputationResult ImputeWindow(ConditionalNoisePredictor* model,
                              const NoiseSchedule& schedule,
                              const data::Sample& sample,
                              const ImputeOptions& options, Rng& rng) {
  PRISTI_CHECK(model != nullptr);
  PRISTI_CHECK_GT(options.num_samples, 0);
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  // At inference the imputation target is everything not observed; the
  // conditional information is every observed value (Algorithm 2).
  Tensor target_mask(t::Shape{n, l});
  for (int64_t i = 0; i < target_mask.numel(); ++i) {
    target_mask[i] = sample.observed[i] > 0.5f ? 0.0f : 1.0f;
  }
  DiffusionBatch batch =
      MakeSingleWindowBatch(sample.values, sample.observed, target_mask);

  ImputationResult result;
  result.samples.reserve(static_cast<size_t>(options.num_samples));
  Tensor observed_values = t::Mul(sample.values, sample.observed);
  // Step sequence: every step for ancestral sampling, a strided subsequence
  // for DDIM.
  std::vector<int64_t> steps;
  int64_t stride = options.ddim ? std::max<int64_t>(options.ddim_stride, 1)
                                : 1;
  for (int64_t step = schedule.num_steps(); step >= 1; step -= stride) {
    steps.push_back(step);
  }
  for (int64_t s = 0; s < options.num_samples; ++s) {
    Tensor x = t::Mul(Tensor::Randn({1, n, l}, rng), batch.target_mask);
    for (size_t si = 0; si < steps.size(); ++si) {
      int64_t step = steps[si];
      int64_t prev = si + 1 < steps.size() ? steps[si + 1] : 0;
      Variable eps_hat_var = model->PredictNoise(x, batch, step);
      Tensor eps_hat = eps_hat_var.value();
      float ab = schedule.alpha_bar(step);
      // Implied clean-sample estimate, clamped to the plausible range of
      // standardized data. Clamping stops early reverse steps (where the
      // predictor is least reliable) from compounding into divergence — the
      // standard "clip x0" stabilization of DDPM implementations.
      constexpr float kX0Clamp = 6.0f;
      Tensor x0_hat = t::Clamp(
          t::MulScalar(
              t::Sub(x, t::MulScalar(eps_hat, std::sqrt(1.0f - ab))),
              1.0f / std::sqrt(ab)),
          -kX0Clamp, kX0Clamp);
      Tensor next;
      if (options.ddim) {
        // DDIM (eta = 0): x_prev = sqrt(ab_prev) x0_hat
        //                         + sqrt(1 - ab_prev) eps_hat.
        float ab_prev = schedule.alpha_bar(prev);
        next = t::Add(t::MulScalar(x0_hat, std::sqrt(ab_prev)),
                      t::MulScalar(eps_hat, std::sqrt(1.0f - ab_prev)));
      } else {
        // DDPM ancestral step via the posterior mean in x0 form
        // (equivalent to Algorithm 2 when x0_hat is unclamped):
        // mu = [sqrt(ab_prev) beta_t x0_hat
        //       + sqrt(alpha_t) (1 - ab_prev) x_t] / (1 - ab_t).
        float alpha = schedule.alpha(step);
        float beta = schedule.beta(step);
        float ab_prev = schedule.alpha_bar(step - 1);
        float c0 = std::sqrt(ab_prev) * beta / (1.0f - ab);
        float ct = std::sqrt(alpha) * (1.0f - ab_prev) / (1.0f - ab);
        next = t::Add(t::MulScalar(x0_hat, c0), t::MulScalar(x, ct));
        if (step > 1) {
          float sigma = std::sqrt(schedule.sigma2(step));
          Tensor z = Tensor::Randn({1, n, l}, rng);
          next.AddInPlace(t::MulScalar(z, sigma));
        }
      }
      x = t::Mul(next, batch.target_mask);
      if (NanCheckEnabled()) {
        int64_t bad = FirstNonFinite(x.data(), x.numel());
        PRISTI_CHECK(bad < 0)
            << "PRISTI_DEBUG_NANCHECK: reverse diffusion step t=" << step
            << " (sample " << s << ") produced non-finite value at flat "
            << "index " << bad << ", state shape "
            << t::ShapeToString(x.shape());
      }
    }
    // Merge: generated values on the target, observations elsewhere.
    Tensor merged = t::Add(t::Mul(x.Reshaped({n, l}), target_mask),
                           observed_values);
    result.samples.push_back(merged);
  }

  // Per-entry median.
  result.median = Tensor(t::Shape{n, l});
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      result.median.at({node, step}) = result.Quantile(node, step, 0.5);
    }
  }
  return result;
}

}  // namespace pristi::diffusion
