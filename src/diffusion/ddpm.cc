#include "diffusion/ddpm.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>

#include "autograd/ops.h"
#include "common/check.h"
#include "common/parallel.h"
#include "diffusion/sharded_train.h"
#include "nn/ema.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "serialize/checkpoint.h"

namespace pristi::diffusion {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;

Tensor QSample(const Tensor& x0, const Tensor& eps,
               const NoiseSchedule& schedule, int64_t t) {
  PRISTI_CHECK(t::ShapesEqual(x0.shape(), eps.shape()));
  float ab = schedule.alpha_bar(t);
  Tensor out = t::MulScalar(x0, std::sqrt(ab));
  out.AddInPlace(t::MulScalar(eps, std::sqrt(1.0f - ab)));
  return out;
}

DiffusionBatch MakeSingleWindowBatch(const Tensor& values,
                                     const Tensor& cond_mask,
                                     const Tensor& target_mask) {
  PRISTI_CHECK_EQ(values.ndim(), 2);
  int64_t n = values.dim(0), l = values.dim(1);
  DiffusionBatch batch;
  batch.cond_mask = cond_mask.Reshaped({1, n, l});
  batch.cond_values = t::Mul(values, cond_mask).Reshaped({1, n, l});
  batch.interpolated =
      data::LinearInterpolate(values, cond_mask).Reshaped({1, n, l});
  batch.target_mask = target_mask.Reshaped({1, n, l});
  return batch;
}


namespace {

// The noise-schedule betas as stored in (and checked against) a training
// checkpoint: resuming under a different schedule would silently train a
// different model, so the exact float values are compared.
std::vector<double> ScheduleBetas(const NoiseSchedule& schedule) {
  std::vector<double> betas;
  betas.reserve(static_cast<size_t>(schedule.num_steps()));
  for (int64_t t = 1; t <= schedule.num_steps(); ++t) {
    betas.push_back(static_cast<double>(schedule.beta(t)));
  }
  return betas;
}

// Writes one "pristi-training" checkpoint file atomically. `epochs_done` is
// the number of completed epochs (== the index of the next epoch to run).
// `sharded` records the training mode (TrainOptions::num_shards > 0) — the
// shard COUNT is deliberately not stored (any K produces the same bits, so
// a resume may pick a different one), but the single-stream and sharded
// trajectories differ, so crossing modes on resume is a config mismatch.
serialize::Status SaveTrainingCheckpoint(
    const std::string& path, nn::Module& module, const nn::Adam& optimizer,
    const nn::EmaWeights* ema, const Rng& rng, const NoiseSchedule& schedule,
    int64_t epochs_done, const std::vector<double>& epoch_losses,
    bool sharded) {
  return serialize::WriteFileAtomic(path, [&](std::ostream& out) {
    serialize::CheckpointWriter writer(out);
    writer.AddString("meta.kind", "pristi-training");
    serialize::AppendModule(module, &writer);
    serialize::AppendAdam(optimizer, &writer);
    if (ema != nullptr) serialize::AppendEma(*ema, &writer);
    serialize::AppendRng(rng, &writer);
    writer.AddF64List("schedule.beta", ScheduleBetas(schedule));
    writer.AddI64("train.epoch", epochs_done);
    writer.AddI64("train.sharded", sharded ? 1 : 0);
    writer.AddF64List("train.losses", epoch_losses);
    if (!writer.Finish()) {
      return serialize::Status::Error(serialize::ErrorCode::kIoError,
                                      "checkpoint write failed");
    }
    return serialize::Status::Ok();
  });
}

// Restores model/optimizer/EMA/RNG state and returns the number of completed
// epochs via `epochs_done`. Every failure is a typed serialize error.
serialize::Status LoadTrainingCheckpoint(
    const std::string& path, nn::Module& module, nn::Adam* optimizer,
    nn::EmaWeights* ema, Rng* rng, const NoiseSchedule& schedule,
    bool sharded, int64_t* epochs_done,
    std::vector<double>* epoch_losses) {
  serialize::CheckpointView view;
  serialize::Status status = serialize::ParseCheckpointFile(path, &view);
  if (!status.ok()) return status;
  std::string kind;
  if (!(status = view.GetString("meta.kind", &kind)).ok()) return status;
  if (kind != "pristi-training") {
    return serialize::Status::Error(
        serialize::ErrorCode::kConfigMismatch,
        "'" + path + "' is a '" + kind +
            "' checkpoint, not a training checkpoint");
  }
  std::vector<double> stored_betas;
  if (!(status = view.GetF64List("schedule.beta", &stored_betas)).ok()) {
    return status;
  }
  if (stored_betas != ScheduleBetas(schedule)) {
    return serialize::Status::Error(
        serialize::ErrorCode::kConfigMismatch,
        "checkpoint noise schedule differs from the live schedule");
  }
  if (!(status = serialize::LoadModule(module, view)).ok()) return status;
  if (!(status = serialize::LoadAdam(optimizer, view)).ok()) return status;
  if (ema != nullptr) {
    if (!(status = serialize::LoadEma(ema, view)).ok()) return status;
  } else if (view.Find("ema.__count") != nullptr) {
    return serialize::Status::Error(
        serialize::ErrorCode::kConfigMismatch,
        "checkpoint carries EMA shadows but the run has ema_decay = 0");
  }
  if (!(status = serialize::LoadRng(rng, view)).ok()) return status;
  // Checkpoints predating the sharded trainer carry no mode record; they
  // were all single-stream.
  int64_t stored_sharded = 0;
  if (view.Find("train.sharded") != nullptr) {
    if (!(status = view.GetI64("train.sharded", &stored_sharded)).ok()) {
      return status;
    }
  }
  if ((stored_sharded != 0) != sharded) {
    return serialize::Status::Error(
        serialize::ErrorCode::kConfigMismatch,
        std::string("checkpoint was written by a ") +
            (stored_sharded != 0 ? "sharded" : "single-stream") +
            " training run; resuming in the other mode would silently "
            "follow a different trajectory (set TrainOptions::num_shards "
            "to match)");
  }
  if (!(status = view.GetI64("train.epoch", epochs_done)).ok()) return status;
  if (!(status = view.GetF64List("train.losses", epoch_losses)).ok()) {
    return status;
  }
  if (*epochs_done < 0 ||
      *epochs_done != static_cast<int64_t>(epoch_losses->size())) {
    return serialize::Status::Error(
        serialize::ErrorCode::kBadRecord,
        "train.epoch disagrees with the stored loss history");
  }
  return serialize::Status::Ok();
}

}  // namespace

std::vector<double> TrainDiffusionModel(ConditionalNoisePredictor* model,
                                        const NoiseSchedule& schedule,
                                        const data::ImputationTask& task,
                                        const TrainOptions& options,
                                        Rng& rng) {
  PRISTI_CHECK(model != nullptr);
  PRISTI_CHECK_GE(options.num_shards, 0)
      << "TrainOptions::num_shards: 0 = single-stream, K >= 1 = sharded";
  ModelAccessGuard access_guard(model, "TrainDiffusionModel");
  std::vector<data::Sample> samples = data::ExtractSamples(task, "train");
  PRISTI_CHECK(!samples.empty()) << "no training windows";

  nn::Adam optimizer(model->Parameters(), {.lr = options.lr});
  std::vector<int64_t> milestones;
  for (double frac : options.lr_milestone_fracs) {
    milestones.push_back(static_cast<int64_t>(frac * options.epochs));
  }
  nn::MultiStepLr scheduler(&optimizer, milestones, options.lr_decay);

  std::optional<nn::EmaWeights> ema;
  if (options.ema_decay > 0.0f) {
    ema.emplace(model->Parameters(), options.ema_decay);
  }

  bool wants_checkpointing =
      !options.checkpoint_dir.empty() || !options.resume_from.empty();
  nn::Module* module = dynamic_cast<nn::Module*>(model);
  PRISTI_CHECK(!wants_checkpointing || module != nullptr)
      << "checkpointing requires the noise predictor to be an nn::Module";

  int64_t start_epoch = 0;
  std::vector<double> epoch_losses;
  if (!options.resume_from.empty()) {
    serialize::Status status = LoadTrainingCheckpoint(
        options.resume_from, *module, &optimizer,
        ema ? &*ema : nullptr, &rng, schedule, options.num_shards > 0,
        &start_epoch, &epoch_losses);
    PRISTI_CHECK(status.ok())
        << "cannot resume from '" << options.resume_from
        << "': " << status.ToString();
    PRISTI_CHECK_LE(start_epoch, options.epochs)
        << "checkpoint already trained past the requested epoch count";
  }
  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    PRISTI_CHECK(!ec) << "cannot create checkpoint dir '"
                      << options.checkpoint_dir << "'";
  }

  for (int64_t epoch = start_epoch; epoch < options.epochs; ++epoch) {
    double mean_loss;
    if (options.num_shards > 0) {
      mean_loss = RunShardedEpoch(model, schedule, samples, options,
                                  &optimizer, ema ? &*ema : nullptr, rng);
    } else {
      // Classic single-stream epoch: one stacked batch per optimizer step,
      // all draws from the shared epoch RNG in window order. The window
      // build and the forward/backward are the extracted units the sharded
      // engine also runs; passing denom = max(1, SumAll(mask)) makes
      // ShardStep reproduce ag::MaskedMse bit-for-bit, so this path's
      // arithmetic is unchanged (the serialize_test golden pins it).
      std::vector<int64_t> order = rng.Permutation(
          static_cast<int64_t>(samples.size()));
      double loss_sum = 0.0;
      int64_t step_count = 0;
      for (size_t batch_begin = 0; batch_begin < order.size();
           batch_begin += static_cast<size_t>(options.batch_size)) {
        size_t batch_end = std::min(
            order.size(),
            batch_begin + static_cast<size_t>(options.batch_size));
        std::vector<Tensor> cond_values, cond_masks, interpolated,
            target_masks, x0_parts;
        for (size_t i = batch_begin; i < batch_end; ++i) {
          WindowExample example = BuildWindowExample(
              samples, order[i], options.mask_strategy, rng);
          cond_masks.push_back(std::move(example.cond_mask));
          cond_values.push_back(std::move(example.cond_values));
          interpolated.push_back(std::move(example.interpolated));
          target_masks.push_back(std::move(example.target_mask));
          x0_parts.push_back(std::move(example.x0));
        }
        DiffusionBatch batch;
        batch.cond_values = t::Stack(cond_values);
        batch.cond_mask = t::Stack(cond_masks);
        batch.interpolated = t::Stack(interpolated);
        batch.target_mask = t::Stack(target_masks);
        Tensor x0 = t::Stack(x0_parts);

        int64_t step =
            (options.high_t_bias > 0 && rng.Bernoulli(options.high_t_bias))
                ? rng.UniformInt(schedule.num_steps() / 2,
                                 schedule.num_steps())
                : rng.UniformInt(1, schedule.num_steps());
        Tensor eps = Tensor::Randn(x0.shape(), rng);
        Tensor noisy = t::Mul(QSample(x0, eps, schedule, step),
                              batch.target_mask);

        model->ZeroGrad();
        float denom = std::max(1.0f, t::SumAll(batch.target_mask));
        loss_sum += ShardStep(model, /*params=*/{}, noisy, batch,
                              t::Mul(eps, batch.target_mask), step, denom,
                              /*capture=*/nullptr);
        optimizer.Step();
        if (ema) ema->Update();
        ++step_count;
      }
      mean_loss = loss_sum / std::max<int64_t>(step_count, 1);
    }
    epoch_losses.push_back(mean_loss);
    scheduler.Step(epoch + 1);
    if (options.on_epoch) options.on_epoch(epoch, mean_loss);

    int64_t done = epoch + 1;
    bool last_epoch = done == options.epochs;
    if (!options.checkpoint_dir.empty() &&
        (last_epoch || (options.checkpoint_every > 0 &&
                        done % options.checkpoint_every == 0))) {
      std::string path = serialize::CheckpointFileName(
          options.checkpoint_dir, options.checkpoint_prefix, done);
      serialize::Status status = SaveTrainingCheckpoint(
          path, *module, optimizer, ema ? &*ema : nullptr, rng, schedule,
          done, epoch_losses, options.num_shards > 0);
      PRISTI_CHECK(status.ok())
          << "cannot write checkpoint '" << path << "': " << status.ToString();
      status = serialize::PruneCheckpoints(options.checkpoint_dir,
                                           options.checkpoint_prefix,
                                           options.checkpoint_keep_last);
      PRISTI_CHECK(status.ok()) << status.ToString();
    }
  }
  return epoch_losses;
}

float ImputationResult::Quantile(int64_t node, int64_t step, double q) const {
  PRISTI_CHECK(!samples.empty());
  std::vector<float> values;
  values.reserve(samples.size());
  for (const Tensor& s : samples) values.push_back(s.at({node, step}));
  std::sort(values.begin(), values.end());
  double pos = q * (static_cast<double>(values.size()) - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return static_cast<float>(values[lo] * (1.0 - frac) + values[hi] * frac);
}

std::vector<Rng> MakeChainStreams(Rng& rng, int64_t count) {
  PRISTI_CHECK_GE(count, 0);
  uint64_t root = rng.engine()();
  std::vector<Rng> chains;
  chains.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    // SplitMix64 finalizer over (root, counter): adjacent counters map to
    // statistically unrelated seeds.
    uint64_t z = root + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(i + 1);
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ULL;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBULL;
    z ^= z >> 31;
    chains.emplace_back(z);
  }
  return chains;
}

namespace {

// Runs the full reverse chain for `num_chains` samples stacked into one
// (num_chains, N, L) state tensor: one model call per kept step covers
// every chain (the PLMS warm-up makes a few calls per step).
// `target_masks` is stacked per chain ((num_chains, N, L)), which is what
// lets chains from DIFFERENT requests — different windows, different masks
// — share one model call on the coalesced path. The sequential fallback
// calls this with num_chains == 1 per chain; all paths execute identical
// per-entry arithmetic (and a FRESH stepper per call, so PLMS history is
// per-chain-set), so they agree when fed the same chain streams.
Tensor RunReverseChains(ConditionalNoisePredictor* model,
                        const DiffusionBatch& batch,
                        const std::vector<ReverseStep>& plan,
                        SamplerKind sampler, Rng* chain_rngs,
                        int64_t num_chains, const Tensor& target_masks) {
  PRISTI_CHECK_EQ(target_masks.dim(0), num_chains);
  int64_t n = target_masks.dim(1), l = target_masks.dim(2);
  int64_t per = n * l;
  Tensor x(t::Shape{num_chains, n, l});
  FillChainNoise(&x, chain_rngs, num_chains, target_masks);
  std::unique_ptr<SamplerStepper> stepper =
      MakeSamplerStepper(sampler, plan.size());
  for (size_t si = 0; si < plan.size(); ++si) {
    stepper->Step(model, batch, plan, si, &x, chain_rngs, num_chains,
                  target_masks);
    if (NanCheckEnabled()) {
      int64_t bad = FirstNonFinite(x.data(), x.numel());
      PRISTI_CHECK(bad < 0)
          << "PRISTI_DEBUG_NANCHECK: reverse diffusion step t="
          << plan[si].step << " (" << SamplerKindName(sampler)
          << ") produced non-finite value at flat index " << bad
          << " (chain " << bad / per << "), state shape "
          << t::ShapeToString(x.shape());
    }
  }
  return x;
}

// Repeats a (1, N, L) conditioning tensor across a leading batch of `s`
// chains.
Tensor TileChains(const Tensor& one, int64_t s) {
  PRISTI_CHECK_EQ(one.dim(0), 1);
  int64_t per = one.numel();
  Tensor out(t::Shape{s, one.dim(1), one.dim(2)});
  for (int64_t c = 0; c < s; ++c) {
    std::copy(one.data(), one.data() + per, out.data() + c * per);
  }
  return out;
}

// The inference-time target mask: everything not observed is imputed; the
// conditional information is every observed value (Algorithm 2).
Tensor InferenceTargetMask(const data::Sample& sample) {
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  Tensor target_mask(t::Shape{n, l});
  for (int64_t i = 0; i < target_mask.numel(); ++i) {
    target_mask[i] = sample.observed[i] > 0.5f ? 0.0f : 1.0f;
  }
  return target_mask;
}

// Appends one completed chain to `result`: generated values on the target
// entries, observations elsewhere. Shared by the solo and coalesced paths
// so their merge arithmetic cannot drift (the coalesced bit-identity
// contract compares their outputs bitwise).
void AppendMergedChain(const float* chain, const Tensor& observed_values,
                       const Tensor& target_mask, ImputationResult* result) {
  Tensor merged = observed_values;
  float* pm = merged.data();
  const float* pt = target_mask.data();
  for (int64_t i = 0; i < merged.numel(); ++i) pm[i] += chain[i] * pt[i];
  result->samples.push_back(std::move(merged));
}

// Fills result->median (the per-entry median across samples).
void FinalizeMedian(ImputationResult* result, int64_t n, int64_t l) {
  result->median = Tensor(t::Shape{n, l});
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      result->median.at({node, step}) = result->Quantile(node, step, 0.5);
    }
  }
}

}  // namespace

ImputationResult ImputeWindow(ConditionalNoisePredictor* model,
                              const NoiseSchedule& schedule,
                              const data::Sample& sample,
                              const ImputeOptions& options, Rng& rng) {
  PRISTI_CHECK(model != nullptr);
  PRISTI_CHECK_GT(options.num_samples, 0);
  ModelAccessGuard access_guard(model, "ImputeWindow");
  // Sampling never backprops: run every PredictNoise under inference mode
  // so no tape is recorded and each step's activations return to the
  // buffer pool before the next step allocates them again.
  ag::NoGradGuard no_grad;
  int64_t s = options.num_samples;
  int64_t n = sample.values.dim(0), l = sample.values.dim(1);
  Tensor target_mask = InferenceTargetMask(sample);
  DiffusionBatch batch =
      MakeSingleWindowBatch(sample.values, sample.observed, target_mask);

  std::vector<Rng> chains = MakeChainStreams(rng, s);
  std::vector<ReverseStep> plan =
      PlanReverseSteps(schedule, options.num_inference_steps);

  ImputationResult result;
  result.samples.reserve(static_cast<size_t>(s));
  Tensor observed_values = t::Mul(sample.values, sample.observed);

  if (options.sequential_fallback) {
    // Oracle path: one chain per model call, batch size 1.
    for (int64_t c = 0; c < s; ++c) {
      Tensor xc = RunReverseChains(model, batch, plan, options.sampler,
                                   &chains[static_cast<size_t>(c)], 1,
                                   batch.target_mask);
      AppendMergedChain(xc.data(), observed_values, target_mask, &result);
    }
  } else {
    // Batched path: all chains advance together; each reverse step is a
    // single (S, N, L) model call.
    DiffusionBatch tiled;
    tiled.cond_values = TileChains(batch.cond_values, s);
    tiled.cond_mask = TileChains(batch.cond_mask, s);
    tiled.interpolated = TileChains(batch.interpolated, s);
    tiled.target_mask = TileChains(batch.target_mask, s);
    Tensor x = RunReverseChains(model, tiled, plan, options.sampler,
                                chains.data(), s, tiled.target_mask);
    for (int64_t c = 0; c < s; ++c) {
      AppendMergedChain(x.data() + c * n * l, observed_values, target_mask,
                        &result);
    }
  }

  FinalizeMedian(&result, n, l);
  return result;
}

std::vector<ImputationResult> ImputeWindowsCoalesced(
    ConditionalNoisePredictor* model, const NoiseSchedule& schedule,
    const std::vector<data::Sample>& windows,
    const std::vector<uint64_t>& seeds, const ImputeOptions& options) {
  PRISTI_CHECK(model != nullptr);
  PRISTI_CHECK_EQ(windows.size(), seeds.size());
  PRISTI_CHECK_GT(options.num_samples, 0);
  int64_t num_requests = static_cast<int64_t>(windows.size());
  if (num_requests == 0) return {};
  ModelAccessGuard access_guard(model, "ImputeWindowsCoalesced");
  ag::NoGradGuard no_grad;
  int64_t s = options.num_samples;
  int64_t n = windows[0].values.dim(0), l = windows[0].values.dim(1);
  int64_t per = n * l;

  // Per-request conditioning, target masks and chain streams. Request r's
  // chains are derived from a fresh Rng(seeds[r]) — NOT from one shared
  // stream — so the draws a request consumes depend only on its own seed,
  // never on which other requests happen to share the batch or in which
  // order they arrived.
  DiffusionBatch stacked;
  stacked.cond_values = Tensor(t::Shape{num_requests * s, n, l});
  stacked.cond_mask = Tensor(t::Shape{num_requests * s, n, l});
  stacked.interpolated = Tensor(t::Shape{num_requests * s, n, l});
  stacked.target_mask = Tensor(t::Shape{num_requests * s, n, l});
  std::vector<Tensor> target_masks;   // per request, (N, L)
  std::vector<Tensor> observed_vals;  // per request, (N, L)
  std::vector<Rng> chains;
  target_masks.reserve(static_cast<size_t>(num_requests));
  observed_vals.reserve(static_cast<size_t>(num_requests));
  chains.reserve(static_cast<size_t>(num_requests * s));
  for (int64_t r = 0; r < num_requests; ++r) {
    const data::Sample& sample = windows[static_cast<size_t>(r)];
    PRISTI_CHECK_EQ(sample.values.dim(0), n);
    PRISTI_CHECK_EQ(sample.values.dim(1), l);
    target_masks.push_back(InferenceTargetMask(sample));
    observed_vals.push_back(t::Mul(sample.values, sample.observed));
    DiffusionBatch batch = MakeSingleWindowBatch(sample.values,
                                                 sample.observed,
                                                 target_masks.back());
    for (int64_t c = 0; c < s; ++c) {
      int64_t chain_index = r * s + c;
      auto copy_into = [&](const Tensor& one, Tensor* dest) {
        std::copy(one.data(), one.data() + per,
                  dest->data() + chain_index * per);
      };
      copy_into(batch.cond_values, &stacked.cond_values);
      copy_into(batch.cond_mask, &stacked.cond_mask);
      copy_into(batch.interpolated, &stacked.interpolated);
      copy_into(batch.target_mask, &stacked.target_mask);
    }
    Rng request_rng(seeds[static_cast<size_t>(r)]);
    std::vector<Rng> request_chains = MakeChainStreams(request_rng, s);
    for (Rng& chain : request_chains) chains.push_back(chain);
  }

  std::vector<ReverseStep> plan =
      PlanReverseSteps(schedule, options.num_inference_steps);
  Tensor x = RunReverseChains(model, stacked, plan, options.sampler,
                              chains.data(), num_requests * s,
                              stacked.target_mask);

  std::vector<ImputationResult> results(static_cast<size_t>(num_requests));
  for (int64_t r = 0; r < num_requests; ++r) {
    ImputationResult& result = results[static_cast<size_t>(r)];
    result.samples.reserve(static_cast<size_t>(s));
    for (int64_t c = 0; c < s; ++c) {
      AppendMergedChain(x.data() + (r * s + c) * per,
                        observed_vals[static_cast<size_t>(r)],
                        target_masks[static_cast<size_t>(r)], &result);
    }
    FinalizeMedian(&result, n, l);
  }
  return results;
}

std::vector<ImputationResult> ImputeWindowsCoalesced(
    ConditionalNoisePredictor* model, const NoiseSchedule& schedule,
    const std::vector<data::Sample>& windows,
    const std::vector<uint64_t>& seeds,
    const std::vector<ImputeOptions>& options) {
  PRISTI_CHECK_EQ(windows.size(), options.size());
  PRISTI_CHECK_EQ(windows.size(), seeds.size());
  if (windows.empty()) return {};
  // Partition into coalescible groups. A reverse-step model call carries a
  // single diffusion step t for the whole batch, so only requests with the
  // same sampler, kept-step plan and chain count can share a chain run.
  // std::map gives a deterministic group order independent of arrival
  // order (each group's outputs are bit-identical to solo runs anyway, but
  // deterministic model-call order keeps traces reproducible too).
  using GroupKey = std::tuple<int, int64_t, int64_t>;
  std::map<GroupKey, std::vector<size_t>> groups;
  for (size_t r = 0; r < windows.size(); ++r) {
    const ImputeOptions& o = options[r];
    groups[GroupKey{static_cast<int>(o.sampler), o.num_inference_steps,
                    o.num_samples}]
        .push_back(r);
  }
  std::vector<ImputationResult> results(windows.size());
  for (auto& [key, members] : groups) {
    std::vector<data::Sample> group_windows;
    std::vector<uint64_t> group_seeds;
    group_windows.reserve(members.size());
    group_seeds.reserve(members.size());
    for (size_t r : members) {
      group_windows.push_back(windows[r]);
      group_seeds.push_back(seeds[r]);
    }
    ImputeOptions group_options = options[members.front()];
    group_options.sequential_fallback = false;
    std::vector<ImputationResult> group_results = ImputeWindowsCoalesced(
        model, schedule, group_windows, group_seeds, group_options);
    for (size_t i = 0; i < members.size(); ++i) {
      results[members[i]] = std::move(group_results[i]);
    }
  }
  return results;
}

#if PRISTI_DCHECK_IS_ON

namespace {

std::mutex& ModelAccessMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<const void*, const char*>& ModelAccessSites() {
  static std::unordered_map<const void*, const char*> sites;
  return sites;
}

}  // namespace

ModelAccessGuard::ModelAccessGuard(const void* model, const char* site)
    : model_(model) {
  std::lock_guard<std::mutex> guard(ModelAccessMutex());
  auto [it, inserted] = ModelAccessSites().emplace(model, site);
  PRISTI_CHECK(inserted)
      << "concurrent use of one ConditionalNoisePredictor: " << site
      << " entered while " << it->second
      << " is still running on the same model. A model is single-caller; "
         "route concurrent imputation requests through serve::ServeSession, "
         "which serializes model access and coalesces requests into one "
         "batched call.";
}

ModelAccessGuard::~ModelAccessGuard() {
  std::lock_guard<std::mutex> guard(ModelAccessMutex());
  ModelAccessSites().erase(model_);
}

#else  // PRISTI_DCHECK_IS_ON

ModelAccessGuard::ModelAccessGuard(const void* model, const char* /*site*/)
    : model_(model) {}
ModelAccessGuard::~ModelAccessGuard() = default;

#endif  // PRISTI_DCHECK_IS_ON

}  // namespace pristi::diffusion
