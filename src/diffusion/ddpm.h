#ifndef PRISTI_DIFFUSION_DDPM_H_
#define PRISTI_DIFFUSION_DDPM_H_

// The conditional DDPM engine shared by PriSTI and the CSDI baseline:
// forward q-sampling (Eq. 1), the epsilon-prediction training loop
// (Algorithm 1), and ancestral-sampling imputation (Algorithm 2) with
// multi-sample probabilistic output.

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"
#include "data/windows.h"
#include "diffusion/sampler.h"
#include "diffusion/schedule.h"

namespace pristi::diffusion {

using autograd::Variable;
using tensor::Tensor;

// One training/inference batch, node-major per sample. All tensors (B, N, L).
struct DiffusionBatch {
  Tensor cond_values;    // observed conditional values (zeros elsewhere)
  Tensor cond_mask;      // 1 = conditionally observed
  Tensor interpolated;   // linear interpolation of cond_values (PriSTI's X)
  Tensor target_mask;    // 1 = entries being denoised / imputed
};

// A conditional noise prediction network epsilon_theta. Implementations:
// PristiModel (src/pristi) and CsdiModel (src/baselines).
class ConditionalNoisePredictor {
 public:
  virtual ~ConditionalNoisePredictor() = default;

  // Predicts the added noise. `noisy` is (B, N, L) — the perturbed target
  // (zeros outside target_mask); `t` is the 1-based diffusion step shared by
  // the batch. Returns (B, N, L).
  virtual Variable PredictNoise(const Tensor& noisy,
                                const DiffusionBatch& batch, int64_t t) = 0;

  // Parameters for the optimizer.
  virtual std::vector<Variable> Parameters() = 0;
  virtual void ZeroGrad() = 0;
};

// x_t = sqrt(alpha_bar_t) x_0 + sqrt(1 - alpha_bar_t) eps.
Tensor QSample(const Tensor& x0, const Tensor& eps,
               const NoiseSchedule& schedule, int64_t t);

struct TrainOptions {
  int64_t epochs = 30;
  int64_t batch_size = 8;
  float lr = 1e-3f;
  data::MaskStrategy mask_strategy = data::MaskStrategy::kHybrid;
  // LR decay milestones as fractions of total epochs (paper: 0.75 / 0.9).
  std::vector<double> lr_milestone_fracs = {0.75, 0.9};
  float lr_decay = 0.1f;
  // With this probability, the diffusion step is drawn from the upper half
  // [T/2, T] instead of uniformly from [1, T]. High-t steps are where the
  // model must actually learn the conditional distribution (low-t steps are
  // near-identity), so biasing them accelerates training at reduced scale.
  // 0 reproduces the paper's uniform sampling exactly.
  double high_t_bias = 0.0;
  // Optional per-epoch callback (epoch, mean loss).
  std::function<void(int64_t, double)> on_epoch;

  // ---- Shard-parallel training --------------------------------------------
  // 0 (the default) trains single-stream: one stacked forward/backward per
  // optimizer step, the classic loop. K >= 1 routes every optimizer step
  // through the shard-parallel engine (diffusion/sharded_train.h): the
  // batch's windows become independent leaves partitioned across K logical
  // shards on the persistent pool, with per-leaf RNG streams and gradients
  // merged by a fixed-topology tree all-reduce. A sharded run's loss trace,
  // parameters and checkpoints are BIT-IDENTICAL for any K >= 1 at any
  // thread count (K only changes scheduling); the two modes are two
  // different (both deterministic) training trajectories, and a checkpoint
  // records which mode wrote it so a resume cannot silently cross modes.
  int64_t num_shards = 0;

  // ---- EMA ----------------------------------------------------------------
  // When > 0, maintains an exponential moving average of the weights
  // (updated after every optimizer step); the EMA shadows are part of the
  // training checkpoint. 0 disables EMA entirely.
  float ema_decay = 0.0f;

  // ---- Checkpointing / resume ---------------------------------------------
  // When `checkpoint_dir` is non-empty, the trainer writes
  // "<dir>/<prefix>-<epochs completed>.ckpt" after every `checkpoint_every`
  // epochs (and after the final epoch). Writes are atomic (temp file +
  // rename), and only the newest `checkpoint_keep_last` files are kept
  // (<= 0 keeps everything). A training checkpoint holds model parameters,
  // Adam state, EMA shadows, the RNG stream position, the noise-schedule
  // betas and the loss history — everything needed to resume bit-identically.
  std::string checkpoint_dir;
  std::string checkpoint_prefix = "ckpt";
  int64_t checkpoint_every = 1;
  int64_t checkpoint_keep_last = 3;
  // When non-empty, restores a training checkpoint before the first epoch
  // and continues from the stored epoch: the resumed run's parameters and
  // loss trajectory are bit-identical to an uninterrupted run. The
  // checkpoint's schedule betas and optimizer/EMA configuration must match
  // the live ones; any mismatch or file damage aborts with the typed
  // serialize error in the message (a silently different trajectory would
  // be worse than a crash). Requires `model` to also be an nn::Module.
  std::string resume_from;
};

// Algorithm 1. Trains `model` on the task's training windows: each step
// re-masks the window with the configured strategy, interpolates the
// remaining observations, q-samples a diffusion step and regresses the
// predicted noise against the truth on the masked entries.
// Returns the per-epoch mean training loss; on resume the restored epochs'
// losses are included, so the result always covers epoch 0..epochs-1 and can
// be compared directly against an uninterrupted run.
std::vector<double> TrainDiffusionModel(ConditionalNoisePredictor* model,
                                        const NoiseSchedule& schedule,
                                        const data::ImputationTask& task,
                                        const TrainOptions& options,
                                        Rng& rng);

// Multi-sample probabilistic imputation of one window (Algorithm 2).
// Every generated sample agrees with the observations outside the target
// mask; entries inside it are drawn from the learned conditional.
struct ImputationResult {
  // Each (N, L): generated samples (values filled only on target entries,
  // observed entries copied through).
  std::vector<Tensor> samples;
  Tensor median;  // (N, L) per-entry median across samples
  // Quantile helper over the generated samples for one entry.
  float Quantile(int64_t node, int64_t step, double q) const;
};

struct ImputeOptions {
  int64_t num_samples = 20;  // paper uses 100; reduced default for CI speed
  // Which reverse-process sampler advances the chains (see
  // diffusion/sampler.h for the family): kDdpm is the paper's ancestral
  // sampler, kDdim the deterministic eta = 0 accelerator, kPlms the
  // pseudo-numerical 4th-order multistep solver that reaches DDIM quality
  // in ~5-10x fewer kept steps. For kDdim/kPlms per-sample diversity comes
  // only from the initial noise draw.
  SamplerKind sampler = SamplerKind::kDdpm;
  // How many reverse steps to actually run: <= 0 (or >= the schedule's T)
  // keeps the full schedule; otherwise the K evenly spaced kept steps
  // t_i = T - floor(i*T/K) — for T divisible by K this is exactly the old
  // stride-(T/K) DDIM subset. The SAME subset rule applies to all three
  // samplers, so step-count sweeps are sampler-comparable
  // (bench/ext_sampler_ablation.cc, tests/sampler_parity_test.cc).
  int64_t num_inference_steps = 0;
  // Runs the `num_samples` reverse chains one at a time (batch size 1 per
  // model call) instead of stacking them into one (S, N, L) batch. The two
  // paths draw from identical per-chain RNG streams (and PLMS keeps its
  // eps history per chain), so the sequential path is the reference oracle
  // the sampler-equivalence tests compare against.
  bool sequential_fallback = false;
};

// Derives `count` independent per-chain RNG streams from `rng` by counter
// seeding: one draw from `rng` fixes a root, and chain i is seeded with
// mix(root, i) (a SplitMix64 finalizer). Because every chain's stream
// depends only on (root, i) — not on how many draws other chains made —
// the batched sampler (chains interleaved per step) and the sequential
// fallback (chains completed one after another) consume identical noise per
// chain, which is what makes them comparable at tight tolerance. Consumes
// exactly one draw from `rng` regardless of `count`.
std::vector<Rng> MakeChainStreams(Rng& rng, int64_t count);

ImputationResult ImputeWindow(ConditionalNoisePredictor* model,
                              const NoiseSchedule& schedule,
                              const data::Sample& sample,
                              const ImputeOptions& options, Rng& rng);

// Coalesced multi-request sampling: R same-shape windows, each drawing its
// own `options.num_samples` chains, advance through ONE reverse chain of
// (R*S, N, L) model calls — the serving layer's cross-request batching
// primitive. Request r's chain streams are exactly the ones ImputeWindow
// derives from Rng(seeds[r]), and every per-chain/per-entry operation in
// the model forward and the reverse update is independent of the leading
// batch index (the GEMM layer's fixed per-element accumulation order makes
// that hold bitwise), so each returned result is BIT-IDENTICAL to
//   Rng rng(seeds[r]);
//   ImputeWindow(model, schedule, windows[r], options, rng);
// regardless of batch composition or arrival order — serve_test enforces
// this. `options.num_samples` and the sampler settings are shared by the
// whole batch (that is what makes windows coalescible);
// `options.sequential_fallback` is ignored. Returns one result per window,
// in input order.
std::vector<ImputationResult> ImputeWindowsCoalesced(
    ConditionalNoisePredictor* model, const NoiseSchedule& schedule,
    const std::vector<data::Sample>& windows,
    const std::vector<uint64_t>& seeds, const ImputeOptions& options);

// Mixed-options coalescing: one ImputeOptions per window. Requests are
// partitioned into groups with identical (sampler, num_inference_steps,
// num_samples) — a model call takes a single diffusion step t, so only
// like-configured requests can share one reverse chain — and each group
// runs through the homogeneous coalesced path above. The per-request
// bit-identity guarantee is unchanged: every result is bitwise the one
// ImputeWindow(model, schedule, windows[r], options[r], Rng(seeds[r]))
// returns, regardless of which samplers share the batch. Groups run in
// deterministic key order; results come back in input order.
std::vector<ImputationResult> ImputeWindowsCoalesced(
    ConditionalNoisePredictor* model, const NoiseSchedule& schedule,
    const std::vector<data::Sample>& windows,
    const std::vector<uint64_t>& seeds,
    const std::vector<ImputeOptions>& options);

// ---- Exclusive-access enforcement -------------------------------------------
// A ConditionalNoisePredictor is NOT safe for concurrent calls: a forward
// pass reads the module's weights through shared-storage views, and the
// library's bit-identity contracts are only defined for one in-flight call
// per model. Every window-level entry point (TrainDiffusionModel,
// ImputeWindow, ImputeWindowsCoalesced — and through them
// eval::ImputeSeries / EvaluateImputer / EvaluateFittedImputer) holds a
// ModelAccessGuard on its model for the duration of the call. When debug
// checks are compiled in (PRISTI_DCHECK_IS_ON, i.e. any non-NDEBUG build
// or -DPRISTI_DEBUG_CHECKS=ON), two overlapping holders of the same model
// abort with a message pointing at serve::ServeSession — the supported way
// to share one model between threads. A no-op when debug checks are off.
class ModelAccessGuard {
 public:
  // `site` names the entry point for the diagnostic; it must be a string
  // with static storage duration.
  ModelAccessGuard(const void* model, const char* site);
  ~ModelAccessGuard();
  ModelAccessGuard(const ModelAccessGuard&) = delete;
  ModelAccessGuard& operator=(const ModelAccessGuard&) = delete;

 private:
  const void* model_;
};

// Builds the (1, N, L) conditional batch for a window: conditional values /
// mask and their linear interpolation, plus the given target mask.
DiffusionBatch MakeSingleWindowBatch(const Tensor& values,
                                     const Tensor& cond_mask,
                                     const Tensor& target_mask);

}  // namespace pristi::diffusion

#endif  // PRISTI_DIFFUSION_DDPM_H_
