#include "diffusion/sharded_train.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "autograd/ops.h"
#include "common/check.h"
#include "common/parallel.h"

namespace pristi::diffusion {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;

ShardLayout MakeShardLayout(int64_t num_leaves, int64_t num_shards) {
  PRISTI_CHECK_GE(num_leaves, 0);
  PRISTI_CHECK_GE(num_shards, 1);
  ShardLayout layout;
  layout.num_leaves = num_leaves;
  int64_t k = std::clamp<int64_t>(num_shards, 1,
                                  std::max<int64_t>(num_leaves, 1));
  layout.bounds.resize(static_cast<size_t>(k) + 1);
  for (int64_t s = 0; s <= k; ++s) {
    layout.bounds[static_cast<size_t>(s)] = s * num_leaves / k;
  }
  return layout;
}

namespace {

// Shared tree-sum skeleton: one level combines (0,1), (2,3), ...; an odd
// tail is carried up unchanged. `combine(a, b)` must fold b into a.
template <typename T, typename Combine>
T TreeFold(std::vector<T> level, Combine combine) {
  if (level.empty()) return T();
  while (level.size() > 1) {
    size_t out = 0;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      combine(level[i], level[i + 1]);
      if (out != i) level[out] = std::move(level[i]);
      ++out;
    }
    if (level.size() % 2 == 1) {
      if (out != level.size() - 1) level[out] = std::move(level.back());
      ++out;
    }
    level.resize(out);
  }
  return std::move(level.front());
}

}  // namespace

double TreeReduce(std::vector<double> values) {
  return TreeFold(std::move(values),
                  [](double& a, const double& b) { a += b; });
}

float TreeReduce(std::vector<float> values) {
  return TreeFold(std::move(values), [](float& a, const float& b) { a += b; });
}

tensor::Tensor TreeReduceGrads(std::vector<tensor::Tensor> parts) {
  return TreeFold(std::move(parts), [](Tensor& a, Tensor& b) {
    // Empty operands are identities: a leaf that never touched the
    // parameter contributes nothing, and passing the other side through
    // UNCHANGED (rather than adding it to a zero buffer) keeps the merged
    // value bitwise equal to the touched-leaves-only sum (0 + -0 would
    // flip the sign bit of a negative zero).
    if (b.numel() == 0) return;
    if (a.numel() == 0) {
      a = std::move(b);
      return;
    }
    a.AddInPlace(b);
  });
}

WindowExample BuildWindowExample(const std::vector<data::Sample>& samples,
                                 int64_t index, data::MaskStrategy strategy,
                                 Rng& rng) {
  PRISTI_CHECK_GE(index, 0);
  PRISTI_CHECK_LT(index, static_cast<int64_t>(samples.size()));
  const data::Sample& sample = samples[static_cast<size_t>(index)];
  // Historical-pattern option: borrow another window's observed mask. Drawn
  // before ApplyMaskStrategy — the draw order the classic loop established
  // (the serialize_test golden pins it).
  const Tensor* historical = nullptr;
  Tensor historical_mask;
  if (strategy == data::MaskStrategy::kHybridHistorical) {
    const data::Sample& other = samples[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(samples.size()) - 1))];
    historical_mask = other.observed;
    historical = &historical_mask;
  }
  WindowExample example;
  example.target_mask =
      data::ApplyMaskStrategy(sample.observed, strategy, rng, historical);
  example.cond_mask = data::MaskMinus(sample.observed, example.target_mask);
  example.cond_values = t::Mul(sample.values, example.cond_mask);
  example.interpolated =
      data::LinearInterpolate(sample.values, example.cond_mask);
  example.x0 = t::Mul(sample.values, example.target_mask);
  return example;
}

LeafStep BuildLeafStep(const std::vector<data::Sample>& samples,
                       int64_t index, data::MaskStrategy strategy,
                       const NoiseSchedule& schedule, int64_t step,
                       Rng& leaf_rng) {
  WindowExample example =
      BuildWindowExample(samples, index, strategy, leaf_rng);
  int64_t n = example.x0.dim(0), l = example.x0.dim(1);
  LeafStep leaf;
  leaf.batch.cond_values = example.cond_values.Reshaped({1, n, l});
  leaf.batch.cond_mask = example.cond_mask.Reshaped({1, n, l});
  leaf.batch.interpolated = example.interpolated.Reshaped({1, n, l});
  leaf.batch.target_mask = example.target_mask.Reshaped({1, n, l});
  Tensor x0 = example.x0.Reshaped({1, n, l});
  Tensor eps = Tensor::Randn(x0.shape(), leaf_rng);
  leaf.noisy = t::Mul(QSample(x0, eps, schedule, step),
                      leaf.batch.target_mask);
  leaf.eps_target = t::Mul(eps, leaf.batch.target_mask);
  leaf.mask_sum = t::SumAll(leaf.batch.target_mask);
  return leaf;
}

double ShardStep(ConditionalNoisePredictor* model,
                 const std::vector<Variable>& params,
                 const tensor::Tensor& noisy, const DiffusionBatch& batch,
                 const tensor::Tensor& eps_target, int64_t step, float denom,
                 std::vector<tensor::Tensor>* capture) {
  std::optional<ag::GradCaptureScope> scope;
  if (capture != nullptr) scope.emplace(params, capture);
  Variable eps_hat = model->PredictNoise(noisy, batch, step);
  // The exact op chain of ag::MaskedMse, with the normalizer supplied by
  // the caller: the classic path passes max(1, SumAll(mask)) and so
  // reproduces MaskedMse bit-for-bit; the sharded path passes one global
  // denom for the whole optimizer step.
  Variable diff = ag::Sub(eps_hat, ag::Constant(eps_target));
  Variable masked = ag::Mul(ag::Square(diff), ag::Constant(batch.target_mask));
  Variable loss = ag::MulScalar(ag::SumAll(masked), 1.0f / denom);
  loss.Backward();
  return static_cast<double>(loss.value()[0]);
}

namespace {

// Applies fn(leaf) for every leaf of the layout. One shard runs on the
// calling thread with no parallel region open (inner tensor ops keep the
// pool — the classic single-stream behavior); several shards dispatch one
// task per shard, inside which ops run inline. Bit-identical either way:
// each leaf's arithmetic is self-contained and the pool's own contract
// covers chunked-vs-inline tensor ops.
void ForEachLeaf(const ShardLayout& layout,
                 const std::function<void(int64_t)>& fn) {
  if (layout.num_shards() <= 1) {
    for (int64_t leaf = 0; leaf < layout.num_leaves; ++leaf) fn(leaf);
    return;
  }
  ParallelFor(0, layout.num_shards(), [&](int64_t lo, int64_t hi) {
    for (int64_t s = lo; s < hi; ++s) {
      for (int64_t leaf = layout.bounds[static_cast<size_t>(s)];
           leaf < layout.bounds[static_cast<size_t>(s) + 1]; ++leaf) {
        fn(leaf);
      }
    }
  });
}

}  // namespace

double RunShardedEpoch(ConditionalNoisePredictor* model,
                       const NoiseSchedule& schedule,
                       const std::vector<data::Sample>& samples,
                       const TrainOptions& options, nn::Adam* optimizer,
                       nn::EmaWeights* ema, Rng& rng) {
  PRISTI_CHECK(model != nullptr);
  PRISTI_CHECK(optimizer != nullptr);
  PRISTI_CHECK_GE(options.num_shards, 1);
  std::vector<Variable> params = model->Parameters();
  std::vector<int64_t> order =
      rng.Permutation(static_cast<int64_t>(samples.size()));
  double loss_sum = 0.0;
  int64_t step_count = 0;
  for (size_t batch_begin = 0; batch_begin < order.size();
       batch_begin += static_cast<size_t>(options.batch_size)) {
    size_t batch_end = std::min(
        order.size(), batch_begin + static_cast<size_t>(options.batch_size));
    int64_t num_leaves = static_cast<int64_t>(batch_end - batch_begin);
    // Epoch-RNG consumption per optimizer step is exactly two draws — the
    // diffusion step and the chain-stream root — independent of both the
    // shard count and the batch's content, which is what keeps the stream
    // position (and therefore checkpoints) shard-count-invariant.
    int64_t step =
        (options.high_t_bias > 0 && rng.Bernoulli(options.high_t_bias))
            ? rng.UniformInt(schedule.num_steps() / 2, schedule.num_steps())
            : rng.UniformInt(1, schedule.num_steps());
    std::vector<Rng> leaf_rngs = MakeChainStreams(rng, num_leaves);
    ShardLayout layout = MakeShardLayout(num_leaves, options.num_shards);

    // Phase 1: build every leaf's micro-batch (mask draws, interpolation,
    // noise, q-sample) from its private stream, shards in parallel.
    std::vector<LeafStep> leaves(static_cast<size_t>(num_leaves));
    ForEachLeaf(layout, [&](int64_t leaf) {
      leaves[static_cast<size_t>(leaf)] = BuildLeafStep(
          samples, order[batch_begin + static_cast<size_t>(leaf)],
          options.mask_strategy, schedule, step,
          leaf_rngs[static_cast<size_t>(leaf)]);
    });

    // The loss normalizer: one tree-reduced mask sum shared by every leaf,
    // so the step's loss is the same masked MSE a stacked batch would
    // compute.
    std::vector<float> mask_sums(static_cast<size_t>(num_leaves));
    for (int64_t i = 0; i < num_leaves; ++i) {
      mask_sums[static_cast<size_t>(i)] =
          leaves[static_cast<size_t>(i)].mask_sum;
    }
    float denom = std::max(1.0f, TreeReduce(std::move(mask_sums)));

    // Phase 2: per-leaf forward/backward, gradients captured into private
    // per-leaf buffers (GradCaptureScope inside ShardStep), shards in
    // parallel.
    std::vector<std::vector<Tensor>> leaf_grads(
        static_cast<size_t>(num_leaves),
        std::vector<Tensor>(params.size()));
    std::vector<double> leaf_losses(static_cast<size_t>(num_leaves), 0.0);
    ForEachLeaf(layout, [&](int64_t leaf) {
      const LeafStep& prepared = leaves[static_cast<size_t>(leaf)];
      leaf_losses[static_cast<size_t>(leaf)] = ShardStep(
          model, params, prepared.noisy, prepared.batch, prepared.eps_target,
          step, denom, &leaf_grads[static_cast<size_t>(leaf)]);
    });

    // Phase 3: deterministic all-reduce over the leaf axis, then one
    // optimizer step. The tree's shape depends only on num_leaves, so the
    // merged gradient is one fixed summation order at any K.
    model->ZeroGrad();
    for (size_t p = 0; p < params.size(); ++p) {
      std::vector<Tensor> column;
      column.reserve(static_cast<size_t>(num_leaves));
      for (int64_t leaf = 0; leaf < num_leaves; ++leaf) {
        column.push_back(
            std::move(leaf_grads[static_cast<size_t>(leaf)][p]));
      }
      Tensor merged = TreeReduceGrads(std::move(column));
      if (merged.numel() > 0) {
        params[p].node()->AccumulateGrad(merged);
      }
    }
    optimizer->Step();
    if (ema != nullptr) ema->Update();
    loss_sum += TreeReduce(std::move(leaf_losses));
    ++step_count;
  }
  return loss_sum / std::max<int64_t>(step_count, 1);
}

}  // namespace pristi::diffusion
