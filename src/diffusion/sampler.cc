#include "diffusion/sampler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "autograd/variable.h"
#include "common/check.h"
#include "common/parallel.h"
#include "diffusion/ddpm.h"

namespace pristi::diffusion {

namespace t = ::pristi::tensor;
using autograd::Variable;

const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kDdpm:
      return "ddpm";
    case SamplerKind::kDdim:
      return "ddim";
    case SamplerKind::kPlms:
      return "plms";
  }
  return "unknown";
}

bool ParseSamplerKind(const std::string& name, SamplerKind* out) {
  if (name == "ddpm") {
    *out = SamplerKind::kDdpm;
    return true;
  }
  if (name == "ddim") {
    *out = SamplerKind::kDdim;
    return true;
  }
  if (name == "plms" || name == "pndm") {  // pndm: the family's paper name
    *out = SamplerKind::kPlms;
    return true;
  }
  return false;
}

std::vector<ReverseStep> PlanReverseSteps(const NoiseSchedule& schedule,
                                          int64_t num_inference_steps) {
  int64_t total = schedule.num_steps();
  std::vector<int64_t> steps;
  if (num_inference_steps <= 0 || num_inference_steps >= total) {
    steps.reserve(static_cast<size_t>(total));
    for (int64_t step = total; step >= 1; --step) steps.push_back(step);
  } else {
    // K evenly spaced kept steps, strictly decreasing, always including T.
    // For T divisible by K this is exactly the stride-(T/K) subset.
    int64_t kept = num_inference_steps;
    steps.reserve(static_cast<size_t>(kept));
    for (int64_t i = 0; i < kept; ++i) {
      steps.push_back(total - (i * total) / kept);
    }
  }
  std::vector<ReverseStep> plan(steps.size());
  for (size_t si = 0; si < steps.size(); ++si) {
    int64_t step = steps[si];
    int64_t prev = si + 1 < steps.size() ? steps[si + 1] : 0;
    ReverseStep& rs = plan[si];
    rs.step = step;
    rs.prev_step = prev;
    float ab = schedule.alpha_bar(step);
    float ab_prev = schedule.alpha_bar(prev);
    rs.inv_sqrt_ab = 1.0f / std::sqrt(ab);
    rs.sqrt_1m_ab = std::sqrt(1.0f - ab);
    rs.sqrt_ab_prev = std::sqrt(ab_prev);
    rs.sqrt_1m_ab_prev = std::sqrt(1.0f - ab_prev);
    if (prev == step - 1) {
      // Consecutive step: the schedule's exact stored constants, so a
      // full-schedule DDPM plan is bit-identical to the pre-subset sampler
      // (the recorded goldens pin this).
      float alpha = schedule.alpha(step);
      float beta = schedule.beta(step);
      rs.c0 = std::sqrt(ab_prev) * beta / (1.0f - ab);
      rs.ct = std::sqrt(alpha) * (1.0f - ab_prev) / (1.0f - ab);
      rs.sigma = step > 1 ? std::sqrt(schedule.sigma2(step)) : 0.0f;
    } else {
      // Kept-subset generalization: the product of the skipped alphas is
      // alpha_bar_t / alpha_bar_prev, and the posterior coefficients follow
      // with that effective alpha.
      float alpha_eff = ab / ab_prev;
      float beta_eff = 1.0f - alpha_eff;
      rs.c0 = std::sqrt(ab_prev) * beta_eff / (1.0f - ab);
      rs.ct = std::sqrt(alpha_eff) * (1.0f - ab_prev) / (1.0f - ab);
      rs.sigma = prev > 0
                     ? std::sqrt((1.0f - ab_prev) / (1.0f - ab) * beta_eff)
                     : 0.0f;
    }
    rs.mid_step = std::max<int64_t>(1, (step + prev + 1) / 2);
    float ab_mid = schedule.alpha_bar(rs.mid_step);
    rs.sqrt_ab_mid = std::sqrt(ab_mid);
    rs.sqrt_1m_ab_mid = std::sqrt(1.0f - ab_mid);
  }
  return plan;
}

void FillChainNoise(Tensor* out, Rng* chain_rngs, int64_t num_chains,
                    const Tensor& target_masks) {
  PRISTI_DCHECK_EQ(target_masks.numel(), out->numel());
  int64_t per = target_masks.numel() / num_chains;
  const float* pm_all = target_masks.data();
  float* po = out->data();
  for (int64_t c = 0; c < num_chains; ++c) {
    float* chain = po + c * per;
    const float* pm = pm_all + c * per;
    Rng& chain_rng = chain_rngs[c];
    for (int64_t i = 0; i < per; ++i) {
      chain[i] = static_cast<float>(chain_rng.Normal()) * pm[i];
    }
  }
}

namespace {

// Clamp for the implied clean-sample estimate: stops early reverse steps
// (where the predictor is least reliable) from compounding into divergence —
// the standard "clip x0" stabilization.
constexpr float kX0Clamp = 6.0f;
constexpr int64_t kStepMinChunk = 1 << 12;

// eta = 0 transfer from rs.step toward a destination step with alpha_bar
// coefficients (sqrt_ab_dst, sqrt_1m_ab_dst): x0-estimate, clamp, recombine,
// target-mask projection, in one fused pass. DDIM calls it with the
// predicted noise; PLMS with its multistep noise combination and, during
// warm-up, with midpoint destinations. `pout` may alias `px_src` (every
// entry is read before it is written).
void EtaZeroTransfer(const float* px_src, const float* pe,
                     const ReverseStep& rs, float sqrt_ab_dst,
                     float sqrt_1m_ab_dst, const float* pm, float* pout,
                     int64_t numel) {
  ParallelFor(
      0, numel,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float e = pe[i];
          float xi = px_src[i];
          float x0 = (xi - rs.sqrt_1m_ab * e) * rs.inv_sqrt_ab;
          x0 = std::clamp(x0, -kX0Clamp, kX0Clamp);
          pout[i] = (sqrt_ab_dst * x0 + sqrt_1m_ab_dst * e) * pm[i];
        }
      },
      kStepMinChunk);
}

class DdpmStepper final : public SamplerStepper {
 public:
  void Step(ConditionalNoisePredictor* model, const DiffusionBatch& batch,
            const std::vector<ReverseStep>& plan, size_t index, Tensor* x,
            Rng* chain_rngs, int64_t num_chains,
            const Tensor& target_masks) override {
    const ReverseStep& rs = plan[index];
    Variable eps_hat_var = model->PredictNoise(*x, batch, rs.step);
    const Tensor& eps_hat = eps_hat_var.value();
    bool add_noise = rs.sigma > 0.0f;
    const float* pe = eps_hat.data();
    const float* pm = target_masks.data();
    float* px = x->data();
    if (add_noise) {
      // Noisy steps fuse the old FillChainNoise pre-pass into the update:
      // one chain-parallel sweep draws each chain's noise and applies the
      // posterior step in place, instead of two passes over x plus a
      // noise scratch tensor. Each chain's Rng performs exactly the draws
      // FillChainNoise performed, in the same row-major order (masked
      // entries included), and the update arithmetic rounds identically —
      // so coalesced batches stay bit-identical to solo runs (the
      // batched == sequential oracle in sampler_equivalence_test) at any
      // thread count, since one worker owns a chain end to end.
      PRISTI_DCHECK_EQ(target_masks.numel(), x->numel());
      int64_t per = x->numel() / num_chains;
      ParallelFor(0, num_chains, [&](int64_t lo, int64_t hi) {
        for (int64_t c = lo; c < hi; ++c) {
          Rng& chain_rng = chain_rngs[c];
          const float* cm = pm + c * per;
          const float* ce = pe + c * per;
          float* cx = px + c * per;
          for (int64_t i = 0; i < per; ++i) {
            float z = static_cast<float>(chain_rng.Normal()) * cm[i];
            float e = ce[i];
            float xi = cx[i];
            float x0 = (xi - rs.sqrt_1m_ab * e) * rs.inv_sqrt_ab;
            x0 = std::clamp(x0, -kX0Clamp, kX0Clamp);
            // DDPM ancestral step via the posterior mean in x0 form
            // (equivalent to Algorithm 2 when x0_hat is unclamped):
            // mu = [sqrt(ab_prev) beta_t x0_hat
            //       + sqrt(alpha_t) (1 - ab_prev) x_t] / (1 - ab_t).
            float next = rs.c0 * x0 + rs.ct * xi;
            next += rs.sigma * z;
            cx[i] = next * cm[i];
          }
        }
      });
      return;
    }
    // Final (noiseless) step: plain elementwise pass, unchanged.
    ParallelFor(
        0, x->numel(),
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            float e = pe[i];
            float xi = px[i];
            float x0 = (xi - rs.sqrt_1m_ab * e) * rs.inv_sqrt_ab;
            x0 = std::clamp(x0, -kX0Clamp, kX0Clamp);
            float next = rs.c0 * x0 + rs.ct * xi;
            px[i] = next * pm[i];
          }
        },
        kStepMinChunk);
  }
};

class DdimStepper final : public SamplerStepper {
 public:
  void Step(ConditionalNoisePredictor* model, const DiffusionBatch& batch,
            const std::vector<ReverseStep>& plan, size_t index, Tensor* x,
            Rng* /*chain_rngs*/, int64_t /*num_chains*/,
            const Tensor& target_masks) override {
    const ReverseStep& rs = plan[index];
    Variable eps_hat_var = model->PredictNoise(*x, batch, rs.step);
    const Tensor& eps_hat = eps_hat_var.value();
    EtaZeroTransfer(x->data(), eps_hat.data(), rs, rs.sqrt_ab_prev,
                    rs.sqrt_1m_ab_prev, target_masks.data(), x->data(),
                    x->numel());
  }
};

// PLMS (PNDM "S-PNDM/F-PNDM" discretization): pseudo Runge–Kutta for the
// first warm-up steps (4 model calls each, seeding the history), then
// 4th-order Adams–Bashforth over the last four raw noise predictions. The
// history holds raw eps tensors stacked chain-major, so chain c's history
// slice equals the history a solo run of chain c would hold — coalesced
// batches stay bit-identical to per-request runs.
class PlmsStepper final : public SamplerStepper {
 public:
  explicit PlmsStepper(size_t plan_size)
      : warmup_(plan_size > 0 ? std::min<size_t>(3, plan_size - 1) : 0) {}

  void Step(ConditionalNoisePredictor* model, const DiffusionBatch& batch,
            const std::vector<ReverseStep>& plan, size_t index, Tensor* x,
            Rng* /*chain_rngs*/, int64_t /*num_chains*/,
            const Tensor& target_masks) override {
    if (index < warmup_) {
      RungeKuttaStep(model, batch, plan[index], x, target_masks);
    } else {
      AdamsBashforthStep(model, batch, plan[index], x, target_masks);
    }
  }

 private:
  void EnsureScratch(const Tensor& x) {
    if (work_.numel() != x.numel()) work_ = Tensor(x.shape());
    if (combo_.numel() != x.numel()) combo_ = Tensor(x.shape());
  }

  void PushHistory(Tensor&& eps) {
    history_.push_back(std::move(eps));
    if (history_.size() > 3) history_.pop_front();
  }

  // Classical RK4 in pseudo-numerical form: evaluations at t, the rounded
  // midpoint (twice) and prev_step, combined 1:2:2:1. Only the FIRST
  // evaluation enters the multistep history (it is the eps at the kept
  // step itself, which is what Adams–Bashforth needs).
  void RungeKuttaStep(ConditionalNoisePredictor* model,
                      const DiffusionBatch& batch, const ReverseStep& rs,
                      Tensor* x, const Tensor& target_masks) {
    EnsureScratch(*x);
    const float* pm = target_masks.data();
    int64_t numel = x->numel();
    Variable e1_var = model->PredictNoise(*x, batch, rs.step);
    Tensor e1 = e1_var.value();
    EtaZeroTransfer(x->data(), e1.data(), rs, rs.sqrt_ab_mid,
                    rs.sqrt_1m_ab_mid, pm, work_.data(), numel);
    Variable e2_var = model->PredictNoise(work_, batch, rs.mid_step);
    const Tensor& e2 = e2_var.value();
    {
      const float* p1 = e1.data();
      const float* p2 = e2.data();
      float* pc = combo_.data();
      ParallelFor(
          0, numel,
          [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) pc[i] = p1[i] + 2.0f * p2[i];
          },
          kStepMinChunk);
    }
    EtaZeroTransfer(x->data(), e2.data(), rs, rs.sqrt_ab_mid,
                    rs.sqrt_1m_ab_mid, pm, work_.data(), numel);
    Variable e3_var = model->PredictNoise(work_, batch, rs.mid_step);
    const Tensor& e3 = e3_var.value();
    {
      const float* p3 = e3.data();
      float* pc = combo_.data();
      ParallelFor(
          0, numel,
          [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) pc[i] += 2.0f * p3[i];
          },
          kStepMinChunk);
    }
    EtaZeroTransfer(x->data(), e3.data(), rs, rs.sqrt_ab_prev,
                    rs.sqrt_1m_ab_prev, pm, work_.data(), numel);
    Variable e4_var = model->PredictNoise(work_, batch, rs.prev_step);
    const Tensor& e4 = e4_var.value();
    {
      const float* p4 = e4.data();
      float* pc = combo_.data();
      constexpr float kSixth = 1.0f / 6.0f;
      ParallelFor(
          0, numel,
          [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              pc[i] = (pc[i] + p4[i]) * kSixth;
            }
          },
          kStepMinChunk);
    }
    EtaZeroTransfer(x->data(), combo_.data(), rs, rs.sqrt_ab_prev,
                    rs.sqrt_1m_ab_prev, pm, x->data(), numel);
    PushHistory(std::move(e1));
  }

  // Linear multistep: the Adams–Bashforth combination of the newest
  // prediction and the retained history drives one eta = 0 transfer. The
  // order ramps with available history (1 = plain DDIM) so short plans
  // degrade gracefully; after the 3-step warm-up it is always 4.
  void AdamsBashforthStep(ConditionalNoisePredictor* model,
                          const DiffusionBatch& batch, const ReverseStep& rs,
                          Tensor* x, const Tensor& target_masks) {
    int64_t numel = x->numel();
    Variable e_var = model->PredictNoise(*x, batch, rs.step);
    Tensor e_t = e_var.value();
    size_t order = std::min<size_t>(history_.size() + 1, 4);
    const float* pe = e_t.data();
    const float* combined = pe;
    if (order > 1) {
      EnsureScratch(*x);
      float* pc = combo_.data();
      const float* h1 = history_[history_.size() - 1].data();
      const float* h2 =
          order > 2 ? history_[history_.size() - 2].data() : nullptr;
      const float* h3 =
          order > 3 ? history_[history_.size() - 3].data() : nullptr;
      ParallelFor(
          0, numel,
          [&](int64_t lo, int64_t hi) {
            switch (order) {
              case 2:
                for (int64_t i = lo; i < hi; ++i) {
                  pc[i] = (3.0f * pe[i] - h1[i]) * 0.5f;
                }
                break;
              case 3: {
                constexpr float kTwelfth = 1.0f / 12.0f;
                for (int64_t i = lo; i < hi; ++i) {
                  pc[i] =
                      (23.0f * pe[i] - 16.0f * h1[i] + 5.0f * h2[i]) *
                      kTwelfth;
                }
                break;
              }
              default: {
                constexpr float kTwentyFourth = 1.0f / 24.0f;
                for (int64_t i = lo; i < hi; ++i) {
                  pc[i] = (55.0f * pe[i] - 59.0f * h1[i] + 37.0f * h2[i] -
                           9.0f * h3[i]) *
                          kTwentyFourth;
                }
                break;
              }
            }
          },
          kStepMinChunk);
      combined = pc;
    }
    EtaZeroTransfer(x->data(), combined, rs, rs.sqrt_ab_prev,
                    rs.sqrt_1m_ab_prev, target_masks.data(), x->data(),
                    numel);
    PushHistory(std::move(e_t));
  }

  const size_t warmup_;
  std::deque<Tensor> history_;  // newest last; <= 3 retained raw eps
  Tensor work_;                 // RK intermediate state
  Tensor combo_;                // eps combination accumulator
};

}  // namespace

std::unique_ptr<SamplerStepper> MakeSamplerStepper(SamplerKind kind,
                                                   size_t plan_size) {
  switch (kind) {
    case SamplerKind::kDdpm:
      return std::make_unique<DdpmStepper>();
    case SamplerKind::kDdim:
      return std::make_unique<DdimStepper>();
    case SamplerKind::kPlms:
      return std::make_unique<PlmsStepper>(plan_size);
  }
  PRISTI_CHECK(false) << "unreachable sampler kind";
  return nullptr;
}

}  // namespace pristi::diffusion
