#ifndef PRISTI_METRICS_CALIBRATION_H_
#define PRISTI_METRICS_CALIBRATION_H_

// Calibration diagnostics for probabilistic imputation: empirical coverage
// of central prediction intervals and their mean width. Complements CRPS —
// a model can score well on CRPS while being badly calibrated at specific
// levels; the paper's Fig. 6 visualizes exactly the 90% band.

#include <vector>

#include "tensor/tensor.h"

namespace pristi::metrics {

using tensor::Tensor;

struct CalibrationResult {
  // Fraction of masked truths inside the central interval.
  double coverage = 0.0;
  // Mean interval width in data units (sharpness; smaller is better at
  // equal coverage).
  double mean_width = 0.0;
  int64_t count = 0;
};

// Accumulates the empirical central-`level` interval (e.g. level = 0.9 ->
// [q05, q95] of the sample set) over masked entries of whole windows.
class CalibrationAccumulator {
 public:
  explicit CalibrationAccumulator(double level = 0.9);

  void Add(const std::vector<Tensor>& samples, const Tensor& truth,
           const Tensor& mask);

  CalibrationResult Result() const;

 private:
  double level_;
  int64_t covered_ = 0;
  int64_t count_ = 0;
  double width_sum_ = 0.0;
};

}  // namespace pristi::metrics

#endif  // PRISTI_METRICS_CALIBRATION_H_
