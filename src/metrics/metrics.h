#ifndef PRISTI_METRICS_METRICS_H_
#define PRISTI_METRICS_METRICS_H_

// Evaluation metrics from Section IV-C: masked MAE / MSE / RMSE for
// deterministic imputation, and CRPS (Eq. 10-12) for probabilistic
// imputation, computed from empirical samples at the paper's discretized
// quantile levels (0.05 steps).

#include <vector>

#include "tensor/tensor.h"

namespace pristi::metrics {

using tensor::Tensor;

// Streaming accumulator over (prediction, truth, mask) windows so a whole
// test split aggregates into one number, weighted by entry count.
class ErrorAccumulator {
 public:
  void Add(const Tensor& prediction, const Tensor& truth, const Tensor& mask);

  double Mae() const;
  double Mse() const;
  double Rmse() const;
  // Mean relative error sum|err| / sum|truth| (the ST-MVL convention).
  double Mre() const;
  int64_t count() const { return count_; }

 private:
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double abs_truth_sum_ = 0.0;
  int64_t count_ = 0;
};

// One-shot helpers.
double MaskedMae(const Tensor& prediction, const Tensor& truth,
                 const Tensor& mask);
double MaskedMse(const Tensor& prediction, const Tensor& truth,
                 const Tensor& mask);

// CRPS of a single scalar against an empirical sample set, via the
// discretized quantile-loss sum of Eq. 11 (quantile levels 0.05..0.95).
double CrpsFromSamples(std::vector<float> samples, float truth);

// Accumulates CRPS over masked entries of whole windows (Eq. 12): the mean
// of per-entry CRPS values.
class CrpsAccumulator {
 public:
  // `samples` are generated imputations of one window, each same-shaped as
  // `truth`; only `mask` entries contribute.
  void Add(const std::vector<Tensor>& samples, const Tensor& truth,
           const Tensor& mask);

  // Plain mean of per-entry CRPS (Eq. 12 read literally).
  double Crps() const;
  // CRPS normalized by the mean magnitude of the targets — the convention
  // of CSDI's published implementation, and the scale at which the paper's
  // Table IV numbers (e.g. ~0.10 on AQI-36 where MAE ~ 9) are reported.
  double NormalizedCrps() const;
  int64_t count() const { return count_; }

 private:
  double crps_sum_ = 0.0;
  double abs_truth_sum_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace pristi::metrics

#endif  // PRISTI_METRICS_METRICS_H_
