#include "metrics/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pristi::metrics {

CalibrationAccumulator::CalibrationAccumulator(double level) : level_(level) {
  CHECK_GT(level, 0.0);
  CHECK_LT(level, 1.0);
}

namespace {

float EmpiricalQuantile(std::vector<float>& sorted_values, double q) {
  double pos = q * (static_cast<double>(sorted_values.size()) - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return static_cast<float>(sorted_values[lo] * (1.0 - frac) +
                            sorted_values[hi] * frac);
}

}  // namespace

void CalibrationAccumulator::Add(const std::vector<Tensor>& samples,
                                 const Tensor& truth, const Tensor& mask) {
  CHECK(!samples.empty());
  CHECK(tensor::ShapesEqual(truth.shape(), mask.shape()));
  double lo_q = (1.0 - level_) / 2.0;
  double hi_q = 1.0 - lo_q;
  std::vector<float> entry(samples.size());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    if (mask[i] < 0.5f) continue;
    for (size_t k = 0; k < samples.size(); ++k) entry[k] = samples[k][i];
    std::sort(entry.begin(), entry.end());
    float lo = EmpiricalQuantile(entry, lo_q);
    float hi = EmpiricalQuantile(entry, hi_q);
    if (truth[i] >= lo && truth[i] <= hi) ++covered_;
    width_sum_ += hi - lo;
    ++count_;
  }
}

CalibrationResult CalibrationAccumulator::Result() const {
  CalibrationResult result;
  result.count = count_;
  if (count_ > 0) {
    result.coverage = static_cast<double>(covered_) / count_;
    result.mean_width = width_sum_ / count_;
  }
  return result;
}

}  // namespace pristi::metrics
