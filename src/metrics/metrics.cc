#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pristi::metrics {

void ErrorAccumulator::Add(const Tensor& prediction, const Tensor& truth,
                           const Tensor& mask) {
  CHECK(tensor::ShapesEqual(prediction.shape(), truth.shape()));
  CHECK(tensor::ShapesEqual(prediction.shape(), mask.shape()));
  for (int64_t i = 0; i < mask.numel(); ++i) {
    if (mask[i] < 0.5f) continue;
    double diff = static_cast<double>(prediction[i]) - truth[i];
    abs_sum_ += std::fabs(diff);
    sq_sum_ += diff * diff;
    abs_truth_sum_ += std::fabs(truth[i]);
    ++count_;
  }
}

double ErrorAccumulator::Mre() const {
  return abs_truth_sum_ > 0.0 ? abs_sum_ / abs_truth_sum_ : 0.0;
}

double ErrorAccumulator::Mae() const {
  return count_ > 0 ? abs_sum_ / count_ : 0.0;
}

double ErrorAccumulator::Mse() const {
  return count_ > 0 ? sq_sum_ / count_ : 0.0;
}

double ErrorAccumulator::Rmse() const { return std::sqrt(Mse()); }

double MaskedMae(const Tensor& prediction, const Tensor& truth,
                 const Tensor& mask) {
  ErrorAccumulator acc;
  acc.Add(prediction, truth, mask);
  return acc.Mae();
}

double MaskedMse(const Tensor& prediction, const Tensor& truth,
                 const Tensor& mask) {
  ErrorAccumulator acc;
  acc.Add(prediction, truth, mask);
  return acc.Mse();
}

double CrpsFromSamples(std::vector<float> samples, float truth) {
  CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  auto quantile = [&](double level) {
    double pos = level * (static_cast<double>(samples.size()) - 1);
    size_t lo = static_cast<size_t>(std::floor(pos));
    size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  // Eq. 11: sum of 2 * quantile losses at levels 0.05, 0.10, ..., 0.95.
  double total = 0.0;
  for (int i = 1; i <= 19; ++i) {
    double alpha = 0.05 * i;
    double q = quantile(alpha);
    double indicator = truth < q ? 1.0 : 0.0;
    double loss = (alpha - indicator) * (truth - q);
    total += 2.0 * loss;
  }
  return total / 19.0;
}

void CrpsAccumulator::Add(const std::vector<Tensor>& samples,
                          const Tensor& truth, const Tensor& mask) {
  CHECK(!samples.empty());
  CHECK(tensor::ShapesEqual(truth.shape(), mask.shape()));
  for (const Tensor& s : samples) {
    CHECK(tensor::ShapesEqual(s.shape(), truth.shape()));
  }
  std::vector<float> entry(samples.size());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    if (mask[i] < 0.5f) continue;
    for (size_t k = 0; k < samples.size(); ++k) entry[k] = samples[k][i];
    crps_sum_ += CrpsFromSamples(entry, truth[i]);
    abs_truth_sum_ += std::fabs(truth[i]);
    ++count_;
  }
}

double CrpsAccumulator::Crps() const {
  return count_ > 0 ? crps_sum_ / count_ : 0.0;
}

double CrpsAccumulator::NormalizedCrps() const {
  return abs_truth_sum_ > 0.0 ? crps_sum_ / abs_truth_sum_ : 0.0;
}

}  // namespace pristi::metrics
