#ifndef PRISTI_COMMON_PARALLEL_H_
#define PRISTI_COMMON_PARALLEL_H_

// Fork-join parallel loop for batch-parallel kernels. The thread count
// defaults to the hardware concurrency and can be pinned with the
// PRISTI_THREADS environment variable; with one thread the loop runs
// inline, so single-core environments pay nothing.

#include <cstdint>
#include <functional>

namespace pristi {

// Number of worker threads the library will use (>= 1).
int64_t ParallelThreadCount();

// Runs fn(begin..end) partitioned into contiguous chunks across threads.
// fn must be safe to call concurrently on disjoint index ranges. Blocks
// until every chunk completes. A zero-length range (begin == end) is a
// no-op; begin > end or min_chunk < 1 is a fatal invariant violation
// (PRISTI_CHECK), not undefined behavior.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1);

}  // namespace pristi

#endif  // PRISTI_COMMON_PARALLEL_H_
