#ifndef PRISTI_COMMON_PARALLEL_H_
#define PRISTI_COMMON_PARALLEL_H_

// Parallel loop for batch-parallel kernels, backed by a persistent thread
// pool.
//
// The pool is created lazily on the first ParallelFor that actually needs
// more than one thread, and its workers then survive for the life of the
// process, so steady-state parallel regions pay only an enqueue + wake
// instead of thread creation/join. The size defaults to the hardware
// concurrency and can be pinned with the PRISTI_THREADS environment
// variable; with one thread every loop runs inline, so single-core
// environments never spawn a worker.
//
// Scheduling is work-chunked: the range is split into more chunks than
// threads and workers claim chunks from a shared atomic cursor, so uneven
// per-index cost (e.g. ragged attention rows) load-balances instead of
// stalling on the slowest static partition. Chunk boundaries never change
// the result: each index is processed exactly once, by exactly one thread,
// with the same per-index arithmetic as the inline path.

#include <cstdint>
#include <functional>

namespace pristi {

// Minimum multiply-accumulate flops a worker must receive before a
// flop-heavy kernel (the GEMM dispatchers in tensor/ and the tiled kernel
// layer in tensor/kernels/) is worth splitting across the pool: below this
// the enqueue + wake overhead outweighs the arithmetic. Shared so every
// GEMM-shaped ParallelFor derives its min_chunk from the same threshold.
inline constexpr int64_t kMinFlopsPerChunk = 1 << 18;

// Number of threads ParallelFor may use (>= 1), including the calling
// thread. Resolved once from PRISTI_THREADS / hardware concurrency, unless
// overridden by SetParallelThreadCount.
int64_t ParallelThreadCount();

// Overrides the thread count at runtime (tests, benchmarks, embedders).
// Growing the count spawns additional persistent workers on the next
// parallel region; shrinking it idles the surplus workers without joining
// them. count < 1 is a fatal invariant violation.
void SetParallelThreadCount(int64_t count);

// Identifier of the current thread within the pool: 0 for any thread that
// is not a pool worker (including the thread calling ParallelFor), 1..W for
// the persistent workers. Stable for the lifetime of each worker; used by
// tests to assert pool reuse.
int64_t CurrentWorkerId();

// True while the current thread is executing inside a ParallelFor region.
// Nested ParallelFor calls detect this and run inline on the calling
// thread, which makes nesting deadlock-free by construction.
bool InParallelRegion();

// Runs fn over [begin, end) partitioned into contiguous chunks of at least
// min_chunk indices (except possibly the last). fn must be safe to call
// concurrently on disjoint index ranges. Blocks until every chunk
// completes; if any invocation of fn throws, the first exception is
// rethrown on the calling thread after all workers have quiesced (remaining
// unclaimed chunks are abandoned). A zero-length range (begin == end) is a
// no-op; begin > end or min_chunk < 1 is a fatal invariant violation
// (PRISTI_CHECK), not undefined behavior.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1);

}  // namespace pristi

#endif  // PRISTI_COMMON_PARALLEL_H_
