#include "common/clock.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace pristi {

namespace {

class SteadyClock : public Clock {
 public:
  SteadyClock() : base_(std::chrono::steady_clock::now()) {}

  int64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - base_)
        .count();
  }

  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock,
                 int64_t deadline_nanos) override {
    if (NowNanos() >= deadline_nanos) return true;
    cv.wait_until(lock, base_ + std::chrono::nanoseconds(deadline_nanos));
    return NowNanos() >= deadline_nanos;
  }

 private:
  const std::chrono::steady_clock::time_point base_;
};

}  // namespace

Clock* RealClock() {
  static SteadyClock clock;
  return &clock;
}

int64_t FakeClock::NowNanos() {
  std::lock_guard<std::mutex> guard(mu_);
  return now_;
}

bool FakeClock::WaitUntil(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lock,
                          int64_t deadline_nanos) {
  PRISTI_CHECK(lock.owns_lock());
  {
    // Register BEFORE checking the deadline: once the waiter is visible,
    // any Advance that crosses the deadline is obliged to wake us, and
    // because we hold `lock` until cv.wait parks us, its notify (taken
    // under our external mutex) cannot land in the gap.
    std::lock_guard<std::mutex> guard(mu_);
    if (now_ >= deadline_nanos) return true;
    waiters_.push_back(Waiter{&cv, lock.mutex()});
  }
  cv.wait(lock);
  bool expired;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i].cv == &cv && waiters_[i].external_mutex == lock.mutex()) {
        waiters_.erase(waiters_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    expired = now_ >= deadline_nanos;
  }
  return expired;
}

void FakeClock::AdvanceNanos(int64_t delta_nanos) {
  PRISTI_CHECK_GE(delta_nanos, 0);
  std::vector<Waiter> to_wake;
  {
    std::lock_guard<std::mutex> guard(mu_);
    now_ += delta_nanos;
    to_wake = waiters_;
  }
  // mu_ is released before touching any waiter's external mutex, so the
  // lock order here (external only) can never form a cycle with the
  // waiter's (external -> mu_) order.
  for (const Waiter& waiter : to_wake) {
    { std::lock_guard<std::mutex> sync(*waiter.external_mutex); }
    waiter.cv->notify_all();
  }
}

int64_t FakeClock::blocked_waiters() {
  std::lock_guard<std::mutex> guard(mu_);
  return static_cast<int64_t>(waiters_.size());
}

}  // namespace pristi
