#ifndef PRISTI_COMMON_TABLE_PRINTER_H_
#define PRISTI_COMMON_TABLE_PRINTER_H_

// Plain-text table and CSV emission for the benchmark harness. Every bench
// binary prints the rows of the paper table it reproduces through this class
// so the output format is uniform across experiments.

#include <string>
#include <vector>

namespace pristi {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Renders an aligned, pipe-separated table.
  std::string ToText() const;

  // Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string ToCsv() const;

  // Writes CSV to `path`; returns false (and logs) on I/O failure.
  bool WriteCsv(const std::string& path) const;

  // Formats a double with fixed precision; convenience for callers.
  static std::string Num(double value, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pristi

#endif  // PRISTI_COMMON_TABLE_PRINTER_H_
