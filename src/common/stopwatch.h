#ifndef PRISTI_COMMON_STOPWATCH_H_
#define PRISTI_COMMON_STOPWATCH_H_

#include <chrono>

namespace pristi {

// Wall-clock stopwatch for coarse experiment timing (Fig. 9 time costs).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pristi

#endif  // PRISTI_COMMON_STOPWATCH_H_
