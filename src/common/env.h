#ifndef PRISTI_COMMON_ENV_H_
#define PRISTI_COMMON_ENV_H_

// Environment-variable knobs shared by the bench harness. Benches default to
// CI-friendly reduced scale; set PRISTI_SCALE=full for paper-scale shapes.
//
// Memory-model knobs (consumed by src/tensor/storage.cc and tensor.cc; all
// read once at first allocation, so set them before the process starts):
//   PRISTI_BUFFER_POOL=0   disable the Storage buffer pool's recycling —
//                          every tensor buffer comes from the heap. The A/B
//                          baseline for allocator measurements; counters in
//                          tensor::GetAllocStats() accumulate either way.
//   PRISTI_POOL_MAX_MB=N   cap on bytes cached in the pool's free lists
//                          (default 512). Excess frees go back to the heap.
//   PRISTI_MALLOC_TUNE=1   re-enable the legacy glibc mallopt(M_MMAP_-
//                          THRESHOLD/M_TRIM_THRESHOLD) tuning that predated
//                          the pool. Off by default: the pool recycles
//                          activation buffers directly, so the process-global
//                          malloc tweak is no longer needed.
//
// GEMM kernel-layer knobs (consumed by src/tensor/kernels/; read once at
// first GEMM):
//   PRISTI_GEMM_TILE=0       route every matrix product through the retained
//                            reference kernel (operands read in place, no
//                            packing) instead of the tiled micro-kernel. The
//                            A/B baseline for KernelBench; results are
//                            bit-identical either way.
//   PRISTI_PACK_CACHE_MB=N   cap on resident packed weight panels in the
//                            GEMM pack cache (default 64). 0 disables the
//                            cache: every call repacks its operands into
//                            thread-local scratch.

#include <cstdlib>
#include <string>

namespace pristi {

inline std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

inline int64_t GetEnvIntOr(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

// True when the caller asked for paper-scale experiment shapes.
inline bool FullScaleRequested() {
  return GetEnvOr("PRISTI_SCALE", "quick") == "full";
}

}  // namespace pristi

#endif  // PRISTI_COMMON_ENV_H_
