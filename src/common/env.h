#ifndef PRISTI_COMMON_ENV_H_
#define PRISTI_COMMON_ENV_H_

// Environment-variable knobs shared by the bench harness. Benches default to
// CI-friendly reduced scale; set PRISTI_SCALE=full for paper-scale shapes.

#include <cstdlib>
#include <string>

namespace pristi {

inline std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

inline int64_t GetEnvIntOr(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

// True when the caller asked for paper-scale experiment shapes.
inline bool FullScaleRequested() {
  return GetEnvOr("PRISTI_SCALE", "quick") == "full";
}

}  // namespace pristi

#endif  // PRISTI_COMMON_ENV_H_
