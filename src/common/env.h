#ifndef PRISTI_COMMON_ENV_H_
#define PRISTI_COMMON_ENV_H_

// Environment-variable knobs: the accessors (GetEnvOr / GetEnvIntOr) and
// the registry of every PRISTI_* knob the tree reads.
//
// The block between the markers below is machine-checked by the
// env-registry pass of pristi_analyze: every `getenv`/`GetEnvOr` of a
// PRISTI_* name anywhere in src/, tools/, tests/ or bench/ (including
// tools/*.sh) must be declared here, and every declared knob must be read
// somewhere. Keep one `//   PRISTI_NAME  <default — effect>` line per
// knob; continuation lines are free-form.
//
// pristi-env-registry-begin
//
// Scale and debugging:
//   PRISTI_SCALE  "quick" — benches and eval default to CI-friendly
//          reduced scale; "full" selects paper-scale shapes
//          (FullScaleRequested below).
//   PRISTI_THREADS  0 — worker-thread count for the persistent
//          ParallelFor pool (src/common/parallel.cc); 0/unset means
//          hardware concurrency. Also honored by the sanitizer matrix in
//          tools/run_static_analysis.sh.
//   PRISTI_DEBUG_NANCHECK  0 — 1 enables the non-finite-value canary in
//          debug checks (src/common/check.cc): tensors are scanned for
//          NaN/Inf at checkpoints, at a large cost.
//
// Memory model (consumed by src/tensor/storage.cc and tensor.cc; read
// once at first allocation, so set them before the process starts):
//   PRISTI_BUFFER_POOL  1 — 0 disables the Storage buffer pool's
//          recycling; every tensor buffer comes from the heap. The A/B
//          baseline for allocator measurements; counters in
//          tensor::GetAllocStats() accumulate either way.
//   PRISTI_POOL_MAX_MB  512 — cap on bytes cached in the pool's free
//          lists. Excess frees go back to the heap.
//   PRISTI_MALLOC_TUNE  0 — 1 re-enables the legacy glibc
//          mallopt(M_MMAP_THRESHOLD/M_TRIM_THRESHOLD) tuning that
//          predated the pool. Off by default: the pool recycles
//          activation buffers directly.
//
// GEMM kernel layer (consumed by src/tensor/kernels/; read once at first
// GEMM):
//   PRISTI_GEMM_TILE  1 — 0 routes every matrix product through the
//          retained reference kernel (operands read in place, no packing)
//          instead of the tiled micro-kernel. The A/B baseline for
//          KernelBench; results are bit-identical either way.
//   PRISTI_PACK_CACHE_MB  64 — cap on resident packed weight panels in
//          the GEMM pack cache. 0 disables the cache: every call repacks
//          its operands into thread-local scratch.
//   PRISTI_ATTN_FUSED  1 — 0 routes MultiHeadAttention back through the
//          materialized BatchedMatMulNT -> SoftmaxLastDim -> BatchedMatMul
//          chain instead of the streaming fused kernel
//          (src/tensor/kernels/attention.cc). The A/B baseline for
//          AttentionBench and the bitwise path the training-loss goldens
//          pin; fused vs reference is a 1e-5 tolerance contract, not
//          bitwise.
//
// Serving layer (defaults resolved once by serve::ServeConfig::FromEnv in
// src/serve/session.cc; pristi_serve and ServeBench read their batching
// policy through it):
//   PRISTI_SERVE_MAX_BATCH  8 — coalesce at most this many queued requests
//          into one (R*S, N, L) reverse-diffusion call; a full batch
//          flushes immediately.
//   PRISTI_SERVE_MAX_WAIT_MS  5 — flush a partial batch once the OLDEST
//          queued request has waited this long; the other half of the
//          "size or deadline, whichever first" batching policy.
//   PRISTI_SERVE_QUEUE_CAP  64 — bounded admission queue capacity; when
//          full, Submit rejects with the retryable queue-full status
//          instead of blocking the client.
//   PRISTI_SERVE_SAMPLER  unset — session-default reverse sampler
//          (ddpm|ddim|plms); unset keeps ImputeOptions' built-in default.
//          Unknown names abort at startup. Requests may still override per
//          request.
//   PRISTI_SERVE_STEPS  0 — session-default kept reverse steps
//          (diffusion::ImputeOptions::num_inference_steps); 0 = full
//          schedule.
//
// Training:
//   PRISTI_TRAIN_SHARDS  0 — default shard count for `pristi_cli train`
//          when --shards is not given (diffusion::TrainOptions::num_shards);
//          0 keeps the classic single-stream loop, K >= 1 routes training
//          through the shard-parallel engine (diffusion/sharded_train.h),
//          bit-identical for any K at any thread count.
//
// Test and CI harness:
//   PRISTI_REGEN_GOLDEN  unset — when set, golden-file tests
//          (serialize_test, sharded_train_test, sampler_equivalence_test)
//          rewrite their checked-in golden artifacts instead of comparing
//          against them.
//   PRISTI_BENCH_DIR  unset — when set, bench binaries and bench-flavored
//          tests route their CSV/JSON reports into this directory through
//          bench::ArtifactPath (bench/bench_common.h) instead of their
//          default output locations.
//   PRISTI_SANITIZE_CONFIGS  "address+undefined thread" — which sanitizer
//          configs tools/run_static_analysis.sh builds and tests.
//   PRISTI_NATIVE_BITEQ  0 — 1 adds the -march=native bit-identity leg to
//          tools/run_static_analysis.sh (requires matching hardware).
//   PRISTI_SHARD_BITEQ  1 — 0 skips the 1-shard-vs-4-shard training
//          bit-identity leg of tools/run_static_analysis.sh.
//   PRISTI_ATTN_PARITY  1 — 0 skips the fused-off vs fused-on sampler
//          output parity leg of tools/run_static_analysis.sh (tolerance
//          compare of pristi_cli impute outputs under PRISTI_ATTN_FUSED=1
//          and =0).
//
// pristi-env-registry-end

#include <cstdlib>
#include <string>

namespace pristi {

inline std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

inline int64_t GetEnvIntOr(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

// True when the caller asked for paper-scale experiment shapes.
inline bool FullScaleRequested() {
  return GetEnvOr("PRISTI_SCALE", "quick") == "full";
}

}  // namespace pristi

#endif  // PRISTI_COMMON_ENV_H_
