#ifndef PRISTI_COMMON_LOGGING_H_
#define PRISTI_COMMON_LOGGING_H_

// Lightweight logging and assertion macros in the spirit of glog.
//
// CHECK-family macros abort on programmer error (invariant violation);
// they stay enabled in release builds because this library is used as a
// numerical substrate where silent shape/index corruption is far more
// expensive than the branch.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pristi {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

namespace internal_logging {

// Accumulates a message and emits it (and possibly aborts) on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << SeverityTag(severity) << " " << Basename(file) << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityTag(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo:
        return "[I";
      case LogSeverity::kWarning:
        return "[W";
      case LogSeverity::kError:
        return "[E";
      case LogSeverity::kFatal:
        return "[F";
    }
    return "[?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a conditional log is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

}  // namespace pristi

#define PRISTI_LOG_INFO                                                     \
  ::pristi::internal_logging::LogMessage(::pristi::LogSeverity::kInfo,      \
                                         __FILE__, __LINE__)                \
      .stream()
#define PRISTI_LOG_WARNING                                                  \
  ::pristi::internal_logging::LogMessage(::pristi::LogSeverity::kWarning,   \
                                         __FILE__, __LINE__)                \
      .stream()
#define PRISTI_LOG_FATAL                                                    \
  ::pristi::internal_logging::LogMessage(::pristi::LogSeverity::kFatal,     \
                                         __FILE__, __LINE__)                \
      .stream()

#define CHECK(condition)                                              \
  if (!(condition))                                                   \
  PRISTI_LOG_FATAL << "Check failed: " #condition " "

#define CHECK_OP(op, a, b)                                                \
  if (!((a)op(b)))                                                        \
  PRISTI_LOG_FATAL << "Check failed: " #a " " #op " " #b " (" << (a)      \
                   << " vs " << (b) << ") "

#define CHECK_EQ(a, b) CHECK_OP(==, a, b)
#define CHECK_NE(a, b) CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) CHECK_OP(<, a, b)
#define CHECK_LE(a, b) CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) CHECK_OP(>, a, b)
#define CHECK_GE(a, b) CHECK_OP(>=, a, b)

#endif  // PRISTI_COMMON_LOGGING_H_
