#ifndef PRISTI_COMMON_CLOCK_H_
#define PRISTI_COMMON_CLOCK_H_

// Injectable monotonic time for components that make *decisions* based on
// time (the serving layer's batching deadline, timeouts). Production code
// uses the process-wide SteadyClock; tests inject a FakeClock and advance
// it explicitly, so every time-driven branch is reproducible without real
// sleeps.
//
// The interface is deliberately condition-variable shaped rather than
// sleep shaped: a component that waits does so on its own mutex/cv (so
// producers can still wake it early), and only the deadline arithmetic is
// virtualized. With a FakeClock, Advance() wakes every registered waiter
// through the waiter's own cv, which makes "time passed" and "work
// arrived" indistinguishable to the waiting code — exactly like real time.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace pristi {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic nanoseconds. Only differences are meaningful; the epoch is
  // unspecified (SteadyClock: process start; FakeClock: 0).
  virtual int64_t NowNanos() = 0;

  // Blocks the calling thread — which must hold `lock` — until `cv` is
  // notified, the absolute deadline (in this clock's NowNanos() timebase)
  // passes, or a spurious wakeup occurs. Returns true iff the deadline has
  // passed at return. Callers must re-check their predicate in a loop,
  // exactly as with std::condition_variable::wait_until.
  virtual bool WaitUntil(std::condition_variable& cv,
                         std::unique_lock<std::mutex>& lock,
                         int64_t deadline_nanos) = 0;
};

// The process-wide monotonic clock (std::chrono::steady_clock). Returned
// pointer is owned by the process and valid forever.
Clock* RealClock();

// Manually advanced test clock. Time only moves when AdvanceNanos() is
// called, so a test fully scripts the timeline: start the component under
// test, wait for it to park (blocked_waiters() > 0 — spin with
// std::this_thread::yield(), which is progress-bounded, not time-bounded),
// then advance past the deadline and observe the decision.
//
// Waiters' cv/mutex objects must outlive any concurrent AdvanceNanos()
// call; in practice the session under test outlives the whole script.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() override;
  bool WaitUntil(std::condition_variable& cv,
                 std::unique_lock<std::mutex>& lock,
                 int64_t deadline_nanos) override;

  // Moves time forward and wakes every thread blocked in WaitUntil. The
  // wake acquires each waiter's external mutex briefly before notifying,
  // which closes the register-to-park window: a waiter that has
  // registered but not yet parked still holds its lock, so the notify
  // cannot be lost.
  void AdvanceNanos(int64_t delta_nanos);

  // Number of threads currently blocked inside WaitUntil. A test that
  // observes N here knows those N threads are parked (or past the point
  // where an Advance wake is guaranteed to reach them).
  int64_t blocked_waiters();

 private:
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* external_mutex;
  };

  std::mutex mu_;
  int64_t now_;  // guarded by mu_
  std::vector<Waiter> waiters_;  // guarded by mu_
};

}  // namespace pristi

#endif  // PRISTI_COMMON_CLOCK_H_
