#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/check.h"

namespace pristi {

int64_t ParallelThreadCount() {
  static const int64_t count = [] {
    int64_t configured = GetEnvIntOr("PRISTI_THREADS", 0);
    if (configured > 0) return configured;
    unsigned hardware = std::thread::hardware_concurrency();
    return static_cast<int64_t>(hardware > 0 ? hardware : 1);
  }();
  return count;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk) {
  PRISTI_CHECK_LE(begin, end);
  PRISTI_CHECK_GE(min_chunk, 1);
  int64_t total = end - begin;
  if (total == 0) return;
  int64_t threads = std::min<int64_t>(
      ParallelThreadCount(), (total + min_chunk - 1) / min_chunk);
  if (threads <= 1) {
    fn(begin, end);
    return;
  }
  int64_t chunk = (total + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int64_t w = 0; w < threads; ++w) {
    int64_t lo = begin + w * chunk;
    int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace pristi
