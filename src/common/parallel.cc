#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/env.h"

namespace pristi {

namespace {

// Worker id of the current thread: 0 off-pool, 1..W for pool workers.
thread_local int64_t tl_worker_id = 0;
// Set while the current thread executes chunks of some parallel region.
thread_local bool tl_in_parallel_region = false;

// One ParallelFor invocation. Workers claim chunk indices from `next_chunk`
// until the range is exhausted (or a chunk threw); the submitting thread
// waits until every enlisted worker has left the region, which also
// guarantees `fn` outlives all concurrent uses.
struct ParallelRegion {
  int64_t begin = 0;
  int64_t chunk = 1;
  int64_t num_chunks = 0;
  int64_t end = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;

  std::atomic<int64_t> next_chunk{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t workers_active = 0;  // enlisted pool workers still inside
  std::exception_ptr first_error;

  // Claims and runs chunks until the cursor passes the end of the range.
  void RunChunks() {
    bool was_in_region = tl_in_parallel_region;
    tl_in_parallel_region = true;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      int64_t index = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (index >= num_chunks) break;
      int64_t lo = begin + index * chunk;
      int64_t hi = std::min(end, lo + chunk);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    tl_in_parallel_region = was_in_region;
  }
};

// Persistent worker pool. Created lazily on first use; at static
// destruction the workers are signalled to stop and joined, so no thread
// outlives the pool's state.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  int64_t thread_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return target_threads_;
  }

  void set_thread_count(int64_t count) {
    PRISTI_CHECK_GE(count, 1);
    std::lock_guard<std::mutex> lock(mu_);
    target_threads_ = count;
  }

  // Enlists up to `helpers` pool workers into `region`. Workers that wake
  // after the range is exhausted claim no chunks and leave immediately.
  void Enlist(const std::shared_ptr<ParallelRegion>& region,
              int64_t helpers) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SpawnWorkersLocked(helpers);
      helpers = std::min<int64_t>(
          helpers, static_cast<int64_t>(workers_.size()));
      {
        std::lock_guard<std::mutex> region_lock(region->mu);
        region->workers_active += helpers;
      }
      for (int64_t i = 0; i < helpers; ++i) queue_.push_back(region);
    }
    queue_cv_.notify_all();
  }

 private:
  ThreadPool() {
    int64_t configured = GetEnvIntOr("PRISTI_THREADS", 0);
    if (configured > 0) {
      target_threads_ = configured;
    } else {
      unsigned hardware = std::thread::hardware_concurrency();
      target_threads_ = static_cast<int64_t>(hardware > 0 ? hardware : 1);
    }
  }

  // Ensures at least `helpers` persistent workers exist (requires mu_).
  void SpawnWorkersLocked(int64_t helpers) {
    while (static_cast<int64_t>(workers_.size()) < helpers) {
      int64_t id = static_cast<int64_t>(workers_.size()) + 1;
      workers_.emplace_back([this, id] { WorkerLoop(id); });
    }
  }

  void WorkerLoop(int64_t id) {
    tl_worker_id = id;
    for (;;) {
      std::shared_ptr<ParallelRegion> region;
      {
        std::unique_lock<std::mutex> lock(mu_);
        queue_cv_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, nothing left to run
        region = std::move(queue_.front());
        queue_.pop_front();
      }
      region->RunChunks();
      {
        std::lock_guard<std::mutex> lock(region->mu);
        if (--region->workers_active == 0) region->done_cv.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<ParallelRegion>> queue_;
  std::vector<std::thread> workers_;
  int64_t target_threads_ = 1;
  bool stopping_ = false;
};

}  // namespace

int64_t ParallelThreadCount() { return ThreadPool::Instance().thread_count(); }

void SetParallelThreadCount(int64_t count) {
  ThreadPool::Instance().set_thread_count(count);
}

int64_t CurrentWorkerId() { return tl_worker_id; }

bool InParallelRegion() { return tl_in_parallel_region; }

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk) {
  PRISTI_CHECK_LE(begin, end);
  PRISTI_CHECK_GE(min_chunk, 1);
  int64_t total = end - begin;
  if (total == 0) return;
  // Nested region (or a pool of one): run inline on this thread. Inline
  // nesting means an inner ParallelFor can never wait on workers that are
  // themselves blocked on the outer region — no deadlock by construction.
  int64_t threads = std::min<int64_t>(ParallelThreadCount(),
                                      (total + min_chunk - 1) / min_chunk);
  if (threads <= 1 || tl_in_parallel_region) {
    bool was_in_region = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      tl_in_parallel_region = was_in_region;
      throw;
    }
    tl_in_parallel_region = was_in_region;
    return;
  }

  // Work-chunking: ~4 chunks per thread (but never below min_chunk indices
  // each) so uneven chunk cost load-balances across the pool.
  auto region = std::make_shared<ParallelRegion>();
  region->begin = begin;
  region->end = end;
  region->chunk = std::max<int64_t>(min_chunk,
                                    (total + threads * 4 - 1) / (threads * 4));
  region->num_chunks = (total + region->chunk - 1) / region->chunk;
  region->fn = &fn;

  ThreadPool::Instance().Enlist(
      region, std::min<int64_t>(threads - 1, region->num_chunks - 1));
  region->RunChunks();  // the calling thread is worker number `threads`
  {
    std::unique_lock<std::mutex> lock(region->mu);
    region->done_cv.wait(lock, [&] { return region->workers_active == 0; });
    if (region->first_error) std::rethrow_exception(region->first_error);
  }
}

}  // namespace pristi
