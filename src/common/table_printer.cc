#include "common/table_printer.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace pristi {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char ch : field) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    PRISTI_LOG_WARNING << "failed to open " << path << " for writing";
    return false;
  }
  file << ToCsv();
  return static_cast<bool>(file);
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace pristi
