#ifndef PRISTI_COMMON_RNG_H_
#define PRISTI_COMMON_RNG_H_

// Deterministic random number generation for reproducible experiments.
//
// All stochastic components in the library (noise sampling, mask strategies,
// dataset synthesis, weight initialization) draw from an explicitly passed
// `Rng`, never from global state, so that every experiment is replayable
// from a single seed.

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace pristi {

// A seedable RNG with the distributions the library needs. Cheap to copy;
// copies continue the original stream independently from the copy point.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  // Derives an independent child stream; used to give each component
  // (data synthesis, masking, training) its own stream from one root seed.
  Rng Split() {
    uint64_t child_seed = engine_();
    child_seed ^= 0xD1B54A32D192ED03ULL;
    return Rng(child_seed);
  }

  // Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Standard normal (or scaled/shifted).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // A uniformly random permutation of {0, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n) {
    std::vector<int64_t> perm(n);
    for (int64_t i = 0; i < n; ++i) perm[i] = i;
    for (int64_t i = n - 1; i > 0; --i) {
      int64_t j = UniformInt(0, i);
      std::swap(perm[i], perm[j]);
    }
    return perm;
  }

  // Serializes the engine position (std::mt19937_64 stream operators). The
  // engine state is the COMPLETE Rng state: every draw above constructs its
  // distribution object fresh, so there is no hidden distribution state and
  // a restored Rng continues the stream bit-identically.
  std::string SaveStateString() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }

  // Restores a stream position saved by SaveStateString(). Returns false
  // (leaving the engine untouched) if `state` is not a valid saved state.
  bool LoadStateString(const std::string& state) {
    std::istringstream in(state);
    std::mt19937_64 restored;
    in >> restored;
    if (in.fail()) return false;
    engine_ = restored;
    return true;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pristi

#endif  // PRISTI_COMMON_RNG_H_
