#ifndef PRISTI_COMMON_FLAGS_H_
#define PRISTI_COMMON_FLAGS_H_

// Minimal --key=value command-line parsing for the CLI tool and benches.
// Not a general-purpose flags library: no registration, no help generation —
// callers query typed getters with defaults and can list unknown keys.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pristi {

class Flags {
 public:
  // Parses argv: "--key=value" and "--key value" set key; "--key" alone sets
  // it to "true"; everything else is a positional argument.
  static Flags Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  // Keys that were set but never queried; useful for typo detection.
  std::vector<std::string> UnqueriedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace pristi

#endif  // PRISTI_COMMON_FLAGS_H_
