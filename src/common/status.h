#ifndef PRISTI_COMMON_STATUS_H_
#define PRISTI_COMMON_STATUS_H_

// Typed error reporting shared across layers.
//
// Status began life inside src/serialize/ (checkpoint loading must fail
// loudly and *safely* on every kind of file damage — truncation, bit
// corruption, version skew, shape mismatch — so the load path never
// CHECK-aborts and never touches uninitialized memory). It lives in
// common/ because interfaces below serialize in the layering DAG mention
// it: nn::Module::SaveCheckpoint/LoadCheckpoint return a Status without
// the nn layer depending on serialize. Header-only; the ErrorCode values
// are asserted on by the fault-injection tests in tests/serialize_test.cc.

#include <string>
#include <utility>

namespace pristi {

enum class ErrorCode {
  kOk = 0,
  kIoError,            // open/read/write/rename failed at the OS level
  kBadMagic,           // file does not start with the checkpoint magic
  kVersionSkew,        // format version differs from kFormatVersion
  kTruncated,          // file ends mid-record / before the end record
  kBadRecord,          // structurally invalid record (bad length, garbage)
  kChecksumMismatch,   // per-record CRC32 does not match the payload
  kMissingRecord,      // a record the loader requires is absent
  kTypeMismatch,       // record exists but holds a different payload type
  kShapeMismatch,      // tensor record shape differs from the destination
  kCountMismatch,      // parameter/moment count differs from the target
  kConfigMismatch,     // stored config (schedule, optimizer) disagrees

  // Serving-layer codes (src/serve/). kQueueFull is the only RETRYABLE
  // code: the request was never admitted and an identical resubmission
  // after backoff is expected to succeed. kCancelled / kInvalidRequest are
  // terminal for the request that received them.
  kQueueFull,          // admission queue at capacity; back off and retry
  kCancelled,          // request dropped by shutdown / queue close
  kInvalidRequest,     // request malformed (e.g. window shape mismatch)
};

inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kBadMagic: return "bad-magic";
    case ErrorCode::kVersionSkew: return "version-skew";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kBadRecord: return "bad-record";
    case ErrorCode::kChecksumMismatch: return "checksum-mismatch";
    case ErrorCode::kMissingRecord: return "missing-record";
    case ErrorCode::kTypeMismatch: return "type-mismatch";
    case ErrorCode::kShapeMismatch: return "shape-mismatch";
    case ErrorCode::kCountMismatch: return "count-mismatch";
    case ErrorCode::kConfigMismatch: return "config-mismatch";
    case ErrorCode::kQueueFull: return "queue-full";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInvalidRequest: return "invalid-request";
  }
  return "unknown";
}

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  // True when the failed operation was never started and may simply be
  // retried (today: only a queue-full admission rejection).
  bool retryable() const { return code_ == ErrorCode::kQueueFull; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "checksum-mismatch: record 'model.w' ..." for logs and test output.
  std::string ToString() const {
    if (ok()) return "ok";
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

}  // namespace pristi

#endif  // PRISTI_COMMON_STATUS_H_
