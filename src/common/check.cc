#include "common/check.h"

#include <atomic>
#include <cmath>

#include "common/env.h"

namespace pristi {

namespace {

// -1: follow the environment variable; 0/1: explicit testing override.
std::atomic<int> g_nan_check_override{-1};

}  // namespace

bool NanCheckEnabled() {
  int override_value = g_nan_check_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value != 0;
  static const bool from_env = GetEnvIntOr("PRISTI_DEBUG_NANCHECK", 0) != 0;
  return from_env;
}

void SetNanCheckEnabledForTesting(bool enabled) {
  g_nan_check_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

int64_t FirstNonFinite(const float* data, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return i;
  }
  return -1;
}

}  // namespace pristi
