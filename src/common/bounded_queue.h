#ifndef PRISTI_COMMON_BOUNDED_QUEUE_H_
#define PRISTI_COMMON_BOUNDED_QUEUE_H_

// Bounded multi-producer admission queue with deadline-based batch
// draining — the request-coalescing primitive behind the serving layer.
//
// Producers never block: TryPush either admits the item or returns a typed
// Status immediately (kQueueFull when at capacity — retryable, the caller
// should back off and resubmit; kCancelled once the queue is closed).
// A single consumer drains with PopBatch under the batching policy
// "flush on max-batch-size or max-wait deadline, whichever first", where
// the deadline is keyed to the enqueue time of the OLDEST waiting item:
// a batch never holds request r longer than max_wait, no matter how many
// requests trickle in behind it.
//
// All waiting goes through an injected Clock, so tests drive the deadline
// branch deterministically with a FakeClock (see common/clock.h).

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/clock.h"
#include "common/status.h"

namespace pristi {

template <typename T>
class BoundedQueue {
 public:
  // `clock` must outlive the queue; nullptr selects RealClock().
  BoundedQueue(int64_t capacity, Clock* clock)
      : capacity_(capacity), clock_(clock != nullptr ? clock : RealClock()) {
    PRISTI_CHECK_GE(capacity_, 1);
  }

  // Admits `*item` or rejects without blocking. `*item` is moved from only
  // on success; a rejected item stays intact in the caller's hands (so a
  // caller can still resolve the promise / retry it carries).
  Status TryPush(T* item) {
    std::lock_guard<std::mutex> guard(mu_);
    if (closed_) {
      return Status::Error(ErrorCode::kCancelled,
                           "queue is closed (shutting down)");
    }
    if (static_cast<int64_t>(items_.size()) >= capacity_) {
      return Status::Error(
          ErrorCode::kQueueFull,
          "admission queue is at capacity (" + std::to_string(capacity_) +
              "); retry after backoff");
    }
    items_.push_back(Entry{std::move(*item), clock_->NowNanos()});
    cv_.notify_all();
    return Status::Ok();
  }

  // Blocks until at least one item is queued (or the queue is closed),
  // then returns up to `max_batch` items as soon as either max_batch are
  // available or the oldest queued item has waited `max_wait_nanos` since
  // its enqueue. Returns an empty vector only when the queue is closed and
  // fully drained — the consumer's termination signal. Single consumer.
  std::vector<T> PopBatch(int64_t max_batch, int64_t max_wait_nanos) {
    PRISTI_CHECK_GE(max_batch, 1);
    PRISTI_CHECK_GE(max_wait_nanos, 0);
    std::unique_lock<std::mutex> lock(mu_);
    while (items_.empty() && !closed_) cv_.wait(lock);
    if (items_.empty()) return {};
    int64_t deadline = items_.front().enqueue_nanos + max_wait_nanos;
    while (static_cast<int64_t>(items_.size()) < max_batch && !closed_) {
      if (clock_->WaitUntil(cv_, lock, deadline)) break;
    }
    std::vector<T> batch;
    int64_t take = std::min<int64_t>(max_batch,
                                     static_cast<int64_t>(items_.size()));
    batch.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(items_.front().item));
      items_.pop_front();
    }
    return batch;
  }

  // Stops admission. Queued items remain for PopBatch to drain; once they
  // are gone PopBatch returns empty.
  void Close() {
    std::lock_guard<std::mutex> guard(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  // Close + hand every still-queued item back to the caller (to resolve
  // with a typed cancellation) instead of letting the consumer drain them.
  std::vector<T> CancelPending() {
    std::lock_guard<std::mutex> guard(mu_);
    closed_ = true;
    std::vector<T> cancelled;
    cancelled.reserve(items_.size());
    for (Entry& entry : items_) cancelled.push_back(std::move(entry.item));
    items_.clear();
    cv_.notify_all();
    return cancelled;
  }

  int64_t size() {
    std::lock_guard<std::mutex> guard(mu_);
    return static_cast<int64_t>(items_.size());
  }

  bool closed() {
    std::lock_guard<std::mutex> guard(mu_);
    return closed_;
  }

  int64_t capacity() const { return capacity_; }

 private:
  struct Entry {
    T item;
    int64_t enqueue_nanos;
  };

  const int64_t capacity_;
  Clock* const clock_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> items_;  // guarded by mu_
  bool closed_ = false;      // guarded by mu_
};

}  // namespace pristi

#endif  // PRISTI_COMMON_BOUNDED_QUEUE_H_
