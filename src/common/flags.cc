#include "common/flags.h"

#include <cstdlib>

namespace pristi {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  return end != it->second.c_str() ? static_cast<int64_t>(parsed) : fallback;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(it->second.c_str(), &end);
  return end != it->second.c_str() ? parsed : fallback;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> Flags::UnqueriedKeys() const {
  std::vector<std::string> unqueried;
  for (const auto& [key, value] : values_) {
    if (!queried_.count(key)) unqueried.push_back(key);
  }
  return unqueried;
}

}  // namespace pristi
