#ifndef PRISTI_COMMON_CHECK_H_
#define PRISTI_COMMON_CHECK_H_

// Runtime invariant checks for the numeric layers.
//
// PRISTI_CHECK / PRISTI_CHECK_<OP> are fatal, message-streaming assertions
// that stay enabled in every build type: this library is a numerical
// substrate where silent shape/index corruption is far more expensive than
// a predictable branch. PRISTI_DCHECK / PRISTI_DCHECK_<OP> are the
// hot-path variants: identical semantics when enabled, compiled down to
// nothing (the condition is parsed and type-checked but never evaluated)
// when NDEBUG is defined and PRISTI_DEBUG_CHECKS is not.
//
// Both families are expressions built on the conditional operator, so they
// are safe inside unbraced if/else chains (no dangling-else hazard).
//
// This header also hosts the knobs for PRISTI_DEBUG_NANCHECK, a runtime
// mode (environment variable PRISTI_DEBUG_NANCHECK=1) under which the
// autograd layer scans every op output for NaN/Inf and aborts naming the
// first offending op, its shapes, and the bad coordinate — so a diverging
// diffusion training run points at the first bad kernel rather than the
// final loss.

#include <cstdint>

#include "common/logging.h"

namespace pristi {

namespace internal_logging {

// Turns a streamed LogMessage expression into void so the CHECK macros can
// live inside the conditional operator.
class Voidifier {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

// True when op outputs should be scanned for NaN/Inf (PRISTI_DEBUG_NANCHECK
// environment variable, or the testing override below).
bool NanCheckEnabled();

// Overrides the environment-variable decision; used by tests that plant
// non-finite values and expect attribution. Passing the value read from the
// environment restores normal behavior.
void SetNanCheckEnabledForTesting(bool enabled);

// Index of the first NaN/Inf entry in data[0..n), or -1 if all finite.
int64_t FirstNonFinite(const float* data, int64_t n);

}  // namespace pristi

#define PRISTI_CHECK(condition)                                       \
  (condition) ? (void)0                                               \
              : ::pristi::internal_logging::Voidifier() &             \
                    PRISTI_LOG_FATAL << "Check failed: " #condition " "

#define PRISTI_CHECK_OP(op, a, b)                                     \
  ((a)op(b)) ? (void)0                                                \
             : ::pristi::internal_logging::Voidifier() &              \
                   PRISTI_LOG_FATAL << "Check failed: " #a " " #op    \
                                    << " " #b " (" << (a) << " vs "   \
                                    << (b) << ") "

#define PRISTI_CHECK_EQ(a, b) PRISTI_CHECK_OP(==, a, b)
#define PRISTI_CHECK_NE(a, b) PRISTI_CHECK_OP(!=, a, b)
#define PRISTI_CHECK_LT(a, b) PRISTI_CHECK_OP(<, a, b)
#define PRISTI_CHECK_LE(a, b) PRISTI_CHECK_OP(<=, a, b)
#define PRISTI_CHECK_GT(a, b) PRISTI_CHECK_OP(>, a, b)
#define PRISTI_CHECK_GE(a, b) PRISTI_CHECK_OP(>=, a, b)

#if !defined(NDEBUG) || defined(PRISTI_DEBUG_CHECKS)
#define PRISTI_DCHECK_IS_ON 1
#else
#define PRISTI_DCHECK_IS_ON 0
#endif

#if PRISTI_DCHECK_IS_ON

#define PRISTI_DCHECK(condition) PRISTI_CHECK(condition)
#define PRISTI_DCHECK_EQ(a, b) PRISTI_CHECK_EQ(a, b)
#define PRISTI_DCHECK_NE(a, b) PRISTI_CHECK_NE(a, b)
#define PRISTI_DCHECK_LT(a, b) PRISTI_CHECK_LT(a, b)
#define PRISTI_DCHECK_LE(a, b) PRISTI_CHECK_LE(a, b)
#define PRISTI_DCHECK_GT(a, b) PRISTI_CHECK_GT(a, b)
#define PRISTI_DCHECK_GE(a, b) PRISTI_CHECK_GE(a, b)

#else  // PRISTI_DCHECK_IS_ON

// `true || (condition)` keeps the condition parsed and its variables
// odr-used (so disabled builds still compile the same code) while
// guaranteeing it is never evaluated; the whole expression folds away.
#define PRISTI_DCHECK(condition)                          \
  (true || (condition)) ? (void)0                         \
                        : ::pristi::internal_logging::Voidifier() & \
                              PRISTI_LOG_FATAL << ""
#define PRISTI_DCHECK_OP_DISABLED(op, a, b)               \
  (true || ((a)op(b))) ? (void)0                          \
                       : ::pristi::internal_logging::Voidifier() & \
                             PRISTI_LOG_FATAL << ""
#define PRISTI_DCHECK_EQ(a, b) PRISTI_DCHECK_OP_DISABLED(==, a, b)
#define PRISTI_DCHECK_NE(a, b) PRISTI_DCHECK_OP_DISABLED(!=, a, b)
#define PRISTI_DCHECK_LT(a, b) PRISTI_DCHECK_OP_DISABLED(<, a, b)
#define PRISTI_DCHECK_LE(a, b) PRISTI_DCHECK_OP_DISABLED(<=, a, b)
#define PRISTI_DCHECK_GT(a, b) PRISTI_DCHECK_OP_DISABLED(>, a, b)
#define PRISTI_DCHECK_GE(a, b) PRISTI_DCHECK_OP_DISABLED(>=, a, b)

#endif  // PRISTI_DCHECK_IS_ON

#endif  // PRISTI_COMMON_CHECK_H_
