#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "tensor/kernels/attention.h"

namespace pristi::autograd {

namespace {

namespace t = ::pristi::tensor;

using internal::Node;

// Under PRISTI_DEBUG_NANCHECK, aborts if `value` holds a NaN/Inf, naming
// the op that produced it and every input shape — so a diverging training
// run points at the first bad kernel rather than the final loss.
void MaybeCheckFinite(const char* name, const Tensor& value,
                      const std::vector<Variable>& inputs) {
  if (!NanCheckEnabled()) return;
  int64_t bad = FirstNonFinite(value.data(), value.numel());
  if (bad < 0) return;
  std::ostringstream input_shapes;
  for (const Variable& v : inputs) {
    input_shapes << " " << t::ShapeToString(v.value().shape());
  }
  PRISTI_LOG_FATAL << "PRISTI_DEBUG_NANCHECK: op '" << name
                   << "' produced non-finite value " << value[bad]
                   << " at flat index " << bad << "; output shape "
                   << t::ShapeToString(value.shape()) << ", input shapes:"
                   << input_shapes.str();
}

// Builds an interior node. `backward` receives the output gradient and is
// expected to call AccumulateGrad on the captured parent nodes. If no input
// requires grad, the edge is pruned and the output is a constant. `name`
// labels the op in NaN-attribution and tape-misuse diagnostics.
//
// Templated on the closure so that under NoGradGuard the lambda is never
// converted to a std::function (skipping its heap allocation): inference
// nodes carry the value only — no parent edges, no closure — which lets the
// buffers of intermediate activations return to the pool as soon as their
// last Variable dies.
template <typename BackwardFn>
Variable MakeOp(const char* name, const Tensor& value,
                const std::vector<Variable>& inputs, BackwardFn&& backward) {
  bool needs_grad = false;
  for (const Variable& v : inputs) {
    PRISTI_CHECK(v.defined())
        << "op '" << name << "' received an undefined Variable";
    if (v.requires_grad() || (v.node()->backward != nullptr)) {
      needs_grad = true;
    }
  }
  // NaN attribution stays on in inference mode: sampling is where a bad
  // kernel would otherwise surface as silently wrong imputations.
  MaybeCheckFinite(name, value, inputs);
  auto node = std::make_shared<Node>();
  node->value = value;
  node->requires_grad = false;
  node->op_name = name;
  if (!GradModeEnabled()) {
    node->inference_mode = true;
    return Variable::FromNode(std::move(node));
  }
  if (needs_grad) {
    node->parents.reserve(inputs.size());
    node->parent_versions.reserve(inputs.size());
    for (const Variable& v : inputs) {
      node->parents.push_back(v.node());
      node->parent_versions.push_back(v.node()->value_version);
    }
    node->backward = std::forward<BackwardFn>(backward);
  }
  return Variable::FromNode(std::move(node));
}

}  // namespace

// ---------------------------------------------------------------------------
// Elementwise binary
// ---------------------------------------------------------------------------

namespace {

// Shared implementation for add/sub: gradient is (+/-) identity reduced to
// each parent's shape.
Variable AddLike(const Variable& a, const Variable& b, float sign_b) {
  const char* name = sign_b > 0 ? "Add" : "Sub";
  Tensor out = sign_b > 0 ? t::Add(a.value(), b.value())
                          : t::Sub(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp(name, std::move(out), {a, b}, [an, bn, sign_b](const Tensor& g) {
    an->AccumulateGrad(t::SumToShape(g, an->value.shape()));
    Tensor gb = t::SumToShape(g, bn->value.shape());
    if (sign_b < 0) gb = t::Neg(gb);
    bn->AccumulateGrad(gb);
  });
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) { return AddLike(a, b, 1); }
Variable Sub(const Variable& a, const Variable& b) { return AddLike(a, b, -1); }

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = t::Mul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("Mul", std::move(out), {a, b}, [an, bn](const Tensor& g) {
    an->AccumulateGrad(t::SumToShape(t::Mul(g, bn->value), an->value.shape()));
    bn->AccumulateGrad(t::SumToShape(t::Mul(g, an->value), bn->value.shape()));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor out = t::Div(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("Div", std::move(out), {a, b}, [an, bn](const Tensor& g) {
    an->AccumulateGrad(t::SumToShape(t::Div(g, bn->value), an->value.shape()));
    // d/db (a/b) = -a / b^2
    Tensor db = t::Neg(t::Div(t::Mul(g, an->value), t::Square(bn->value)));
    bn->AccumulateGrad(t::SumToShape(db, bn->value.shape()));
  });
}

// ---------------------------------------------------------------------------
// Scalar / unary
// ---------------------------------------------------------------------------

Variable AddScalar(const Variable& a, float s) {
  auto an = a.node();
  return MakeOp("AddScalar", t::AddScalar(a.value(), s), {a},
                [an](const Tensor& g) { an->AccumulateGrad(g); });
}

Variable MulScalar(const Variable& a, float s) {
  auto an = a.node();
  return MakeOp("MulScalar", t::MulScalar(a.value(), s), {a}, [an, s](const Tensor& g) {
    an->AccumulateGrad(t::MulScalar(g, s));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Exp(const Variable& a) {
  Tensor out = t::Exp(a.value());
  auto an = a.node();
  Tensor out_copy = out;
  return MakeOp("Exp", std::move(out), {a}, [an, out_copy](const Tensor& g) {
    an->AccumulateGrad(t::Mul(g, out_copy));
  });
}

Variable Log(const Variable& a) {
  auto an = a.node();
  return MakeOp("Log", t::Log(a.value()), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(t::Div(g, an->value));
  });
}

Variable Sqrt(const Variable& a) {
  Tensor out = t::Sqrt(a.value());
  auto an = a.node();
  Tensor out_copy = out;
  return MakeOp("Sqrt", std::move(out), {a}, [an, out_copy](const Tensor& g) {
    // d sqrt(x) = 0.5 / sqrt(x)
    an->AccumulateGrad(t::Div(t::MulScalar(g, 0.5f), out_copy));
  });
}

Variable Square(const Variable& a) {
  auto an = a.node();
  return MakeOp("Square", t::Square(a.value()), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(t::Mul(g, t::MulScalar(an->value, 2.0f)));
  });
}

Variable Relu(const Variable& a) {
  auto an = a.node();
  return MakeOp("Relu", t::Relu(a.value()), {a}, [an](const Tensor& g) {
    Tensor masked(g.shape());
    const float* pg = g.data();
    const float* px = an->value.data();
    float* po = masked.data();
    for (int64_t i = 0; i < g.numel(); ++i) {
      po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
    }
    an->AccumulateGrad(masked);
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor out = t::Sigmoid(a.value());
  auto an = a.node();
  Tensor out_copy = out;
  return MakeOp("Sigmoid", std::move(out), {a}, [an, out_copy](const Tensor& g) {
    // s' = s (1 - s)
    Tensor ds = t::Mul(out_copy, t::AddScalar(t::Neg(out_copy), 1.0f));
    an->AccumulateGrad(t::Mul(g, ds));
  });
}

Variable Tanh(const Variable& a) {
  Tensor out = t::Tanh(a.value());
  auto an = a.node();
  Tensor out_copy = out;
  return MakeOp("Tanh", std::move(out), {a}, [an, out_copy](const Tensor& g) {
    // tanh' = 1 - tanh^2
    Tensor dt = t::AddScalar(t::Neg(t::Square(out_copy)), 1.0f);
    an->AccumulateGrad(t::Mul(g, dt));
  });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  auto an = a.node();
  return MakeOp("Clamp", t::Clamp(a.value(), lo, hi), {a},
                [an, lo, hi](const Tensor& g) {
                  Tensor masked(g.shape());
                  const float* pg = g.data();
                  const float* px = an->value.data();
                  float* po = masked.data();
                  for (int64_t i = 0; i < g.numel(); ++i) {
                    po[i] = (px[i] > lo && px[i] < hi) ? pg[i] : 0.0f;
                  }
                  an->AccumulateGrad(masked);
                });
}

Variable Where(const Tensor& cond, const Variable& a, const Variable& b) {
  Tensor out = t::Where(cond, a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  Tensor cond_copy = cond;
  return MakeOp("Where", std::move(out), {a, b}, [an, bn, cond_copy](const Tensor& g) {
    Tensor ga(g.shape()), gb(g.shape());
    for (int64_t i = 0; i < g.numel(); ++i) {
      if (cond_copy[i] > 0.5f) {
        ga[i] = g[i];
      } else {
        gb[i] = g[i];
      }
    }
    an->AccumulateGrad(ga);
    bn->AccumulateGrad(gb);
  });
}

// ---------------------------------------------------------------------------
// Matrix products
// ---------------------------------------------------------------------------

// Every backward below uses the NT/TN kernel entry points, which read the
// transposed operand in place — no TransposeLast2 copy is materialized
// anywhere on the MatMul-family backward paths (the no-materialized-
// transpose lint rule enforces this).

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = t::MatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("MatMul", std::move(out), {a, b}, [an, bn](const Tensor& g) {
    an->AccumulateGrad(t::MatMulNT(g, bn->value));
    bn->AccumulateGrad(t::MatMulTN(an->value, g));
  });
}

Variable MatMulNT(const Variable& a, const Variable& b) {
  Tensor out = t::MatMulNT(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("MatMulNT", std::move(out), {a, b}, [an, bn](const Tensor& g) {
    // out = a bᵀ: da = g b, db = gᵀ a.
    an->AccumulateGrad(t::MatMul(g, bn->value));
    bn->AccumulateGrad(t::MatMulTN(g, an->value));
  });
}

Variable MatMulTN(const Variable& a, const Variable& b) {
  Tensor out = t::MatMulTN(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("MatMulTN", std::move(out), {a, b}, [an, bn](const Tensor& g) {
    // out = aᵀ b: da = b gᵀ, db = a g.
    an->AccumulateGrad(t::MatMulNT(bn->value, g));
    bn->AccumulateGrad(t::MatMul(an->value, g));
  });
}

Variable BatchedMatMul(const Variable& a, const Variable& b) {
  Tensor out = t::BatchedMatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("BatchedMatMul", std::move(out), {a, b}, [an, bn](const Tensor& g) {
    an->AccumulateGrad(t::BatchedMatMulNT(g, bn->value));
    bn->AccumulateGrad(t::BatchedMatMulTN(an->value, g));
  });
}

Variable BatchedMatMulNT(const Variable& a, const Variable& b) {
  Tensor out = t::BatchedMatMulNT(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("BatchedMatMulNT", std::move(out), {a, b},
                [an, bn](const Tensor& g) {
                  // Per batch item: da = g b, db = gᵀ a.
                  an->AccumulateGrad(t::BatchedMatMul(g, bn->value));
                  bn->AccumulateGrad(t::BatchedMatMulTN(g, an->value));
                });
}

Variable BatchedMatMulTN(const Variable& a, const Variable& b) {
  Tensor out = t::BatchedMatMulTN(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("BatchedMatMulTN", std::move(out), {a, b},
                [an, bn](const Tensor& g) {
                  // Per batch item: da = b gᵀ, db = a g.
                  an->AccumulateGrad(t::BatchedMatMulNT(bn->value, g));
                  bn->AccumulateGrad(t::BatchedMatMul(an->value, g));
                });
}

Variable BatchedMatMulNTScaled(const Variable& a, const Variable& b,
                               float scale) {
  Tensor out = t::BatchedMatMulNT(a.value(), b.value());
  // In-place epilogue: each element rounds exactly as the old separate
  // MulScalar pass did (one multiply per element), so the reference
  // attention path stays bitwise-unchanged — only the intermediate tensor
  // and its tape node disappear.
  out.ScaleInPlace(scale);
  auto an = a.node();
  auto bn = b.node();
  return MakeOp("BatchedMatMulNTScaled", std::move(out), {a, b},
                [an, bn, scale](const Tensor& g) {
                  // The old MulScalar -> BatchedMatMulNT backward chain,
                  // verbatim: scale the upstream grad once, then
                  // da = gs b, db = gsᵀ a.
                  Tensor gs = t::MulScalar(g, scale);
                  an->AccumulateGrad(t::BatchedMatMul(gs, bn->value));
                  bn->AccumulateGrad(t::BatchedMatMulTN(gs, an->value));
                });
}

Variable FusedAttention(const Variable& q, const Variable& k,
                        const Variable& v, float scale) {
  const Tensor& qv = q.value();
  const Tensor& kv = k.value();
  const Tensor& vv = v.value();
  int64_t nd = qv.ndim();
  PRISTI_CHECK_GE(nd, 2) << "FusedAttention needs (..., seq, head_dim)";
  PRISTI_CHECK_EQ(kv.ndim(), nd);
  PRISTI_CHECK_EQ(vv.ndim(), nd);
  int64_t dh = qv.dim(nd - 1);
  int64_t s_q = qv.dim(nd - 2);
  int64_t s_k = kv.dim(nd - 2);
  PRISTI_CHECK_GT(qv.numel(), 0) << "FusedAttention on an empty tensor";
  PRISTI_CHECK_EQ(kv.dim(nd - 1), dh) << "FusedAttention head_dim mismatch";
  PRISTI_CHECK_EQ(vv.dim(nd - 1), dh) << "FusedAttention head_dim mismatch";
  PRISTI_CHECK_EQ(vv.dim(nd - 2), s_k) << "FusedAttention kv length mismatch";
  int64_t batch = qv.numel() / (s_q * dh);
  PRISTI_CHECK_EQ(kv.numel(), batch * s_k * dh)
      << "FusedAttention leading dims mismatch";
  Tensor out(qv.shape());
  Tensor lse(Shape{batch, s_q});
  t::kernels::FusedAttentionForward(batch, s_q, s_k, dh, scale, qv.data(),
                                 kv.data(), vv.data(), out.data(), lse.data(),
                                 &kv);
  auto qn = q.node();
  auto kn = k.node();
  auto vn = v.node();
  Tensor out_copy = out;
  return MakeOp(
      "FusedAttention", std::move(out), {q, k, v},
      [qn, kn, vn, out_copy, lse, scale, batch, s_q, s_k,
       dh](const Tensor& g) {
        // Const views so reading the saved inputs never bumps a storage
        // version (which would evict the packed K panels the backward is
        // about to reuse).
        const Tensor& qt = qn->value;
        const Tensor& kt = kn->value;
        const Tensor& vt = vn->value;
        Tensor dq(qt.shape());
        Tensor dk(kt.shape());
        Tensor dv(vt.shape());
        t::kernels::FusedAttentionBackward(batch, s_q, s_k, dh, scale, qt.data(),
                                        kt.data(), vt.data(), out_copy.data(),
                                        lse.data(), g.data(), dq.data(),
                                        dk.data(), dv.data(), &kt);
        qn->AccumulateGrad(dq);
        kn->AccumulateGrad(dk);
        vn->AccumulateGrad(dv);
      });
}

Variable MatMulLastDim(const Variable& x, const Variable& w) {
  Tensor out = t::MatMulLastDim(x.value(), w.value());
  auto xn = x.node();
  auto wn = w.node();
  return MakeOp("MatMulLastDim", std::move(out), {x, w}, [xn, wn](const Tensor& g) {
    // dx = g @ w^T applied along the last axis (w read transposed in place).
    xn->AccumulateGrad(t::MatMulLastDimT(g, wn->value));
    // dw = x2d^T @ g2d where both are flattened to (rows, features).
    int64_t k_in = xn->value.dim(-1);
    int64_t k_out = g.dim(-1);
    int64_t rows = xn->value.numel() / k_in;
    Tensor x2d = xn->value.Reshaped({rows, k_in});
    Tensor g2d = g.Reshaped({rows, k_out});
    wn->AccumulateGrad(t::MatMulTN(x2d, g2d));
  });
}

Variable MatMulNodeDim(const Variable& p, const Variable& x) {
  Tensor out = t::MatMulNodeDim(p.value(), x.value());
  auto pn = p.node();
  auto xn = x.node();
  return MakeOp("MatMulNodeDim", std::move(out), {p, x}, [pn, xn](const Tensor& g) {
    // dx = p^T @ g along the node axis (p read transposed in place).
    xn->AccumulateGrad(t::MatMulNodeDimT(pn->value, g));
    // dp = sum_batch g_b @ x_b^T.
    int64_t rows_out = pn->value.dim(0);
    int64_t rows_in = pn->value.dim(1);
    int64_t d = xn->value.dim(-1);
    int64_t batch = xn->value.numel() / (rows_in * d);
    Tensor g3 = g.Reshaped({batch, rows_out, d});
    Tensor x3 = xn->value.Reshaped({batch, rows_in, d});
    Tensor per_batch = t::BatchedMatMulNT(g3, x3);
    pn->AccumulateGrad(t::SumAxis(per_batch, 0));
  });
}

// ---------------------------------------------------------------------------
// Softmax / LayerNorm
// ---------------------------------------------------------------------------

Variable SoftmaxLastDim(const Variable& a) {
  Tensor out = t::SoftmaxLastDim(a.value());
  auto an = a.node();
  Tensor out_copy = out;
  return MakeOp("SoftmaxLastDim", std::move(out), {a}, [an, out_copy](const Tensor& g) {
    // dx = s * (g - sum(g * s, last, keepdim))
    Tensor gs = t::Mul(g, out_copy);
    Tensor row_sum = t::SumAxis(gs, -1, /*keepdim=*/true);
    an->AccumulateGrad(t::Mul(out_copy, t::Sub(g, row_sum)));
  });
}

Variable LayerNormLastDim(const Variable& x, const Variable& gamma,
                          const Variable& beta, float eps) {
  const Tensor& xv = x.value();
  int64_t d = xv.dim(-1);
  PRISTI_CHECK_EQ(gamma.value().numel(), d);
  PRISTI_CHECK_EQ(beta.value().numel(), d);
  int64_t rows = xv.numel() / d;

  Tensor xhat(xv.shape());
  Tensor inv_std(Shape{rows});
  Tensor out(xv.shape());
  {
    const float* px = xv.data();
    const float* pg = gamma.value().data();
    const float* pb = beta.value().data();
    float* ph = xhat.data();
    float* ps = inv_std.data();
    float* po = out.data();
    // Rows are independent; fuse normalize + affine in one parallel pass.
    pristi::ParallelFor(
        0, rows,
        [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            const float* src = px + r * d;
            double mean = 0.0;
            for (int64_t i = 0; i < d; ++i) mean += src[i];
            mean /= d;
            double var = 0.0;
            for (int64_t i = 0; i < d; ++i) {
              double c = src[i] - mean;
              var += c * c;
            }
            var /= d;
            float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
            ps[r] = istd;
            float* dst = ph + r * d;
            float* orow = po + r * d;
            for (int64_t i = 0; i < d; ++i) {
              dst[i] = (src[i] - static_cast<float>(mean)) * istd;
              orow[i] = dst[i] * pg[i] + pb[i];
            }
          }
        },
        std::max<int64_t>(1, 4096 / std::max<int64_t>(d, 1)));
  }
  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return MakeOp("LayerNormLastDim", 
      std::move(out), {x, gamma, beta},
      [xn, gn, bn, xhat, inv_std, rows, d](const Tensor& g) {
        Tensor dgamma(Shape{d});
        Tensor dbeta(Shape{d});
        Tensor dx(xn->value.shape());
        const float* pg = g.data();
        const float* ph = xhat.data();
        const float* pgam = gn->value.data();
        const float* pistd = inv_std.data();
        float* pdg = dgamma.data();
        float* pdb = dbeta.data();
        float* pdx = dx.data();
        for (int64_t r = 0; r < rows; ++r) {
          const float* grow = pg + r * d;
          const float* hrow = ph + r * d;
          double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
          for (int64_t i = 0; i < d; ++i) {
            float dxhat = grow[i] * pgam[i];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * hrow[i];
            pdg[i] += grow[i] * hrow[i];
            pdb[i] += grow[i];
          }
          float mean_dxhat = static_cast<float>(sum_dxhat / d);
          float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / d);
          float istd = pistd[r];
          float* dxrow = pdx + r * d;
          for (int64_t i = 0; i < d; ++i) {
            float dxhat = grow[i] * pgam[i];
            dxrow[i] =
                istd * (dxhat - mean_dxhat - hrow[i] * mean_dxhat_xhat);
          }
        }
        xn->AccumulateGrad(dx);
        Tensor dgamma_shaped = dgamma.Reshaped(gn->value.shape());
        Tensor dbeta_shaped = dbeta.Reshaped(bn->value.shape());
        gn->AccumulateGrad(dgamma_shaped);
        bn->AccumulateGrad(dbeta_shaped);
      });
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

Variable Reshape(const Variable& a, Shape new_shape) {
  Tensor out = a.value().Reshaped(new_shape);
  auto an = a.node();
  return MakeOp("Reshape", std::move(out), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(g.Reshaped(an->value.shape()));
  });
}

Variable Permute(const Variable& a, const std::vector<int64_t>& perm) {
  Tensor out = t::Permute(a.value(), perm);
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  auto an = a.node();
  return MakeOp("Permute", std::move(out), {a}, [an, inverse](const Tensor& g) {
    an->AccumulateGrad(t::Permute(g, inverse));
  });
}

Variable TransposeLast2(const Variable& a) {
  std::vector<int64_t> perm(static_cast<size_t>(a.value().ndim()));
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int64_t>(i);
  std::swap(perm[perm.size() - 1], perm[perm.size() - 2]);
  return Permute(a, perm);
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  PRISTI_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor out = t::Concat(values, axis);
  int64_t nd = parts[0].value().ndim();
  int64_t norm_axis = axis < 0 ? axis + nd : axis;
  std::vector<std::shared_ptr<Node>> nodes;
  std::vector<int64_t> lengths;
  for (const Variable& p : parts) {
    nodes.push_back(p.node());
    lengths.push_back(p.value().dim(norm_axis));
  }
  return MakeOp("Concat", std::move(out), parts,
                [nodes, lengths, norm_axis](const Tensor& g) {
                  int64_t offset = 0;
                  for (size_t i = 0; i < nodes.size(); ++i) {
                    nodes[i]->AccumulateGrad(
                        t::SliceAxis(g, norm_axis, offset, lengths[i]));
                    offset += lengths[i];
                  }
                });
}

Variable SliceAxis(const Variable& a, int64_t axis, int64_t start,
                   int64_t length) {
  Tensor out = t::SliceAxis(a.value(), axis, start, length);
  int64_t nd = a.value().ndim();
  int64_t norm_axis = axis < 0 ? axis + nd : axis;
  auto an = a.node();
  return MakeOp("SliceAxis", std::move(out), {a},
                [an, norm_axis, start, length](const Tensor& g) {
                  // Scatter-add g back into the sliced region.
                  Tensor dx = Tensor::Zeros(an->value.shape());
                  int64_t outer = 1, mid = an->value.dim(norm_axis),
                          inner = 1;
                  for (int64_t i = 0; i < norm_axis; ++i) {
                    outer *= an->value.dim(i);
                  }
                  for (int64_t i = norm_axis + 1; i < an->value.ndim(); ++i) {
                    inner *= an->value.dim(i);
                  }
                  const float* pg = g.data();
                  float* pd = dx.data();
                  for (int64_t o = 0; o < outer; ++o) {
                    for (int64_t m = 0; m < length; ++m) {
                      const float* src = pg + (o * length + m) * inner;
                      float* dst = pd + (o * mid + start + m) * inner;
                      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
                    }
                  }
                  an->AccumulateGrad(dx);
                });
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Variable SumAll(const Variable& a) {
  Tensor out = Tensor::Scalar(t::SumAll(a.value()));
  auto an = a.node();
  return MakeOp("SumAll", std::move(out), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(Tensor::Full(an->value.shape(), g[0]));
  });
}

Variable MeanAll(const Variable& a) {
  float inv = 1.0f / static_cast<float>(a.value().numel());
  return MulScalar(SumAll(a), inv);
}

Variable SumAxisKeepdim(const Variable& a, int64_t axis) {
  Tensor out = t::SumAxis(a.value(), axis, /*keepdim=*/true);
  auto an = a.node();
  return MakeOp("SumAxisKeepdim", std::move(out), {a}, [an](const Tensor& g) {
    // Broadcast the reduced gradient back across the summed axis.
    an->AccumulateGrad(t::Add(Tensor::Zeros(an->value.shape()), g));
  });
}

Variable MeanAxisKeepdim(const Variable& a, int64_t axis) {
  int64_t norm_axis = axis < 0 ? axis + a.value().ndim() : axis;
  float inv = 1.0f / static_cast<float>(a.value().dim(norm_axis));
  return MulScalar(SumAxisKeepdim(a, axis), inv);
}

// ---------------------------------------------------------------------------
// Custom ops
// ---------------------------------------------------------------------------

Variable MakeCustomOp(const Tensor& value, const std::vector<Variable>& inputs,
                      std::function<void(const Tensor& grad_out)> backward) {
  return MakeOp("CustomOp", value, inputs, std::move(backward));
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

Variable MaskedMse(const Variable& pred, const Tensor& target,
                   const Tensor& mask) {
  PRISTI_CHECK(t::ShapesEqual(pred.value().shape(), target.shape()));
  PRISTI_CHECK(t::ShapesEqual(pred.value().shape(), mask.shape()));
  float denom = std::max(1.0f, t::SumAll(mask));
  Variable diff = Sub(pred, Constant(target));
  Variable masked = Mul(Square(diff), Constant(mask));
  return MulScalar(SumAll(masked), 1.0f / denom);
}

}  // namespace pristi::autograd
