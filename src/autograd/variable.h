#ifndef PRISTI_AUTOGRAD_VARIABLE_H_
#define PRISTI_AUTOGRAD_VARIABLE_H_

// Tape-based reverse-mode automatic differentiation.
//
// A `Variable` wraps a tensor value in a shared graph node. Operators in
// ops.h build the computation graph eagerly; calling `Backward()` on a
// scalar output propagates gradients to every reachable node that has
// `requires_grad` set. Gradients accumulate across calls until `ZeroGrad()`.
//
// The graph is dynamic (rebuilt every forward pass) which matches how the
// diffusion training loop works: each iteration samples a new diffusion step
// and mask, so no two iterations share a graph.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace pristi::autograd {

using tensor::Shape;
using tensor::Tensor;

// ---- Inference mode --------------------------------------------------------
// RAII scope that disables tape recording on the current thread. While at
// least one guard is alive, ops in ops.h produce graph-free nodes: no
// parent edges, no backward closures. Intermediate activations are then
// freed (returned to the tensor BufferPool) as soon as the last Variable
// referencing them goes out of scope, and Backward() through any value
// produced under the guard is a typed PRISTI_CHECK failure instead of a
// silent zero-gradient. Guards nest; recording resumes when the outermost
// guard is destroyed. The flag is thread-local, so worker threads' gradient
// recording is unaffected.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

// True when ops record the tape (no NoGradGuard alive on this thread).
bool GradModeEnabled();

class Variable;

// ---- Gradient capture ------------------------------------------------------
// RAII scope that redirects leaf-gradient accumulation on the current thread
// into caller-owned buffers, which is what lets several backward sweeps over
// the SAME parameters run concurrently (the shard-parallel trainer): each
// worker opens a scope over the model's parameters and its sweep writes into
// the worker's private buffers instead of the shared `Node::grad` fields.
//
// While a scope is alive on this thread:
//   * AccumulateGrad on a registered node adds into the paired buffer
//     (allocated zero-filled on first touch, so an empty buffer afterwards
//     means "this sweep never reached that parameter");
//   * AccumulateGrad on an UNREGISTERED pure constant — a leaf with
//     requires_grad == false, e.g. the graph-conv support matrices shared by
//     every worker — is dropped: its gradient is never read, and the
//     unsynchronized write into the shared node is exactly the data race the
//     scope exists to prevent;
//   * interior nodes (those with a backward closure) accumulate normally —
//     they are private to the sweep that built them.
//
// Scopes do not nest (checked) and must be destroyed on the thread that
// created them. `targets` and `buffers` must stay alive for the scope's
// lifetime and have equal lengths.
class GradCaptureScope {
 public:
  GradCaptureScope(const std::vector<Variable>& targets,
                   std::vector<Tensor>* buffers);
  ~GradCaptureScope();
  GradCaptureScope(const GradCaptureScope&) = delete;
  GradCaptureScope& operator=(const GradCaptureScope&) = delete;
};

namespace internal {

// One node of the autodiff tape.
struct Node {
  Tensor value;
  // Lazily allocated on first accumulation; empty until then.
  Tensor grad;
  bool requires_grad = false;
  // Name of the operator that produced this node ("leaf" for leaves); used
  // for NaN attribution and tape-misuse diagnostics.
  const char* op_name = "leaf";
  // Bumped on every mutable_value() write. Interior ops record their
  // parents' versions at build time (parent_versions), letting Backward()
  // detect backward-through-stale-tape: a parameter mutated between the
  // forward pass and the backward sweep.
  uint64_t value_version = 0;
  // Set once this node's backward closure has run; running it a second
  // time is double-backward misuse (the tape is single-shot per graph).
  bool backward_consumed = false;
  // Built under NoGradGuard: the op recorded no parents or closure, so
  // Backward() through this node is a usage error, reported as a typed
  // failure rather than silent zero gradients.
  bool inference_mode = false;
  // Parents retained both for topological ordering and lifetime.
  std::vector<std::shared_ptr<Node>> parents;
  // parents[i]'s value_version at graph-construction time.
  std::vector<uint64_t> parent_versions;
  // Accumulates `grad_out` (same shape as `value`) into the parents' grads.
  // Null for leaves.
  std::function<void(const Tensor& grad_out)> backward;

  // Adds `g` into this node's gradient buffer (allocating if needed).
  void AccumulateGrad(const Tensor& g);
};

}  // namespace internal

class Variable {
 public:
  // A null variable; `defined()` is false.
  Variable() = default;

  // Wraps `value` as a leaf (shares the tensor's storage; O(1)).
  explicit Variable(const Tensor& value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  // Mutable access for optimizer updates; only meaningful on leaves.
  Tensor& mutable_value();
  // The accumulated gradient; CHECK-fails if none was ever accumulated.
  const Tensor& grad() const;
  bool has_grad() const;
  bool requires_grad() const;

  const Shape& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }

  void ZeroGrad();

  // Reverse-mode sweep from this (scalar) output. Seeds d(out)/d(out) = 1,
  // visits the graph in reverse topological order.
  void Backward();

  // A new leaf sharing this variable's current value but cut from the tape.
  Variable Detach() const;

  std::shared_ptr<internal::Node> node() const { return node_; }

  // Used by ops.cc to construct interior nodes.
  static Variable FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

// Convenience: a constant (non-differentiable) variable.
Variable Constant(const Tensor& value);

}  // namespace pristi::autograd

#endif  // PRISTI_AUTOGRAD_VARIABLE_H_
