#ifndef PRISTI_AUTOGRAD_GRAD_CHECK_H_
#define PRISTI_AUTOGRAD_GRAD_CHECK_H_

// Finite-difference gradient verification, used by the property-based tests
// to certify every differentiable operator against central differences.

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace pristi::autograd {

struct GradCheckResult {
  bool ok = true;
  // Largest |analytic - numeric| over all checked coordinates.
  float max_abs_error = 0.0f;
  // Human-readable description of the first failure (if any).
  std::string message;
};

// Verifies d(scalar fn)/d(inputs) against central finite differences.
//
// `fn` must rebuild the graph from the given leaves on every call (the tape
// is dynamic). Each input is perturbed coordinate-wise by +/- `epsilon`.
// Tolerance is `atol + rtol * |numeric|` per coordinate.
GradCheckResult CheckGradients(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Tensor> input_values, float epsilon = 1e-3f,
    float atol = 2e-2f, float rtol = 5e-2f);

}  // namespace pristi::autograd

#endif  // PRISTI_AUTOGRAD_GRAD_CHECK_H_
