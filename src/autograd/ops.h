#ifndef PRISTI_AUTOGRAD_OPS_H_
#define PRISTI_AUTOGRAD_OPS_H_

// Differentiable operators over `Variable`.
//
// Every function builds the forward value eagerly with the kernels in
// tensor/tensor.h and registers a backward closure on the tape. If no input
// requires a gradient the graph edge is pruned, so constants (conditional
// information, masks) cost nothing at backward time.

#include <vector>

#include "autograd/variable.h"

namespace pristi::autograd {

// ---- Elementwise binary (NumPy broadcasting) ----------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// ---- Scalar / unary -------------------------------------------------------
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Square(const Variable& a);
Variable Relu(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
// Clamp to [lo, hi]; gradient is passed through inside the range and zero
// outside (subgradient convention).
Variable Clamp(const Variable& a, float lo, float hi);
// Elementwise select with a constant condition mask: cond ? a : b.
Variable Where(const Tensor& cond, const Variable& a, const Variable& b);

// ---- Matrix products ------------------------------------------------------
// The NT/TN variants read the transposed operand in place (tiled kernel
// layer, tensor/kernels/) — use them instead of composing with
// TransposeLast2, which would materialize a copy per call.
//
// (m,k) x (k,n).
Variable MatMul(const Variable& a, const Variable& b);
// (m,k) x (n,k)ᵀ — e.g. similarity scores against a row-major codebook.
Variable MatMulNT(const Variable& a, const Variable& b);
// (k,m)ᵀ x (k,n).
Variable MatMulTN(const Variable& a, const Variable& b);
// (..., m, k) x (..., k, n) with matching leading dims.
Variable BatchedMatMul(const Variable& a, const Variable& b);
// (..., m, k) x (..., n, k)ᵀ — e.g. attention scores Q·Kᵀ.
Variable BatchedMatMulNT(const Variable& a, const Variable& b);
// (..., k, m)ᵀ x (..., k, n).
Variable BatchedMatMulTN(const Variable& a, const Variable& b);
// scale * ((..., m, k) x (..., n, k)ᵀ) with the scale applied as an in-place
// epilogue on the product — bitwise the old MulScalar(BatchedMatMulNT(...))
// chain (same per-element rounding forward and backward) without the extra
// tensor allocation and tape node. The reference-path half of the attention
// scale fold; the fused kernel folds the scale into its Q-load instead.
Variable BatchedMatMulNTScaled(const Variable& a, const Variable& b,
                               float scale);
// Streaming fused attention: softmax(scale * q·kᵀ)·v over q(..., s_q, dh),
// k/v(..., s_k, dh) with matching leading dims, without materializing the
// (..., s_q, s_k) scores (tensor/kernels/attention.h). Saves the per-row
// logsumexp so the backward recomputes score blocks instead of storing
// softmax weights. Forward matches the reference chain to 1e-5 (online
// softmax reorders the reduction — NOT bitwise); the op itself is
// bit-identical across thread counts and runs.
Variable FusedAttention(const Variable& q, const Variable& k,
                        const Variable& v, float scale);
// Shared weight on the last axis: (..., k_in) x (k_in, k_out).
Variable MatMulLastDim(const Variable& x, const Variable& w);
// Shared matrix on the second-to-last ("node") axis:
// (rows_out, rows_in) x (..., rows_in, d).
Variable MatMulNodeDim(const Variable& p, const Variable& x);

// ---- Softmax / normalization ---------------------------------------------
Variable SoftmaxLastDim(const Variable& a);
// LayerNorm over the last axis with learnable affine (gamma, beta of shape
// [d]). `eps` stabilizes the variance.
Variable LayerNormLastDim(const Variable& x, const Variable& gamma,
                          const Variable& beta, float eps = 1e-5f);

// ---- Shape ------------------------------------------------------------------
Variable Reshape(const Variable& a, Shape new_shape);
Variable Permute(const Variable& a, const std::vector<int64_t>& perm);
Variable TransposeLast2(const Variable& a);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable SliceAxis(const Variable& a, int64_t axis, int64_t start,
                   int64_t length);

// ---- Reductions -------------------------------------------------------------
// Full reductions produce scalar-shaped variables (ndim 0).
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);
Variable SumAxisKeepdim(const Variable& a, int64_t axis);
Variable MeanAxisKeepdim(const Variable& a, int64_t axis);

// ---- Custom ops --------------------------------------------------------------
// Builds a differentiable node from a precomputed forward value and a
// backward closure (which must AccumulateGrad into the inputs' nodes).
// Escape hatch for ops with specialized kernels (e.g. sparse message
// passing) that do not warrant a dedicated operator here.
Variable MakeCustomOp(const Tensor& value, const std::vector<Variable>& inputs,
                      std::function<void(const Tensor& grad_out)> backward);

// ---- Composite losses -------------------------------------------------------
// sum(mask * (pred - target)^2) / max(sum(mask), 1). `target` and `mask` are
// treated as constants. This is the epsilon-prediction objective (Eq. 4)
// restricted to the imputation target.
Variable MaskedMse(const Variable& pred, const Tensor& target,
                   const Tensor& mask);

}  // namespace pristi::autograd

#endif  // PRISTI_AUTOGRAD_OPS_H_
