#include "autograd/variable.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace pristi::autograd {

namespace {

// Depth of nested NoGradGuards on this thread; ops record the tape only at
// depth zero.
thread_local int t_no_grad_depth = 0;

// The active GradCaptureScope's node -> buffer table for this thread (null
// when no scope is alive). Thread-local, so concurrent backward sweeps each
// see only their own capture table.
using CaptureMap =
    std::unordered_map<const internal::Node*, tensor::Tensor*>;
thread_local std::unique_ptr<const CaptureMap> t_capture;

}  // namespace

NoGradGuard::NoGradGuard() { ++t_no_grad_depth; }

NoGradGuard::~NoGradGuard() { --t_no_grad_depth; }

bool GradModeEnabled() { return t_no_grad_depth == 0; }

namespace internal {

void Node::AccumulateGrad(const Tensor& g) {
  PRISTI_CHECK(tensor::ShapesEqual(g.shape(), value.shape()))
      << "gradient shape " << tensor::ShapeToString(g.shape())
      << " does not match value shape "
      << tensor::ShapeToString(value.shape());
  if (t_capture != nullptr) {
    auto it = t_capture->find(this);
    if (it != t_capture->end()) {
      // Captured leaf: accumulate into the scope's private buffer instead
      // of the (shared) node. Lazy allocation doubles as the "touched by
      // this sweep" marker.
      Tensor* sink = it->second;
      if (sink->numel() != value.numel()) {
        *sink = Tensor::Zeros(value.shape());
      }
      sink->AddInPlace(g);
      return;
    }
    if (!requires_grad && backward == nullptr) {
      // Unregistered pure constant (e.g. a support matrix shared by every
      // concurrent sweep): its gradient is never consumed, and writing the
      // shared node from a capture scope would race with other workers.
      return;
    }
  }
  if (grad.numel() != value.numel()) {
    grad = Tensor::Zeros(value.shape());
  }
  grad.AddInPlace(g);
}

}  // namespace internal

namespace {

// Builds the node -> buffer table a scope installs. Kept out of the class so
// variable.h does not need <unordered_map>.
std::unique_ptr<const CaptureMap> MakeCapture(
    const std::vector<Variable>& targets, std::vector<Tensor>* buffers) {
  PRISTI_CHECK(buffers != nullptr);
  PRISTI_CHECK_EQ(targets.size(), buffers->size())
      << "GradCaptureScope: one buffer per target variable";
  PRISTI_CHECK(t_capture == nullptr)
      << "GradCaptureScope does not nest: a scope is already active on this "
         "thread";
  auto capture = std::make_unique<CaptureMap>();
  capture->reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    PRISTI_CHECK(targets[i].defined())
        << "GradCaptureScope target " << i << " is undefined";
    (*capture)[targets[i].node().get()] = &(*buffers)[i];
  }
  return capture;
}

}  // namespace

GradCaptureScope::GradCaptureScope(const std::vector<Variable>& targets,
                                   std::vector<Tensor>* buffers) {
  t_capture = MakeCapture(targets, buffers);
}

GradCaptureScope::~GradCaptureScope() { t_capture.reset(); }

Variable::Variable(const Tensor& value, bool requires_grad)
    : node_(std::make_shared<internal::Node>()) {
  node_->value = value;
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  PRISTI_CHECK(defined()) << "value() on undefined Variable";
  return node_->value;
}

Tensor& Variable::mutable_value() {
  PRISTI_CHECK(defined());
  // Any in-place write invalidates graphs built on the old value; bumping
  // the version lets Backward() flag backward-through-stale-tape.
  ++node_->value_version;
  return node_->value;
}

const Tensor& Variable::grad() const {
  PRISTI_CHECK(defined());
  PRISTI_CHECK(has_grad()) << "no gradient accumulated for this variable";
  return node_->grad;
}

bool Variable::has_grad() const {
  return defined() && node_->grad.numel() == node_->value.numel() &&
         node_->value.numel() > 0;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::ZeroGrad() {
  PRISTI_CHECK(defined());
  if (has_grad()) node_->grad.ZeroOut();
}

namespace {

// Iterative post-order DFS producing a topological order (parents before
// children in the returned vector; we replay it in reverse).
std::vector<internal::Node*> TopologicalOrder(internal::Node* root) {
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      internal::Node* parent = top.node->parents[top.next_parent].get();
      ++top.next_parent;
      if (parent != nullptr && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

void Variable::Backward() {
  PRISTI_CHECK(defined());
  PRISTI_CHECK(!node_->inference_mode)
      << "Backward() through op '" << node_->op_name
      << "' built under NoGradGuard: the forward pass recorded no tape "
         "(inference mode), so no gradients exist; rebuild the forward "
         "graph with gradients enabled";
  PRISTI_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar output, got shape "
      << tensor::ShapeToString(node_->value.shape());
  node_->AccumulateGrad(Tensor::Full(node_->value.shape(), 1.0f));
  std::vector<internal::Node*> order = TopologicalOrder(node_.get());
  // `order` is post-order: parents precede children; replay from the end so
  // each node's full gradient is available before its backward fires.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward && node->grad.numel() == node->value.numel()) {
      // Tape validation. A closure that already ran belongs to a previous
      // Backward() through this graph: gradients would double-count.
      PRISTI_CHECK(!node->backward_consumed)
          << "double backward through op '" << node->op_name
          << "': this graph already ran Backward(); rebuild the forward "
             "graph (the tape is single-shot) before calling it again";
      // A parent whose value changed since the forward pass (optimizer
      // step, checkpoint load, EMA swap) makes the recorded activations —
      // and therefore this gradient — stale.
      for (size_t i = 0; i < node->parent_versions.size(); ++i) {
        PRISTI_CHECK(node->parents[i]->value_version ==
                     node->parent_versions[i])
            << "backward through stale tape: input " << i << " of op '"
            << node->op_name << "' (shape "
            << tensor::ShapeToString(node->parents[i]->value.shape())
            << ") was modified via mutable_value() after the forward pass";
      }
      node->backward_consumed = true;
      node->backward(node->grad);
    }
  }
}

Variable Variable::Detach() const {
  PRISTI_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Constant(const Tensor& value) {
  return Variable(value, /*requires_grad=*/false);
}

}  // namespace pristi::autograd
