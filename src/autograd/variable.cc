#include "autograd/variable.h"

#include <unordered_set>

#include "common/logging.h"

namespace pristi::autograd {

namespace internal {

void Node::AccumulateGrad(const Tensor& g) {
  CHECK(tensor::ShapesEqual(g.shape(), value.shape()))
      << "gradient shape " << tensor::ShapeToString(g.shape())
      << " does not match value shape "
      << tensor::ShapeToString(value.shape());
  if (grad.numel() != value.numel()) {
    grad = Tensor::Zeros(value.shape());
  }
  grad.AddInPlace(g);
}

}  // namespace internal

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<internal::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  CHECK(defined()) << "value() on undefined Variable";
  return node_->value;
}

Tensor& Variable::mutable_value() {
  CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  CHECK(defined());
  CHECK(has_grad()) << "no gradient accumulated for this variable";
  return node_->grad;
}

bool Variable::has_grad() const {
  return defined() && node_->grad.numel() == node_->value.numel() &&
         node_->value.numel() > 0;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::ZeroGrad() {
  CHECK(defined());
  if (has_grad()) node_->grad.ZeroOut();
}

namespace {

// Iterative post-order DFS producing a topological order (parents before
// children in the returned vector; we replay it in reverse).
std::vector<internal::Node*> TopologicalOrder(internal::Node* root) {
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      internal::Node* parent = top.node->parents[top.next_parent].get();
      ++top.next_parent;
      if (parent != nullptr && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

void Variable::Backward() {
  CHECK(defined());
  CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar output, got shape "
      << tensor::ShapeToString(node_->value.shape());
  node_->AccumulateGrad(Tensor::Full(node_->value.shape(), 1.0f));
  std::vector<internal::Node*> order = TopologicalOrder(node_.get());
  // `order` is post-order: parents precede children; replay from the end so
  // each node's full gradient is available before its backward fires.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* node = *it;
    if (node->backward && node->grad.numel() == node->value.numel()) {
      node->backward(node->grad);
    }
  }
}

Variable Variable::Detach() const {
  CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

}  // namespace pristi::autograd
