#include "autograd/grad_check.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace pristi::autograd {

GradCheckResult CheckGradients(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Tensor> input_values, float epsilon, float atol, float rtol) {
  GradCheckResult result;

  // Analytic pass.
  std::vector<Variable> leaves;
  leaves.reserve(input_values.size());
  for (const Tensor& t : input_values) {
    leaves.emplace_back(t, /*requires_grad=*/true);
  }
  Variable out = fn(leaves);
  PRISTI_CHECK_EQ(out.value().numel(), 1) << "CheckGradients needs a scalar output";
  out.Backward();

  // Numeric pass, coordinate by coordinate.
  for (size_t vi = 0; vi < input_values.size(); ++vi) {
    const Tensor* analytic = nullptr;
    Tensor zero_grad;
    if (leaves[vi].has_grad()) {
      analytic = &leaves[vi].grad();
    } else {
      zero_grad = Tensor::Zeros(input_values[vi].shape());
      analytic = &zero_grad;
    }
    for (int64_t i = 0; i < input_values[vi].numel(); ++i) {
      auto eval_at = [&](float delta) {
        std::vector<Tensor> perturbed = input_values;
        perturbed[vi][i] += delta;
        std::vector<Variable> fresh;
        fresh.reserve(perturbed.size());
        for (const Tensor& t : perturbed) {
          fresh.emplace_back(t, /*requires_grad=*/false);
        }
        return fn(fresh).value()[0];
      };
      float plus = eval_at(epsilon);
      float minus = eval_at(-epsilon);
      float numeric = (plus - minus) / (2.0f * epsilon);
      float got = (*analytic)[i];
      float err = std::fabs(got - numeric);
      result.max_abs_error = std::max(result.max_abs_error, err);
      if (err > atol + rtol * std::fabs(numeric)) {
        result.ok = false;
        if (result.message.empty()) {
          std::ostringstream msg;
          msg << "input " << vi << " coord " << i << ": analytic " << got
              << " vs numeric " << numeric << " (err " << err << ")";
          result.message = msg.str();
        }
      }
    }
  }
  return result;
}

}  // namespace pristi::autograd
