#ifndef PRISTI_TENSOR_KERNELS_ATTENTION_H_
#define PRISTI_TENSOR_KERNELS_ATTENTION_H_

// Streaming fused scaled-dot-product attention (online softmax).
//
// The classic chain materializes the full (batch, s_q, s_k) score tensor
// three times over (Q·Kᵀ write, softmax read+write, context-GEMM read). At
// paper-full spatial shapes (325 nodes, 100 stacked samples) that score
// traffic dominates reverse-step memory bandwidth. The fused kernel tiles
// Q rows against kColTile-wide packed K column panels, maintains a running
// row max `m` and normalizer `l` (online softmax: when a kv block's max
// exceeds `m`, the partial normalizer and context accumulator are rescaled
// once by exp(m_old - m_new)), and accumulates the context output directly
// — no score tensor ever exists. The softmax weights use an in-kernel
// polynomial exp (Cephes-style 2^n·poly(r), < 1e-7 relative error) rather
// than libm, so the scalar path and the AVX2 whole-row path (dispatched for
// the paper head_dim 8) evaluate the exact same rounding chain. The per-row
// logsumexp is saved so the backward pass recomputes score blocks from the
// same packed panels instead of storing softmax weights.
//
// Determinism contract (weaker than the GEMM layer's, by necessity):
//   - fused vs reference is a TOLERANCE equivalence (max-abs-error <= 1e-5
//     on forward at model shapes), NOT bitwise: online softmax reorders the
//     softmax reduction and uses the polynomial exp.
//   - the fused path ITSELF is bit-identical across thread counts, parallel
//     partitions, SIMD dispatch and runs: every output row is one serial
//     sweep over its kv blocks (scores per block are independent per-column
//     chains in strictly increasing k; the block max, the single rescale,
//     the exp lanes, and the l/o accumulations run in fixed increasing
//     column order), each row is owned by exactly one ParallelFor worker,
//     the backward is batch-item-serial the same way, and the AVX2 row
//     kernel reproduces the scalar chains lane for lane. kColTile is an
//     algorithmic constant of the kernel, not a tuning knob — the recorded
//     fused golden pins its value.
//   - the reference chain (PRISTI_ATTN_FUSED=0 routes nn/attention.cc back
//     through BatchedMatMulNT -> SoftmaxLastDim -> BatchedMatMul) is
//     bitwise-unchanged from before this kernel existed, so all recorded
//     goldens pin the reference path.
//
// The 1/sqrt(head_dim) scale is folded into the Q-row load (one mul per
// q element instead of a full-tensor pass over the scores).
//
// K panels reuse the PR 5 pack cache: the forward packs K of each batch
// item into kColTile-wide k-major column panels (the PackBPanel format for
// a kTransposed operand) and inserts the buffer keyed on K's storage
// identity, so the backward's block recomputation — running while the
// autograd graph still pins K's storage version — hits instead of
// repacking. V is consumed row-contiguously and needs no packing.
//
// Environment knob (read once at first use; see src/common/env.h):
//   PRISTI_ATTN_FUSED=0  restore the materialized reference chain — the
//                        A/B baseline for AttentionBench and the path the
//                        training-loss goldens pin.

#include <cstdint>

#include "tensor/tensor.h"

namespace pristi::tensor::kernels {

// True unless PRISTI_ATTN_FUSED=0 selected the reference chain at startup.
bool FusedAttentionEnabled();

// Overrides the routing at runtime; returns the previous value. Test/bench
// hook (in-process A/B comparisons, pinning goldens to the reference path);
// production code reads the env knob through FusedAttentionEnabled() only.
bool SetFusedAttentionEnabled(bool enabled);

// Forward: out(batch, s_q, dh) = softmax(scale * Q·Kᵀ) · V with
// Q(batch, s_q, dh), K/V(batch, s_k, dh) row-major and batch the product of
// all leading dims (B*h for multi-head attention). `lse(batch, s_q)`
// receives the per-row logsumexp of the SCALED scores, the saved state the
// backward needs. `cache_k`, when non-null, must be the tensor whose data()
// backs `k`; its storage identity keys the packed K panels in the pack
// cache.
void FusedAttentionForward(int64_t batch, int64_t s_q, int64_t s_k,
                           int64_t dh, float scale, const float* q,
                           const float* k, const float* v, float* out,
                           float* lse, const Tensor* cache_k = nullptr);

// Backward by block recomputation: given the forward's saved `out` and
// `lse`, recomputes each score block from the packed K panels (pack-cache
// hit when `cache_k` identifies unchanged storage), reforms the softmax row
// p_j = exp(s_j - lse_i), and accumulates
//   dV[j]  += p_j * gO[i]
//   ds_j    = p_j * (gO[i]·V[j] - D_i),   D_i = gO[i]·out[i]
//   dK[j]  += ds_j * (scale * Q[i])
//   dQ[i]  += scale * sum_j ds_j * K[j]
// dq/dk/dv must be distinct from every input and are OVERWRITTEN (the
// kernel zeroes them). Batch-item-parallel, serial within an item.
void FusedAttentionBackward(int64_t batch, int64_t s_q, int64_t s_k,
                            int64_t dh, float scale, const float* q,
                            const float* k, const float* v, const float* out,
                            const float* lse, const float* grad_out,
                            float* dq, float* dk, float* dv,
                            const Tensor* cache_k = nullptr);

}  // namespace pristi::tensor::kernels

#endif  // PRISTI_TENSOR_KERNELS_ATTENTION_H_
