#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/parallel.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/pack_cache.h"

// The AVX micro-kernel below is compiled with a per-function target
// attribute and selected behind a runtime CPUID check, so the translation
// unit itself stays buildable for (and safe on) plain-SSE2 x86-64.
#if defined(__GNUC__) && defined(__x86_64__)
#define PRISTI_GEMM_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace pristi::tensor::kernels {
namespace {

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// op(A)(i, kk): kNormal reads the (m,k) buffer row-major, kTransposed reads
// the (k,m) buffer through its transpose.
inline float ReadA(Layout layout, const float* a, int64_t m, int64_t k,
                   int64_t i, int64_t kk) {
  return layout == Layout::kNormal ? a[i * k + kk] : a[kk * m + i];
}

// Reference i-k-j accumulation over rows [r0, r1) of C. This loop nest IS
// the bit-identity contract: every c[i][j] receives one `+= a*b` per kk, in
// increasing kk order, starting from whatever C held (the entry points hand
// it a zeroed C). The tiled path below reproduces exactly this chain.
void ReferenceGemmRows(Layout layout_a, Layout layout_b, int64_t m, int64_t n,
                       int64_t k, int64_t r0, int64_t r1, const float* a,
                       const float* b, float* c) {
  for (int64_t i = r0; i < r1; ++i) {
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = ReadA(layout_a, a, m, k, i, kk);
      if (layout_b == Layout::kNormal) {
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      } else {
        for (int64_t j = 0; j < n; ++j) crow[j] += av * b[j * k + kk];
      }
    }
  }
}

// Packs rows [i0, i0 + kRowTile) of op(A) into a k-major panel:
// dst[kk * kRowTile + r] = op(A)(i0 + r, kk), rows past m zero-padded.
void PackAPanel(Layout layout, int64_t m, int64_t k, const float* a,
                int64_t i0, float* dst) {
  const int64_t mr = std::min(kRowTile, m - i0);
  if (layout == Layout::kNormal) {
    for (int64_t kk = 0; kk < k; ++kk) {
      float* d = dst + kk * kRowTile;
      for (int64_t r = 0; r < mr; ++r) d[r] = a[(i0 + r) * k + kk];
      for (int64_t r = mr; r < kRowTile; ++r) d[r] = 0.0f;
    }
  } else {
    // Stored (k, m): logical row i0+r of Aᵀ is a contiguous run per kk.
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* src = a + kk * m + i0;
      float* d = dst + kk * kRowTile;
      for (int64_t r = 0; r < mr; ++r) d[r] = src[r];
      for (int64_t r = mr; r < kRowTile; ++r) d[r] = 0.0f;
    }
  }
}

// Packs columns [j0, j0 + kColTile) of op(B) into a k-major panel:
// dst[kk * kColTile + j] = op(B)(kk, j0 + j), columns past n zero-padded.
void PackBPanel(Layout layout, int64_t k, int64_t n, const float* b,
                int64_t j0, float* dst) {
  const int64_t nr = std::min(kColTile, n - j0);
  if (layout == Layout::kNormal) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* src = b + kk * n + j0;
      float* d = dst + kk * kColTile;
      for (int64_t j = 0; j < nr; ++j) d[j] = src[j];
      for (int64_t j = nr; j < kColTile; ++j) d[j] = 0.0f;
    }
  } else {
    // Stored (n, k): op(B)(kk, j) = b[(j0 + j) * k + kk] — the transpose
    // gather happens here, once per panel, instead of materializing Bᵀ.
    for (int64_t kk = 0; kk < k; ++kk) {
      float* d = dst + kk * kColTile;
      for (int64_t j = 0; j < nr; ++j) d[j] = b[(j0 + j) * k + kk];
      for (int64_t j = nr; j < kColTile; ++j) d[j] = 0.0f;
    }
  }
}

// Sizes a packing destination. The scratch vectors below are thread_local
// and the pool threads are persistent, so without a shrink a single huge
// activation GEMM would pin O(m*k + k*n) floats per worker for the rest of
// the process; drop the allocation first when it dwarfs the request (4x,
// above a 1 MiB floor so steady-state same-shape packing never thrashes).
void ResizeForPanel(std::vector<float>* out, int64_t floats) {
  constexpr size_t kShrinkFloorFloats = (size_t{1} << 20) / sizeof(float);
  const size_t want = static_cast<size_t>(floats);
  if (out->capacity() > kShrinkFloorFloats && out->capacity() / 4 > want) {
    std::vector<float>().swap(*out);
  }
  out->resize(want);
}

void PackAFull(Layout layout, int64_t m, int64_t k, const float* a,
               std::vector<float>* out) {
  const int64_t blocks = CeilDiv(m, kRowTile);
  ResizeForPanel(out, blocks * k * kRowTile);
  for (int64_t ib = 0; ib < blocks; ++ib) {
    PackAPanel(layout, m, k, a, ib * kRowTile,
               out->data() + ib * k * kRowTile);
  }
  Counters().panels_packed.fetch_add(static_cast<uint64_t>(blocks),
                                     std::memory_order_relaxed);
}

void PackBFull(Layout layout, int64_t k, int64_t n, const float* b,
               std::vector<float>* out) {
  const int64_t blocks = CeilDiv(n, kColTile);
  ResizeForPanel(out, blocks * k * kColTile);
  for (int64_t jb = 0; jb < blocks; ++jb) {
    PackBPanel(layout, k, n, b, jb * kColTile,
               out->data() + jb * k * kColTile);
  }
  Counters().panels_packed.fetch_add(static_cast<uint64_t>(blocks),
                                     std::memory_order_relaxed);
}

// kRowTile x kColTile register-tiled micro-kernel: one (row panel, column
// panel) pair across the FULL k extent — k is deliberately not blocked, so
// each accumulator slot carries a single increasing-kk chain of `+= a*b`,
// the exact chain ReferenceGemmRows produces. Zero-padded panel slots only
// feed accumulator lanes that are never stored (r >= mr or j >= nr).
//
// The store is `c +=`: every chain starts at the accumulator's +0.0, and a
// sum seeded with +0.0 can never round to -0.0, so on the zeroed C the
// entry points provide, `0.0f + acc` is bitwise `acc` — identical to the
// reference accumulating into C directly.
//
// Two implementations of the same chain:
//  * MicroKernelAvx — 8 ymm accumulators via AVX intrinsics. Deliberately
//    mul_ps + add_ps, never an FMA: a fused multiply-add rounds once where
//    the contract rounds twice, so FMA would break bit-identity. Each SIMD
//    lane is one independent c[i][j] chain — vector width changes nothing
//    about per-element arithmetic order. NOTE: writing separate intrinsics
//    is not sufficient by itself — the compiler inlines this function into
//    -march=native callers and, under -ffp-contract=fast/on, re-fuses the
//    mul/add pairs (and contracts the scalar loops above) into FMAs. The
//    build therefore sets -ffp-contract=off globally (CMakeLists.txt), and
//    tensor_test's NoFusedMultiplyAdd canary pins the double rounding.
//  * MicroKernelGeneric — walks the 16-wide panel in two 8-wide halves so
//    the 4x8 accumulator fits the 16 xmm registers of baseline SSE2 (a
//    4x16 float accumulator spills, measured 4x slower than reference).
//    Each half walks the full k extent, so per-element chains are again
//    untouched.

void MicroKernelGeneric(int64_t k, const float* ap, const float* bp,
                        int64_t mr, int64_t nr, float* c, int64_t ldc) {
  constexpr int64_t kHalf = kColTile / 2;
  for (int64_t h = 0; h < kColTile; h += kHalf) {
    float acc[kRowTile][kHalf] = {};
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* arow = ap + kk * kRowTile;
      const float* brow = bp + kk * kColTile + h;
      for (int64_t r = 0; r < kRowTile; ++r) {
        const float av = arow[r];
        for (int64_t j = 0; j < kHalf; ++j) acc[r][j] += av * brow[j];
      }
    }
    const int64_t nh = std::min(nr - h, kHalf);
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc + h;
      for (int64_t j = 0; j < nh; ++j) crow[j] += acc[r][j];
    }
  }
}

#ifdef PRISTI_GEMM_X86_DISPATCH
static_assert(kRowTile == 4 && kColTile == 16,
              "MicroKernelAvx hard-codes the 4x16 tile");

__attribute__((target("avx"))) void MicroKernelAvx(int64_t k, const float* ap,
                                                   const float* bp, int64_t mr,
                                                   int64_t nr, float* c,
                                                   int64_t ldc) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = ap + kk * kRowTile;
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kColTile);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kColTile + 8);
    const __m256 a0 = _mm256_broadcast_ss(arow + 0);
    acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(a0, b0));
    acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(a0, b1));
    const __m256 a1 = _mm256_broadcast_ss(arow + 1);
    acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(a1, b0));
    acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(a1, b1));
    const __m256 a2 = _mm256_broadcast_ss(arow + 2);
    acc20 = _mm256_add_ps(acc20, _mm256_mul_ps(a2, b0));
    acc21 = _mm256_add_ps(acc21, _mm256_mul_ps(a2, b1));
    const __m256 a3 = _mm256_broadcast_ss(arow + 3);
    acc30 = _mm256_add_ps(acc30, _mm256_mul_ps(a3, b0));
    acc31 = _mm256_add_ps(acc31, _mm256_mul_ps(a3, b1));
  }
  float acc[kRowTile][kColTile];
  _mm256_storeu_ps(&acc[0][0], acc00);
  _mm256_storeu_ps(&acc[0][8], acc01);
  _mm256_storeu_ps(&acc[1][0], acc10);
  _mm256_storeu_ps(&acc[1][8], acc11);
  _mm256_storeu_ps(&acc[2][0], acc20);
  _mm256_storeu_ps(&acc[2][8], acc21);
  _mm256_storeu_ps(&acc[3][0], acc30);
  _mm256_storeu_ps(&acc[3][8], acc31);
  for (int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

bool CpuHasAvx() {
  static const bool has = __builtin_cpu_supports("avx") != 0;
  return has;
}
#endif  // PRISTI_GEMM_X86_DISPATCH

inline void MicroKernel(int64_t k, const float* ap, const float* bp,
                        int64_t mr, int64_t nr, float* c, int64_t ldc) {
#ifdef PRISTI_GEMM_X86_DISPATCH
  if (CpuHasAvx()) {
    MicroKernelAvx(k, ap, bp, mr, nr, c, ldc);
    return;
  }
#endif
  MicroKernelGeneric(k, ap, bp, mr, nr, c, ldc);
}

// Serial tiled compute over row blocks [b0, b1) given fully packed panels.
void TiledCompute(int64_t b0, int64_t b1, int64_t m, int64_t n, int64_t k,
                  const float* ap, const float* bp, float* c) {
  const int64_t col_blocks = CeilDiv(n, kColTile);
  for (int64_t ib = b0; ib < b1; ++ib) {
    const int64_t i0 = ib * kRowTile;
    const int64_t mr = std::min(kRowTile, m - i0);
    const float* a_panel = ap + ib * k * kRowTile;
    for (int64_t jb = 0; jb < col_blocks; ++jb) {
      const int64_t j0 = jb * kColTile;
      MicroKernel(k, a_panel, bp + jb * k * kColTile, mr,
                  std::min(kColTile, n - j0), c + i0 * n + j0, n);
    }
  }
}

// Produces the packed panel for one operand: served from the pack cache
// when `cache_t` identifies a cacheable tensor, packed into `scratch`
// otherwise. `raw` must be the same bytes `cache_t` reads (its const
// data()). Exactly one of *hold / *scratch backs the returned pointer.
const float* AcquirePanel(char operand, Layout layout, int64_t rows,
                          int64_t cols, const float* raw,
                          const Tensor* cache_t, PackedPanel* hold,
                          std::vector<float>* scratch) {
  const bool cacheable = cache_t != nullptr && cache_t->storage_id() != 0 &&
                         PackCacheEnabled();
  if (cacheable) {
    PackKey key;
    key.storage_id = cache_t->storage_id();
    key.offset = cache_t->storage_offset();
    key.rows = rows;
    key.cols = cols;
    key.layout = layout;
    key.operand = operand;
    const uint64_t version = cache_t->storage_version();
    *hold = PackCacheLookup(key, version);
    if (*hold == nullptr) {
      auto panel = std::make_shared<std::vector<float>>();
      if (operand == 'A') {
        PackAFull(layout, rows, cols, raw, panel.get());
      } else {
        PackBFull(layout, rows, cols, raw, panel.get());
      }
      *hold = std::move(panel);
      PackCacheInsert(key, version, *hold);
    }
    return (*hold)->data();
  }
  if (operand == 'A') {
    PackAFull(layout, rows, cols, raw, scratch);
  } else {
    PackBFull(layout, rows, cols, raw, scratch);
  }
  return scratch->data();
}

// ParallelFor min_chunk so every worker gets at least kMinFlopsPerChunk
// multiply-add flops (`unit_flops` = flops per loop index).
int64_t MinChunkFor(int64_t unit_flops) {
  return std::max<int64_t>(
      1, pristi::kMinFlopsPerChunk / std::max<int64_t>(1, unit_flops));
}


}  // namespace

KernelStats GetKernelStats() {
  const KernelCounters& c = Counters();
  KernelStats s;
  s.gemm_calls = c.gemm_calls.load(std::memory_order_relaxed);
  s.flops = c.flops.load(std::memory_order_relaxed);
  s.panels_packed = c.panels_packed.load(std::memory_order_relaxed);
  s.pack_cache_hits = c.pack_cache_hits.load(std::memory_order_relaxed);
  s.pack_cache_misses = c.pack_cache_misses.load(std::memory_order_relaxed);
  s.pack_cache_bytes = c.pack_cache_bytes.load(std::memory_order_relaxed);
  s.fused_attn_rows = c.fused_attn_rows.load(std::memory_order_relaxed);
  s.fused_attn_kv_blocks =
      c.fused_attn_kv_blocks.load(std::memory_order_relaxed);
  s.fused_attn_bytes_avoided =
      c.fused_attn_bytes_avoided.load(std::memory_order_relaxed);
  return s;
}

bool TiledGemmEnabled() {
  static const bool enabled = GetEnvIntOr("PRISTI_GEMM_TILE", 1) != 0;
  return enabled;
}

void ReferenceGemm(Layout layout_a, Layout layout_b, int64_t m, int64_t n,
                   int64_t k, const float* a, const float* b, float* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  ReferenceGemmRows(layout_a, layout_b, m, n, k, 0, m, a, b, c);
}

void Gemm(Layout layout_a, Layout layout_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, const Tensor* cache_a,
          const Tensor* cache_b) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  KernelCounters& ctr = Counters();
  ctr.gemm_calls.fetch_add(1, std::memory_order_relaxed);
  ctr.flops.fetch_add(2ull * static_cast<uint64_t>(m) *
                          static_cast<uint64_t>(n) * static_cast<uint64_t>(k),
                      std::memory_order_relaxed);

  if (!TiledGemmEnabled()) {
    pristi::ParallelFor(
        0, m,
        [&](int64_t r0, int64_t r1) {
          ReferenceGemmRows(layout_a, layout_b, m, n, k, r0, r1, a, b, c);
        },
        MinChunkFor(2 * n * k));
    return;
  }

  // Packing runs once on the calling thread; workers then own disjoint row
  // blocks of C, so bit-identity holds at any thread count.
  PackedPanel a_hold, b_hold;
  thread_local std::vector<float> a_scratch;
  thread_local std::vector<float> b_scratch;
  const float* ap =
      AcquirePanel('A', layout_a, m, k, a, cache_a, &a_hold, &a_scratch);
  const float* bp =
      AcquirePanel('B', layout_b, k, n, b, cache_b, &b_hold, &b_scratch);

  const int64_t row_blocks = CeilDiv(m, kRowTile);
  pristi::ParallelFor(
      0, row_blocks,
      [&](int64_t b0, int64_t b1) { TiledCompute(b0, b1, m, n, k, ap, bp, c); },
      MinChunkFor(2 * kRowTile * n * k));
}

void BatchedGemm(Layout layout_a, Layout layout_b, int64_t batch, int64_t m,
                 int64_t n, int64_t k, const float* a, int64_t stride_a,
                 const float* b, int64_t stride_b, float* c,
                 const Tensor* cache_a) {
  if (batch <= 0 || m <= 0 || n <= 0 || k <= 0) return;
  KernelCounters& ctr = Counters();
  ctr.gemm_calls.fetch_add(1, std::memory_order_relaxed);
  ctr.flops.fetch_add(2ull * static_cast<uint64_t>(batch) *
                          static_cast<uint64_t>(m) * static_cast<uint64_t>(n) *
                          static_cast<uint64_t>(k),
                      std::memory_order_relaxed);
  const int64_t item_flops = 2 * m * n * k;

  if (!TiledGemmEnabled()) {
    pristi::ParallelFor(
        0, batch,
        [&](int64_t b0, int64_t b1) {
          for (int64_t bi = b0; bi < b1; ++bi) {
            ReferenceGemmRows(layout_a, layout_b, m, n, k, 0, m,
                              a + bi * stride_a, b + bi * stride_b,
                              c + bi * m * n);
          }
        },
        MinChunkFor(item_flops));
    return;
  }

  // A broadcast across the batch (stride 0) packs once up front — from the
  // cache when the caller identified the operand — and is shared read-only
  // by every worker.
  PackedPanel a_hold;
  std::vector<float> a_shared;
  const float* shared_ap = nullptr;
  if (stride_a == 0) {
    shared_ap = AcquirePanel('A', layout_a, m, k, a,
                             cache_a, &a_hold, &a_shared);
  }

  const int64_t row_blocks = CeilDiv(m, kRowTile);
  pristi::ParallelFor(
      0, batch,
      [&](int64_t b0, int64_t b1) {
        thread_local std::vector<float> a_scratch;
        thread_local std::vector<float> b_scratch;
        for (int64_t bi = b0; bi < b1; ++bi) {
          const float* ap = shared_ap;
          if (ap == nullptr) {
            PackAFull(layout_a, m, k, a + bi * stride_a, &a_scratch);
            ap = a_scratch.data();
          }
          PackBFull(layout_b, k, n, b + bi * stride_b, &b_scratch);
          TiledCompute(0, row_blocks, m, n, k, ap, b_scratch.data(),
                       c + bi * m * n);
        }
      },
      MinChunkFor(item_flops));
}

}  // namespace pristi::tensor::kernels
