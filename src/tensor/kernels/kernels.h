#ifndef PRISTI_TENSOR_KERNELS_KERNELS_H_
#define PRISTI_TENSOR_KERNELS_KERNELS_H_

// Tiled SGEMM kernel layer.
//
// Every MatMul-family entry point in tensor/tensor.h bottoms out here. The
// layer provides one register-tiled (kRowTile x kColTile accumulator
// block), panel-packed micro-kernel with four logical layouts (NN/NT/TN —
// TT never occurs in this codebase) and a batched driver, plus a retained
// reference kernel for exact-equality testing and the PRISTI_GEMM_TILE=0
// fallback.
//
// Bit-identity contract: for every output element c[i][j], ALL kernels
// perform the same scalar chain
//     c = (((0 + a(i,0)*b(0,j)) + a(i,1)*b(1,j)) + ...)
// in strictly increasing k order — each product rounded, then the add
// rounded, never a fused multiply-add (the AVX variant in sgemm.cc uses
// explicit mul_ps/add_ps, and the build compiles everything with
// -ffp-contract=off so no config re-fuses them). Tiling and SIMD width
// only change which independent chains advance together, and packing only
// changes where operand bytes are read from, so the tiled kernels (AVX or
// generic, selected by runtime CPUID) are bit-identical to the reference
// i-k-j kernel — and therefore to every golden produced before this layer
// existed — at any thread count, with packing on or off.
//
// Packing: B is packed into kColTile-wide column panels (k-major, zero-
// padded tail columns) and A into kRowTile-wide row panels (k-major,
// zero-padded tail rows), so the micro-kernel reads both operands
// contiguously regardless of layout; the NT/TN gather happens once at pack
// time instead of materializing a TransposeLast2 copy per call. Panels for
// long-lived operands (Linear / Conv1x1 weights, graph-conv supports) are
// cached across calls, keyed on (storage id, version, offset, dims): the
// cache is consulted by MatMulLastDim[T] / MatMulNodeDim[T], hit as long
// as the weight is unchanged, and invalidated automatically because any
// mutating access bumps the storage version (tensor.h). See pack_cache.cc.
//
// Parallelism: a single GEMM is row-parallel (each worker owns whole rows
// of C; chunking derives from pristi::kMinFlopsPerChunk), batched GEMMs
// are batch-parallel with a serial kernel per item. Both partitions keep
// each output element on exactly one thread, preserving bit-identity.
//
// Environment knobs (read once at first use; see src/common/env.h):
//   PRISTI_GEMM_TILE=0      route everything through the reference kernel
//                           (A/B read in place, no packing) — the A/B
//                           baseline for KernelBench.
//   PRISTI_PACK_CACHE_MB=N  cap on resident packed panels (default 64);
//                           0 disables the cache (panels pack per call).

#include <cstdint>

#include "tensor/tensor.h"

namespace pristi::tensor::kernels {

// Register-tile footprint of the micro-kernel: kRowTile rows of A against
// kColTile columns of B accumulate in registers across the full k extent.
inline constexpr int64_t kRowTile = 4;
inline constexpr int64_t kColTile = 16;

// How an operand is stored relative to its logical role in C += A·B.
//   A: kNormal = (m,k) row-major, kTransposed = stored (k,m), read as Aᵀ.
//   B: kNormal = (k,n) row-major, kTransposed = stored (n,k), read as Bᵀ.
enum class Layout { kNormal, kTransposed };

// Cumulative counters since process start (all monotonic; benches report
// phase deltas). `flops` counts 2*m*n*k per GEMM; `pack_cache_bytes` is the
// current resident size, not a cumulative sum.
struct KernelStats {
  uint64_t gemm_calls = 0;         // Gemm + BatchedGemm invocations
  uint64_t flops = 0;              // multiply-add flops issued (2*m*n*k)
  uint64_t panels_packed = 0;      // A/B panels packed (scratch or cache)
  uint64_t pack_cache_hits = 0;    // panel served from the cache
  uint64_t pack_cache_misses = 0;  // packed fresh (includes stale versions)
  uint64_t pack_cache_bytes = 0;   // bytes currently resident in the cache
  // Fused-attention kernel (tensor/kernels/attention.cc): output rows
  // streamed, kv column blocks visited (forward + backward recompute), and
  // score/softmax bytes NOT materialized relative to the reference chain.
  uint64_t fused_attn_rows = 0;
  uint64_t fused_attn_kv_blocks = 0;
  uint64_t fused_attn_bytes_avoided = 0;

  double PackCacheHitRate() const {
    uint64_t lookups = pack_cache_hits + pack_cache_misses;
    return lookups > 0
               ? static_cast<double>(pack_cache_hits) /
                     static_cast<double>(lookups)
               : 0.0;
  }
};

KernelStats GetKernelStats();

// True unless PRISTI_GEMM_TILE=0 selected the reference path at startup.
bool TiledGemmEnabled();

// Reference kernel: C += op(A)·op(B) with the plain i-k-j loop, operands
// read in place (strided when transposed). Serial; retained as the
// bit-identity oracle for tests and the PRISTI_GEMM_TILE=0 fallback.
void ReferenceGemm(Layout layout_a, Layout layout_b, int64_t m, int64_t n,
                   int64_t k, const float* a, const float* b, float* c);

// Single GEMM: C(m,n) += op(A)(m,k) · op(B)(k,n), row-parallel on the
// persistent pool. `cache_a` / `cache_b`, when non-null, must be the tensor
// whose data() backs the corresponding raw pointer; its storage identity
// keys the pack cache so the packed panel is reused across calls. Pass
// nullptr for operands that change every call (activations, gradients).
void Gemm(Layout layout_a, Layout layout_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c,
          const Tensor* cache_a = nullptr, const Tensor* cache_b = nullptr);

// Batched GEMM: batch independent products with element strides between
// consecutive items (stride 0 broadcasts the operand across the batch, the
// MatMulNodeDim case). Batch-parallel; each item runs the serial tiled
// kernel. `cache_a` is honored only with stride_a == 0 (a shared A panel).
void BatchedGemm(Layout layout_a, Layout layout_b, int64_t batch, int64_t m,
                 int64_t n, int64_t k, const float* a, int64_t stride_a,
                 const float* b, int64_t stride_b, float* c,
                 const Tensor* cache_a = nullptr);

}  // namespace pristi::tensor::kernels

#endif  // PRISTI_TENSOR_KERNELS_KERNELS_H_
