#ifndef PRISTI_TENSOR_KERNELS_PACK_CACHE_H_
#define PRISTI_TENSOR_KERNELS_PACK_CACHE_H_

// Internal interface between the tiled SGEMM driver (sgemm.cc) and the
// packed-panel cache (pack_cache.cc). Not part of the public kernel API —
// include tensor/kernels/kernels.h instead.
//
// The cache maps a panel identity — which storage bytes, which layout,
// which panel format — to the packed float buffer produced from them. The
// storage version is NOT part of the map key: it is stored in the entry and
// checked on lookup, so a mutated weight misses once, repacks, and replaces
// its own stale entry in place instead of leaking one dead panel per
// optimizer step.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/kernels/kernels.h"

namespace pristi::tensor::kernels {

// Process-wide atomic counters behind GetKernelStats(). Shared by sgemm.cc
// (calls/flops/packs) and pack_cache.cc (hits/misses/bytes).
struct KernelCounters {
  std::atomic<uint64_t> gemm_calls{0};
  std::atomic<uint64_t> flops{0};
  std::atomic<uint64_t> panels_packed{0};
  std::atomic<uint64_t> pack_cache_hits{0};
  std::atomic<uint64_t> pack_cache_misses{0};
  std::atomic<uint64_t> pack_cache_bytes{0};
  std::atomic<uint64_t> fused_attn_rows{0};
  std::atomic<uint64_t> fused_attn_kv_blocks{0};
  std::atomic<uint64_t> fused_attn_bytes_avoided{0};
};

KernelCounters& Counters();

// Identity of a packed panel: which bytes (storage id + element offset),
// read how (layout), packed into which format (operand 'A' = kRowTile-
// interleaved row panels, 'B' = kColTile-interleaved column panels), with
// which logical dims (rows/cols of the STORED matrix as the kernel sees it:
// m x k for A, k x n for B).
struct PackKey {
  uint64_t storage_id = 0;
  int64_t offset = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  Layout layout = Layout::kNormal;
  char operand = 'B';
};

// Panels are immutable once packed and shared by reference, so an evicted
// entry stays valid for any GEMM still holding it.
using PackedPanel = std::shared_ptr<const std::vector<float>>;

// False when PRISTI_PACK_CACHE_MB=0 disabled caching at process start.
bool PackCacheEnabled();

// Returns the cached panel iff an entry with this identity exists AND was
// packed from the given storage version; counts a hit/miss either way.
PackedPanel PackCacheLookup(const PackKey& key, uint64_t version);

// Installs (or replaces, if the identity already exists at an older
// version) a freshly packed panel, then evicts least-recently-used entries
// until the byte cap holds.
void PackCacheInsert(const PackKey& key, uint64_t version, PackedPanel panel);

// Drops every entry (counters keep accumulating). Test hook.
void PackCacheClear();

// Storage-destruction hook (called by ~Storage): drops every entry packed
// from this storage id. Ids are process-unique, so such entries can never
// hit again — without this, panels of short-lived cacheable tensors would
// sit resident until LRU pressure evicted them, pushing live weight panels
// out of the byte cap. Cheap for the common (never-cached) storage: an
// atomic emptiness check, then one hash probe under the lock.
void PackCacheOnStorageDestroyed(uint64_t storage_id);

}  // namespace pristi::tensor::kernels

#endif  // PRISTI_TENSOR_KERNELS_PACK_CACHE_H_
