#include "tensor/kernels/attention.h"

#include <immintrin.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/parallel.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/pack_cache.h"

namespace pristi::tensor::kernels {

namespace {

// Head dims in this codebase are channels/heads (4 quick, 8 paper); the cap
// only bounds the per-row stack scratch below.
constexpr int64_t kMaxHeadDim = 128;

// Panels per item and floats per item for the packed-K layout: kColTile-wide
// k-major column panels, zero-padded tail columns (the PackBPanel format of
// a kTransposed operand, K stored (s_k, dh) and read as Kᵀ).
int64_t PanelsPerItem(int64_t s_k) { return (s_k + kColTile - 1) / kColTile; }
int64_t FloatsPerItem(int64_t s_k, int64_t dh) {
  return PanelsPerItem(s_k) * dh * kColTile;
}

// Packs item `item` of K(batch, s_k, dh) into `dst` (FloatsPerItem floats):
// panel j0 holds, for each kk, the kColTile contiguous values K[j0+j, kk].
// A gather only — no arithmetic, so layout can never change results.
void PackKItem(const float* k_item, int64_t s_k, int64_t dh, float* dst) {
  for (int64_t j0 = 0; j0 < s_k; j0 += kColTile) {
    int64_t width = std::min<int64_t>(kColTile, s_k - j0);
    float* panel = dst + (j0 / kColTile) * (dh * kColTile);
    for (int64_t kk = 0; kk < dh; ++kk) {
      float* d = panel + kk * kColTile;
      const float* col = k_item + j0 * dh + kk;
      for (int64_t j = 0; j < width; ++j) d[j] = col[j * dh];
      for (int64_t j = width; j < kColTile; ++j) d[j] = 0.0f;
    }
  }
}

// Packs all batch items of K, consulting the pack cache when `cache_k`
// identifies cacheable storage: the forward inserts, and the backward's
// block recomputation — running while the autograd graph still pins K —
// hits instead of repacking. Returns the shared buffer; `*scratch` keeps a
// non-cached pack alive for the caller's duration.
const float* AcquireKPanels(int64_t batch, int64_t s_k, int64_t dh,
                            const float* k, const Tensor* cache_k,
                            PackedPanel* scratch) {
  int64_t per_item = FloatsPerItem(s_k, dh);
  int64_t total = batch * per_item;
  bool cacheable = cache_k != nullptr && cache_k->storage_id() != 0 &&
                   PackCacheEnabled();
  PackKey key;
  if (cacheable) {
    key.storage_id = cache_k->storage_id();
    key.offset = cache_k->storage_offset();
    key.rows = batch * s_k;
    key.cols = dh;
    key.layout = Layout::kTransposed;
    key.operand = 'K';
    PackedPanel hit = PackCacheLookup(key, cache_k->storage_version());
    if (hit != nullptr) {
      *scratch = hit;
      return hit->data();
    }
  }
  auto packed = std::make_shared<std::vector<float>>(
      static_cast<size_t>(total));
  float* dst = packed->data();
  // Item-parallel gather into the preallocated buffer (disjoint slices).
  ParallelFor(0, batch, [&](int64_t lo, int64_t hi) {
    for (int64_t item = lo; item < hi; ++item) {
      PackKItem(k + item * s_k * dh, s_k, dh, dst + item * per_item);
    }
  });
  Counters().panels_packed.fetch_add(
      static_cast<uint64_t>(batch * PanelsPerItem(s_k)),
      std::memory_order_relaxed);
  PackedPanel shared = std::move(packed);
  if (cacheable) PackCacheInsert(key, cache_k->storage_version(), shared);
  *scratch = shared;
  return shared->data();
}

// One score block: s[j] = sum_kk qs[kk] * panel[kk*kColTile + j] for
// `width` columns. Each column is an independent chain in strictly
// increasing kk with the multiply and the add rounded separately — the same
// scalar chain the reference GEMM performs — so the values are identical
// for any block width, and the lanes auto-vectorize without reordering.
// [fp-blessed] in tools/analysis/layers.manifest.
void FusedScoreBlock(const float* qs, const float* panel, int64_t dh,
                     float* s) {
  for (int64_t j = 0; j < kColTile; ++j) s[j] = 0.0f;
  for (int64_t kk = 0; kk < dh; ++kk) {
    const float qv = qs[kk];
    const float* p = panel + kk * kColTile;
    for (int64_t j = 0; j < kColTile; ++j) s[j] += qv * p[j];
  }
}

// ---- Polynomial exp ------------------------------------------------------
// exp(x) for the softmax weights: 2^n * poly(r) with x = n*ln2 + r and a
// degree-5 minimax polynomial on [-ln2/2, ln2/2] (the classic Cephes expf
// scheme), clamped below at -87 so the 2^n scaling never leaves the normal
// range. Relative error is < 1e-7, far inside the 1e-5 fused-vs-reference
// forward contract. The point of owning the polynomial instead of calling
// libm: the identical mul/add chain is evaluated per lane by the AVX2 row
// kernel below and per element by the scalar path, making the two dispatch
// paths BIT-IDENTICAL — something no libm expf guarantees — and the vector
// form costs ~1 ns/element where a libm call in a register-heavy loop
// costs ~10.
// Symmetric clamp: softmax arguments are <= ~0, so the upper bound only
// guards the discarded zero-padded tail lanes (whose argument is -m and can
// be large) from overflowing the 2^n exponent shift.
constexpr float kExpClamp = 87.0f;
constexpr float kLog2E = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC5 = 1.9875691500e-4f;
constexpr float kExpC4 = 1.3981999507e-3f;
constexpr float kExpC3 = 8.3334519073e-3f;
constexpr float kExpC2 = 4.1665795894e-2f;
constexpr float kExpC1 = 1.6666665459e-1f;
constexpr float kExpC0 = 5.0000001201e-1f;

float FusedExp(float x) {
  x = std::min(std::max(x, -kExpClamp), kExpClamp);
  float nf = std::floor(x * kLog2E + 0.5f);
  float r = x - nf * kLn2Hi;
  r = r - nf * kLn2Lo;
  float p = kExpC5;
  p = p * r + kExpC4;
  p = p * r + kExpC3;
  p = p * r + kExpC2;
  p = p * r + kExpC1;
  p = p * r + kExpC0;
  p = p * r * r + r + 1.0f;
  int32_t bits;
  std::memcpy(&bits, &p, sizeof(bits));
  bits += static_cast<int32_t>(nf) << 23;
  float y;
  std::memcpy(&y, &bits, sizeof(y));
  return y;
}

#if defined(__x86_64__) || defined(__i386__)
#define PRISTI_ATTN_HAVE_AVX2 1

// Lane-for-lane the same operations as FusedExp: max, floor (rounds down,
// exactly _MM_FROUND_TO_NEG_INF), then the same mul/add chain — never an
// FMA, which would round once where the contract rounds twice.
__attribute__((target("avx2"))) inline __m256 FusedExpAvx8(__m256 x) {
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-kExpClamp)),
                    _mm256_set1_ps(kExpClamp));
  __m256 t = _mm256_mul_ps(x, _mm256_set1_ps(kLog2E));
  __m256 nf = _mm256_round_ps(_mm256_add_ps(t, _mm256_set1_ps(0.5f)),
                              _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_sub_ps(x, _mm256_mul_ps(nf, _mm256_set1_ps(kLn2Hi)));
  r = _mm256_sub_ps(r, _mm256_mul_ps(nf, _mm256_set1_ps(kLn2Lo)));
  __m256 p = _mm256_set1_ps(kExpC5);
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC4));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC3));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC2));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC1));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC0));
  p = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, r), r), r),
                    _mm256_set1_ps(1.0f));
  __m256i n = _mm256_cvtps_epi32(nf);
  return _mm256_castsi256_ps(
      _mm256_add_epi32(_mm256_castps_si256(p), _mm256_slli_epi32(n, 23)));
}

// One packed kv block of softmax weights for the backward recompute.
__attribute__((target("avx2"))) void FusedExpBlockAvx(const float* x,
                                                      float* y) {
  static_assert(kColTile == 16, "two 8-lane halves per block");
  _mm256_storeu_ps(y, FusedExpAvx8(_mm256_loadu_ps(x)));
  _mm256_storeu_ps(y + 8, FusedExpAvx8(_mm256_loadu_ps(x + 8)));
}

bool Avx2Available() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#else
#define PRISTI_ATTN_HAVE_AVX2 0
bool Avx2Available() { return false; }
#endif

// Softmax weights for one kv block: y[j] = FusedExp(x[j]).
void FusedExpBlock(const float* x, float* y) {
#if PRISTI_ATTN_HAVE_AVX2
  if (Avx2Available()) {
    FusedExpBlockAvx(x, y);
    return;
  }
#endif
  for (int64_t j = 0; j < kColTile; ++j) y[j] = FusedExp(x[j]);
}

// One output row of the fused forward: stream the kv blocks of `panels`,
// maintain the online-softmax state — running max m, normalizer l (double),
// context accumulator o (float) — and write the normalized context row and
// the row logsumexp. The state advances once per kv block: the block's max
// is folded into m with a single rescale-on-new-max (l and o multiplied by
// exp(m_old - m_new)), then every weight in the block is exp(s - m) against
// the settled m. Within a block the per-column chains (scores, l adds, o
// accumulation) run in fixed increasing column order, so the result is
// identical at any thread count, any parallel partition, and on either
// dispatch path (the AVX2 specialization below reproduces these chains
// lane for lane). kColTile is an algorithmic constant of the kernel, not a
// tuning knob — the recorded golden pins its value.
// [fp-blessed] in tools/analysis/layers.manifest.
void FusedForwardRow(const float* q_row, const float* panels,
                     const float* v_item, int64_t s_k, int64_t dh,
                     float scale, float* out_row, float* lse_out) {
  float qs[kMaxHeadDim];
  for (int64_t kk = 0; kk < dh; ++kk) qs[kk] = q_row[kk] * scale;
  float sblk[kColTile];
  float pblk[kColTile];
  float m = -std::numeric_limits<float>::infinity();
  double l = 0.0;
  float o[kMaxHeadDim];
  for (int64_t d = 0; d < dh; ++d) o[d] = 0.0f;
  for (int64_t j0 = 0; j0 < s_k; j0 += kColTile) {
    int64_t width = std::min<int64_t>(kColTile, s_k - j0);
    FusedScoreBlock(qs, panels + (j0 / kColTile) * dh * kColTile, dh, sblk);
    float bm = sblk[0];
    for (int64_t j = 1; j < width; ++j) bm = sblk[j] > bm ? sblk[j] : bm;
    if (bm > m) {
      // Rescale-on-new-max. Before the first block l and o are exactly
      // zero, so the clamped exp(-inf) needs no special case.
      float corr = FusedExp(m - bm);
      l *= corr;
      for (int64_t d = 0; d < dh; ++d) o[d] *= corr;
      m = bm;
    }
    for (int64_t j = 0; j < kColTile; ++j) pblk[j] = sblk[j] - m;
    FusedExpBlock(pblk, pblk);
    for (int64_t j = 0; j < width; ++j) l += pblk[j];
    for (int64_t j = 0; j < width; ++j) {
      const float* v_row = v_item + (j0 + j) * dh;
      for (int64_t d = 0; d < dh; ++d) o[d] += pblk[j] * v_row[d];
    }
  }
  for (int64_t d = 0; d < dh; ++d) {
    out_row[d] = static_cast<float>(static_cast<double>(o[d]) / l);
  }
  *lse_out = static_cast<float>(static_cast<double>(m) + std::log(l));
}

#if PRISTI_ATTN_HAVE_AVX2
// head_dim == 8 fast path (the paper configuration): the whole row kernel
// in one AVX2 function so the exp lanes, score lanes and the context
// accumulator (one 8-float register) all inline together. Every per-element
// rounding chain — score k-order, block max, rescale, exp, l adds in column
// order, o accumulation in column order — matches FusedForwardRow exactly,
// so the two paths are bit-identical and the dispatch is invisible.
__attribute__((target("avx2"))) void FusedForwardRowAvx8(
    const float* q_row, const float* panels, const float* v_item, int64_t s_k,
    float scale, float* out_row, float* lse_out) {
  constexpr int64_t dh = 8;
  __m256 qv[dh];
  {
    float qs[dh];
    for (int64_t kk = 0; kk < dh; ++kk) qs[kk] = q_row[kk] * scale;
    for (int64_t kk = 0; kk < dh; ++kk) qv[kk] = _mm256_set1_ps(qs[kk]);
  }
  float m = -std::numeric_limits<float>::infinity();
  double l = 0.0;
  __m256 o = _mm256_setzero_ps();
  for (int64_t j0 = 0; j0 < s_k; j0 += kColTile) {
    const float* panel = panels + (j0 / kColTile) * dh * kColTile;
    // Scores: each lane j accumulates qs[kk] * K[j, kk] in increasing kk,
    // mul and add rounded separately — FusedScoreBlock's chain per lane.
    __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
    for (int64_t kk = 0; kk < dh; ++kk) {
      const float* prow = panel + kk * kColTile;
      s0 = _mm256_add_ps(s0, _mm256_mul_ps(qv[kk], _mm256_loadu_ps(prow)));
      s1 = _mm256_add_ps(s1,
                         _mm256_mul_ps(qv[kk], _mm256_loadu_ps(prow + 8)));
    }
    int64_t width = std::min<int64_t>(kColTile, s_k - j0);
    float sblk[kColTile];
    _mm256_storeu_ps(sblk, s0);
    _mm256_storeu_ps(sblk + 8, s1);
    float bm = sblk[0];
    for (int64_t j = 1; j < width; ++j) bm = sblk[j] > bm ? sblk[j] : bm;
    if (bm > m) {
      float corr = FusedExp(m - bm);
      l *= corr;
      o = _mm256_mul_ps(o, _mm256_set1_ps(corr));
      m = bm;
    }
    __m256 mv = _mm256_set1_ps(m);
    float pblk[kColTile];
    _mm256_storeu_ps(pblk, FusedExpAvx8(_mm256_sub_ps(s0, mv)));
    _mm256_storeu_ps(pblk + 8, FusedExpAvx8(_mm256_sub_ps(s1, mv)));
    for (int64_t j = 0; j < width; ++j) l += pblk[j];
    const float* v_rows = v_item + j0 * dh;
    for (int64_t j = 0; j < width; ++j) {
      __m256 pj = _mm256_set1_ps(pblk[j]);
      o = _mm256_add_ps(o,
                        _mm256_mul_ps(pj, _mm256_loadu_ps(v_rows + j * dh)));
    }
  }
  float oarr[dh];
  _mm256_storeu_ps(oarr, o);
  for (int64_t d = 0; d < dh; ++d) {
    out_row[d] = static_cast<float>(static_cast<double>(oarr[d]) / l);
  }
  *lse_out = static_cast<float>(static_cast<double>(m) + std::log(l));
}
#endif  // PRISTI_ATTN_HAVE_AVX2

// Backward for one batch item, serial over its rows: recompute each score
// block from the packed panels (bitwise the forward's scores), reform
// p_j = exp(s_j - lse_i), and accumulate the three gradients. dq/dk/dv
// slices of this item are owned exclusively by the calling worker.
// [fp-blessed] in tools/analysis/layers.manifest.
void FusedBackwardItem(const float* q_item, const float* panels,
                       const float* k_item, const float* v_item,
                       const float* out_item, const float* lse_item,
                       const float* g_item, int64_t s_q, int64_t s_k,
                       int64_t dh, float scale, float* dq_item, float* dk_item,
                       float* dv_item) {
  for (int64_t i = 0; i < s_q * dh; ++i) dq_item[i] = 0.0f;
  for (int64_t i = 0; i < s_k * dh; ++i) dk_item[i] = 0.0f;
  for (int64_t i = 0; i < s_k * dh; ++i) dv_item[i] = 0.0f;
  float qs[kMaxHeadDim];
  double dq_acc[kMaxHeadDim];
  float sblk[kColTile];
  float pblk[kColTile];
  for (int64_t i = 0; i < s_q; ++i) {
    const float* q_row = q_item + i * dh;
    const float* g_row = g_item + i * dh;
    const float* o_row = out_item + i * dh;
    float lse = lse_item[i];
    for (int64_t kk = 0; kk < dh; ++kk) qs[kk] = q_row[kk] * scale;
    for (int64_t kk = 0; kk < dh; ++kk) dq_acc[kk] = 0.0;
    // D_i = gO[i] · out[i], the softmax-jacobian projection term.
    double d_i = 0.0;
    for (int64_t d = 0; d < dh; ++d) {
      d_i += static_cast<double>(g_row[d]) * static_cast<double>(o_row[d]);
    }
    for (int64_t j0 = 0; j0 < s_k; j0 += kColTile) {
      int64_t width = std::min<int64_t>(kColTile, s_k - j0);
      FusedScoreBlock(qs, panels + (j0 / kColTile) * dh * kColTile, dh, sblk);
      // Reformed weights p_j = exp(s_j - lse): same polynomial exp as the
      // forward, whole block at once (tail lanes discarded by `width`).
      for (int64_t j = 0; j < kColTile; ++j) pblk[j] = sblk[j] - lse;
      FusedExpBlock(pblk, pblk);
      for (int64_t j = 0; j < width; ++j) {
        int64_t col = j0 + j;
        float pf = pblk[j];
        const float* v_row = v_item + col * dh;
        float* dv_row = dv_item + col * dh;
        float* dk_row = dk_item + col * dh;
        const float* k_row = k_item + col * dh;
        double dp = 0.0;
        for (int64_t d = 0; d < dh; ++d) {
          dp += static_cast<double>(g_row[d]) * static_cast<double>(v_row[d]);
        }
        float ds = static_cast<float>(pf * (dp - d_i));
        for (int64_t d = 0; d < dh; ++d) dv_row[d] += pf * g_row[d];
        for (int64_t kk = 0; kk < dh; ++kk) dk_row[kk] += ds * qs[kk];
        for (int64_t kk = 0; kk < dh; ++kk) {
          dq_acc[kk] += static_cast<double>(ds) * k_row[kk];
        }
      }
    }
    float* dq_row = dq_item + i * dh;
    for (int64_t kk = 0; kk < dh; ++kk) {
      dq_row[kk] = static_cast<float>(dq_acc[kk]) * scale;
    }
  }
}

std::atomic<int>& FusedFlag() {
  static std::atomic<int> flag{
      GetEnvIntOr("PRISTI_ATTN_FUSED", 1) != 0 ? 1 : 0};
  return flag;
}

}  // namespace

bool FusedAttentionEnabled() {
  return FusedFlag().load(std::memory_order_relaxed) != 0;
}

bool SetFusedAttentionEnabled(bool enabled) {
  return FusedFlag().exchange(enabled ? 1 : 0, std::memory_order_relaxed) != 0;
}

void FusedAttentionForward(int64_t batch, int64_t s_q, int64_t s_k,
                           int64_t dh, float scale, const float* q,
                           const float* k, const float* v, float* out,
                           float* lse, const Tensor* cache_k) {
  if (batch <= 0 || s_q <= 0 || s_k <= 0 || dh <= 0) return;
  PRISTI_CHECK_LE(dh, kMaxHeadDim) << "head_dim exceeds fused-kernel cap";
  PackedPanel hold;
  const float* panels = AcquireKPanels(batch, s_k, dh, k, cache_k, &hold);
  int64_t per_item = FloatsPerItem(s_k, dh);
  int64_t rows = batch * s_q;
  // One worker owns each output row end to end; per-row cost is the
  // 2*2*s_k*dh multiply-add flops of the two fused products.
  int64_t row_flops = std::max<int64_t>(1, 4 * s_k * dh);
  int64_t min_chunk = std::max<int64_t>(1, kMinFlopsPerChunk / row_flops);
#if PRISTI_ATTN_HAVE_AVX2
  // dh == 8 (the paper head_dim) takes the whole-row AVX2 kernel; it is
  // bit-identical to FusedForwardRow, so the dispatch never changes output.
  const bool use_avx8 = dh == 8 && Avx2Available();
#else
  const bool use_avx8 = false;
#endif
  ParallelFor(
      0, rows,
      [&](int64_t lo, int64_t hi) {
        for (int64_t idx = lo; idx < hi; ++idx) {
          int64_t item = idx / s_q;
          int64_t row = idx % s_q;
#if PRISTI_ATTN_HAVE_AVX2
          if (use_avx8) {
            FusedForwardRowAvx8(q + (item * s_q + row) * dh,
                                panels + item * per_item,
                                v + item * s_k * dh, s_k, scale,
                                out + (item * s_q + row) * dh, lse + idx);
            continue;
          }
#endif
          FusedForwardRow(q + (item * s_q + row) * dh,
                          panels + item * per_item, v + item * s_k * dh, s_k,
                          dh, scale, out + (item * s_q + row) * dh,
                          lse + idx);
        }
      },
      min_chunk);
  (void)use_avx8;
  KernelCounters& ctr = Counters();
  ctr.fused_attn_rows.fetch_add(static_cast<uint64_t>(rows),
                                std::memory_order_relaxed);
  ctr.fused_attn_kv_blocks.fetch_add(
      static_cast<uint64_t>(rows * PanelsPerItem(s_k)),
      std::memory_order_relaxed);
  // What the reference chain would have materialized: the (batch, s_q, s_k)
  // scores tensor and the same-shaped softmax output.
  ctr.fused_attn_bytes_avoided.fetch_add(
      static_cast<uint64_t>(2 * batch * s_q * s_k) * sizeof(float),
      std::memory_order_relaxed);
}

void FusedAttentionBackward(int64_t batch, int64_t s_q, int64_t s_k,
                            int64_t dh, float scale, const float* q,
                            const float* k, const float* v, const float* out,
                            const float* lse, const float* grad_out,
                            float* dq, float* dk, float* dv,
                            const Tensor* cache_k) {
  if (batch <= 0 || s_q <= 0 || s_k <= 0 || dh <= 0) return;
  PRISTI_CHECK_LE(dh, kMaxHeadDim) << "head_dim exceeds fused-kernel cap";
  PackedPanel hold;
  const float* panels = AcquireKPanels(batch, s_k, dh, k, cache_k, &hold);
  int64_t per_item = FloatsPerItem(s_k, dh);
  // Item-parallel, row-serial within an item: each item's dq/dk/dv slices
  // are written by exactly one worker, in the same order at any thread
  // count.
  ParallelFor(0, batch, [&](int64_t lo, int64_t hi) {
    for (int64_t item = lo; item < hi; ++item) {
      int64_t qoff = item * s_q * dh;
      int64_t koff = item * s_k * dh;
      FusedBackwardItem(q + qoff, panels + item * per_item, k + koff,
                        v + koff, out + qoff, lse + item * s_q, grad_out + qoff,
                        s_q, s_k, dh, scale, dq + qoff, dk + koff, dv + koff);
    }
  });
  Counters().fused_attn_kv_blocks.fetch_add(
      static_cast<uint64_t>(batch * s_q * PanelsPerItem(s_k)),
      std::memory_order_relaxed);
}

}  // namespace pristi::tensor::kernels
