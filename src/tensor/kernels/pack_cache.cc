#include "tensor/kernels/pack_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/env.h"

namespace pristi::tensor::kernels {
namespace {

size_t MixHash(size_t h, uint64_t v) {
  return h ^ (static_cast<size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
              (h >> 2));
}

struct KeyHash {
  size_t operator()(const PackKey& k) const {
    size_t h = MixHash(0, k.storage_id);
    h = MixHash(h, static_cast<uint64_t>(k.offset));
    h = MixHash(h, static_cast<uint64_t>(k.rows));
    h = MixHash(h, static_cast<uint64_t>(k.cols));
    h = MixHash(h, static_cast<uint64_t>(k.layout));
    return MixHash(h, static_cast<uint64_t>(k.operand));
  }
};

struct KeyEq {
  bool operator()(const PackKey& a, const PackKey& b) const {
    return a.storage_id == b.storage_id && a.offset == b.offset &&
           a.rows == b.rows && a.cols == b.cols && a.layout == b.layout &&
           a.operand == b.operand;
  }
};

struct Entry {
  uint64_t version = 0;
  PackedPanel panel;
  uint64_t bytes = 0;
  std::list<PackKey>::iterator lru_it;
};

struct Cache {
  std::mutex mu;
  std::list<PackKey> lru;  // front = most recently used
  std::unordered_map<PackKey, Entry, KeyHash, KeyEq> map;
  // Secondary index for the storage-destruction hook: every key currently
  // in `map`, grouped by storage id (a storage caches at most a handful of
  // panel shapes, so the vectors stay tiny).
  std::unordered_map<uint64_t, std::vector<PackKey>> by_storage;
  uint64_t bytes = 0;
  // Lock-free emptiness check so ~Storage skips the mutex entirely while
  // nothing is cached (training runs, PRISTI_PACK_CACHE_MB=0).
  std::atomic<size_t> entry_count{0};
};

Cache& cache() {
  // Leaked deliberately: GEMMs on worker threads can outlive static
  // destruction order (same rationale as the BufferPool free list).
  static Cache* c = std::make_unique<Cache>().release();
  return *c;
}

uint64_t CapBytes() {
  static const uint64_t cap =
      static_cast<uint64_t>(GetEnvIntOr("PRISTI_PACK_CACHE_MB", 64)) * 1024 *
      1024;
  return cap;
}

// Removes one entry from every cache structure (map, LRU list, by-storage
// index, byte/entry accounting). Caller holds c.mu; `it` must be valid.
void EraseEntryLocked(
    Cache& c,
    std::unordered_map<PackKey, Entry, KeyHash, KeyEq>::iterator it) {
  auto bucket = c.by_storage.find(it->first.storage_id);
  if (bucket != c.by_storage.end()) {
    std::vector<PackKey>& keys = bucket->second;
    keys.erase(std::remove_if(
                   keys.begin(), keys.end(),
                   [&](const PackKey& k) { return KeyEq{}(k, it->first); }),
               keys.end());
    if (keys.empty()) c.by_storage.erase(bucket);
  }
  c.bytes -= it->second.bytes;
  c.lru.erase(it->second.lru_it);
  c.map.erase(it);
  c.entry_count.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

KernelCounters& Counters() {
  static KernelCounters c;
  return c;
}

bool PackCacheEnabled() { return CapBytes() > 0; }

PackedPanel PackCacheLookup(const PackKey& key, uint64_t version) {
  Cache& c = cache();
  std::scoped_lock lock(c.mu);
  auto it = c.map.find(key);
  if (it == c.map.end() || it->second.version != version) {
    Counters().pack_cache_misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  c.lru.splice(c.lru.begin(), c.lru, it->second.lru_it);
  Counters().pack_cache_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.panel;
}

void PackCacheInsert(const PackKey& key, uint64_t version, PackedPanel panel) {
  if (panel == nullptr || !PackCacheEnabled()) return;
  const uint64_t bytes = panel->size() * sizeof(float);
  Cache& c = cache();
  std::scoped_lock lock(c.mu);
  auto it = c.map.find(key);
  if (it != c.map.end()) {
    // Same identity at a new version: replace in place. The old version can
    // never be requested again (versions only grow), so nothing is lost.
    c.bytes -= it->second.bytes;
    it->second.version = version;
    it->second.panel = std::move(panel);
    it->second.bytes = bytes;
    c.bytes += bytes;
    c.lru.splice(c.lru.begin(), c.lru, it->second.lru_it);
  } else {
    c.lru.push_front(key);
    c.map.emplace(key,
                  Entry{version, std::move(panel), bytes, c.lru.begin()});
    c.by_storage[key.storage_id].push_back(key);
    c.bytes += bytes;
    c.entry_count.fetch_add(1, std::memory_order_relaxed);
  }
  while (c.bytes > CapBytes() && !c.lru.empty()) {
    EraseEntryLocked(c, c.map.find(c.lru.back()));
  }
  Counters().pack_cache_bytes.store(c.bytes, std::memory_order_relaxed);
}

void PackCacheClear() {
  Cache& c = cache();
  std::scoped_lock lock(c.mu);
  c.map.clear();
  c.lru.clear();
  c.by_storage.clear();
  c.bytes = 0;
  c.entry_count.store(0, std::memory_order_relaxed);
  Counters().pack_cache_bytes.store(0, std::memory_order_relaxed);
}

void PackCacheOnStorageDestroyed(uint64_t storage_id) {
  Cache& c = cache();
  // Relaxed pre-check: a racing insert for a DIFFERENT storage may be
  // missed here, but entries for THIS storage cannot appear concurrently —
  // the inserting GEMM holds the tensor (and thus the storage) alive.
  if (c.entry_count.load(std::memory_order_relaxed) == 0) return;
  std::scoped_lock lock(c.mu);
  auto bucket = c.by_storage.find(storage_id);
  if (bucket == c.by_storage.end()) return;
  // Detach the key list first: EraseEntryLocked edits the bucket in place.
  const std::vector<PackKey> keys = std::move(bucket->second);
  c.by_storage.erase(bucket);
  for (const PackKey& key : keys) {
    auto it = c.map.find(key);
    if (it != c.map.end()) EraseEntryLocked(c, it);
  }
  Counters().pack_cache_bytes.store(c.bytes, std::memory_order_relaxed);
}

}  // namespace pristi::tensor::kernels
