#include "tensor/kernels/pack_cache.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/env.h"

namespace pristi::tensor::kernels {
namespace {

size_t MixHash(size_t h, uint64_t v) {
  return h ^ (static_cast<size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
              (h >> 2));
}

struct KeyHash {
  size_t operator()(const PackKey& k) const {
    size_t h = MixHash(0, k.storage_id);
    h = MixHash(h, static_cast<uint64_t>(k.offset));
    h = MixHash(h, static_cast<uint64_t>(k.rows));
    h = MixHash(h, static_cast<uint64_t>(k.cols));
    h = MixHash(h, static_cast<uint64_t>(k.layout));
    return MixHash(h, static_cast<uint64_t>(k.operand));
  }
};

struct KeyEq {
  bool operator()(const PackKey& a, const PackKey& b) const {
    return a.storage_id == b.storage_id && a.offset == b.offset &&
           a.rows == b.rows && a.cols == b.cols && a.layout == b.layout &&
           a.operand == b.operand;
  }
};

struct Entry {
  uint64_t version = 0;
  PackedPanel panel;
  uint64_t bytes = 0;
  std::list<PackKey>::iterator lru_it;
};

struct Cache {
  std::mutex mu;
  std::list<PackKey> lru;  // front = most recently used
  std::unordered_map<PackKey, Entry, KeyHash, KeyEq> map;
  uint64_t bytes = 0;
};

Cache& cache() {
  // Leaked deliberately: GEMMs on worker threads can outlive static
  // destruction order (same rationale as the BufferPool free list).
  static Cache* c = std::make_unique<Cache>().release();
  return *c;
}

uint64_t CapBytes() {
  static const uint64_t cap =
      static_cast<uint64_t>(GetEnvIntOr("PRISTI_PACK_CACHE_MB", 64)) * 1024 *
      1024;
  return cap;
}

}  // namespace

KernelCounters& Counters() {
  static KernelCounters c;
  return c;
}

bool PackCacheEnabled() { return CapBytes() > 0; }

PackedPanel PackCacheLookup(const PackKey& key, uint64_t version) {
  Cache& c = cache();
  std::scoped_lock lock(c.mu);
  auto it = c.map.find(key);
  if (it == c.map.end() || it->second.version != version) {
    Counters().pack_cache_misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  c.lru.splice(c.lru.begin(), c.lru, it->second.lru_it);
  Counters().pack_cache_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.panel;
}

void PackCacheInsert(const PackKey& key, uint64_t version, PackedPanel panel) {
  if (panel == nullptr || !PackCacheEnabled()) return;
  const uint64_t bytes = panel->size() * sizeof(float);
  Cache& c = cache();
  std::scoped_lock lock(c.mu);
  auto it = c.map.find(key);
  if (it != c.map.end()) {
    // Same identity at a new version: replace in place. The old version can
    // never be requested again (versions only grow), so nothing is lost.
    c.bytes -= it->second.bytes;
    it->second.version = version;
    it->second.panel = std::move(panel);
    it->second.bytes = bytes;
    c.bytes += bytes;
    c.lru.splice(c.lru.begin(), c.lru, it->second.lru_it);
  } else {
    c.lru.push_front(key);
    c.map.emplace(key,
                  Entry{version, std::move(panel), bytes, c.lru.begin()});
    c.bytes += bytes;
  }
  while (c.bytes > CapBytes() && !c.lru.empty()) {
    auto victim = c.map.find(c.lru.back());
    c.bytes -= victim->second.bytes;
    c.map.erase(victim);
    c.lru.pop_back();
  }
  Counters().pack_cache_bytes.store(c.bytes, std::memory_order_relaxed);
}

void PackCacheClear() {
  Cache& c = cache();
  std::scoped_lock lock(c.mu);
  c.map.clear();
  c.lru.clear();
  c.bytes = 0;
  Counters().pack_cache_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace pristi::tensor::kernels
