#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/parallel.h"
#include "tensor/kernels/kernels.h"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace pristi::tensor {

namespace {

// Minimum indices per chunk for parallel elementwise kernels: below this,
// enqueue/wake overhead on the persistent pool outweighs the loop body, so
// ParallelFor degenerates to the inline path for small tensors.
constexpr int64_t kElementwiseMinChunk = 1 << 14;

#if defined(__GLIBC__)
// Legacy allocator tuning, opt-in via PRISTI_MALLOC_TUNE=1. glibc serves
// allocations above M_MMAP_THRESHOLD (default 128 KiB) with a fresh mmap and
// returns them to the OS on free; before the BufferPool (storage.h) existed,
// raising the thresholds was how sample-batched activations avoided
// mmap/munmap churn. The pool now recycles those buffers directly, so the
// process-global tweak is off by default and kept only for A/B measurement.
const bool g_malloc_tuned = [] {
  if (GetEnvIntOr("PRISTI_MALLOC_TUNE", 0) == 0) return false;
  mallopt(M_MMAP_THRESHOLD, 1 << 27);
  mallopt(M_TRIM_THRESHOLD, 1 << 27);
  return true;
}();
#endif

}  // namespace

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

int64_t ShapeNumel(const Shape& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    PRISTI_CHECK_GE(d, 0) << "negative dimension in shape " << ShapeToString(shape);
    numel *= d;
  }
  return numel;
}

bool ShapesEqual(const Shape& a, const Shape& b) { return a == b; }

Tensor::Tensor() : shape_{0} {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  numel_ = ShapeNumel(shape_);
  if (numel_ > 0) {
    storage_ = Storage::Allocate(numel_);
    // Zero-fill unconditionally: accumulation kernels (MatMul*, SumAxis)
    // rely on zeroed outputs, and recycled pool blocks arrive dirty.
    std::fill(storage_->data(), storage_->data() + numel_, 0.0f);
  }
}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)) {
  numel_ = ShapeNumel(shape_);
  PRISTI_CHECK_EQ(numel_, static_cast<int64_t>(data.size()))
      << "data size does not match shape " << ShapeToString(shape_);
  if (numel_ > 0) {
    storage_ = Storage::Allocate(numel_);
    std::memcpy(storage_->data(), data.data(),
                static_cast<size_t>(numel_) * sizeof(float));
  }
}

Tensor::Tensor(Shape shape, std::shared_ptr<Storage> storage, int64_t offset)
    : shape_(std::move(shape)),
      numel_(ShapeNumel(shape_)),
      offset_(offset),
      storage_(std::move(storage)) {}

void Tensor::Unshare() {
  std::shared_ptr<Storage> fresh = Storage::Allocate(numel_);
  std::memcpy(fresh->data(), storage_->data() + offset_,
              static_cast<size_t>(numel_) * sizeof(float));
  storage_ = std::move(fresh);
  offset_ = 0;
}

Tensor Tensor::Clone() const {
  Tensor out;
  out.shape_ = shape_;
  out.numel_ = numel_;
  if (numel_ > 0) {
    out.storage_ = Storage::Allocate(numel_);
    std::memcpy(out.storage_->data(), data(),
                static_cast<size_t>(numel_) * sizeof(float));
  }
  return out;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t((Shape()));
  t.data()[0] = value;
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) p[i] = static_cast<float>(rng.Normal());
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = float(i);
  return t;
}

int64_t Tensor::dim(int64_t axis) const {
  if (axis < 0) axis += ndim();
  PRISTI_CHECK_GE(axis, 0);
  PRISTI_CHECK_LT(axis, ndim());
  return shape_[static_cast<size_t>(axis)];
}

namespace {

int64_t FlatIndex(const Shape& shape, std::initializer_list<int64_t> idx) {
  PRISTI_CHECK_EQ(idx.size(), shape.size());
  int64_t flat = 0;
  size_t axis = 0;
  for (int64_t i : idx) {
    PRISTI_CHECK_GE(i, 0);
    PRISTI_CHECK_LT(i, shape[axis]);
    flat = flat * shape[axis] + i;
    ++axis;
  }
  return flat;
}

}  // namespace

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data()[FlatIndex(shape_, idx)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data()[FlatIndex(shape_, idx)];
}

float& Tensor::operator[](int64_t flat_index) {
  // Hot path: full bounds checks only in debug/sanitizer builds (`at()`
  // stays checked in every build).
  PRISTI_DCHECK_GE(flat_index, 0);
  PRISTI_DCHECK_LT(flat_index, numel());
  return data()[flat_index];
}

float Tensor::operator[](int64_t flat_index) const {
  PRISTI_DCHECK_GE(flat_index, 0);
  PRISTI_DCHECK_LT(flat_index, numel());
  return data()[flat_index];
}

void Tensor::Fill(float value) {
  if (numel_ == 0) return;
  float* p = data();
  std::fill(p, p + numel_, value);
}

void Tensor::AddInPlace(const Tensor& other) {
  PRISTI_CHECK(ShapesEqual(shape_, other.shape_))
      << "AddInPlace shape mismatch: " << ShapeToString(shape_) << " vs "
      << ShapeToString(other.shape_);
  if (numel_ == 0) return;
  float* p = data();
  const float* q = other.data();
  for (int64_t i = 0; i < numel_; ++i) p[i] += q[i];
}

void Tensor::ScaleInPlace(float factor) {
  if (numel_ == 0) return;
  float* p = data();
  for (int64_t i = 0; i < numel_; ++i) p[i] *= factor;
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  PRISTI_CHECK_EQ(ShapeNumel(new_shape), numel())
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  return Tensor(std::move(new_shape), storage_, offset_);
}

Tensor Tensor::SliceLeading(int64_t start, int64_t length) const {
  PRISTI_CHECK_GE(ndim(), 1) << "SliceLeading needs a leading axis";
  PRISTI_CHECK_GE(start, 0);
  PRISTI_CHECK_GE(length, 0);
  PRISTI_CHECK_LE(start + length, dim(0));
  int64_t inner = dim(0) > 0 ? numel_ / dim(0) : 0;
  Shape out_shape = shape_;
  out_shape[0] = length;
  if (length == 0 || inner == 0) return Tensor(std::move(out_shape));
  return Tensor(std::move(out_shape), storage_, offset_ + start * inner);
}

std::string Tensor::ToString(int64_t max_entries) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  int64_t n = std::min<int64_t>(numel(), max_entries);
  const float* p = data();
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << p[i];
  }
  if (numel() > n) out << ", ...";
  out << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Broadcasting machinery
// ---------------------------------------------------------------------------

Shape BroadcastShape(const Shape& a, const Shape& b) {
  size_t out_ndim = std::max(a.size(), b.size());
  Shape out(out_ndim);
  for (size_t i = 0; i < out_ndim; ++i) {
    int64_t da = i < out_ndim - a.size() ? 1 : a[i - (out_ndim - a.size())];
    int64_t db = i < out_ndim - b.size() ? 1 : b[i - (out_ndim - b.size())];
    PRISTI_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << ShapeToString(a) << " vs "
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

// Row-major strides, with stride 0 for broadcast (size-1) dims relative to
// the output shape.
std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  std::vector<int64_t> strides(out.size(), 0);
  int64_t stride = 1;
  // Natural strides of `in`, aligned to the right of `out`.
  size_t offset = out.size() - in.size();
  std::vector<int64_t> in_strides(in.size());
  for (size_t i = in.size(); i-- > 0;) {
    in_strides[i] = stride;
    stride *= in[i];
  }
  for (size_t i = 0; i < out.size(); ++i) {
    if (i < offset) {
      strides[i] = 0;
    } else {
      int64_t d = in[i - offset];
      strides[i] = (d == 1 && out[i] != 1) ? 0 : in_strides[i - offset];
    }
  }
  return strides;
}

template <typename BinaryFn>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, BinaryFn fn) {
  // Fast path: identical shapes.
  if (ShapesEqual(a.shape(), b.shape())) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    int64_t n = a.numel();
    ParallelFor(
        0, n,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i], pb[i]);
        },
        kElementwiseMinChunk);
    return out;
  }
  Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape);
  std::vector<int64_t> sa = BroadcastStrides(a.shape(), out_shape);
  std::vector<int64_t> sb = BroadcastStrides(b.shape(), out_shape);
  size_t ndim = out_shape.size();
  std::vector<int64_t> idx(ndim, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  int64_t n = out.numel();
  int64_t oa = 0, ob = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = fn(pa[oa], pb[ob]);
    // Increment the multi-index (row-major) and the two input offsets.
    for (size_t i = ndim; i-- > 0;) {
      ++idx[i];
      oa += sa[i];
      ob += sb[i];
      if (idx[i] < out_shape[i]) break;
      oa -= sa[i] * out_shape[i];
      ob -= sb[i] * out_shape[i];
      idx[i] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}

Tensor SumToShape(const Tensor& t, const Shape& target_shape) {
  if (ShapesEqual(t.shape(), target_shape)) return t;
  PRISTI_CHECK_LE(target_shape.size(), t.shape().size());
  // Sum leading extra axes first.
  Tensor cur = t;
  while (cur.shape().size() > target_shape.size()) {
    cur = SumAxis(cur, 0, /*keepdim=*/false);
  }
  // Then sum broadcast (size-1) axes.
  for (size_t i = 0; i < target_shape.size(); ++i) {
    if (target_shape[i] == 1 && cur.shape()[i] != 1) {
      cur = SumAxis(cur, static_cast<int64_t>(i), /*keepdim=*/true);
    } else {
      PRISTI_CHECK_EQ(target_shape[i], cur.shape()[i])
          << "SumToShape cannot reduce " << ShapeToString(t.shape())
          << " to " << ShapeToString(target_shape);
    }
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Unary ops
// ---------------------------------------------------------------------------

Tensor Apply(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

namespace {

template <typename Fn>
Tensor UnaryOp(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = a.numel();
  ParallelFor(
      0, n,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i]);
      },
      kElementwiseMinChunk);
  return out;
}

}  // namespace

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x * s; });
}
Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::sqrt(x); });
}
Tensor Square(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x * x; });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::fabs(x); });
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  PRISTI_CHECK_LE(lo, hi);
  return UnaryOp(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor Where(const Tensor& cond, const Tensor& a, const Tensor& b) {
  PRISTI_CHECK(ShapesEqual(cond.shape(), a.shape()));
  PRISTI_CHECK(ShapesEqual(cond.shape(), b.shape()));
  Tensor out(a.shape());
  const float* pc = cond.data();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(
      0, out.numel(),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          po[i] = pc[i] > 0.5f ? pa[i] : pb[i];
        }
      },
      kElementwiseMinChunk);
  return out;
}

// ---------------------------------------------------------------------------
// Matrix products
// ---------------------------------------------------------------------------

// All products dispatch to the tiled kernel layer (tensor/kernels/): packed
// panels, a 4x16 register-tiled micro-kernel, and the pack cache for the
// shared-weight entry points. Outputs are freshly zeroed tensors, which is
// the precondition for the layer's bit-identity contract; parallel
// partitioning (rows for single GEMMs, items for batched) lives inside the
// layer and keeps every output element on one thread.

namespace {

using kernels::Layout;

// Shared shape plumbing for the batched entry points: checks leading dims
// match and builds the (..., m, n) output shape.
Tensor BatchedOutput(const Tensor& a, const Tensor& b, int64_t m, int64_t n,
                     const char* op_name) {
  PRISTI_CHECK_GE(a.ndim(), 2);
  PRISTI_CHECK_EQ(a.ndim(), b.ndim());
  int64_t nd = a.ndim();
  for (int64_t i = 0; i < nd - 2; ++i) {
    PRISTI_CHECK_EQ(a.dim(i), b.dim(i))
        << op_name << " leading dim mismatch";
  }
  Shape out_shape(a.shape().begin(), a.shape().end() - 2);
  out_shape.push_back(m);
  out_shape.push_back(n);
  return Tensor(out_shape);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PRISTI_CHECK_EQ(a.ndim(), 2);
  PRISTI_CHECK_EQ(b.ndim(), 2);
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PRISTI_CHECK_EQ(k, b.dim(0)) << "MatMul inner dim mismatch";
  Tensor out(Shape{m, n});
  kernels::Gemm(Layout::kNormal, Layout::kNormal, m, n, k, a.data(), b.data(),
                out.data());
  return out;
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  PRISTI_CHECK_EQ(a.ndim(), 2);
  PRISTI_CHECK_EQ(b.ndim(), 2);
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  PRISTI_CHECK_EQ(k, b.dim(1)) << "MatMulNT inner dim mismatch";
  Tensor out(Shape{m, n});
  kernels::Gemm(Layout::kNormal, Layout::kTransposed, m, n, k, a.data(),
                b.data(), out.data());
  return out;
}

Tensor MatMulTN(const Tensor& a, const Tensor& b) {
  PRISTI_CHECK_EQ(a.ndim(), 2);
  PRISTI_CHECK_EQ(b.ndim(), 2);
  int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  PRISTI_CHECK_EQ(k, b.dim(0)) << "MatMulTN inner dim mismatch";
  Tensor out(Shape{m, n});
  kernels::Gemm(Layout::kTransposed, Layout::kNormal, m, n, k, a.data(),
                b.data(), out.data());
  return out;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  int64_t nd = a.ndim();
  int64_t m = a.dim(nd - 2), k = a.dim(nd - 1), n = b.dim(nd - 1);
  PRISTI_CHECK_EQ(k, b.dim(nd - 2)) << "BatchedMatMul inner dim mismatch";
  Tensor out = BatchedOutput(a, b, m, n, "BatchedMatMul");
  kernels::BatchedGemm(Layout::kNormal, Layout::kNormal, a.numel() / (m * k),
                       m, n, k, a.data(), m * k, b.data(), k * n, out.data());
  return out;
}

Tensor BatchedMatMulNT(const Tensor& a, const Tensor& b) {
  int64_t nd = a.ndim();
  int64_t m = a.dim(nd - 2), k = a.dim(nd - 1), n = b.dim(nd - 2);
  PRISTI_CHECK_EQ(k, b.dim(nd - 1)) << "BatchedMatMulNT inner dim mismatch";
  Tensor out = BatchedOutput(a, b, m, n, "BatchedMatMulNT");
  kernels::BatchedGemm(Layout::kNormal, Layout::kTransposed,
                       a.numel() / (m * k), m, n, k, a.data(), m * k,
                       b.data(), n * k, out.data());
  return out;
}

Tensor BatchedMatMulTN(const Tensor& a, const Tensor& b) {
  int64_t nd = a.ndim();
  int64_t k = a.dim(nd - 2), m = a.dim(nd - 1), n = b.dim(nd - 1);
  PRISTI_CHECK_EQ(k, b.dim(nd - 2)) << "BatchedMatMulTN inner dim mismatch";
  Tensor out = BatchedOutput(a, b, m, n, "BatchedMatMulTN");
  kernels::BatchedGemm(Layout::kTransposed, Layout::kNormal,
                       a.numel() / (m * k), m, n, k, a.data(), k * m,
                       b.data(), k * n, out.data());
  return out;
}

Tensor MatMulLastDim(const Tensor& x, const Tensor& w) {
  PRISTI_CHECK_EQ(w.ndim(), 2);
  PRISTI_CHECK_GE(x.ndim(), 1);
  int64_t k_in = x.dim(-1);
  PRISTI_CHECK_EQ(k_in, w.dim(0)) << "MatMulLastDim inner dim mismatch";
  int64_t k_out = w.dim(1);
  int64_t rows = x.numel() / k_in;
  Shape out_shape = x.shape();
  out_shape.back() = k_out;
  Tensor out(out_shape);
  // Rows scale with the full batch (B*N*L for Linear layers), so this is
  // the dominant parallel axis for the sample-batched sampler. `w` is a
  // long-lived layer weight: its packed panel comes from the pack cache.
  kernels::Gemm(Layout::kNormal, Layout::kNormal, rows, k_out, k_in, x.data(),
                w.data(), out.data(), /*cache_a=*/nullptr, /*cache_b=*/&w);
  return out;
}

Tensor MatMulLastDimT(const Tensor& x, const Tensor& w) {
  PRISTI_CHECK_EQ(w.ndim(), 2);
  PRISTI_CHECK_GE(x.ndim(), 1);
  int64_t k_out = x.dim(-1);
  PRISTI_CHECK_EQ(k_out, w.dim(1)) << "MatMulLastDimT inner dim mismatch";
  int64_t k_in = w.dim(0);
  int64_t rows = x.numel() / k_out;
  Shape out_shape = x.shape();
  out_shape.back() = k_in;
  Tensor out(out_shape);
  // w is read through its transpose in place — the MatMulLastDim backward
  // needs no materialized wᵀ — and caches a T-layout panel separately from
  // the forward's N-layout panel.
  kernels::Gemm(Layout::kNormal, Layout::kTransposed, rows, k_in, k_out,
                x.data(), w.data(), out.data(), /*cache_a=*/nullptr,
                /*cache_b=*/&w);
  return out;
}

Tensor MatMulNodeDim(const Tensor& p, const Tensor& x) {
  PRISTI_CHECK_EQ(p.ndim(), 2);
  PRISTI_CHECK_GE(x.ndim(), 2);
  int64_t rows_out = p.dim(0), rows_in = p.dim(1);
  PRISTI_CHECK_EQ(rows_in, x.dim(-2)) << "MatMulNodeDim node-axis mismatch";
  int64_t d = x.dim(-1);
  int64_t batch = x.numel() / (rows_in * d);
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = rows_out;
  Tensor out(out_shape);
  // p broadcasts across the batch (stride 0) and is a long-lived operator
  // (graph-conv support, virtual-node projection): cached packed panel.
  kernels::BatchedGemm(Layout::kNormal, Layout::kNormal, batch, rows_out, d,
                       rows_in, p.data(), /*stride_a=*/0, x.data(),
                       /*stride_b=*/rows_in * d, out.data(),
                       /*cache_a=*/&p);
  return out;
}

Tensor MatMulNodeDimT(const Tensor& p, const Tensor& x) {
  PRISTI_CHECK_EQ(p.ndim(), 2);
  PRISTI_CHECK_GE(x.ndim(), 2);
  int64_t rows_out = p.dim(0), rows_in = p.dim(1);
  PRISTI_CHECK_EQ(rows_out, x.dim(-2)) << "MatMulNodeDimT node-axis mismatch";
  int64_t d = x.dim(-1);
  int64_t batch = x.numel() / (rows_out * d);
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = rows_in;
  Tensor out(out_shape);
  // pᵀ applied in place (the MatMulNodeDim backward), broadcast + cached.
  kernels::BatchedGemm(Layout::kTransposed, Layout::kNormal, batch, rows_in,
                       d, rows_out, p.data(), /*stride_a=*/0, x.data(),
                       /*stride_b=*/rows_out * d, out.data(),
                       /*cache_a=*/&p);
  return out;
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

float SumAll(const Tensor& a) {
  // Kahan summation keeps reductions stable for large tensors.
  double sum = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) sum += a[i];
  return static_cast<float>(sum);
}

float MeanAll(const Tensor& a) {
  PRISTI_CHECK_GT(a.numel(), 0);
  return SumAll(a) / static_cast<float>(a.numel());
}

float MaxAll(const Tensor& a) {
  PRISTI_CHECK_GT(a.numel(), 0);
  float m = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a[i]);
  return m;
}

float MinAll(const Tensor& a) {
  PRISTI_CHECK_GT(a.numel(), 0);
  float m = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::min(m, a[i]);
  return m;
}

Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  PRISTI_CHECK_GE(axis, 0);
  PRISTI_CHECK_LT(axis, a.ndim());
  int64_t outer = 1, mid = a.dim(axis), inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.dim(i);
  for (int64_t i = axis + 1; i < a.ndim(); ++i) inner *= a.dim(i);
  Shape out_shape;
  for (int64_t i = 0; i < a.ndim(); ++i) {
    if (i == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.dim(i));
    }
  }
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t m = 0; m < mid; ++m) {
      const float* src = pa + (o * mid + m) * inner;
      float* dst = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  Tensor out = SumAxis(a, axis, keepdim);
  out.ScaleInPlace(1.0f / static_cast<float>(a.dim(axis)));
  return out;
}

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm) {
  PRISTI_CHECK_EQ(static_cast<int64_t>(perm.size()), a.ndim());
  int64_t nd = a.ndim();
  std::vector<bool> seen(static_cast<size_t>(nd), false);
  Shape out_shape(static_cast<size_t>(nd));
  for (int64_t i = 0; i < nd; ++i) {
    int64_t p = perm[static_cast<size_t>(i)];
    PRISTI_CHECK_GE(p, 0);
    PRISTI_CHECK_LT(p, nd);
    PRISTI_CHECK(!seen[static_cast<size_t>(p)]) << "perm is not a permutation";
    seen[static_cast<size_t>(p)] = true;
    out_shape[static_cast<size_t>(i)] = a.dim(p);
  }
  // Strides of the input, then walk the output in row-major order.
  std::vector<int64_t> in_strides(static_cast<size_t>(nd));
  int64_t stride = 1;
  for (int64_t i = nd; i-- > 0;) {
    in_strides[static_cast<size_t>(i)] = stride;
    stride *= a.dim(i);
  }
  std::vector<int64_t> out_strides_in(static_cast<size_t>(nd));
  for (int64_t i = 0; i < nd; ++i) {
    out_strides_in[static_cast<size_t>(i)] =
        in_strides[static_cast<size_t>(perm[static_cast<size_t>(i)])];
  }
  Tensor out(out_shape);
  std::vector<int64_t> idx(static_cast<size_t>(nd), 0);
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = out.numel();
  int64_t in_off = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = pa[in_off];
    for (int64_t i = nd; i-- > 0;) {
      size_t ui = static_cast<size_t>(i);
      ++idx[ui];
      in_off += out_strides_in[ui];
      if (idx[ui] < out_shape[ui]) break;
      in_off -= out_strides_in[ui] * out_shape[ui];
      idx[ui] = 0;
    }
  }
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  PRISTI_CHECK_GE(a.ndim(), 2);
  std::vector<int64_t> perm(static_cast<size_t>(a.ndim()));
  for (int64_t i = 0; i < a.ndim(); ++i) perm[static_cast<size_t>(i)] = i;
  std::swap(perm[perm.size() - 1], perm[perm.size() - 2]);
  return Permute(a, perm);
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  PRISTI_CHECK(!parts.empty());
  int64_t nd = parts[0].ndim();
  if (axis < 0) axis += nd;
  PRISTI_CHECK_GE(axis, 0);
  PRISTI_CHECK_LT(axis, nd);
  int64_t axis_total = 0;
  for (const Tensor& p : parts) {
    PRISTI_CHECK_EQ(p.ndim(), nd);
    for (int64_t i = 0; i < nd; ++i) {
      if (i != axis) PRISTI_CHECK_EQ(p.dim(i), parts[0].dim(i));
    }
    axis_total += p.dim(axis);
  }
  Shape out_shape = parts[0].shape();
  out_shape[static_cast<size_t>(axis)] = axis_total;
  Tensor out(out_shape);
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= out.dim(i);
  for (int64_t i = axis + 1; i < nd; ++i) inner *= out.dim(i);
  float* po = out.data();
  int64_t axis_offset = 0;
  for (const Tensor& p : parts) {
    int64_t mid = p.dim(axis);
    if (mid * inner == 0) continue;
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + (o * axis_total + axis_offset) * inner,
                  pp + o * mid * inner,
                  static_cast<size_t>(mid * inner) * sizeof(float));
    }
    axis_offset += mid;
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& parts) {
  PRISTI_CHECK(!parts.empty());
  Shape item_shape = parts[0].shape();
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  for (int64_t d : item_shape) out_shape.push_back(d);
  Tensor out(out_shape);
  int64_t item_numel = parts[0].numel();
  float* po = out.data();
  for (size_t i = 0; i < parts.size(); ++i) {
    PRISTI_CHECK(ShapesEqual(parts[i].shape(), item_shape))
        << "Stack requires identical shapes";
    if (item_numel == 0) continue;
    std::memcpy(po + static_cast<int64_t>(i) * item_numel, parts[i].data(),
                static_cast<size_t>(item_numel) * sizeof(float));
  }
  return out;
}

Tensor SliceAxis(const Tensor& a, int64_t axis, int64_t start,
                 int64_t length) {
  int64_t nd = a.ndim();
  if (axis < 0) axis += nd;
  PRISTI_CHECK_GE(axis, 0);
  PRISTI_CHECK_LT(axis, nd);
  PRISTI_CHECK_GE(start, 0);
  PRISTI_CHECK_GE(length, 0);
  PRISTI_CHECK_LE(start + length, a.dim(axis));
  // A leading-axis slice of a contiguous tensor is itself contiguous, so it
  // can alias the parent storage instead of copying.
  if (axis == 0) return a.SliceLeading(start, length);
  int64_t outer = 1, mid = a.dim(axis), inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.dim(i);
  for (int64_t i = axis + 1; i < nd; ++i) inner *= a.dim(i);
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = length;
  Tensor out(out_shape);
  if (length * inner == 0) return out;
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * length * inner, pa + (o * mid + start) * inner,
                static_cast<size_t>(length * inner) * sizeof(float));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

Tensor SoftmaxLastDim(const Tensor& a) {
  PRISTI_CHECK_GE(a.ndim(), 1);
  int64_t d = a.dim(-1);
  PRISTI_CHECK_GT(d, 0);
  int64_t rows = a.numel() / d;
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t min_rows = std::max<int64_t>(1, kElementwiseMinChunk / d);
  ParallelFor(
      0, rows,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* src = pa + r * d;
          float* dst = po + r * d;
          float row_max = src[0];
          for (int64_t i = 1; i < d; ++i) row_max = std::max(row_max, src[i]);
          double denom = 0.0;
          for (int64_t i = 0; i < d; ++i) {
            dst[i] = std::exp(src[i] - row_max);
            denom += dst[i];
          }
          float inv = static_cast<float>(1.0 / denom);
          for (int64_t i = 0; i < d; ++i) dst[i] *= inv;
        }
      },
      min_rows);
  return out;
}

// ---------------------------------------------------------------------------
// Comparisons & serialization
// ---------------------------------------------------------------------------

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!ShapesEqual(a.shape(), b.shape())) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    float x = a[i], y = b[i];
    if (std::isnan(x) || std::isnan(y)) return false;
    if (std::fabs(x - y) > atol + rtol * std::fabs(y)) return false;
  }
  return true;
}

void WriteTensor(std::ostream& out, const Tensor& t) {
  int64_t nd = t.ndim();
  out.write(reinterpret_cast<const char*>(&nd), sizeof(nd));
  for (int64_t i = 0; i < nd; ++i) {
    int64_t d = t.dim(i);
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  if (t.numel() > 0) {
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
}

Tensor ReadTensor(std::istream& in) {
  int64_t nd = 0;
  in.read(reinterpret_cast<char*>(&nd), sizeof(nd));
  PRISTI_CHECK(in.good()) << "truncated tensor stream";
  PRISTI_CHECK_GE(nd, 0);
  PRISTI_CHECK_LE(nd, 8) << "implausible tensor rank";
  Shape shape(static_cast<size_t>(nd));
  for (int64_t i = 0; i < nd; ++i) {
    in.read(reinterpret_cast<char*>(&shape[static_cast<size_t>(i)]),
            sizeof(int64_t));
  }
  Tensor t(shape);
  if (t.numel() > 0) {
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  PRISTI_CHECK(in.good()) << "truncated tensor payload";
  return t;
}

}  // namespace pristi::tensor
