#include "tensor/storage.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/env.h"

// Forward-declared instead of including pack_cache.h: the hook is the one
// point of contact between storage and the kernel layer's panel cache.
namespace pristi::tensor::kernels {
void PackCacheOnStorageDestroyed(uint64_t storage_id);
}  // namespace pristi::tensor::kernels

namespace pristi::tensor {
namespace {

// Buckets are powers of two from 64 floats (256 B — below that the header
// overhead dominates and glibc's fastbins are already fine) up to 1 Gi
// floats (4 GiB). Requests above the top bucket bypass the pool entirely.
constexpr int kMinBucketLog2 = 6;
constexpr int kMaxBucketLog2 = 30;
constexpr int kNumBuckets = kMaxBucketLog2 - kMinBucketLog2 + 1;
// Blocks a thread keeps privately per bucket before spilling to the shared
// free list. The sampler's steady state needs only a handful of distinct
// sizes live at once, so a shallow cache captures nearly all reuse.
constexpr int kThreadCacheDepth = 4;

int BucketFor(int64_t numel) {
  if (numel > (int64_t{1} << kMaxBucketLog2)) return -1;
  int bucket = 0;
  while ((int64_t{1} << (kMinBucketLog2 + bucket)) < numel) ++bucket;
  return bucket;
}

int64_t BucketCapacity(int bucket) {
  return int64_t{1} << (kMinBucketLog2 + bucket);
}

struct Counters {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> heap_allocs{0};
  std::atomic<uint64_t> bytes_requested{0};
  std::atomic<uint64_t> live_bytes{0};
  std::atomic<uint64_t> pooled_bytes{0};
  std::atomic<uint64_t> peak_live_bytes{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

void NoteLiveBytes(uint64_t added) {
  Counters& c = counters();
  uint64_t live =
      c.live_bytes.fetch_add(added, std::memory_order_relaxed) + added;
  uint64_t peak = c.peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !c.peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

struct PoolConfig {
  bool enabled;
  uint64_t max_pooled_bytes;
};

const PoolConfig& pool_config() {
  static const PoolConfig config = [] {
    PoolConfig c;
    c.enabled = GetEnvIntOr("PRISTI_BUFFER_POOL", 1) != 0;
    c.max_pooled_bytes =
        static_cast<uint64_t>(GetEnvIntOr("PRISTI_POOL_MAX_MB", 512)) * 1024 *
        1024;
    return c;
  }();
  return config;
}

struct GlobalPool {
  std::mutex mu;
  std::vector<float*> free_lists[kNumBuckets];
};

GlobalPool& global_pool() {
  // Leaked deliberately: thread-local cache destructors flush here during
  // thread teardown, which can outlive static destruction order.
  static GlobalPool* pool = std::make_unique<GlobalPool>().release();
  return *pool;
}

float* HeapAllocate(int64_t capacity) {
  counters().heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::allocator<float>().allocate(static_cast<size_t>(capacity));
}

void HeapFree(float* p, int64_t capacity) {
  std::allocator<float>().deallocate(p, static_cast<size_t>(capacity));
}

// Per-thread front cache. Destructor hands any cached blocks to the global
// pool so worker-thread exits do not strand capacity.
struct ThreadCache {
  float* blocks[kNumBuckets][kThreadCacheDepth] = {};
  int count[kNumBuckets] = {};

  ~ThreadCache() {
    GlobalPool& pool = global_pool();
    std::scoped_lock lock(pool.mu);
    for (int b = 0; b < kNumBuckets; ++b) {
      for (int i = 0; i < count[b]; ++i) {
        pool.free_lists[b].push_back(blocks[b][i]);
      }
      count[b] = 0;
    }
  }
};

thread_local ThreadCache t_cache;

float* PoolAcquire(int bucket) {
  ThreadCache& cache = t_cache;
  if (cache.count[bucket] > 0) {
    return cache.blocks[bucket][--cache.count[bucket]];
  }
  GlobalPool& pool = global_pool();
  std::scoped_lock lock(pool.mu);
  std::vector<float*>& list = pool.free_lists[bucket];
  if (list.empty()) return nullptr;
  float* p = list.back();
  list.pop_back();
  return p;
}

// Returns false when the pool is full and the caller should free to the heap.
bool PoolRelease(float* p, int bucket) {
  const uint64_t capacity_bytes =
      static_cast<uint64_t>(BucketCapacity(bucket)) * sizeof(float);
  Counters& c = counters();
  uint64_t pooled = c.pooled_bytes.load(std::memory_order_relaxed);
  if (pooled + capacity_bytes > pool_config().max_pooled_bytes) return false;
  c.pooled_bytes.fetch_add(capacity_bytes, std::memory_order_relaxed);
  ThreadCache& cache = t_cache;
  if (cache.count[bucket] < kThreadCacheDepth) {
    cache.blocks[bucket][cache.count[bucket]++] = p;
    return true;
  }
  GlobalPool& pool = global_pool();
  std::scoped_lock lock(pool.mu);
  pool.free_lists[bucket].push_back(p);
  return true;
}

}  // namespace

Storage::Storage(int64_t numel) {
  PRISTI_CHECK(numel > 0) << "Storage::Allocate requires numel > 0, got "
                          << numel << " (empty tensors hold no storage)";
  static std::atomic<uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  size_ = numel;
  bucket_ = BucketFor(numel);
  const int64_t capacity = bucket_ >= 0 ? BucketCapacity(bucket_) : numel;

  Counters& c = counters();
  c.requests.fetch_add(1, std::memory_order_relaxed);
  c.bytes_requested.fetch_add(static_cast<uint64_t>(numel) * sizeof(float),
                              std::memory_order_relaxed);
  const uint64_t capacity_bytes =
      static_cast<uint64_t>(capacity) * sizeof(float);

  if (bucket_ >= 0 && pool_config().enabled) {
    data_ = PoolAcquire(bucket_);
    if (data_ != nullptr) {
      c.pool_hits.fetch_add(1, std::memory_order_relaxed);
      c.pooled_bytes.fetch_sub(capacity_bytes, std::memory_order_relaxed);
    }
  }
  if (data_ == nullptr) data_ = HeapAllocate(capacity);
  NoteLiveBytes(capacity_bytes);
}

Storage::~Storage() {
  // Packed panels keyed on this id can never hit again (ids are unique for
  // the process lifetime); drop them now instead of letting dead panels
  // squat in the cache until LRU pressure pushes live weights out.
  kernels::PackCacheOnStorageDestroyed(id_);
  const int64_t capacity = bucket_ >= 0 ? BucketCapacity(bucket_) : size_;
  counters().live_bytes.fetch_sub(
      static_cast<uint64_t>(capacity) * sizeof(float),
      std::memory_order_relaxed);
  if (bucket_ >= 0 && pool_config().enabled && PoolRelease(data_, bucket_)) {
    return;
  }
  HeapFree(data_, capacity);
}

AllocStats GetAllocStats() {
  const Counters& c = counters();
  AllocStats s;
  s.requests = c.requests.load(std::memory_order_relaxed);
  s.pool_hits = c.pool_hits.load(std::memory_order_relaxed);
  s.heap_allocs = c.heap_allocs.load(std::memory_order_relaxed);
  s.bytes_requested = c.bytes_requested.load(std::memory_order_relaxed);
  s.live_bytes = c.live_bytes.load(std::memory_order_relaxed);
  s.pooled_bytes = c.pooled_bytes.load(std::memory_order_relaxed);
  s.peak_live_bytes = c.peak_live_bytes.load(std::memory_order_relaxed);
  return s;
}

bool BufferPoolEnabled() { return pool_config().enabled; }

void BufferPoolTrim() {
  GlobalPool& pool = global_pool();
  std::scoped_lock lock(pool.mu);
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t capacity_bytes =
        static_cast<uint64_t>(BucketCapacity(b)) * sizeof(float);
    for (float* p : pool.free_lists[b]) {
      HeapFree(p, BucketCapacity(b));
      counters().pooled_bytes.fetch_sub(capacity_bytes,
                                        std::memory_order_relaxed);
    }
    pool.free_lists[b].clear();
  }
}

}  // namespace pristi::tensor
