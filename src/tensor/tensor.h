#ifndef PRISTI_TENSOR_TENSOR_H_
#define PRISTI_TENSOR_TENSOR_H_

// Dense row-major float32 tensor with value semantics.
//
// This is the numerical substrate for the whole library: the autograd tape
// (src/autograd) wraps these tensors, and every model (PriSTI, CSDI, the RNN
// baselines) is expressed in terms of the kernels declared here. The design
// favours clarity and testability over peak throughput — experiment shapes
// in this reproduction are small (N<=325 nodes, L<=36 steps, d<=64 channels),
// so a clean O(n) / blocked O(n^3) implementation is sufficient.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pristi::tensor {

// Tensor shape; an empty Shape denotes a scalar (numel == 1, ndim == 0).
using Shape = std::vector<int64_t>;

std::string ShapeToString(const Shape& shape);
int64_t ShapeNumel(const Shape& shape);
bool ShapesEqual(const Shape& a, const Shape& b);

class Tensor {
 public:
  // An empty (numel 0, ndim 1 with dim 0) tensor. Distinct from a scalar.
  Tensor();

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  // ---- Factories ------------------------------------------------------
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  // i.i.d. N(0,1) entries.
  static Tensor Randn(Shape shape, Rng& rng);
  // i.i.d. U[lo, hi) entries.
  static Tensor Rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  // [0, 1, ..., n-1] as a 1-D tensor.
  static Tensor Arange(int64_t n);

  // ---- Introspection ---------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  // ---- Element access (debug-friendly; bounds-checked) ----------------
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;
  float& operator[](int64_t flat_index);
  float operator[](int64_t flat_index) const;

  // ---- In-place helpers ------------------------------------------------
  void Fill(float value);
  void AddInPlace(const Tensor& other);          // same shape
  void ScaleInPlace(float factor);
  void ZeroOut() { Fill(0.0f); }

  // Returns a copy with a new shape of identical numel.
  Tensor Reshaped(Shape new_shape) const;

  std::string ToString(int64_t max_entries = 32) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

// ---- Elementwise binary ops with NumPy-style broadcasting ---------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
// Shape of `Op(a, b)` under broadcasting; CHECK-fails on incompatibility.
Shape BroadcastShape(const Shape& a, const Shape& b);
// Reduce-sums `t` down to `target_shape` (the adjoint of broadcasting).
Tensor SumToShape(const Tensor& t, const Shape& target_shape);

// ---- Elementwise unary / scalar ops --------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Apply(const Tensor& a, const std::function<float(float)>& fn);
// Elementwise clamp to [lo, hi].
Tensor Clamp(const Tensor& a, float lo, float hi);
// Elementwise select: cond > 0.5 ? a : b (all same shape).
Tensor Where(const Tensor& cond, const Tensor& a, const Tensor& b);

// ---- Matrix products ------------------------------------------------------
// (m,k) x (k,n) -> (m,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
// (..., m, k) x (..., k, n) -> (..., m, n); leading dims must match exactly.
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);
// Applies a shared (k_in, k_out) matrix to the last axis: (..., k_in) ->
// (..., k_out). This is the kernel behind Linear / Conv1x1 layers.
Tensor MatMulLastDim(const Tensor& x, const Tensor& w);
// Applies a shared (rows_out, rows_in) matrix to the second-to-last axis:
// (..., rows_in, d) -> (..., rows_out, d). Kernel behind graph convolution
// (rows = nodes) and virtual-node downsampling.
Tensor MatMulNodeDim(const Tensor& p, const Tensor& x);

// ---- Reductions -------------------------------------------------------------
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);
// Sum over `axis`, keeping it as size-1 when keepdim.
Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim = false);

// ---- Shape manipulation ----------------------------------------------------
// Permutes axes; perm must be a permutation of [0, ndim).
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);
// Transposes the last two axes.
Tensor TransposeLast2(const Tensor& a);
// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
// Stacks same-shaped tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);
// Slices [start, start+length) along `axis`.
Tensor SliceAxis(const Tensor& a, int64_t axis, int64_t start, int64_t length);

// ---- Softmax ----------------------------------------------------------------
// Numerically stable softmax over the last axis.
Tensor SoftmaxLastDim(const Tensor& a);

// ---- Comparisons -------------------------------------------------------------
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-5f);

// ---- Serialization ------------------------------------------------------------
// Binary format: ndim, dims, raw float payload. Used for model checkpoints.
void WriteTensor(std::ostream& out, const Tensor& t);
Tensor ReadTensor(std::istream& in);

}  // namespace pristi::tensor

#endif  // PRISTI_TENSOR_TENSOR_H_
