#ifndef PRISTI_TENSOR_TENSOR_H_
#define PRISTI_TENSOR_TENSOR_H_

// Dense row-major float32 tensor with value semantics over shared storage.
//
// This is the numerical substrate for the whole library: the autograd tape
// (src/autograd) wraps these tensors, and every model (PriSTI, CSDI, the RNN
// baselines) is expressed in terms of the kernels declared here. The design
// favours clarity and testability over peak throughput — experiment shapes
// in this reproduction are small (N<=325 nodes, L<=36 steps, d<=64 channels),
// so a clean O(n) / blocked O(n^3) implementation is sufficient.
//
// Memory model: a Tensor is a cheap header — shape, element offset, and a
// shared_ptr to a ref-counted Storage block (storage.h) drawn from the
// pooled allocator. Copying a Tensor copies the header only; the buffer is
// shared. Every mutating accessor (non-const data()/at()/operator[], Fill,
// AddInPlace, ScaleInPlace) performs copy-on-write first: if the storage is
// shared it forks a private copy of this header's element range, so all
// public call sites keep exact value semantics. Reshaped() and the leading-
// axis SliceAxis() fast path return zero-copy views (shared storage,
// adjusted shape/offset) — safe for the same reason. Use Clone() when a
// guaranteed-private deep copy is required regardless of mutation, and
// SharesStorage() in tests to assert aliasing.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/storage.h"

namespace pristi::tensor {

// Tensor shape; an empty Shape denotes a scalar (numel == 1, ndim == 0).
using Shape = std::vector<int64_t>;

std::string ShapeToString(const Shape& shape);
int64_t ShapeNumel(const Shape& shape);
bool ShapesEqual(const Shape& a, const Shape& b);

class Tensor {
 public:
  // An empty (numel 0, ndim 1 with dim 0) tensor. Distinct from a scalar.
  Tensor();

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  Tensor(Shape shape, std::vector<float> data);

  // Header copies: O(1), storage shared until a mutating access forks it.
  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  // ---- Factories ------------------------------------------------------
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  // i.i.d. N(0,1) entries.
  static Tensor Randn(Shape shape, Rng& rng);
  // i.i.d. U[lo, hi) entries.
  static Tensor Rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  // [0, 1, ..., n-1] as a 1-D tensor.
  static Tensor Arange(int64_t n);

  // ---- Introspection ---------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t axis) const;
  int64_t numel() const { return numel_; }

  // Non-const data() is a mutating access: it forks shared storage first,
  // so the returned pointer is private to this header. Take it AFTER any
  // copies/views of the tensor have been made, never before. The storage
  // version is bumped on every call: any pack-cache entry keyed on the old
  // (id, version) pair goes stale the moment a writable pointer escapes.
  float* data() {
    if (storage_ != nullptr && storage_.use_count() > 1) Unshare();
    if (storage_ != nullptr) storage_->BumpVersion();
    return storage_ != nullptr ? storage_->data() + offset_ : nullptr;
  }
  const float* data() const {
    return storage_ != nullptr ? storage_->data() + offset_ : nullptr;
  }

  // True when both headers alias the same Storage block (copies before
  // mutation, views). Test/diagnostic hook for the COW invariants.
  bool SharesStorage(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  // Storage identity triple consumed by the GEMM pack cache
  // (tensor/kernels/): (storage_id, storage_version, storage_offset) pins
  // the exact bytes this header reads, without keeping the Storage alive.
  // Empty tensors report id 0 (never cached).
  uint64_t storage_id() const { return storage_ != nullptr ? storage_->id() : 0; }
  uint64_t storage_version() const {
    return storage_ != nullptr ? storage_->version() : 0;
  }
  int64_t storage_offset() const { return offset_; }

  // Guaranteed-private deep copy (fresh storage), regardless of sharing.
  Tensor Clone() const;

  // ---- Element access (debug-friendly; bounds-checked) ----------------
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;
  float& operator[](int64_t flat_index);
  float operator[](int64_t flat_index) const;

  // ---- In-place helpers (copy-on-write: fork shared storage first) ----
  void Fill(float value);
  void AddInPlace(const Tensor& other);          // same shape
  void ScaleInPlace(float factor);
  void ZeroOut() { Fill(0.0f); }

  // Zero-copy view with a new shape of identical numel (storage shared;
  // always valid because tensors are contiguous row-major).
  Tensor Reshaped(Shape new_shape) const;

  // Zero-copy view of rows [start, start+length) of the leading axis.
  // SliceAxis() routes axis-0 slices here; exposed for direct use.
  Tensor SliceLeading(int64_t start, int64_t length) const;

  std::string ToString(int64_t max_entries = 32) const;

 private:
  // View constructor: adopt `storage` at `offset` without copying.
  Tensor(Shape shape, std::shared_ptr<Storage> storage, int64_t offset);

  // Forks a private copy of [offset_, offset_ + numel_). Called by mutating
  // accessors when the storage is shared.
  void Unshare();

  Shape shape_;
  int64_t numel_ = 0;
  int64_t offset_ = 0;
  std::shared_ptr<Storage> storage_;  // null iff numel_ == 0
};

// ---- Elementwise binary ops with NumPy-style broadcasting ---------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
// Shape of `Op(a, b)` under broadcasting; CHECK-fails on incompatibility.
Shape BroadcastShape(const Shape& a, const Shape& b);
// Reduce-sums `t` down to `target_shape` (the adjoint of broadcasting).
Tensor SumToShape(const Tensor& t, const Shape& target_shape);

// ---- Elementwise unary / scalar ops --------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Apply(const Tensor& a, const std::function<float(float)>& fn);
// Elementwise clamp to [lo, hi].
Tensor Clamp(const Tensor& a, float lo, float hi);
// Elementwise select: cond > 0.5 ? a : b (all same shape).
Tensor Where(const Tensor& cond, const Tensor& a, const Tensor& b);

// ---- Matrix products ------------------------------------------------------
// All products run on the tiled kernel layer in tensor/kernels/ and are
// bit-identical to the retained reference kernel at any thread count. The
// NT/TN variants read the transposed operand in place — no TransposeLast2
// materialization — which is how attention scores (Q·Kᵀ) and every
// MatMul-family backward pass stay copy-free.
//
// (m,k) x (k,n) -> (m,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
// (m,k) x (n,k)ᵀ -> (m,n): B is read transposed in place.
Tensor MatMulNT(const Tensor& a, const Tensor& b);
// (k,m)ᵀ x (k,n) -> (m,n): A is read transposed in place.
Tensor MatMulTN(const Tensor& a, const Tensor& b);
// (..., m, k) x (..., k, n) -> (..., m, n); leading dims must match exactly.
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);
// (..., m, k) x (..., n, k)ᵀ -> (..., m, n).
Tensor BatchedMatMulNT(const Tensor& a, const Tensor& b);
// (..., k, m)ᵀ x (..., k, n) -> (..., m, n).
Tensor BatchedMatMulTN(const Tensor& a, const Tensor& b);
// Applies a shared (k_in, k_out) matrix to the last axis: (..., k_in) ->
// (..., k_out). This is the kernel behind Linear / Conv1x1 layers; the
// weight's packed panel is cached across calls (see kernels/pack_cache).
Tensor MatMulLastDim(const Tensor& x, const Tensor& w);
// Applies the TRANSPOSE of a shared (k_in, k_out) matrix to the last axis:
// (..., k_out) -> (..., k_in). The backward of MatMulLastDim.
Tensor MatMulLastDimT(const Tensor& x, const Tensor& w);
// Applies a shared (rows_out, rows_in) matrix to the second-to-last axis:
// (..., rows_in, d) -> (..., rows_out, d). Kernel behind graph convolution
// (rows = nodes) and virtual-node downsampling; `p`'s packed panel is
// cached across calls.
Tensor MatMulNodeDim(const Tensor& p, const Tensor& x);
// Applies the TRANSPOSE of a shared (rows_out, rows_in) matrix to the
// second-to-last axis: (..., rows_out, d) -> (..., rows_in, d). The
// backward of MatMulNodeDim.
Tensor MatMulNodeDimT(const Tensor& p, const Tensor& x);

// ---- Reductions -------------------------------------------------------------
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);
// Sum over `axis`, keeping it as size-1 when keepdim.
Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim = false);

// ---- Shape manipulation ----------------------------------------------------
// Permutes axes; perm must be a permutation of [0, ndim).
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);
// Transposes the last two axes.
Tensor TransposeLast2(const Tensor& a);
// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
// Stacks same-shaped tensors along a new leading axis.
Tensor Stack(const std::vector<Tensor>& parts);
// Slices [start, start+length) along `axis`. Axis 0 returns a zero-copy
// view (see Tensor::SliceLeading); other axes copy.
Tensor SliceAxis(const Tensor& a, int64_t axis, int64_t start, int64_t length);

// ---- Softmax ----------------------------------------------------------------
// Numerically stable softmax over the last axis.
Tensor SoftmaxLastDim(const Tensor& a);

// ---- Comparisons -------------------------------------------------------------
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-5f);

// ---- Serialization ------------------------------------------------------------
// Binary format: ndim, dims, raw float payload. Used for model checkpoints.
// Encodes logical shape + values only, so views serialize identically to
// their deep-copied equivalents.
void WriteTensor(std::ostream& out, const Tensor& t);
Tensor ReadTensor(std::istream& in);

}  // namespace pristi::tensor

#endif  // PRISTI_TENSOR_TENSOR_H_
