#ifndef PRISTI_TENSOR_STORAGE_H_
#define PRISTI_TENSOR_STORAGE_H_

// Ref-counted float storage over a pooled workspace allocator.
//
// `Storage` is the single buffer type behind tensor::Tensor: a Tensor is a
// cheap header (shape + offset + shared_ptr<Storage>), so copies and views
// share one block and copy-on-write forks it only on mutation. Blocks come
// from a process-wide, size-bucketed BufferPool: freeing a Storage returns
// its block to the pool, and the next allocation of a similar size reuses
// it instead of touching the heap. This replaces the PR 2 `mallopt`
// band-aid structurally — reverse-diffusion steps recycle the previous
// step's activation buffers at pool-hit cost, with no mmap/munmap churn.
//
// Thread model: the pool keeps a small per-thread block cache in front of a
// mutex-protected global free list, so ParallelFor workers allocating
// kernel temporaries do not contend. All counters are atomics; the pool is
// safe (and TSan-clean) under concurrent allocation from any thread.
// Pooling only changes WHERE a buffer lives, never its contents: freshly
// allocated tensors are still zero-initialized by their constructors, so
// results are bit-identical with the pool on, off, or warm.
//
// Environment knobs (see also src/common/env.h):
//   PRISTI_BUFFER_POOL=0    disable recycling (every request hits the heap;
//                           counters still accumulate) — the A/B baseline.
//   PRISTI_POOL_MAX_MB=N    cap on pooled (cached-free) bytes, default 512.
//   PRISTI_MALLOC_TUNE=1    re-enable the legacy glibc mallopt tuning that
//                           the pool replaced (src/tensor/tensor.cc).

#include <atomic>
#include <cstdint>
#include <memory>

namespace pristi::tensor {

// Snapshot of the allocator counters since process start. Benches report
// phase deltas by snapshotting before/after a region; `requests` counts
// Storage blocks asked for, `pool_hits` the ones served by recycling, and
// `heap_allocs` the ones that actually touched the heap — so
// requests/heap_allocs is the "fewer heap allocations" factor the pool
// buys. Byte counters track bucket-rounded capacities.
struct AllocStats {
  uint64_t requests = 0;         // Storage blocks requested
  uint64_t pool_hits = 0;        // served by recycling a pooled block
  uint64_t heap_allocs = 0;      // served by a fresh heap allocation
  uint64_t bytes_requested = 0;  // cumulative requested payload bytes
  uint64_t live_bytes = 0;       // capacity bytes in live Storage blocks
  uint64_t pooled_bytes = 0;     // capacity bytes cached in the free pool
  uint64_t peak_live_bytes = 0;  // high-water mark of live_bytes

  double HitRate() const {
    return requests > 0
               ? static_cast<double>(pool_hits) / static_cast<double>(requests)
               : 0.0;
  }
};

AllocStats GetAllocStats();

// True unless PRISTI_BUFFER_POOL=0 disabled recycling at process start.
bool BufferPoolEnabled();

// Releases every block cached in the global free pool back to the heap
// (per-thread caches are flushed lazily as their threads allocate or exit).
// Tests use this to start a measurement from a cold pool.
void BufferPoolTrim();

// A ref-counted block of floats. Always obtained via Allocate() and held
// through shared_ptr; destruction returns the block to the BufferPool. The
// payload is NOT initialized — Tensor constructors zero-fill, so recycled
// (dirty) blocks can never leak stale values into results.
class Storage {
 public:
  // Grabs a pooled block with capacity for at least `numel` floats.
  // Public only so std::make_shared can see it; use Allocate().
  explicit Storage(int64_t numel);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  // Requested size in floats (the bucket capacity may be larger).
  int64_t size() const { return size_; }

  // Identity for content-addressed caches (the GEMM pack cache in
  // tensor/kernels/). `id()` is unique per Storage for the process lifetime
  // — NOT the buffer address, which the pool recycles — and `version()`
  // counts mutations: Tensor bumps it on every non-const data() access, so
  // (id, version) pins exact contents. A stale (id, version) pair can never
  // be revived, which makes cache entries keyed on it safe without keeping
  // the Storage alive.
  uint64_t id() const { return id_; }
  // The counter is atomic (relaxed) so a mutating access on one thread
  // overlapping a pack-cache lookup on another stays a well-defined data
  // race on the counter itself — the lookup sees some monotonic value and
  // at worst misses/repacks once; the caller still owns synchronization of
  // the payload bytes. Relaxed suffices: no ordering with the data is
  // implied, only torn reads are excluded (and TSan stays clean).
  uint64_t version() const { return version_.load(std::memory_order_relaxed); }
  void BumpVersion() { version_.fetch_add(1, std::memory_order_relaxed); }

  static std::shared_ptr<Storage> Allocate(int64_t numel) {
    return std::make_shared<Storage>(numel);
  }

 private:
  float* data_ = nullptr;
  int64_t size_ = 0;
  int32_t bucket_ = -1;  // free-list index; -1 = unpooled (oversized/disabled)
  uint64_t id_ = 0;  // process-unique (atomic counter, not the address)
  std::atomic<uint64_t> version_{0};  // mutations; bumped via BumpVersion()
};

}  // namespace pristi::tensor

#endif  // PRISTI_TENSOR_STORAGE_H_
