#ifndef PRISTI_EVAL_HARNESS_H_
#define PRISTI_EVAL_HARNESS_H_

// Experiment harness: adapts the diffusion models (PriSTI, CSDI, the
// ablation variants) to the common Imputer interface, runs any imputer over
// a task's test split, and reports the paper's metrics in raw data units.
//
// Exclusive model access: everything here (ImputeSeries, EvaluateImputer,
// EvaluateFittedImputer, the adapters) drives the model from the calling
// thread and assumes it is the model's ONLY user for the duration of the
// call — the window-level diffusion entry points underneath hold a
// diffusion::ModelAccessGuard and abort on overlap when debug checks are
// compiled in. To share one model between concurrent callers, put a
// serve::ServeSession in front of it instead of calling the harness from
// multiple threads.

#include <functional>
#include <memory>
#include <string>

#include "baselines/csdi.h"
#include "baselines/imputer.h"
#include "diffusion/ddpm.h"
#include "pristi/pristi_model.h"

namespace pristi::eval {

using baselines::Imputer;
using tensor::Tensor;

// Shared reduced-scale defaults for the diffusion models in the benches.
struct DiffusionRunOptions {
  int64_t diffusion_steps = 50;
  float beta_1 = 1e-4f;
  float beta_end = 0.2f;
  diffusion::TrainOptions train;
  diffusion::ImputeOptions impute;
};

// Wraps a ConditionalNoisePredictor + schedule + training config behind the
// Imputer interface so the harness treats diffusion models like any other
// method.
class DiffusionImputerAdapter : public Imputer {
 public:
  DiffusionImputerAdapter(std::string name,
                          std::shared_ptr<diffusion::ConditionalNoisePredictor>
                              model,
                          DiffusionRunOptions options);

  std::string name() const override { return name_; }
  void Fit(const data::ImputationTask& task, Rng& rng) override;
  Tensor Impute(const data::Sample& sample, Rng& rng) override;
  std::vector<Tensor> ImputeSamples(const data::Sample& sample,
                                    int64_t num_samples, Rng& rng) override;

  const std::vector<double>& train_losses() const { return train_losses_; }

  // Cumulative sampling throughput counters: every reverse-diffusion sample
  // generated through this adapter (Impute and ImputeSamples) and the wall
  // time spent generating them. The harness reports their ratio as
  // samples/sec.
  int64_t generated_samples() const { return generated_samples_; }
  double sample_seconds() const { return sample_seconds_; }

  // Adjusts sampling (sample count, DDIM) after construction; lets sweeps
  // reuse one trained model under different inference settings.
  void set_impute_options(const diffusion::ImputeOptions& impute) {
    options_.impute = impute;
  }
  const diffusion::ImputeOptions& impute_options() const {
    return options_.impute;
  }

  // Training knobs applied by the next Fit(); exposes the checkpoint/resume
  // options (TrainOptions::checkpoint_dir / resume_from / ema_decay / ...)
  // so the CLI and studies can thread them through without widening Fit's
  // signature.
  diffusion::TrainOptions& mutable_train_options() { return options_.train; }

 private:
  std::string name_;
  std::shared_ptr<diffusion::ConditionalNoisePredictor> model_;
  DiffusionRunOptions options_;
  diffusion::NoiseSchedule schedule_;
  std::vector<double> train_losses_;
  int64_t generated_samples_ = 0;
  double sample_seconds_ = 0.0;
};

// Factory helpers used across benches.
std::unique_ptr<DiffusionImputerAdapter> MakePristiImputer(
    const core::PristiConfig& config, const Tensor& adjacency,
    const DiffusionRunOptions& options, Rng& rng, std::string name = "PriSTI");
std::unique_ptr<DiffusionImputerAdapter> MakeCsdiImputer(
    const baselines::CsdiConfig& config, const DiffusionRunOptions& options,
    Rng& rng);

// One method's scores on one task (metrics in RAW data units).
struct MethodResult {
  std::string method;
  double mae = 0.0;
  double mse = 0.0;
  double crps = 0.0;  // normalized CRPS; 0 unless probabilistic eval ran
  double fit_seconds = 0.0;
  double impute_seconds = 0.0;
  // Reverse-diffusion samples generated per second during this evaluation;
  // 0 for non-diffusion methods (they produce point imputations only).
  double samples_per_sec = 0.0;
};

struct EvaluateOptions {
  // > 0 enables CRPS with this many generated samples per window.
  int64_t crps_samples = 0;
  // Restrict scoring to these nodes (empty = all); used by the
  // sensor-failure study.
  std::vector<int64_t> score_nodes;
};

// Fits `imputer` on the task and scores it on the test split.
MethodResult EvaluateImputer(Imputer* imputer,
                             const data::ImputationTask& task, Rng& rng,
                             const EvaluateOptions& options = {});

// Scores an already-fitted imputer (skips Fit).
MethodResult EvaluateFittedImputer(Imputer* imputer,
                                   const data::ImputationTask& task, Rng& rng,
                                   const EvaluateOptions& options = {});

// Imputes the ENTIRE series with a fitted imputer: observed entries keep
// their raw values, everything else (original missing and withheld) is
// filled from the imputation. Returns (T, N) in raw units — the input for
// the downstream forecasting study (Table V).
Tensor ImputeSeries(Imputer* imputer, const data::ImputationTask& task,
                    Rng& rng);

}  // namespace pristi::eval

#endif  // PRISTI_EVAL_HARNESS_H_
