#include "eval/harness.h"

#include <algorithm>

#include "autograd/variable.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "metrics/metrics.h"

namespace pristi::eval {

namespace t = ::pristi::tensor;

DiffusionImputerAdapter::DiffusionImputerAdapter(
    std::string name,
    std::shared_ptr<diffusion::ConditionalNoisePredictor> model,
    DiffusionRunOptions options)
    : name_(std::move(name)),
      model_(std::move(model)),
      options_(options),
      schedule_(diffusion::NoiseSchedule::Quadratic(
          options.diffusion_steps, options.beta_1, options.beta_end)) {
  CHECK(model_ != nullptr);
}

void DiffusionImputerAdapter::Fit(const data::ImputationTask& task,
                                  Rng& rng) {
  train_losses_ = diffusion::TrainDiffusionModel(model_.get(), schedule_,
                                                 task, options_.train, rng);
}

Tensor DiffusionImputerAdapter::Impute(const data::Sample& sample, Rng& rng) {
  Stopwatch watch;
  diffusion::ImputationResult result = diffusion::ImputeWindow(
      model_.get(), schedule_, sample, options_.impute, rng);
  sample_seconds_ += watch.ElapsedSeconds();
  generated_samples_ += options_.impute.num_samples;
  return result.median;
}

std::vector<Tensor> DiffusionImputerAdapter::ImputeSamples(
    const data::Sample& sample, int64_t num_samples, Rng& rng) {
  diffusion::ImputeOptions impute = options_.impute;
  impute.num_samples = num_samples;
  Stopwatch watch;
  diffusion::ImputationResult result =
      diffusion::ImputeWindow(model_.get(), schedule_, sample, impute, rng);
  sample_seconds_ += watch.ElapsedSeconds();
  generated_samples_ += num_samples;
  return std::move(result.samples);
}

std::unique_ptr<DiffusionImputerAdapter> MakePristiImputer(
    const core::PristiConfig& config, const Tensor& adjacency,
    const DiffusionRunOptions& options, Rng& rng, std::string name) {
  auto model = std::make_shared<core::PristiModel>(config, adjacency, rng);
  return std::make_unique<DiffusionImputerAdapter>(std::move(name),
                                                   std::move(model), options);
}

std::unique_ptr<DiffusionImputerAdapter> MakeCsdiImputer(
    const baselines::CsdiConfig& config, const DiffusionRunOptions& options,
    Rng& rng) {
  auto model = std::make_shared<baselines::CsdiModel>(config, rng);
  return std::make_unique<DiffusionImputerAdapter>("CSDI", std::move(model),
                                                   options);
}

namespace {

// Zeroes mask entries outside `score_nodes` (node-major (N, L) masks).
Tensor RestrictToNodes(const Tensor& mask,
                       const std::vector<int64_t>& score_nodes) {
  if (score_nodes.empty()) return mask;
  Tensor out = Tensor::Zeros(mask.shape());
  int64_t l = mask.dim(1);
  for (int64_t node : score_nodes) {
    for (int64_t step = 0; step < l; ++step) {
      out.at({node, step}) = mask.at({node, step});
    }
  }
  return out;
}

}  // namespace

MethodResult EvaluateFittedImputer(Imputer* imputer,
                                   const data::ImputationTask& task, Rng& rng,
                                   const EvaluateOptions& options) {
  CHECK(imputer != nullptr);
  // Evaluation is inference-only for every imputer (fitting happened in
  // Fit()); skip tape recording for all Impute calls below.
  autograd::NoGradGuard no_grad;
  MethodResult result;
  result.method = imputer->name();
  metrics::ErrorAccumulator errors;
  metrics::CrpsAccumulator crps;
  // Snapshot the adapter's throughput counters so samples/sec covers only
  // this evaluation (adapters can be evaluated repeatedly across sweeps).
  auto* diffusion_adapter = dynamic_cast<DiffusionImputerAdapter*>(imputer);
  int64_t samples_before =
      diffusion_adapter ? diffusion_adapter->generated_samples() : 0;
  double seconds_before =
      diffusion_adapter ? diffusion_adapter->sample_seconds() : 0.0;
  Stopwatch impute_watch;
  for (const data::Sample& sample : data::ExtractSamples(task, "test")) {
    Tensor eval_mask = RestrictToNodes(sample.eval, options.score_nodes);
    if (t::SumAll(eval_mask) == 0.0f) continue;
    Tensor truth_raw =
        task.normalizer.Invert(sample.values, /*node_major=*/true);
    Tensor prediction = imputer->Impute(sample, rng);
    Tensor prediction_raw =
        task.normalizer.Invert(prediction, /*node_major=*/true);
    errors.Add(prediction_raw, truth_raw, eval_mask);
    if (options.crps_samples > 0) {
      std::vector<Tensor> samples =
          imputer->ImputeSamples(sample, options.crps_samples, rng);
      std::vector<Tensor> samples_raw;
      samples_raw.reserve(samples.size());
      for (const Tensor& s : samples) {
        samples_raw.push_back(
            task.normalizer.Invert(s, /*node_major=*/true));
      }
      crps.Add(samples_raw, truth_raw, eval_mask);
    }
  }
  result.impute_seconds = impute_watch.ElapsedSeconds();
  if (diffusion_adapter != nullptr) {
    int64_t samples = diffusion_adapter->generated_samples() - samples_before;
    double seconds = diffusion_adapter->sample_seconds() - seconds_before;
    if (samples > 0 && seconds > 0.0) {
      result.samples_per_sec = static_cast<double>(samples) / seconds;
    }
  }
  result.mae = errors.Mae();
  result.mse = errors.Mse();
  if (options.crps_samples > 0) result.crps = crps.NormalizedCrps();
  return result;
}

Tensor ImputeSeries(Imputer* imputer, const data::ImputationTask& task,
                    Rng& rng) {
  autograd::NoGradGuard no_grad;
  int64_t t_steps = task.dataset.num_steps;
  int64_t n = task.dataset.num_nodes;
  int64_t l = task.window_len;
  Tensor out = task.dataset.values;  // start from ground truth layout
  // Overwrite every entry: observed -> raw value; missing -> imputation.
  for (int64_t start = 0; start < t_steps; start += l) {
    if (start + l > t_steps) start = t_steps - l;  // clipped tail window
    data::Sample sample = data::ExtractWindow(task, start);
    Tensor prediction = imputer->Impute(sample, rng);
    Tensor prediction_raw =
        task.normalizer.Invert(prediction, /*node_major=*/true);
    for (int64_t node = 0; node < n; ++node) {
      for (int64_t step = 0; step < l; ++step) {
        if (sample.observed.at({node, step}) < 0.5f) {
          out.at({start + step, node}) = prediction_raw.at({node, step});
        } else {
          out.at({start + step, node}) =
              task.dataset.values.at({start + step, node});
        }
      }
    }
    if (start == t_steps - l) break;
  }
  return out;
}

MethodResult EvaluateImputer(Imputer* imputer,
                             const data::ImputationTask& task, Rng& rng,
                             const EvaluateOptions& options) {
  Stopwatch fit_watch;
  imputer->Fit(task, rng);
  double fit_seconds = fit_watch.ElapsedSeconds();
  MethodResult result = EvaluateFittedImputer(imputer, task, rng, options);
  result.fit_seconds = fit_seconds;
  return result;
}

}  // namespace pristi::eval
