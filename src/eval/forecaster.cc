#include "eval/forecaster.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "common/logging.h"
#include "metrics/metrics.h"
#include "nn/graph_conv.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace pristi::eval {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;
using autograd::Variable;

namespace {

// Graph-WaveNet-lite: per-node temporal mixing, two graph convolutions with
// the bidirectional transition supports + adaptive adjacency, horizon head.
class GwnLite : public nn::Module {
 public:
  GwnLite(const graph::SensorGraph& graph, const ForecastOptions& options,
          Rng& rng)
      : input_proj_(options.input_len, options.hidden, rng),
        gc1_(options.hidden, options.hidden,
             graph::BidirectionalTransitions(graph.adjacency), rng, 2, 4,
             graph.num_nodes),
        gc2_(options.hidden, options.hidden,
             graph::BidirectionalTransitions(graph.adjacency), rng, 2, 4,
             graph.num_nodes),
        head_(options.hidden, options.horizon, rng) {
    AddChild("input_proj", &input_proj_);
    AddChild("gc1", &gc1_);
    AddChild("gc2", &gc2_);
    AddChild("head", &head_);
  }

  // x: (B, N, P) -> (B, N, F).
  Variable Forward(const Tensor& x) const {
    Variable h = ag::Relu(input_proj_.Forward(ag::Constant(x)));
    Variable g1 = ag::Relu(gc1_.Forward(h));
    Variable g2 = gc2_.Forward(g1);
    // Residual connection keeps per-node information flowing.
    return head_.Forward(ag::Relu(ag::Add(h, g2)));
  }

 private:
  nn::Linear input_proj_;
  nn::GraphConv gc1_;
  nn::GraphConv gc2_;
  nn::Linear head_;
};

}  // namespace

ForecastResult TrainAndEvaluateForecaster(const Tensor& series,
                                          const graph::SensorGraph& graph,
                                          const Tensor& eval_truth,
                                          const ForecastOptions& options,
                                          Rng& rng) {
  CHECK_EQ(series.ndim(), 2);
  CHECK(t::ShapesEqual(series.shape(), eval_truth.shape()));
  int64_t t_steps = series.dim(0), n = series.dim(1);
  int64_t window = options.input_len + options.horizon;
  CHECK_GT(t_steps, 3 * window);

  // Per-node standardization fitted on the training portion of the series.
  int64_t train_end = static_cast<int64_t>(t_steps * options.train_frac);
  int64_t test_begin = static_cast<int64_t>(
      t_steps * (options.train_frac + options.val_frac));
  std::vector<double> mean(static_cast<size_t>(n), 0.0),
      stddev(static_cast<size_t>(n), 1.0);
  for (int64_t node = 0; node < n; ++node) {
    double sum = 0;
    for (int64_t step = 0; step < train_end; ++step) {
      sum += series.at({step, node});
    }
    double mu = sum / train_end;
    double var = 0;
    for (int64_t step = 0; step < train_end; ++step) {
      double d = series.at({step, node}) - mu;
      var += d * d;
    }
    mean[static_cast<size_t>(node)] = mu;
    stddev[static_cast<size_t>(node)] =
        std::sqrt(std::max(var / train_end, 1e-8));
  }
  auto normalized_window = [&](int64_t start, int64_t len,
                               const Tensor& source) {
    Tensor out({n, len});
    for (int64_t node = 0; node < n; ++node) {
      for (int64_t step = 0; step < len; ++step) {
        out.at({node, step}) = static_cast<float>(
            (source.at({start + step, node}) -
             mean[static_cast<size_t>(node)]) /
            stddev[static_cast<size_t>(node)]);
      }
    }
    return out;
  };

  GwnLite model(graph, options, rng);
  nn::Adam optimizer(model.Parameters(), {.lr = options.lr});

  // Training pairs from the train portion, stride = horizon.
  std::vector<int64_t> starts;
  for (int64_t start = 0; start + window <= train_end;
       start += options.horizon) {
    starts.push_back(start);
  }
  CHECK(!starts.empty());
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<int64_t> order =
        rng.Permutation(static_cast<int64_t>(starts.size()));
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(options.batch_size)) {
      size_t end = std::min(order.size(),
                            begin + static_cast<size_t>(options.batch_size));
      int64_t b = static_cast<int64_t>(end - begin);
      Tensor x({b, n, options.input_len});
      Tensor y({b, n, options.horizon});
      for (int64_t i = 0; i < b; ++i) {
        int64_t start = starts[static_cast<size_t>(
            order[begin + static_cast<size_t>(i)])];
        Tensor xin = normalized_window(start, options.input_len, series);
        Tensor yout = normalized_window(start + options.input_len,
                                        options.horizon, series);
        std::copy(xin.data(), xin.data() + n * options.input_len,
                  x.data() + i * n * options.input_len);
        std::copy(yout.data(), yout.data() + n * options.horizon,
                  y.data() + i * n * options.horizon);
      }
      model.ZeroGrad();
      Variable pred = model.Forward(x);
      Variable loss = ag::MeanAll(ag::Square(ag::Sub(pred, ag::Constant(y))));
      loss.Backward();
      optimizer.Step();
    }
  }

  // Evaluate on the test portion against the ground truth.
  metrics::ErrorAccumulator errors;
  for (int64_t start = test_begin; start + window <= t_steps;
       start += options.horizon) {
    Tensor x = normalized_window(start, options.input_len, series);
    Tensor pred =
        model.Forward(x.Reshaped({1, n, options.input_len})).value();
    // Denormalize and compare with ground truth (raw units).
    Tensor pred_raw({n, options.horizon});
    Tensor truth_raw({n, options.horizon});
    for (int64_t node = 0; node < n; ++node) {
      for (int64_t step = 0; step < options.horizon; ++step) {
        pred_raw.at({node, step}) = static_cast<float>(
            pred.at({0, node, step}) * stddev[static_cast<size_t>(node)] +
            mean[static_cast<size_t>(node)]);
        truth_raw.at({node, step}) =
            eval_truth.at({start + options.input_len + step, node});
      }
    }
    errors.Add(pred_raw, truth_raw, Tensor::Ones({n, options.horizon}));
  }
  return {errors.Mae(), errors.Rmse()};
}

}  // namespace pristi::eval
