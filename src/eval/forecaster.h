#ifndef PRISTI_EVAL_FORECASTER_H_
#define PRISTI_EVAL_FORECASTER_H_

// Downstream-task evaluation (Table V): a Graph-WaveNet-lite forecaster is
// trained on an (imputed) series and scored against ground truth — the
// paper's protocol of "impute all the data, then train Graph Wavenet to
// predict the next 12 steps from the past 12".

#include "common/rng.h"
#include "graph/adjacency.h"
#include "tensor/tensor.h"

namespace pristi::eval {

using tensor::Tensor;

struct ForecastOptions {
  int64_t input_len = 12;
  int64_t horizon = 12;
  int64_t hidden = 32;
  int64_t epochs = 20;
  int64_t batch_size = 16;
  float lr = 5e-3f;
  double train_frac = 0.7;
  double val_frac = 0.1;
};

struct ForecastResult {
  double mae = 0.0;
  double rmse = 0.0;
};

// Trains the forecaster on `series` (T, N) — typically an imputed dataset —
// and evaluates horizon predictions on the test portion against
// `eval_truth` (same shape; pass the ground-truth series).
ForecastResult TrainAndEvaluateForecaster(const Tensor& series,
                                          const graph::SensorGraph& graph,
                                          const Tensor& eval_truth,
                                          const ForecastOptions& options,
                                          Rng& rng);

}  // namespace pristi::eval

#endif  // PRISTI_EVAL_FORECASTER_H_
