#ifndef PRISTI_DATA_MISSING_H_
#define PRISTI_DATA_MISSING_H_

// Evaluation missing-pattern injectors (paper Section IV-D, Fig. 4) and
// training-time mask strategies (Section III-A / IV-D).
//
// Conventions: masks are 1 = present. Given a dataset's `observed_mask`
// (T, N), an injector returns an `eval_mask` (T, N) marking the entries that
// are withheld from the model and later scored — always a subset of the
// observed entries, exactly as the paper evaluates "only on the manually
// masked parts".

#include "common/rng.h"
#include "tensor/tensor.h"

namespace pristi::data {

using tensor::Tensor;

enum class MissingPattern {
  kPoint,             // randomly mask 25% of observations
  kBlock,             // 5% random + per-sensor outages of 1-4 h w.p. 0.15%
  kSimulatedFailure,  // AQI-style structured failures (~24.6% of observed)
};

const char* MissingPatternName(MissingPattern pattern);

struct BlockMissingOptions {
  double point_rate = 0.05;     // "randomly masking 5% of the observed data"
  double block_prob = 0.0015;   // per sensor, per step: start an outage
  int64_t min_len = 12;         // 1 hour at 5-min sampling
  int64_t max_len = 48;         // 4 hours
};

// ---- Evaluation injectors --------------------------------------------------
// Each returns eval_mask (1 = withheld & scored), a subset of observed_mask.
Tensor InjectPointMissing(const Tensor& observed_mask, double rate, Rng& rng);
Tensor InjectBlockMissing(const Tensor& observed_mask,
                          const BlockMissingOptions& options, Rng& rng);
// Mimics AQI-36's simulated-failure protocol (from ST-MVL): long outages
// plus scattered points, targeting `rate` of the observed entries (paper:
// 24.6%). Real geo-sensory failures are SPATIALLY CORRELATED — a regional
// outage takes down a station and its neighbours together — so when
// `distances` (N, N) is provided, each outage fails a geographic cluster of
// stations over the same interval.
Tensor InjectSimulatedFailure(const Tensor& observed_mask, double rate,
                              Rng& rng, const Tensor* distances = nullptr);
// Masks every observation of the listed sensors (the paper's RQ5 study).
Tensor InjectSensorFailure(const Tensor& observed_mask,
                           const std::vector<int64_t>& nodes);

// MNAR (missing-not-at-random) injection, an extension beyond the paper's
// MCAR protocols: the withholding probability grows with the entry's value
// (standardized per node), modelling sensors that saturate or fail under
// extreme readings. `severity` = 0 reduces to point missing; ~1.5 strongly
// biases toward peaks. Targets `rate` of the observed entries overall.
Tensor InjectValueDependentMissing(const Tensor& values,
                                   const Tensor& observed_mask, double rate,
                                   double severity, Rng& rng);

// Dispatches on the enum with the paper's default parameters per pattern.
// `distances` enables clustered simulated failures (see above).
Tensor InjectPattern(const Tensor& observed_mask, MissingPattern pattern,
                     Rng& rng, const Tensor* distances = nullptr);

// ---- Training mask strategies ----------------------------------------------
// Operate on a single training window's observed mask, shaped (N, L), and
// return the training TARGET mask (entries to noise and reconstruct),
// a subset of the window's observed entries.

enum class MaskStrategy {
  kPoint,   // mask m% of observed, m ~ U[0, 100]
  kBlock,   // per-node sequences of length [L/2, L] w.p. <= 15%, + 5% points
  kHybrid,  // 50% point; else block
  kHybridHistorical,  // 50% point; else an historical pattern if provided
};

const char* MaskStrategyName(MaskStrategy strategy);

// `historical_pattern`, when non-null, must be an (N, L) observed mask from
// another sample; its MISSING entries become this sample's targets (the
// paper's "historical missing pattern" option inside the hybrid strategy).
Tensor ApplyMaskStrategy(const Tensor& window_observed, MaskStrategy strategy,
                         Rng& rng, const Tensor* historical_pattern = nullptr);

// ---- Mask algebra -----------------------------------------------------------
// Elementwise a AND (NOT b): what remains observed after withholding b.
Tensor MaskMinus(const Tensor& a, const Tensor& b);
// Fraction of 1-entries.
double MaskRate(const Tensor& mask);
// Fraction of a's 1-entries also set in b.
double MaskOverlap(const Tensor& a, const Tensor& b);

}  // namespace pristi::data

#endif  // PRISTI_DATA_MISSING_H_
