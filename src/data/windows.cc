#include "data/windows.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"

namespace pristi::data {

Normalizer Normalizer::Fit(const Tensor& values, const Tensor& mask,
                           int64_t train_begin, int64_t train_end) {
  CHECK_EQ(values.ndim(), 2);
  CHECK(tensor::ShapesEqual(values.shape(), mask.shape()));
  CHECK_LE(train_end, values.dim(0));
  CHECK_LT(train_begin, train_end);
  int64_t n = values.dim(1);
  Normalizer norm;
  norm.means_.assign(static_cast<size_t>(n), 0.0);
  norm.stds_.assign(static_cast<size_t>(n), 1.0);
  for (int64_t node = 0; node < n; ++node) {
    double sum = 0.0;
    int64_t count = 0;
    for (int64_t t = train_begin; t < train_end; ++t) {
      if (mask.at({t, node}) > 0.5f) {
        sum += values.at({t, node});
        ++count;
      }
    }
    if (count == 0) continue;  // keep identity transform
    double mean = sum / count;
    double var = 0.0;
    for (int64_t t = train_begin; t < train_end; ++t) {
      if (mask.at({t, node}) > 0.5f) {
        double d = values.at({t, node}) - mean;
        var += d * d;
      }
    }
    var /= count;
    norm.means_[static_cast<size_t>(node)] = mean;
    norm.stds_[static_cast<size_t>(node)] = std::sqrt(std::max(var, 1e-8));
  }
  return norm;
}

namespace {

Tensor AffinePerNode(const Tensor& values, bool node_major,
                     const std::vector<double>& means,
                     const std::vector<double>& stds, bool invert) {
  CHECK_EQ(values.ndim(), 2);
  int64_t n = node_major ? values.dim(0) : values.dim(1);
  CHECK_EQ(static_cast<size_t>(n), means.size());
  Tensor out(values.shape());
  int64_t rows = values.dim(0), cols = values.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      size_t node = static_cast<size_t>(node_major ? r : c);
      double v = values.at({r, c});
      double y = invert ? v * stds[node] + means[node]
                        : (v - means[node]) / stds[node];
      out.at({r, c}) = static_cast<float>(y);
    }
  }
  return out;
}

}  // namespace

Tensor Normalizer::Apply(const Tensor& values, bool node_major) const {
  return AffinePerNode(values, node_major, means_, stds_, /*invert=*/false);
}

Tensor Normalizer::Invert(const Tensor& values, bool node_major) const {
  return AffinePerNode(values, node_major, means_, stds_, /*invert=*/true);
}

Tensor LinearInterpolate(const Tensor& values, const Tensor& mask) {
  CHECK_EQ(values.ndim(), 2);
  CHECK(tensor::ShapesEqual(values.shape(), mask.shape()));
  int64_t n = values.dim(0), l = values.dim(1);
  Tensor out = values;
  for (int64_t node = 0; node < n; ++node) {
    // Collect observed indices for this node.
    std::vector<int64_t> obs;
    for (int64_t t = 0; t < l; ++t) {
      if (mask.at({node, t}) > 0.5f) obs.push_back(t);
    }
    if (obs.empty()) {
      for (int64_t t = 0; t < l; ++t) out.at({node, t}) = 0.0f;
      continue;
    }
    size_t next = 0;
    for (int64_t t = 0; t < l; ++t) {
      if (mask.at({node, t}) > 0.5f) {
        if (next < obs.size() && obs[next] == t) ++next;
        continue;
      }
      // prev observed index (or none), next observed index (or none)
      int64_t right = next < obs.size() ? obs[next] : -1;
      int64_t left = next > 0 ? obs[next - 1] : -1;
      float value;
      if (left < 0) {
        value = values.at({node, right});
      } else if (right < 0) {
        value = values.at({node, left});
      } else {
        float vl = values.at({node, left});
        float vr = values.at({node, right});
        float alpha = static_cast<float>(t - left) /
                      static_cast<float>(right - left);
        value = vl + alpha * (vr - vl);
      }
      out.at({node, t}) = value;
    }
  }
  return out;
}

ImputationTask MakeTask(SpatioTemporalDataset dataset, MissingPattern pattern,
                        const TaskOptions& options, Rng& rng) {
  ImputationTask task;
  task.pattern = pattern;
  task.window_len = options.window_len;
  task.train_stride =
      options.stride > 0 ? options.stride : options.window_len;
  task.eval_mask = InjectPattern(dataset.observed_mask, pattern, rng,
                                 &dataset.graph.distances);
  task.model_observed_mask = MaskMinus(dataset.observed_mask, task.eval_mask);
  int64_t t_steps = dataset.num_steps;
  task.train_end = static_cast<int64_t>(t_steps * options.train_frac);
  task.val_end = task.train_end +
                 static_cast<int64_t>(t_steps * options.val_frac);
  CHECK_GT(task.train_end, options.window_len);
  CHECK_LT(task.val_end, t_steps);
  task.normalizer = Normalizer::Fit(dataset.values, task.model_observed_mask,
                                    0, task.train_end);
  task.dataset = std::move(dataset);
  return task;
}

Sample ExtractWindow(const ImputationTask& task, int64_t start) {
  int64_t l = task.window_len;
  int64_t n = task.dataset.num_nodes;
  CHECK_GE(start, 0);
  CHECK_LE(start + l, task.dataset.num_steps);
  Sample sample;
  sample.start = start;
  sample.values = Tensor(tensor::Shape{n, l});
  sample.observed = Tensor(tensor::Shape{n, l});
  sample.eval = Tensor(tensor::Shape{n, l});
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t t = 0; t < l; ++t) {
      sample.values.at({node, t}) = task.dataset.values.at({start + t, node});
      sample.observed.at({node, t}) =
          task.model_observed_mask.at({start + t, node});
      sample.eval.at({node, t}) = task.eval_mask.at({start + t, node});
    }
  }
  sample.values = task.normalizer.Apply(sample.values, /*node_major=*/true);
  return sample;
}

std::vector<Sample> ExtractSamples(const ImputationTask& task,
                                   const std::string& split) {
  int64_t begin = 0, end = 0;
  if (split == "train") {
    begin = 0;
    end = task.train_end;
  } else if (split == "val") {
    begin = task.train_end;
    end = task.val_end;
  } else if (split == "test") {
    begin = task.val_end;
    end = task.dataset.num_steps;
  } else {
    PRISTI_LOG_FATAL << "unknown split: " << split;
  }
  int64_t stride = split == "train" ? task.train_stride : task.window_len;
  std::vector<Sample> samples;
  for (int64_t start = begin; start + task.window_len <= end;
       start += stride) {
    samples.push_back(ExtractWindow(task, start));
  }
  return samples;
}

}  // namespace pristi::data
