#ifndef PRISTI_DATA_WINDOWS_H_
#define PRISTI_DATA_WINDOWS_H_

// Window extraction, per-node standardization, train/val/test splitting,
// linear interpolation (the paper's Interpolate(.) primitive), and the
// ImputationTask bundle that the models and benches consume.

#include <vector>

#include "data/dataset.h"
#include "data/missing.h"

namespace pristi::data {

// One model-facing sample, node-major: (N, L).
struct Sample {
  Tensor values;    // (N, L) ground truth (normalized if the task says so)
  Tensor observed;  // (N, L) 1 = visible to the model
  Tensor eval;      // (N, L) 1 = withheld entries to score
  int64_t start = 0;  // start step in the source series
};

// Per-node affine standardization fitted on observed training entries only
// (fitting on test data or on withheld entries would leak).
class Normalizer {
 public:
  // values/mask: (T, N); [train_begin, train_end) marks the fit range.
  static Normalizer Fit(const Tensor& values, const Tensor& mask,
                        int64_t train_begin, int64_t train_end);

  // In: (N, L) or (T, N) selected by `node_major`.
  Tensor Apply(const Tensor& values, bool node_major) const;
  Tensor Invert(const Tensor& values, bool node_major) const;

  double mean(int64_t node) const { return means_[static_cast<size_t>(node)]; }
  double stddev(int64_t node) const { return stds_[static_cast<size_t>(node)]; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

// Linear interpolation along time for each node; the paper's coarse
// conditional information X(cal). Missing runs are interpolated between the
// nearest observed neighbours, edges extend flat, fully-missing rows get 0.
// values/mask: (N, L).
Tensor LinearInterpolate(const Tensor& values, const Tensor& mask);

// A fully prepared experiment: normalized series, masks, split boundaries,
// window samples per split.
struct ImputationTask {
  SpatioTemporalDataset dataset;
  MissingPattern pattern = MissingPattern::kPoint;
  Tensor eval_mask;            // (T, N) withheld entries
  Tensor model_observed_mask;  // (T, N) observed AND NOT withheld
  Normalizer normalizer;
  int64_t window_len = 24;
  // Stride between training-window starts (val/test use non-overlapping
  // windows so each withheld entry is scored once).
  int64_t train_stride = 24;
  // Split boundaries in time steps: [0, train_end) train,
  // [train_end, val_end) validation, [val_end, T) test.
  int64_t train_end = 0;
  int64_t val_end = 0;
};

struct TaskOptions {
  int64_t window_len = 24;
  double train_frac = 0.7;
  double val_frac = 0.1;
  // Stride between window starts when enumerating samples.
  int64_t stride = 0;  // 0 -> window_len (non-overlapping)
};

// Injects `pattern`, fits the normalizer on the training range, and bundles
// everything for the harness.
ImputationTask MakeTask(SpatioTemporalDataset dataset, MissingPattern pattern,
                        const TaskOptions& options, Rng& rng);

// Enumerate normalized samples from a split ("train" | "val" | "test").
// Sample.values are normalized; Sample.observed excludes withheld entries;
// Sample.eval marks withheld entries inside the window.
std::vector<Sample> ExtractSamples(const ImputationTask& task,
                                   const std::string& split);

// A single (N, L) window starting at `start`, normalized per the task.
Sample ExtractWindow(const ImputationTask& task, int64_t start);

}  // namespace pristi::data

#endif  // PRISTI_DATA_WINDOWS_H_
