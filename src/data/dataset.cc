#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/logging.h"

namespace pristi::data {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Plants original missingness: a block share arrives as per-sensor outages,
// the rest as isolated points, targeting `rate` overall.
Tensor MakeObservedMask(const SyntheticConfig& config, Rng& rng) {
  int64_t t_steps = config.num_steps;
  int64_t n = config.num_nodes;
  Tensor mask = Tensor::Ones({t_steps, n});
  if (config.original_missing_rate <= 0.0) return mask;

  int64_t total = t_steps * n;
  int64_t current = 0;  // tracked incrementally as entries flip to missing

  // Blocks first.
  int64_t block_budget = static_cast<int64_t>(
      total * config.original_missing_rate * config.original_block_share);
  while (current < block_budget) {
    int64_t node = rng.UniformInt(0, n - 1);
    int64_t len = rng.UniformInt(config.original_block_min_len,
                                 config.original_block_max_len);
    int64_t start = rng.UniformInt(0, std::max<int64_t>(t_steps - len, 0));
    for (int64_t t = start; t < std::min(start + len, t_steps); ++t) {
      if (mask.at({t, node}) > 0.5f) {
        mask.at({t, node}) = 0.0f;
        ++current;
      }
    }
  }
  // Then points to reach the target rate.
  int64_t target = static_cast<int64_t>(total * config.original_missing_rate);
  // Expected-value filling: each still-observed entry drops with the
  // probability that closes the gap.
  double point_prob =
      static_cast<double>(target - current) /
      std::max<int64_t>(total - current, 1);
  if (point_prob > 0) {
    for (int64_t i = 0; i < total; ++i) {
      if (mask[i] > 0.5f && rng.Bernoulli(point_prob)) mask[i] = 0.0f;
    }
  }
  return mask;
}

}  // namespace

SpatioTemporalDataset GenerateSynthetic(const SyntheticConfig& config,
                                        Rng& rng) {
  CHECK_GT(config.num_nodes, 1);
  CHECK_GT(config.num_steps, 2);
  CHECK_GT(config.steps_per_day, 1);

  SpatioTemporalDataset dataset;
  dataset.name = config.name;
  dataset.num_nodes = config.num_nodes;
  dataset.num_steps = config.num_steps;
  dataset.steps_per_day = config.steps_per_day;
  dataset.graph =
      graph::BuildSensorGraph(config.num_nodes, rng, config.graph_clusters,
                              config.graph_kernel_threshold);

  int64_t n = config.num_nodes;
  int64_t t_steps = config.num_steps;
  Tensor transition = graph::TransitionMatrix(dataset.graph.adjacency);

  // Per-node statics. Phase follows location so that spatial neighbours
  // peak together — this is what makes geography informative for imputation.
  std::vector<double> base(n), amp(n), phase(n);
  for (int64_t i = 0; i < n; ++i) {
    base[i] = config.base_mean + rng.Normal(0, config.base_std);
    amp[i] = std::max(0.0, config.season_amp_mean +
                                rng.Normal(0, config.season_amp_std));
    double px = dataset.graph.coords.at({i, 0});
    double py = dataset.graph.coords.at({i, 1});
    phase[i] = kTwoPi * 0.35 * (px + py) + rng.Normal(0, 0.15);
  }

  // Latent graph-diffusion AR(1) process.
  std::vector<double> z(n, 0.0), z_next(n, 0.0);
  dataset.values = Tensor(tensor::Shape{t_steps, n});
  for (int64_t t = 0; t < t_steps; ++t) {
    // z_next = ar * ((1 - mix) z + mix * T z) + noise
    for (int64_t i = 0; i < n; ++i) {
      double diffused = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        float w = transition.at({i, j});
        if (w != 0.0f) diffused += w * z[j];
      }
      z_next[i] = config.ar_coeff * ((1.0 - config.spatial_mix) * z[i] +
                                     config.spatial_mix * diffused) +
                  rng.Normal(0, config.latent_noise);
    }
    std::swap(z, z_next);

    double day_pos = static_cast<double>(t % config.steps_per_day) /
                     config.steps_per_day;
    for (int64_t i = 0; i < n; ++i) {
      double season = std::sin(kTwoPi * day_pos + phase[i]);
      if (config.second_harmonic > 0.0) {
        season += config.second_harmonic *
                  std::sin(2.0 * kTwoPi * day_pos + 2.0 * phase[i]);
      }
      double value = base[i] + amp[i] * season +
                     config.latent_scale * z[i] +
                     config.latent_quadratic * z[i] * z[i] +
                     rng.Normal(0, config.obs_noise);
      if (config.clamp_nonnegative) value = std::max(value, 0.0);
      dataset.values.at({t, i}) = static_cast<float>(value);
    }
  }

  dataset.observed_mask = MakeObservedMask(config, rng);
  return dataset;
}

SyntheticConfig Aqi36LikeConfig(int64_t num_nodes, int64_t num_steps) {
  SyntheticConfig config;
  config.name = "AQI-36-like";
  config.num_nodes = num_nodes;
  config.num_steps = num_steps;
  config.steps_per_day = 24;  // hourly sampling
  config.base_mean = 60.0;    // PM2.5-like level
  config.base_std = 15.0;
  config.season_amp_mean = 20.0;
  config.season_amp_std = 8.0;
  config.second_harmonic = 0.0;
  config.ar_coeff = 0.95;       // pollution episodes persist
  config.spatial_mix = 0.6;     // strong regional coherence
  config.latent_noise = 1.2;
  config.latent_scale = 10.0;
  config.latent_quadratic = 2.0;  // right-skewed pollution episodes
  config.obs_noise = 2.0;
  config.clamp_nonnegative = true;
  config.original_missing_rate = 0.1324;  // paper: 13.24%
  config.original_block_share = 0.7;      // AQI missing is mostly outages
  config.original_block_min_len = 6;
  config.original_block_max_len = 48;
  return config;
}

SyntheticConfig MetrLaLikeConfig(int64_t num_nodes, int64_t num_steps) {
  SyntheticConfig config;
  config.name = "METR-LA-like";
  config.num_nodes = num_nodes;
  config.num_steps = num_steps;
  config.steps_per_day = 288;  // 5-minute sampling
  config.base_mean = 58.0;     // mph free-flow-ish
  config.base_std = 6.0;
  config.season_amp_mean = 10.0;  // rush-hour swing
  config.season_amp_std = 3.0;
  config.second_harmonic = 0.6;   // two rush hours per day
  config.ar_coeff = 0.9;
  config.spatial_mix = 0.5;
  config.latent_noise = 0.8;
  config.latent_scale = 5.0;
  config.obs_noise = 1.5;
  config.clamp_nonnegative = true;
  config.original_missing_rate = 0.081;  // paper: 8.10%
  config.original_block_share = 0.5;
  config.original_block_min_len = 6;
  config.original_block_max_len = 36;
  return config;
}

SyntheticConfig LargeGraphLikeConfig(int64_t num_nodes, int64_t num_steps) {
  SyntheticConfig config = Aqi36LikeConfig(num_nodes, num_steps);
  config.name = "LARGE-sparse-like";
  // One cluster per ~32 sensors plus an aggressive kernel cutoff: the
  // adaptive-sigma kernel gives cross-cluster pairs weights around
  // exp(-1) ~ 0.37, so a 0.5 threshold prunes them and adjacency nnz grows
  // ~ linearly in n instead of n^2 (and GenerateSynthetic's latent
  // diffusion stays O(T * nnz)).
  config.graph_clusters = std::max<int64_t>(num_nodes / 32, 8);
  config.graph_kernel_threshold = 0.5;
  // Short feeds with lighter outage structure: runtime should scale with
  // the node axis, which is what this preset exists to exercise.
  config.original_block_max_len = 24;
  return config;
}

SyntheticConfig PemsBayLikeConfig(int64_t num_nodes, int64_t num_steps) {
  SyntheticConfig config = MetrLaLikeConfig(num_nodes, num_steps);
  config.name = "PEMS-BAY-like";
  config.base_mean = 62.0;
  config.base_std = 4.0;
  config.season_amp_mean = 8.0;
  config.latent_scale = 4.0;
  config.obs_noise = 1.0;
  config.original_missing_rate = 0.0002;  // paper: 0.02%
  config.original_block_share = 0.0;
  return config;
}

}  // namespace pristi::data
