#ifndef PRISTI_DATA_IO_H_
#define PRISTI_DATA_IO_H_

// Dataset import/export so users can bring their own sensor feeds.
//
// Two formats:
//   * CSV — human-readable: a values file (rows = time steps, columns =
//     nodes; empty cells = missing) and an optional coordinates file
//     (one "x,y" row per node) from which the sensor graph is built.
//   * Binary — lossless round trip of a SpatioTemporalDataset (values,
//     observed mask, coordinates), for caching generated data.

#include <string>

#include "common/rng.h"
#include "data/dataset.h"

namespace pristi::data {

// ---- CSV -------------------------------------------------------------------
// Writes values (+mask as empty cells) to `values_path` and coordinates to
// `coords_path` (skipped when empty). Returns false on I/O failure.
bool WriteCsvDataset(const SpatioTemporalDataset& dataset,
                     const std::string& values_path,
                     const std::string& coords_path = "");

// Reads a dataset back. Empty cells become missing (observed_mask = 0;
// values 0). When `coords_path` is empty, sensor locations are generated
// pseudo-randomly from `rng` (the graph is then synthetic).
// `steps_per_day` is metadata the CSV cannot carry. CHECK-fails on a
// malformed file; returns a dataset with num_steps == 0 if the file cannot
// be opened.
SpatioTemporalDataset ReadCsvDataset(const std::string& values_path,
                                     const std::string& coords_path,
                                     int64_t steps_per_day, Rng& rng);

// ---- Binary ----------------------------------------------------------------
bool WriteBinaryDataset(const SpatioTemporalDataset& dataset,
                        const std::string& path);
// Returns a dataset with num_steps == 0 if the file cannot be opened.
SpatioTemporalDataset ReadBinaryDataset(const std::string& path);

}  // namespace pristi::data

#endif  // PRISTI_DATA_IO_H_
