#include "data/missing.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace pristi::data {

const char* MissingPatternName(MissingPattern pattern) {
  switch (pattern) {
    case MissingPattern::kPoint:
      return "point";
    case MissingPattern::kBlock:
      return "block";
    case MissingPattern::kSimulatedFailure:
      return "simulated_failure";
  }
  return "unknown";
}

const char* MaskStrategyName(MaskStrategy strategy) {
  switch (strategy) {
    case MaskStrategy::kPoint:
      return "point";
    case MaskStrategy::kBlock:
      return "block";
    case MaskStrategy::kHybrid:
      return "hybrid";
    case MaskStrategy::kHybridHistorical:
      return "hybrid_historical";
  }
  return "unknown";
}

Tensor InjectPointMissing(const Tensor& observed_mask, double rate,
                          Rng& rng) {
  CHECK_GE(rate, 0.0);
  CHECK_LE(rate, 1.0);
  Tensor eval_mask = Tensor::Zeros(observed_mask.shape());
  for (int64_t i = 0; i < observed_mask.numel(); ++i) {
    if (observed_mask[i] > 0.5f && rng.Bernoulli(rate)) eval_mask[i] = 1.0f;
  }
  return eval_mask;
}

Tensor InjectBlockMissing(const Tensor& observed_mask,
                          const BlockMissingOptions& options, Rng& rng) {
  CHECK_EQ(observed_mask.ndim(), 2);
  int64_t t_steps = observed_mask.dim(0);
  int64_t n = observed_mask.dim(1);
  Tensor eval_mask = InjectPointMissing(observed_mask, options.point_rate,
                                        rng);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t t = 0; t < t_steps; ++t) {
      if (!rng.Bernoulli(options.block_prob)) continue;
      int64_t len = rng.UniformInt(options.min_len, options.max_len);
      for (int64_t s = t; s < std::min(t + len, t_steps); ++s) {
        if (observed_mask.at({s, node}) > 0.5f) {
          eval_mask.at({s, node}) = 1.0f;
        }
      }
      t += len;  // do not immediately restart inside the same outage
    }
  }
  return eval_mask;
}

Tensor InjectSimulatedFailure(const Tensor& observed_mask, double rate,
                              Rng& rng, const Tensor* distances) {
  CHECK_EQ(observed_mask.ndim(), 2);
  int64_t t_steps = observed_mask.dim(0);
  int64_t n = observed_mask.dim(1);
  int64_t observed_total = 0;
  for (int64_t i = 0; i < observed_mask.numel(); ++i) {
    observed_total += observed_mask[i] > 0.5f ? 1 : 0;
  }
  int64_t target = static_cast<int64_t>(observed_total * rate);
  Tensor eval_mask = Tensor::Zeros(observed_mask.shape());
  int64_t current = 0;
  // Two-thirds of the failure mass as sensor outages, the rest as points —
  // mirrors the structured missing distribution of real AQI feeds.
  int64_t block_target = target * 2 / 3;
  int64_t guard = 0;
  while (current < block_target && guard++ < 100000) {
    int64_t center = rng.UniformInt(0, n - 1);
    // Regional outage: the center plus its nearest neighbours fail together
    // when geography is available (real geo-sensory missing is spatially
    // correlated); otherwise a single sensor fails.
    std::vector<int64_t> failed = {center};
    if (distances != nullptr) {
      int64_t cluster = rng.UniformInt(0, std::max<int64_t>(n / 4, 1));
      std::vector<std::pair<float, int64_t>> by_distance;
      for (int64_t other = 0; other < n; ++other) {
        if (other == center) continue;
        by_distance.emplace_back(distances->at({center, other}), other);
      }
      std::sort(by_distance.begin(), by_distance.end());
      for (int64_t i = 0; i < cluster &&
                          i < static_cast<int64_t>(by_distance.size());
           ++i) {
        failed.push_back(by_distance[static_cast<size_t>(i)].second);
      }
    }
    int64_t len = rng.UniformInt(6, 48);
    int64_t start = rng.UniformInt(0, std::max<int64_t>(t_steps - len, 0));
    for (int64_t node : failed) {
      for (int64_t t = start; t < std::min(start + len, t_steps); ++t) {
        if (observed_mask.at({t, node}) > 0.5f &&
            eval_mask.at({t, node}) < 0.5f) {
          eval_mask.at({t, node}) = 1.0f;
          ++current;
        }
      }
    }
  }
  double point_prob = static_cast<double>(target - current) /
                      std::max<int64_t>(observed_total - current, 1);
  if (point_prob > 0) {
    for (int64_t i = 0; i < observed_mask.numel(); ++i) {
      if (observed_mask[i] > 0.5f && eval_mask[i] < 0.5f &&
          rng.Bernoulli(point_prob)) {
        eval_mask[i] = 1.0f;
      }
    }
  }
  return eval_mask;
}

Tensor InjectSensorFailure(const Tensor& observed_mask,
                           const std::vector<int64_t>& nodes) {
  CHECK_EQ(observed_mask.ndim(), 2);
  int64_t t_steps = observed_mask.dim(0);
  int64_t n = observed_mask.dim(1);
  Tensor eval_mask = Tensor::Zeros(observed_mask.shape());
  for (int64_t node : nodes) {
    CHECK_GE(node, 0);
    CHECK_LT(node, n);
    for (int64_t t = 0; t < t_steps; ++t) {
      if (observed_mask.at({t, node}) > 0.5f) {
        eval_mask.at({t, node}) = 1.0f;
      }
    }
  }
  return eval_mask;
}

Tensor InjectValueDependentMissing(const Tensor& values,
                                   const Tensor& observed_mask, double rate,
                                   double severity, Rng& rng) {
  CHECK(tensor::ShapesEqual(values.shape(), observed_mask.shape()));
  CHECK_EQ(values.ndim(), 2);
  int64_t t_steps = values.dim(0), n = values.dim(1);
  // Standardize per node over observed entries.
  std::vector<double> mean(static_cast<size_t>(n), 0.0),
      stddev(static_cast<size_t>(n), 1.0);
  for (int64_t node = 0; node < n; ++node) {
    double sum = 0.0;
    int64_t count = 0;
    for (int64_t t = 0; t < t_steps; ++t) {
      if (observed_mask.at({t, node}) > 0.5f) {
        sum += values.at({t, node});
        ++count;
      }
    }
    if (count == 0) continue;
    double mu = sum / count;
    double var = 0.0;
    for (int64_t t = 0; t < t_steps; ++t) {
      if (observed_mask.at({t, node}) > 0.5f) {
        double d = values.at({t, node}) - mu;
        var += d * d;
      }
    }
    mean[static_cast<size_t>(node)] = mu;
    stddev[static_cast<size_t>(node)] =
        std::sqrt(std::max(var / count, 1e-8));
  }
  // Unnormalized weights exp(severity * z), then scale so the expected
  // withheld fraction hits `rate`.
  double weight_sum = 0.0;
  int64_t observed_total = 0;
  Tensor weights(values.shape());
  for (int64_t t = 0; t < t_steps; ++t) {
    for (int64_t node = 0; node < n; ++node) {
      if (observed_mask.at({t, node}) < 0.5f) continue;
      double z = (values.at({t, node}) - mean[static_cast<size_t>(node)]) /
                 stddev[static_cast<size_t>(node)];
      double w = std::exp(severity * z);
      weights.at({t, node}) = static_cast<float>(w);
      weight_sum += w;
      ++observed_total;
    }
  }
  double scale = rate * observed_total / std::max(weight_sum, 1e-12);
  Tensor eval_mask = Tensor::Zeros(values.shape());
  for (int64_t t = 0; t < t_steps; ++t) {
    for (int64_t node = 0; node < n; ++node) {
      if (observed_mask.at({t, node}) < 0.5f) continue;
      double p = std::min(0.95, scale * weights.at({t, node}));
      if (rng.Bernoulli(p)) eval_mask.at({t, node}) = 1.0f;
    }
  }
  return eval_mask;
}

Tensor InjectPattern(const Tensor& observed_mask, MissingPattern pattern,
                     Rng& rng, const Tensor* distances) {
  switch (pattern) {
    case MissingPattern::kPoint:
      return InjectPointMissing(observed_mask, 0.25, rng);
    case MissingPattern::kBlock:
      return InjectBlockMissing(observed_mask, BlockMissingOptions{}, rng);
    case MissingPattern::kSimulatedFailure:
      return InjectSimulatedFailure(observed_mask, 0.246, rng, distances);
  }
  PRISTI_LOG_FATAL << "unknown missing pattern";
  return Tensor();
}

namespace {

// Point strategy: mask m% of observed entries, m ~ U[0, 1].
Tensor PointStrategyMask(const Tensor& window_observed, Rng& rng) {
  double m = rng.Uniform(0.0, 1.0);
  Tensor target = Tensor::Zeros(window_observed.shape());
  for (int64_t i = 0; i < window_observed.numel(); ++i) {
    if (window_observed[i] > 0.5f && rng.Bernoulli(m)) target[i] = 1.0f;
  }
  return target;
}

// Block strategy: per node, a sequence of length [L/2, L] with probability
// up to 15%, plus 5% of observed entries as points.
Tensor BlockStrategyMask(const Tensor& window_observed, Rng& rng) {
  int64_t n = window_observed.dim(0);
  int64_t l = window_observed.dim(1);
  Tensor target = Tensor::Zeros(window_observed.shape());
  double node_prob = rng.Uniform(0.0, 0.15);
  for (int64_t node = 0; node < n; ++node) {
    if (!rng.Bernoulli(node_prob)) continue;
    int64_t len = rng.UniformInt(l / 2, l);
    int64_t start = rng.UniformInt(0, std::max<int64_t>(l - len, 0));
    for (int64_t t = start; t < std::min(start + len, l); ++t) {
      if (window_observed.at({node, t}) > 0.5f) {
        target.at({node, t}) = 1.0f;
      }
    }
  }
  for (int64_t i = 0; i < window_observed.numel(); ++i) {
    if (window_observed[i] > 0.5f && rng.Bernoulli(0.05)) target[i] = 1.0f;
  }
  return target;
}

// Historical strategy: another sample's missing entries become targets.
Tensor HistoricalStrategyMask(const Tensor& window_observed,
                              const Tensor& historical_pattern) {
  CHECK(tensor::ShapesEqual(window_observed.shape(),
                            historical_pattern.shape()));
  Tensor target = Tensor::Zeros(window_observed.shape());
  for (int64_t i = 0; i < window_observed.numel(); ++i) {
    if (window_observed[i] > 0.5f && historical_pattern[i] < 0.5f) {
      target[i] = 1.0f;
    }
  }
  return target;
}

}  // namespace

Tensor ApplyMaskStrategy(const Tensor& window_observed, MaskStrategy strategy,
                         Rng& rng, const Tensor* historical_pattern) {
  CHECK_EQ(window_observed.ndim(), 2) << "expected (N, L) window mask";
  switch (strategy) {
    case MaskStrategy::kPoint:
      return PointStrategyMask(window_observed, rng);
    case MaskStrategy::kBlock:
      return BlockStrategyMask(window_observed, rng);
    case MaskStrategy::kHybrid:
      return rng.Bernoulli(0.5) ? PointStrategyMask(window_observed, rng)
                                : BlockStrategyMask(window_observed, rng);
    case MaskStrategy::kHybridHistorical:
      if (rng.Bernoulli(0.5)) return PointStrategyMask(window_observed, rng);
      if (historical_pattern != nullptr) {
        return HistoricalStrategyMask(window_observed, *historical_pattern);
      }
      return BlockStrategyMask(window_observed, rng);
  }
  PRISTI_LOG_FATAL << "unknown mask strategy";
  return Tensor();
}

Tensor MaskMinus(const Tensor& a, const Tensor& b) {
  CHECK(tensor::ShapesEqual(a.shape(), b.shape()));
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out[i] = (a[i] > 0.5f && b[i] < 0.5f) ? 1.0f : 0.0f;
  }
  return out;
}

double MaskRate(const Tensor& mask) {
  if (mask.numel() == 0) return 0.0;
  int64_t ones = 0;
  for (int64_t i = 0; i < mask.numel(); ++i) ones += mask[i] > 0.5f ? 1 : 0;
  return static_cast<double>(ones) / mask.numel();
}

double MaskOverlap(const Tensor& a, const Tensor& b) {
  CHECK(tensor::ShapesEqual(a.shape(), b.shape()));
  int64_t a_ones = 0, both = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (a[i] > 0.5f) {
      ++a_ones;
      if (b[i] > 0.5f) ++both;
    }
  }
  return a_ones == 0 ? 0.0 : static_cast<double>(both) / a_ones;
}

}  // namespace pristi::data
