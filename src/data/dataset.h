#ifndef PRISTI_DATA_DATASET_H_
#define PRISTI_DATA_DATASET_H_

// Synthetic spatiotemporal datasets standing in for AQI-36, METR-LA and
// PEMS-BAY (the real sensor feeds are not available in this environment;
// see DESIGN.md §1 for why the substitution preserves the experiments).
//
// The generator plants exactly the structure the imputation task is about:
//   * temporal structure  — daily seasonality (one or two harmonics) plus a
//     smooth autoregressive latent process;
//   * spatial structure   — the latent process diffuses over the sensor
//     graph each step, so geographically close sensors are correlated;
//   * node heterogeneity  — per-node offsets, amplitudes and phases (phases
//     tied to location, so nearby sensors peak together);
//   * observation noise and (dataset-dependent) positivity clamping;
//   * original missing    — a realistic observed-mask with point and block
//     holes at each dataset's documented original-missing rate.

#include <string>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "tensor/tensor.h"

namespace pristi::data {

using tensor::Tensor;

// Generator knobs; see the preset functions for tuned instances.
struct SyntheticConfig {
  std::string name = "synthetic";
  int64_t num_nodes = 24;
  int64_t num_steps = 1440;
  int64_t steps_per_day = 24;     // period of the planted seasonality
  double base_mean = 50.0;        // mean level across nodes
  double base_std = 10.0;         // node-to-node spread of the level
  double season_amp_mean = 15.0;  // mean seasonal amplitude
  double season_amp_std = 5.0;
  double second_harmonic = 0.0;   // relative weight of a 2x-frequency term
                                  // (traffic has two rush hours)
  double ar_coeff = 0.92;         // latent AR(1) persistence
  double spatial_mix = 0.5;       // share of the latent state diffused over
                                  // the graph each step (0 = independent)
  double latent_noise = 1.0;      // innovation std of the latent process
  double latent_scale = 6.0;      // how strongly the latent moves the signal
  // Quadratic response to the latent: creates right-skewed episode peaks
  // (PM2.5-like). Linear interpolation systematically undershoots such
  // peaks; learned imputers can capture them.
  double latent_quadratic = 0.0;
  double obs_noise = 1.0;         // i.i.d. observation noise std
  bool clamp_nonnegative = false; // air-quality style positivity
  // Original (non-evaluable) missingness of the raw feed.
  double original_missing_rate = 0.05;
  // Fraction of original missing that arrives as multi-step outages.
  double original_block_share = 0.5;
  int64_t original_block_min_len = 4;
  int64_t original_block_max_len = 24;
  // Sensor-graph shape knobs, forwarded to graph::BuildSensorGraph: how
  // many spatial clusters the sensors scatter into, and the Gaussian-kernel
  // cutoff below which an edge weight is zeroed. The kernel's sigma adapts
  // to the distance distribution, so the threshold (not the cluster count)
  // is the lever that actually prunes cross-cluster edges; the large-graph
  // preset raises it to keep adjacency nnz ~ O(n).
  int64_t graph_clusters = 4;
  double graph_kernel_threshold = 0.1;
};

// A complete synthetic feed: ground truth everywhere plus the observed mask
// of the simulated raw data. Values are stored time-major: (T, N).
struct SpatioTemporalDataset {
  std::string name;
  int64_t num_nodes = 0;
  int64_t num_steps = 0;
  int64_t steps_per_day = 0;
  Tensor values;         // (T, N) ground truth
  Tensor observed_mask;  // (T, N) 1 = the raw feed contains this value
  graph::SensorGraph graph;
};

// Generates a dataset from a config; deterministic given `rng`'s seed.
SpatioTemporalDataset GenerateSynthetic(const SyntheticConfig& config,
                                        Rng& rng);

// ---- Presets mirroring the paper's three datasets -------------------------
// Sizes default to CI-friendly reductions; pass the paper-scale values
// (36/8760, 207/..., 325/...) for full-shape runs.
SyntheticConfig Aqi36LikeConfig(int64_t num_nodes = 36,
                                int64_t num_steps = 1440);
SyntheticConfig MetrLaLikeConfig(int64_t num_nodes = 48,
                                 int64_t num_steps = 2016);
SyntheticConfig PemsBayLikeConfig(int64_t num_nodes = 64,
                                  int64_t num_steps = 2016);
// Large sparse sensor network (no real-data counterpart; a scaling target):
// >= 1000 nodes scattered over ~n/32 clusters, so the thresholded kernel
// adjacency stays sparse and GraphConv's CSR path is the sensible route
// (core::PristiConfig::use_sparse_mpnn). Short by default — the point is
// node count, not sequence length.
SyntheticConfig LargeGraphLikeConfig(int64_t num_nodes = 1024,
                                     int64_t num_steps = 384);

}  // namespace pristi::data

#endif  // PRISTI_DATA_DATASET_H_
