#include "data/io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace pristi::data {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  // Trailing comma -> trailing empty cell.
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

bool WriteCsvDataset(const SpatioTemporalDataset& dataset,
                     const std::string& values_path,
                     const std::string& coords_path) {
  std::ofstream values_file(values_path);
  if (!values_file) return false;
  for (int64_t step = 0; step < dataset.num_steps; ++step) {
    for (int64_t node = 0; node < dataset.num_nodes; ++node) {
      if (node > 0) values_file << ",";
      if (dataset.observed_mask.at({step, node}) > 0.5f) {
        values_file << dataset.values.at({step, node});
      }
      // missing -> empty cell
    }
    values_file << "\n";
  }
  if (!values_file) return false;
  if (!coords_path.empty()) {
    std::ofstream coords_file(coords_path);
    if (!coords_file) return false;
    for (int64_t node = 0; node < dataset.num_nodes; ++node) {
      coords_file << dataset.graph.coords.at({node, 0}) << ","
                  << dataset.graph.coords.at({node, 1}) << "\n";
    }
    if (!coords_file) return false;
  }
  return true;
}

SpatioTemporalDataset ReadCsvDataset(const std::string& values_path,
                                     const std::string& coords_path,
                                     int64_t steps_per_day, Rng& rng) {
  SpatioTemporalDataset dataset;
  dataset.name = values_path;
  dataset.steps_per_day = steps_per_day;
  std::ifstream values_file(values_path);
  if (!values_file) {
    PRISTI_LOG_WARNING << "cannot open " << values_path;
    return dataset;
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(values_file, line)) {
    if (line.empty()) continue;
    rows.push_back(SplitCsvLine(line));
  }
  CHECK(!rows.empty()) << "empty CSV " << values_path;
  int64_t t_steps = static_cast<int64_t>(rows.size());
  int64_t n = static_cast<int64_t>(rows[0].size());
  dataset.num_steps = t_steps;
  dataset.num_nodes = n;
  dataset.values = Tensor({t_steps, n});
  dataset.observed_mask = Tensor({t_steps, n});
  for (int64_t step = 0; step < t_steps; ++step) {
    CHECK_EQ(static_cast<int64_t>(rows[static_cast<size_t>(step)].size()), n)
        << "ragged CSV row " << step;
    for (int64_t node = 0; node < n; ++node) {
      const std::string& cell =
          rows[static_cast<size_t>(step)][static_cast<size_t>(node)];
      if (cell.empty()) continue;  // missing
      dataset.values.at({step, node}) = std::stof(cell);
      dataset.observed_mask.at({step, node}) = 1.0f;
    }
  }
  // Graph: from the coordinates file if given, else synthetic placement.
  if (!coords_path.empty()) {
    std::ifstream coords_file(coords_path);
    CHECK(static_cast<bool>(coords_file)) << "cannot open " << coords_path;
    Tensor coords({n, 2});
    int64_t node = 0;
    while (std::getline(coords_file, line) && node < n) {
      auto cells = SplitCsvLine(line);
      CHECK_GE(cells.size(), 2u) << "bad coords row " << node;
      coords.at({node, 0}) = std::stof(cells[0]);
      coords.at({node, 1}) = std::stof(cells[1]);
      ++node;
    }
    CHECK_EQ(node, n) << "coords file has too few rows";
    dataset.graph.num_nodes = n;
    dataset.graph.coords = coords;
    dataset.graph.distances = graph::PairwiseDistances(coords);
    dataset.graph.adjacency =
        graph::GaussianKernelAdjacency(dataset.graph.distances);
  } else {
    dataset.graph = graph::BuildSensorGraph(n, rng);
  }
  return dataset;
}

namespace {

constexpr uint64_t kBinaryMagic = 0x5052495354493144ULL;  // "PRISTI1D"

}  // namespace

bool WriteBinaryDataset(const SpatioTemporalDataset& dataset,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(&kBinaryMagic),
            sizeof(kBinaryMagic));
  uint64_t name_len = dataset.name.size();
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(dataset.name.data(), static_cast<std::streamsize>(name_len));
  out.write(reinterpret_cast<const char*>(&dataset.steps_per_day),
            sizeof(dataset.steps_per_day));
  tensor::WriteTensor(out, dataset.values);
  tensor::WriteTensor(out, dataset.observed_mask);
  tensor::WriteTensor(out, dataset.graph.coords);
  return static_cast<bool>(out);
}

SpatioTemporalDataset ReadBinaryDataset(const std::string& path) {
  SpatioTemporalDataset dataset;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    PRISTI_LOG_WARNING << "cannot open " << path;
    return dataset;
  }
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  CHECK_EQ(magic, kBinaryMagic) << "not a PriSTI dataset file: " << path;
  uint64_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  CHECK_LE(name_len, 1u << 16);
  dataset.name.resize(name_len);
  in.read(dataset.name.data(), static_cast<std::streamsize>(name_len));
  in.read(reinterpret_cast<char*>(&dataset.steps_per_day),
          sizeof(dataset.steps_per_day));
  dataset.values = tensor::ReadTensor(in);
  dataset.observed_mask = tensor::ReadTensor(in);
  Tensor coords = tensor::ReadTensor(in);
  dataset.num_steps = dataset.values.dim(0);
  dataset.num_nodes = dataset.values.dim(1);
  dataset.graph.num_nodes = dataset.num_nodes;
  dataset.graph.coords = coords;
  dataset.graph.distances = graph::PairwiseDistances(coords);
  dataset.graph.adjacency =
      graph::GaussianKernelAdjacency(dataset.graph.distances);
  return dataset;
}

}  // namespace pristi::data
