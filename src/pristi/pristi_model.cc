#include "pristi/pristi_model.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/logging.h"
#include "graph/adjacency.h"
#include "nn/embeddings.h"

namespace pristi::core {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;

Variable FlattenTemporal(const Variable& h) {
  const t::Shape& s = h.value().shape();
  CHECK_EQ(s.size(), 4u);
  return ag::Reshape(h, {s[0] * s[1], s[2], s[3]});
}

Variable UnflattenTemporal(const Variable& h, int64_t batch, int64_t nodes) {
  const t::Shape& s = h.value().shape();
  CHECK_EQ(s.size(), 3u);
  return ag::Reshape(h, {batch, nodes, s[1], s[2]});
}

Variable FlattenSpatial(const Variable& h) {
  const t::Shape& s = h.value().shape();
  CHECK_EQ(s.size(), 4u);
  Variable permuted = ag::Permute(h, {0, 2, 1, 3});  // (B, L, N, d)
  return ag::Reshape(permuted, {s[0] * s[2], s[1], s[3]});
}

Variable UnflattenSpatial(const Variable& h, int64_t batch, int64_t steps) {
  const t::Shape& s = h.value().shape();
  CHECK_EQ(s.size(), 3u);
  Variable reshaped = ag::Reshape(h, {batch, steps, s[1], s[2]});
  return ag::Permute(reshaped, {0, 2, 1, 3});  // back to (B, N, L, d)
}

// ---------------------------------------------------------------------------
// ConditionalFeatureModule (Eq. 5)
// ---------------------------------------------------------------------------

ConditionalFeatureModule::ConditionalFeatureModule(
    const PristiConfig& config, std::vector<Tensor> supports, Rng& rng)
    : config_(config),
      attn_tem_(config.channels, config.heads, rng),
      attn_spa_(config.channels, config.heads, rng, config.virtual_nodes,
                config.num_nodes),
      mpnn_(config.channels, config.channels, std::move(supports), rng,
            config.graph_diffusion_steps, config.adaptive_rank,
            config.num_nodes, config.use_sparse_mpnn),
      norm_ta_(config.channels),
      norm_sa_(config.channels),
      norm_mp_(config.channels),
      mlp_(config.channels, 2 * config.channels, config.channels, rng) {
  AddChild("attn_tem", &attn_tem_);
  AddChild("attn_spa", &attn_spa_);
  AddChild("mpnn", &mpnn_);
  AddChild("norm_ta", &norm_ta_);
  AddChild("norm_sa", &norm_sa_);
  AddChild("norm_mp", &norm_mp_);
  AddChild("mlp", &mlp_);
}

Variable ConditionalFeatureModule::Forward(const Variable& h) const {
  int64_t b = h.value().dim(0);
  int64_t n = h.value().dim(1);
  int64_t l = h.value().dim(2);

  // phi_TA(H) = Norm(Attn_tem(H) + H)
  Variable h_t = FlattenTemporal(h);
  Variable phi_ta = norm_ta_.Forward(
      ag::Add(UnflattenTemporal(attn_tem_.Forward(h_t), b, n), h));

  // phi_SA(H) = Norm(Attn_spa(H) + H)
  Variable h_s = FlattenSpatial(h);
  Variable phi_sa = norm_sa_.Forward(
      ag::Add(UnflattenSpatial(attn_spa_.Forward(h_s), b, l), h));

  // phi_MP(H, A) = Norm(MPNN(H, A) + H)
  Variable phi_mp = norm_mp_.Forward(
      ag::Add(UnflattenSpatial(mpnn_.Forward(h_s), b, l), h));

  // H^pri = MLP(phi_SA + phi_TA + phi_MP)
  return mlp_.Forward(ag::Add(ag::Add(phi_sa, phi_ta), phi_mp));
}

// ---------------------------------------------------------------------------
// NoiseEstimationLayer (Eq. 6-9)
// ---------------------------------------------------------------------------

NoiseEstimationLayer::NoiseEstimationLayer(const PristiConfig& config,
                                           std::vector<Tensor> supports,
                                           Rng& rng)
    : config_(config),
      diff_proj_(config.diffusion_emb_dim, config.channels, rng),
      attn_tem_(config.channels, config.heads, rng),
      attn_spa_(config.channels, config.heads, rng, config.virtual_nodes,
                config.num_nodes),
      mpnn_(config.channels, config.channels, std::move(supports), rng,
            config.graph_diffusion_steps, config.adaptive_rank,
            config.num_nodes, config.use_sparse_mpnn),
      norm_sa_(config.channels),
      norm_mp_(config.channels),
      mlp_(config.channels, 2 * config.channels, config.channels, rng),
      mid_conv_(config.channels, 2 * config.channels, rng),
      out_conv_(config.channels, 2 * config.channels, rng) {
  AddChild("diff_proj", &diff_proj_);
  AddChild("attn_tem", &attn_tem_);
  AddChild("attn_spa", &attn_spa_);
  AddChild("mpnn", &mpnn_);
  AddChild("norm_sa", &norm_sa_);
  AddChild("norm_mp", &norm_mp_);
  AddChild("mlp", &mlp_);
  AddChild("mid_conv", &mid_conv_);
  AddChild("out_conv", &out_conv_);
}

NoiseEstimationLayer::Output NoiseEstimationLayer::Forward(
    const Variable& h_in, const Variable& h_pri,
    const Variable& diff_emb) const {
  int64_t b = h_in.value().dim(0);
  int64_t n = h_in.value().dim(1);
  int64_t l = h_in.value().dim(2);

  // Diffusion-step conditioning, broadcast over (B, N, L).
  Variable y = ag::Add(h_in, diff_proj_.Forward(diff_emb));

  // gamma_T: temporal attention, weights from H^pri (Eq. 7).
  Variable h_tem = y;
  if (config_.use_temporal) {
    Variable qk = config_.use_conditional_feature ? h_pri : y;
    h_tem = UnflattenTemporal(
        attn_tem_.Forward(FlattenTemporal(qk), FlattenTemporal(y)), b, n);
  }

  // gamma_S: spatial attention + message passing over the temporal feature
  // (Eq. 6, 8, 9).
  Variable h_spa = h_tem;
  if (config_.use_spatial &&
      (config_.use_spatial_attention || config_.use_mpnn)) {
    Variable qk = config_.use_conditional_feature ? h_pri : h_tem;
    Variable acc;
    if (config_.use_spatial_attention) {
      Variable sa = UnflattenSpatial(
          attn_spa_.Forward(FlattenSpatial(qk), FlattenSpatial(h_tem)), b, l);
      acc = norm_sa_.Forward(ag::Add(sa, h_tem));
    }
    if (config_.use_mpnn) {
      Variable mp = UnflattenSpatial(mpnn_.Forward(FlattenSpatial(h_tem)),
                                     b, l);
      Variable phi_mp = norm_mp_.Forward(ag::Add(mp, h_tem));
      acc = acc.defined() ? ag::Add(acc, phi_mp) : phi_mp;
    }
    h_spa = mlp_.Forward(acc);
  }

  // Gated activation, then split into residual and skip streams.
  Variable gated = nn::GatedActivation(mid_conv_.Forward(h_spa));
  Variable both = out_conv_.Forward(gated);
  Variable residual_part = ag::SliceAxis(both, -1, 0, config_.channels);
  Variable skip = ag::SliceAxis(both, -1, config_.channels,
                                config_.channels);
  constexpr float kInvSqrt2 = 0.70710678f;
  Output out;
  out.residual = ag::MulScalar(ag::Add(h_in, residual_part), kInvSqrt2);
  out.skip = skip;
  return out;
}

// ---------------------------------------------------------------------------
// PristiModel
// ---------------------------------------------------------------------------

PristiModel::PristiModel(const PristiConfig& config, const Tensor& adjacency,
                         Rng& rng)
    : config_(config),
      input_conv_(2, config.channels, rng),
      cond_conv_(1, config.channels, rng),
      diff_mlp1_(config.diffusion_emb_dim, config.diffusion_emb_dim, rng),
      diff_mlp2_(config.diffusion_emb_dim, config.diffusion_emb_dim, rng),
      temporal_encoding_(
          nn::SinusoidalEncoding(config.window_len, config.temporal_emb_dim)),
      aux_proj_(config.temporal_emb_dim + config.node_emb_dim,
                config.channels, rng),
      out_conv1_(config.channels, config.channels, rng),
      out_conv2_(config.channels, 1, rng) {
  CHECK_GT(config.num_nodes, 0);
  CHECK_GT(config.window_len, 0);
  CHECK_EQ(adjacency.dim(0), config.num_nodes);

  std::vector<Tensor> supports =
      graph::BidirectionalTransitions(adjacency);

  AddChild("input_conv", &input_conv_);
  AddChild("cond_conv", &cond_conv_);
  AddChild("diff_mlp1", &diff_mlp1_);
  AddChild("diff_mlp2", &diff_mlp2_);
  AddChild("aux_proj", &aux_proj_);
  AddChild("out_conv1", &out_conv1_);
  AddChild("out_conv2", &out_conv2_);

  node_embedding_ = AddParameter(
      "node_embedding",
      NormalInit({config.num_nodes, config.node_emb_dim}, 0.1f, rng));

  if (config_.use_conditional_feature) {
    cond_module_ =
        std::make_unique<ConditionalFeatureModule>(config_, supports, rng);
    AddChild("cond_module", cond_module_.get());
  }
  for (int64_t i = 0; i < config_.layers; ++i) {
    layers_.push_back(
        std::make_unique<NoiseEstimationLayer>(config_, supports, rng));
    AddChild("layer" + std::to_string(i), layers_.back().get());
  }
}

Variable PristiModel::AuxiliaryInfo(int64_t batch_size) const {
  int64_t n = config_.num_nodes;
  int64_t l = config_.window_len;
  // U_tem: (L, dt) -> broadcast to (B, N, L, dt).
  Variable u_tem = ag::Add(
      ag::Constant(Tensor::Zeros({batch_size, n, l, config_.temporal_emb_dim})),
      ag::Constant(
          temporal_encoding_.Reshaped({1, 1, l, config_.temporal_emb_dim})));
  // U_spa: (N, ds) -> broadcast to (B, N, L, ds). Learnable.
  Variable u_spa = ag::Add(
      ag::Constant(Tensor::Zeros({batch_size, n, l, config_.node_emb_dim})),
      ag::Reshape(node_embedding_, {1, n, 1, config_.node_emb_dim}));
  return aux_proj_.Forward(ag::Concat({u_tem, u_spa}, -1));
}

Variable PristiModel::PredictNoise(const Tensor& noisy,
                                   const DiffusionBatch& batch, int64_t t) {
  CHECK_EQ(noisy.ndim(), 3);
  int64_t b = noisy.dim(0);
  int64_t n = noisy.dim(1);
  int64_t l = noisy.dim(2);
  CHECK_EQ(n, config_.num_nodes);
  CHECK_EQ(l, config_.window_len);

  // Conditional channel: interpolated info (PriSTI) or raw observed values
  // (mix-STI ablation).
  const Tensor& cond = config_.use_interpolation ? batch.interpolated
                                                 : batch.cond_values;
  CHECK(t::ShapesEqual(cond.shape(), noisy.shape()));

  // H^in = Conv(X(cal) ‖ X_t): stack as channel-last then 1x1 conv.
  Variable cond_channel =
      ag::Reshape(ag::Constant(cond), {b, n, l, 1});
  Variable noisy_channel =
      ag::Reshape(ag::Constant(noisy), {b, n, l, 1});
  Variable h_in = input_conv_.Forward(
      ag::Concat({cond_channel, noisy_channel}, -1));

  Variable aux = AuxiliaryInfo(b);
  h_in = ag::Add(h_in, aux);

  // Conditional prior H^pri.
  Variable h_pri;
  if (config_.use_conditional_feature) {
    Variable h_cond = ag::Add(cond_conv_.Forward(cond_channel), aux);
    h_pri = cond_module_->Forward(h_cond);
  } else {
    h_pri = h_in;  // w/o CF: weights computed from the noisy stream
  }

  // Diffusion-step embedding through the shared MLP.
  Variable diff_emb = ag::Constant(
      nn::DiffusionStepEncoding(t, config_.diffusion_emb_dim));
  diff_emb = diff_mlp2_.Forward(ag::Relu(diff_mlp1_.Forward(diff_emb)));

  Variable h = h_in;
  Variable skip_sum;
  for (const auto& layer : layers_) {
    NoiseEstimationLayer::Output out = layer->Forward(h, h_pri, diff_emb);
    h = out.residual;
    skip_sum = skip_sum.defined() ? ag::Add(skip_sum, out.skip) : out.skip;
  }
  float inv_sqrt_layers =
      1.0f / std::sqrt(static_cast<float>(config_.layers));
  Variable y = ag::MulScalar(skip_sum, inv_sqrt_layers);
  y = out_conv2_.Forward(ag::Relu(out_conv1_.Forward(ag::Relu(y))));
  return ag::Reshape(y, {b, n, l});
}

}  // namespace pristi::core
