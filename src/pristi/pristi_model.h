#ifndef PRISTI_PRISTI_PRISTI_MODEL_H_
#define PRISTI_PRISTI_PRISTI_MODEL_H_

// PriSTI: the paper's conditional noise prediction model epsilon_theta
// (Section III-B), composed of
//
//   * a Conditional Feature Extraction module gamma(H, A) (Eq. 5) that turns
//     the interpolated conditional information X into a global context prior
//     H^pri via parallel temporal attention, spatial attention and message
//     passing ("wide" single layer);
//   * a stack of Noise Estimation layers (Eq. 6-9) that denoise the noisy
//     stream with temporal-then-spatial dependency learning ("deep"), where
//     the attention WEIGHTS are computed from H^pri and only the values come
//     from the noisy stream — the paper's key design;
//   * auxiliary information U = MLP(U_tem, U_spa) (Sec. III-B3) added to
//     both modules, and DiffWave-style gated residual/skip stacking.
//
// The ablation switches in PristiConfig reproduce every Table VI variant.

#include <memory>
#include <vector>

#include "diffusion/ddpm.h"
#include "nn/attention.h"
#include "nn/graph_conv.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace pristi::core {

using autograd::Variable;
using diffusion::DiffusionBatch;
using tensor::Tensor;

struct PristiConfig {
  int64_t num_nodes = 0;   // N (required)
  int64_t window_len = 0;  // L (required)
  int64_t channels = 16;        // d      (paper: 64)
  int64_t heads = 4;            //        (paper: 8)
  int64_t layers = 2;           //        (paper: 4)
  int64_t virtual_nodes = 8;    // k      (paper: 16/64); 0 = full attention
  int64_t diffusion_emb_dim = 32;  //     (paper: 128)
  int64_t temporal_emb_dim = 32;   // U_tem channels (paper: 128)
  int64_t node_emb_dim = 16;       // U_spa channels (paper: 16)
  int64_t adaptive_rank = 8;       // adaptive-adjacency embedding rank
  int64_t graph_diffusion_steps = 2;
  // Run the fixed-support message passing on CSR sparse matrices
  // (O(nnz d)); identical numerics, pays off on large sparse sensor graphs.
  bool use_sparse_mpnn = false;

  // ---- Ablation switches (Table VI) ---------------------------------------
  // mix-STI: no interpolation, no conditional feature module; conditioning
  // is the raw observed values concatenated with the noise.
  bool use_interpolation = true;
  // w/o CF: attention weights computed from the noisy stream itself.
  bool use_conditional_feature = true;
  // w/o tem: drop the temporal dependency module gamma_T.
  bool use_temporal = true;
  // w/o spa: drop the spatial dependency module gamma_S entirely.
  bool use_spatial = true;
  // w/o MPNN: drop the message-passing component of gamma_S.
  bool use_mpnn = true;
  // w/o Attn: drop the spatial global attention component of gamma_S.
  bool use_spatial_attention = true;
};

// The "wide" conditional feature extraction module gamma(.) of Eq. 5.
class ConditionalFeatureModule : public nn::Module {
 public:
  ConditionalFeatureModule(const PristiConfig& config,
                           std::vector<Tensor> supports, Rng& rng);

  // h: (B, N, L, d) — the projected interpolated information (plus U).
  Variable Forward(const Variable& h) const;

 private:
  const PristiConfig config_;
  nn::MultiHeadAttention attn_tem_;
  nn::MultiHeadAttention attn_spa_;
  nn::GraphConv mpnn_;
  nn::LayerNorm norm_ta_;
  nn::LayerNorm norm_sa_;
  nn::LayerNorm norm_mp_;
  nn::Mlp mlp_;
};

// One "deep" noise estimation layer (Eq. 6-9 plus gated residual/skip).
class NoiseEstimationLayer : public nn::Module {
 public:
  NoiseEstimationLayer(const PristiConfig& config,
                       std::vector<Tensor> supports, Rng& rng);

  struct Output {
    Variable residual;  // input to the next layer, (B, N, L, d)
    Variable skip;      // contribution to the model output, (B, N, L, d)
  };

  // h_in: noisy stream; h_pri: conditional prior (used for attention
  // weights); diff_emb: (diffusion_emb_dim,) step encoding after the shared
  // MLP.
  Output Forward(const Variable& h_in, const Variable& h_pri,
                 const Variable& diff_emb) const;

 private:
  const PristiConfig config_;
  nn::Linear diff_proj_;
  nn::MultiHeadAttention attn_tem_;
  nn::MultiHeadAttention attn_spa_;
  nn::GraphConv mpnn_;
  nn::LayerNorm norm_sa_;
  nn::LayerNorm norm_mp_;
  nn::Mlp mlp_;
  nn::Conv1x1 mid_conv_;  // d -> 2d, feeds the gated activation
  nn::Conv1x1 out_conv_;  // d -> 2d, split into residual & skip
};

// The full noise prediction network.
class PristiModel : public nn::Module,
                    public diffusion::ConditionalNoisePredictor {
 public:
  // `adjacency` is the (N, N) thresholded-Gaussian-kernel matrix; the model
  // derives the bidirectional transition supports internally.
  PristiModel(const PristiConfig& config, const Tensor& adjacency, Rng& rng);

  Variable PredictNoise(const Tensor& noisy, const DiffusionBatch& batch,
                        int64_t t) override;
  std::vector<Variable> Parameters() override {
    return nn::Module::Parameters();
  }
  void ZeroGrad() override { nn::Module::ZeroGrad(); }

  const PristiConfig& config() const { return config_; }

 private:
  // Builds the auxiliary information U (B, N, L, d).
  Variable AuxiliaryInfo(int64_t batch_size) const;

  const PristiConfig config_;
  nn::Conv1x1 input_conv_;  // 2 -> d (conditional ‖ noisy)
  nn::Conv1x1 cond_conv_;   // 1 -> d (interpolated info)
  std::unique_ptr<ConditionalFeatureModule> cond_module_;
  std::vector<std::unique_ptr<NoiseEstimationLayer>> layers_;
  nn::Linear diff_mlp1_;
  nn::Linear diff_mlp2_;
  Variable node_embedding_;  // U_spa: (N, node_emb_dim)
  Tensor temporal_encoding_; // U_tem: (L, temporal_emb_dim), fixed
  nn::Linear aux_proj_;      // (temporal+node dims) -> d
  nn::Conv1x1 out_conv1_;    // d -> d
  nn::Conv1x1 out_conv2_;    // d -> 1
};

// ---- Layout helpers shared with the CSDI baseline ---------------------------
// (B, N, L, d) -> (B*N, L, d): per-node temporal sequences.
Variable FlattenTemporal(const Variable& h);
Variable UnflattenTemporal(const Variable& h, int64_t batch, int64_t nodes);
// (B, N, L, d) -> (B*L, N, d): per-step spatial slices.
Variable FlattenSpatial(const Variable& h);
Variable UnflattenSpatial(const Variable& h, int64_t batch, int64_t steps);

}  // namespace pristi::core

#endif  // PRISTI_PRISTI_PRISTI_MODEL_H_
