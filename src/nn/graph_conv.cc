#include "nn/graph_conv.h"

#include "common/check.h"

namespace pristi::nn {

namespace ag = ::pristi::autograd;

GraphConv::GraphConv(int64_t d_in, int64_t d_out,
                     std::vector<Tensor> supports, Rng& rng,
                     int64_t diffusion_steps, int64_t adaptive_rank,
                     int64_t num_nodes, bool use_sparse)
    : d_in_(d_in),
      d_out_(d_out),
      diffusion_steps_(diffusion_steps),
      adaptive_rank_(adaptive_rank),
      use_sparse_(use_sparse) {
  PRISTI_CHECK_GT(diffusion_steps_, 0);
  for (Tensor& support : supports) {
    PRISTI_CHECK_EQ(support.ndim(), 2);
    PRISTI_CHECK_EQ(support.dim(0), support.dim(1));
    if (use_sparse_) {
      sparse_supports_.push_back(std::make_shared<graph::CsrMatrix>(
          graph::CsrMatrix::FromDense(support)));
    }
    supports_.push_back(ag::Constant(std::move(support)));
  }
  if (adaptive_rank_ > 0) {
    PRISTI_CHECK_GT(num_nodes, 0) << "adaptive adjacency needs the node count";
    e1_ = AddParameter("e1",
                       NormalInit({num_nodes, adaptive_rank_}, 0.1f, rng));
    e2_ = AddParameter("e2",
                       NormalInit({num_nodes, adaptive_rank_}, 0.1f, rng));
  }
  int64_t num_supports =
      static_cast<int64_t>(supports_.size()) + (adaptive_rank_ > 0 ? 1 : 0);
  int64_t mixed_in = (1 + num_supports * diffusion_steps_) * d_in;
  weight_ = AddParameter(
      "weight", GlorotUniform({mixed_in, d_out}, mixed_in, d_out, rng));
  bias_ = AddParameter("bias", Tensor::Zeros({d_out}));
}

Variable GraphConv::AdaptiveAdjacency() const {
  PRISTI_CHECK(has_adaptive());
  Variable raw = ag::MatMulNT(e1_, e2_);
  return ag::SoftmaxLastDim(ag::Relu(raw));
}

Variable GraphConv::Forward(const Variable& x) const {
  PRISTI_CHECK_EQ(x.value().ndim(), 3);
  PRISTI_CHECK_EQ(x.value().dim(-1), d_in_);

  std::vector<Variable> features;
  features.push_back(x);

  // Fixed supports: sparse or dense message passing.
  for (size_t si = 0; si < supports_.size(); ++si) {
    PRISTI_CHECK_EQ(supports_[si].value().dim(0), x.value().dim(1))
        << "support size must match node axis";
    Variable diffused = x;
    for (int64_t step = 0; step < diffusion_steps_; ++step) {
      if (use_sparse_) {
        std::shared_ptr<graph::CsrMatrix> csr = sparse_supports_[si];
        Tensor value = csr->MatMulNodeDim(diffused.value());
        auto input_node = diffused.node();
        diffused = ag::MakeCustomOp(
            std::move(value), {diffused},
            [csr, input_node](const Tensor& g) {
              input_node->AccumulateGrad(csr->TransposedMatMulNodeDim(g));
            });
      } else {
        diffused = ag::MatMulNodeDim(supports_[si], diffused);
      }
      features.push_back(diffused);
    }
  }
  // Adaptive adjacency (learned, dense).
  if (has_adaptive()) {
    PRISTI_CHECK_EQ(x.value().dim(1), e1_.value().dim(0))
        << "adaptive adjacency node count mismatch";
    Variable adaptive = AdaptiveAdjacency();
    Variable diffused = x;
    for (int64_t step = 0; step < diffusion_steps_; ++step) {
      diffused = ag::MatMulNodeDim(adaptive, diffused);
      features.push_back(diffused);
    }
  }
  Variable mixed = ag::Concat(features, -1);
  return ag::Add(ag::MatMulLastDim(mixed, weight_), bias_);
}

}  // namespace pristi::nn
