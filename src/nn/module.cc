#include "nn/module.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace pristi::nn {

std::vector<std::pair<std::string, Variable>> Module::NamedParameters() {
  std::vector<std::pair<std::string, Variable>> all;
  for (auto& [name, param] : params_) all.emplace_back(name, param);
  for (auto& [child_name, child] : children_) {
    for (auto& [name, param] : child->NamedParameters()) {
      all.emplace_back(child_name + "." + name, param);
    }
  }
  return all;
}

std::vector<Variable> Module::Parameters() {
  std::vector<Variable> flat;
  for (auto& [name, param] : NamedParameters()) flat.push_back(param);
  return flat;
}

void Module::ZeroGrad() {
  for (Variable& param : Parameters()) param.ZeroGrad();
}

int64_t Module::ParameterCount() {
  int64_t count = 0;
  for (Variable& param : Parameters()) count += param.numel();
  return count;
}

namespace {

void WriteString(std::ostream& out, const std::string& s) {
  uint64_t len = s.size();
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(len));
}

std::string ReadString(std::istream& in) {
  uint64_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  PRISTI_CHECK(in.good()) << "truncated checkpoint";
  PRISTI_CHECK_LE(len, 1u << 20) << "implausible name length in checkpoint";
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  return s;
}

}  // namespace

void Module::Save(std::ostream& out) {
  auto named = NamedParameters();
  uint64_t count = named.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (auto& [name, param] : named) {
    WriteString(out, name);
    tensor::WriteTensor(out, param.value());
  }
}

void Module::Load(std::istream& in) {
  auto named = NamedParameters();
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  PRISTI_CHECK_EQ(count, named.size()) << "checkpoint parameter count mismatch";
  for (auto& [name, param] : named) {
    std::string stored_name = ReadString(in);
    PRISTI_CHECK(stored_name == name)
        << "checkpoint name mismatch: expected " << name << ", got "
        << stored_name;
    Tensor stored = tensor::ReadTensor(in);
    PRISTI_CHECK(tensor::ShapesEqual(stored.shape(), param.value().shape()))
        << "checkpoint shape mismatch for " << name;
    param.mutable_value() = std::move(stored);
  }
}

bool Module::SaveToFile(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  Save(out);
  return static_cast<bool>(out);
}

bool Module::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  Load(in);
  return true;
}

Variable Module::AddParameter(const std::string& name, const Tensor& init) {
  for (auto& [existing, param] : params_) {
    PRISTI_CHECK(existing != name) << "duplicate parameter name: " << name;
  }
  Variable param(init, /*requires_grad=*/true);
  params_.emplace_back(name, param);
  return param;
}

void Module::AddChild(const std::string& name, Module* child) {
  PRISTI_CHECK(child != nullptr);
  for (auto& [existing, mod] : children_) {
    PRISTI_CHECK(existing != name) << "duplicate child name: " << name;
  }
  children_.emplace_back(name, child);
}

Tensor Module::GlorotUniform(Shape shape, int64_t fan_in, int64_t fan_out,
                             Rng& rng) {
  float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(std::move(shape), rng, -a, a);
}

Tensor Module::NormalInit(Shape shape, float scale, Rng& rng) {
  Tensor t = Tensor::Randn(std::move(shape), rng);
  t.ScaleInPlace(scale);
  return t;
}

}  // namespace pristi::nn
