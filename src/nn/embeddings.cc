#include "nn/embeddings.h"

#include <cmath>

#include "common/check.h"

namespace pristi::nn {

using tensor::Tensor;

Tensor SinusoidalEncoding(int64_t length, int64_t dim) {
  PRISTI_CHECK_GT(length, 0);
  PRISTI_CHECK_GT(dim, 1);
  Tensor table(tensor::Shape{length, dim});
  for (int64_t pos = 0; pos < length; ++pos) {
    for (int64_t i = 0; i < dim; i += 2) {
      double freq = std::pow(10000.0, -static_cast<double>(i) / dim);
      double angle = pos * freq;
      table.at({pos, i}) = static_cast<float>(std::sin(angle));
      if (i + 1 < dim) {
        table.at({pos, i + 1}) = static_cast<float>(std::cos(angle));
      }
    }
  }
  return table;
}

Tensor DiffusionStepEncoding(int64_t t, int64_t dim) {
  PRISTI_CHECK_GE(t, 0);
  PRISTI_CHECK_GT(dim, 1);
  Tensor row(tensor::Shape{dim});
  for (int64_t i = 0; i < dim; i += 2) {
    double freq = std::pow(10000.0, -static_cast<double>(i) / dim);
    double angle = t * freq;
    row[i] = static_cast<float>(std::sin(angle));
    if (i + 1 < dim) row[i + 1] = static_cast<float>(std::cos(angle));
  }
  return row;
}

}  // namespace pristi::nn
