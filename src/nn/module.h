#ifndef PRISTI_NN_MODULE_H_
#define PRISTI_NN_MODULE_H_

// Parameter-owning module base class (the torch.nn.Module analogue).
//
// A Module registers parameters (autograd leaves with requires_grad) and
// child modules; `Parameters()` flattens the tree for the optimizer, and
// Save/Load serialize the tree by hierarchical parameter name so checkpoints
// are layout-independent and shape-checked on load.
//
// `Variable` is a shared handle to its tape node, so the copies returned by
// AddParameter / Parameters alias the same underlying storage: the optimizer
// updating its copy updates the layer's weights.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"
#include "common/status.h"

namespace pristi::nn {

using autograd::Variable;
using tensor::Shape;
using tensor::Tensor;

class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules own parameter state; copying would silently fork it.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and its descendants, with "child.param"
  // style hierarchical names. The Variables are aliases of the layer state.
  std::vector<std::pair<std::string, Variable>> NamedParameters();
  std::vector<Variable> Parameters();

  void ZeroGrad();
  int64_t ParameterCount();

  // Serializes all parameters (name + tensor). Load CHECK-fails on a name
  // or shape mismatch, which catches architecture drift early.
  void Save(std::ostream& out);
  void Load(std::istream& in);
  bool SaveToFile(const std::string& path);
  bool LoadFromFile(const std::string& path);

  // Versioned, checksummed checkpoint format (src/serialize/). Unlike the
  // legacy Save/Load above, every failure mode — truncation, corruption,
  // version skew, shape mismatch — comes back as a typed error instead of a
  // CHECK abort. Defined in serialize/checkpoint.cc: the nn layer does not
  // link pristi_serialize, callers of these two members must.
  pristi::Status SaveCheckpoint(std::ostream& out);
  pristi::Status LoadCheckpoint(std::istream& in);

 protected:
  // Registers a parameter initialized to `init`; the returned Variable
  // aliases the registered one.
  Variable AddParameter(const std::string& name, const Tensor& init);
  // Registers a child whose parameters are exposed under `name.`. The child
  // must outlive this module (typically it is a data member).
  void AddChild(const std::string& name, Module* child);

  // ---- Common initializers ------------------------------------------------
  // Uniform(-a, a) with a = sqrt(6 / (fan_in + fan_out)) (Glorot).
  static Tensor GlorotUniform(Shape shape, int64_t fan_in, int64_t fan_out,
                              Rng& rng);
  // N(0, scale) entries.
  static Tensor NormalInit(Shape shape, float scale, Rng& rng);

 private:
  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace pristi::nn

#endif  // PRISTI_NN_MODULE_H_
