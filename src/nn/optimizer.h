#ifndef PRISTI_NN_OPTIMIZER_H_
#define PRISTI_NN_OPTIMIZER_H_

// Adam optimizer and the multi-step learning-rate schedule the paper uses
// ("decayed to 0.0001 at 75% of the total epochs, and to 0.00001 at 90%").

#include <vector>

#include "autograd/variable.h"

namespace pristi::nn {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam(std::vector<autograd::Variable> params, AdamOptions options = {});

  // Applies one update from the accumulated gradients. Parameters without a
  // gradient this step are skipped.
  void Step();
  void ZeroGrad();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }
  int64_t step_count() const { return step_count_; }

  // Checkpoint access (serialize/checkpoint.h). The moment buffers are
  // allocated lazily on the first Step(); until then they are zero tensors
  // shaped like their parameters, so a freshly constructed optimizer is
  // still fully serializable.
  const AdamOptions& options() const { return options_; }
  const std::vector<tensor::Tensor>& moment1() const { return m_; }
  const std::vector<tensor::Tensor>& moment2() const { return v_; }
  // Replaces step count and moment buffers wholesale; the caller (the
  // checkpoint loader) has already validated counts and shapes.
  void RestoreState(int64_t step_count, std::vector<tensor::Tensor> m,
                    std::vector<tensor::Tensor> v);

 private:
  std::vector<autograd::Variable> params_;
  AdamOptions options_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  int64_t step_count_ = 0;
};

// Piecewise-constant LR decay: multiplies the base LR by `gamma` after each
// milestone (expressed as an absolute epoch index).
class MultiStepLr {
 public:
  MultiStepLr(Adam* optimizer, std::vector<int64_t> milestones,
              float gamma = 0.1f);

  // Call once per epoch, after training that epoch.
  void Step(int64_t epoch);

 private:
  Adam* optimizer_;
  std::vector<int64_t> milestones_;
  float gamma_;
  float base_lr_;
};

}  // namespace pristi::nn

#endif  // PRISTI_NN_OPTIMIZER_H_
