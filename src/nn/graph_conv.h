#ifndef PRISTI_NN_GRAPH_CONV_H_
#define PRISTI_NN_GRAPH_CONV_H_

// Graph WaveNet-style diffusion graph convolution (the paper's MPNN
// component, Section III-B1: "We adopt the graph convolution module from
// Graph Wavenet, whose adjacency matrix includes a bidirectional
// distance-based matrix and an adaptively learnable matrix").
//
// Given supports {A_s} (typically the forward and backward transition
// matrices of the sensor graph) plus an optional learned adaptive adjacency
// softmax(relu(E1 E2^T)), the layer computes
//
//   Z = [X, A_1 X, A_1^2 X, ..., A_S^K X]  W + b
//
// i.e. K diffusion steps per support, concatenated on the channel axis and
// mixed by a 1x1 convolution.

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "graph/sparse.h"
#include "nn/module.h"

namespace pristi::nn {

class GraphConv : public Module {
 public:
  // `supports` are fixed (N, N) transition matrices, row-normalized by the
  // caller (see graph/adjacency.h). `adaptive_rank` > 0 adds the learned
  // adjacency with embeddings of that rank; requires `num_nodes`.
  // `use_sparse` stores the fixed supports in CSR form and runs message
  // passing in O(nnz * d) — the scalability path for large sensor networks
  // (thresholded kernels are sparse at scale). The adaptive adjacency, being
  // learned and dense, always uses the dense kernel. Numerics are identical
  // either way (verified by tests).
  GraphConv(int64_t d_in, int64_t d_out, std::vector<Tensor> supports,
            Rng& rng, int64_t diffusion_steps = 2, int64_t adaptive_rank = 0,
            int64_t num_nodes = 0, bool use_sparse = false);

  // x: (B, N, d_in) -> (B, N, d_out).
  Variable Forward(const Variable& x) const;

  // The adaptive adjacency currently implied by the node embeddings
  // (softmax(relu(E1 E2^T))); for inspection and tests.
  Variable AdaptiveAdjacency() const;

  bool has_adaptive() const { return adaptive_rank_ > 0; }

 private:
  int64_t d_in_;
  int64_t d_out_;
  int64_t diffusion_steps_;
  int64_t adaptive_rank_;
  bool use_sparse_;
  std::vector<Variable> supports_;  // constants (dense path)
  std::vector<std::shared_ptr<graph::CsrMatrix>> sparse_supports_;
  Variable e1_, e2_;                // adaptive embeddings (N, rank)
  Variable weight_;                 // ((1 + S*K) * d_in, d_out)
  Variable bias_;
};

}  // namespace pristi::nn

#endif  // PRISTI_NN_GRAPH_CONV_H_
