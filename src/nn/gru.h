#ifndef PRISTI_NN_GRU_H_
#define PRISTI_NN_GRU_H_

// Gated recurrent unit cell, the recurrence used by the RNN imputation
// baselines (BRITS-like, GRIN-like, rGAIN-lite, VRIN-lite).

#include "autograd/ops.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace pristi::nn {

class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  // x: (B, input), h: (B, hidden) -> next hidden (B, hidden).
  Variable Forward(const Variable& x, const Variable& h) const;

  // Zero initial hidden state for a batch.
  Variable InitialState(int64_t batch) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Variable wxz_, whz_, bz_;
  Variable wxr_, whr_, br_;
  Variable wxn_, whn_, bn_;
};

}  // namespace pristi::nn

#endif  // PRISTI_NN_GRU_H_
