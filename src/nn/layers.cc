#include "nn/layers.h"

#include "common/check.h"

namespace pristi::nn {

namespace ag = ::pristi::autograd;

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  PRISTI_CHECK_GT(in_features, 0);
  PRISTI_CHECK_GT(out_features, 0);
  weight_ = AddParameter(
      "weight", GlorotUniform({in_features, out_features}, in_features,
                              out_features, rng));
  if (has_bias_) {
    bias_ = AddParameter("bias", Tensor::Zeros({out_features}));
  }
}

Variable Linear::Forward(const Variable& x) const {
  PRISTI_CHECK_EQ(x.value().dim(-1), in_features_)
      << "Linear expected last dim " << in_features_;
  Variable out = ag::MatMulLastDim(x, weight_);
  if (has_bias_) out = ag::Add(out, bias_);
  return out;
}

LayerNorm::LayerNorm(int64_t features, float eps) : eps_(eps) {
  PRISTI_CHECK_GT(features, 0);
  gamma_ = AddParameter("gamma", Tensor::Ones({features}));
  beta_ = AddParameter("beta", Tensor::Zeros({features}));
}

Variable LayerNorm::Forward(const Variable& x) const {
  return ag::LayerNormLastDim(x, gamma_, beta_, eps_);
}

Mlp::Mlp(int64_t in_features, int64_t hidden_features, int64_t out_features,
         Rng& rng)
    : fc1_(in_features, hidden_features, rng),
      fc2_(hidden_features, out_features, rng) {
  AddChild("fc1", &fc1_);
  AddChild("fc2", &fc2_);
}

Variable Mlp::Forward(const Variable& x) const {
  return fc2_.Forward(ag::Relu(fc1_.Forward(x)));
}

Variable GatedActivation(const Variable& x) {
  int64_t d = x.value().dim(-1);
  PRISTI_CHECK_EQ(d % 2, 0) << "GatedActivation needs an even channel count";
  Variable filt = ag::SliceAxis(x, -1, 0, d / 2);
  Variable gate = ag::SliceAxis(x, -1, d / 2, d / 2);
  return ag::Mul(ag::Tanh(filt), ag::Sigmoid(gate));
}

}  // namespace pristi::nn
