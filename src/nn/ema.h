#ifndef PRISTI_NN_EMA_H_
#define PRISTI_NN_EMA_H_

// Exponential moving average of model weights — the standard stabilization
// for diffusion-model training (DDPM, DiffWave, CSDI all evaluate with EMA
// weights). Keep one EmaWeights next to the optimizer, call Update() after
// each step, and wrap evaluation in an EmaEvalScope (or the manual
// ApplyShadow()/Restore() pair when gradients are needed).

#include <vector>

#include "autograd/variable.h"

namespace pristi::nn {

class EmaWeights {
 public:
  explicit EmaWeights(std::vector<autograd::Variable> params,
                      float decay = 0.995f);

  // shadow <- decay * shadow + (1 - decay) * param.
  void Update();

  // Swaps the shadow weights into the live parameters (stashing the live
  // values); call before evaluation.
  void ApplyShadow();
  // Restores the live training weights stashed by ApplyShadow().
  void Restore();

  float decay() const { return decay_; }

  // Checkpoint access (serialize/checkpoint.h).
  const std::vector<tensor::Tensor>& shadow() const { return shadow_; }
  // Replaces the shadow weights wholesale; the caller has already validated
  // counts and shapes. Must not be called while ApplyShadow() is active.
  void RestoreShadow(std::vector<tensor::Tensor> shadow);

 private:
  std::vector<autograd::Variable> params_;
  std::vector<tensor::Tensor> shadow_;
  std::vector<tensor::Tensor> stash_;
  float decay_;
  bool shadow_applied_ = false;
};

// RAII mid-training evaluation scope: swaps the EMA shadow weights into the
// live parameters AND enters autograd inference mode for its lifetime, so
// the evaluation forward passes record no tape. The destructor restores the
// training weights before re-enabling recording.
class EmaEvalScope {
 public:
  explicit EmaEvalScope(EmaWeights& ema) : ema_(ema) { ema_.ApplyShadow(); }
  ~EmaEvalScope() { ema_.Restore(); }
  EmaEvalScope(const EmaEvalScope&) = delete;
  EmaEvalScope& operator=(const EmaEvalScope&) = delete;

 private:
  EmaWeights& ema_;
  autograd::NoGradGuard no_grad_;
};

}  // namespace pristi::nn

#endif  // PRISTI_NN_EMA_H_
