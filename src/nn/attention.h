#ifndef PRISTI_NN_ATTENTION_H_
#define PRISTI_NN_ATTENTION_H_

// Dot-product multi-head attention with two PriSTI-specific twists:
//
//  1. Decoupled sources (paper Eq. 7-8): the attention WEIGHTS are computed
//     from one stream (`qk_source`, the conditional prior H^pri) while the
//     VALUES come from another (`v_source`, the noisy stream H^in / H^tem).
//     Pass the same variable for both to recover standard self-attention.
//
//  2. Optional virtual-node downsampling (paper Eq. 9): keys and values are
//     projected from N sequence positions to k < N learned virtual positions,
//     reducing spatial attention from O(N^2 d) to O(N k d).

#include "autograd/ops.h"
#include "nn/module.h"

namespace pristi::nn {

class MultiHeadAttention : public Module {
 public:
  // `virtual_nodes` == 0 disables downsampling. When > 0, `seq_len` must be
  // the fixed sequence length of the inputs (the node count N for spatial
  // attention) so the projection matrices P_K, P_V of shape (k, N) can be
  // allocated.
  MultiHeadAttention(int64_t d_model, int64_t num_heads, Rng& rng,
                     int64_t virtual_nodes = 0, int64_t seq_len = 0);

  // qk_source, v_source: (B, S, d_model). Returns (B, S, d_model).
  Variable Forward(const Variable& qk_source, const Variable& v_source) const;

  // Self-attention convenience.
  Variable Forward(const Variable& x) const { return Forward(x, x); }

  int64_t d_model() const { return d_model_; }
  int64_t num_heads() const { return num_heads_; }
  int64_t virtual_nodes() const { return virtual_nodes_; }

 private:
  // (B, S, d) -> (B, h, S, d/h).
  Variable SplitHeads(const Variable& x) const;
  // (B, h, S, d/h) -> (B, S, d).
  Variable MergeHeads(const Variable& x) const;

  int64_t d_model_;
  int64_t num_heads_;
  int64_t head_dim_;
  int64_t virtual_nodes_;
  Variable wq_, wk_, wv_, wo_;
  Variable pk_, pv_;  // (k, N) virtual-node projections when enabled
};

}  // namespace pristi::nn

#endif  // PRISTI_NN_ATTENTION_H_
