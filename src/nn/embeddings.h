#ifndef PRISTI_NN_EMBEDDINGS_H_
#define PRISTI_NN_EMBEDDINGS_H_

// Fixed sinusoidal encodings (Transformer positions, DiffWave diffusion
// steps) used as the auxiliary information U_tem and the diffusion-step
// conditioning in the noise prediction models.

#include "tensor/tensor.h"

namespace pristi::nn {

// (length, dim) table with sin on even channels, cos on odd channels:
// PE(p, 2i) = sin(p / 10000^(2i/dim)), PE(p, 2i+1) = cos(...).
tensor::Tensor SinusoidalEncoding(int64_t length, int64_t dim);

// One row of the table above for a single (diffusion) step t.
tensor::Tensor DiffusionStepEncoding(int64_t t, int64_t dim);

}  // namespace pristi::nn

#endif  // PRISTI_NN_EMBEDDINGS_H_
