#include "nn/attention.h"

#include <cmath>

#include "common/check.h"
#include "tensor/kernels/attention.h"

namespace pristi::nn {

namespace ag = ::pristi::autograd;
namespace kernels = ::pristi::tensor::kernels;

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int64_t num_heads,
                                       Rng& rng, int64_t virtual_nodes,
                                       int64_t seq_len)
    : d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      virtual_nodes_(virtual_nodes) {
  PRISTI_CHECK_GT(num_heads, 0);
  PRISTI_CHECK_EQ(d_model % num_heads, 0) << "d_model must divide num_heads";
  wq_ = AddParameter("wq",
                     GlorotUniform({d_model, d_model}, d_model, d_model, rng));
  wk_ = AddParameter("wk",
                     GlorotUniform({d_model, d_model}, d_model, d_model, rng));
  wv_ = AddParameter("wv",
                     GlorotUniform({d_model, d_model}, d_model, d_model, rng));
  wo_ = AddParameter("wo",
                     GlorotUniform({d_model, d_model}, d_model, d_model, rng));
  if (virtual_nodes_ > 0) {
    PRISTI_CHECK_GT(seq_len, 0)
        << "virtual-node attention needs a fixed sequence length";
    PRISTI_CHECK_LT(virtual_nodes_, seq_len)
        << "virtual nodes should compress the sequence";
    pk_ = AddParameter(
        "pk", GlorotUniform({virtual_nodes_, seq_len}, seq_len, virtual_nodes_,
                            rng));
    pv_ = AddParameter(
        "pv", GlorotUniform({virtual_nodes_, seq_len}, seq_len, virtual_nodes_,
                            rng));
  }
}

Variable MultiHeadAttention::SplitHeads(const Variable& x) const {
  int64_t b = x.value().dim(0);
  int64_t s = x.value().dim(1);
  Variable reshaped = ag::Reshape(x, {b, s, num_heads_, head_dim_});
  return ag::Permute(reshaped, {0, 2, 1, 3});
}

Variable MultiHeadAttention::MergeHeads(const Variable& x) const {
  int64_t b = x.value().dim(0);
  int64_t s = x.value().dim(2);
  Variable permuted = ag::Permute(x, {0, 2, 1, 3});
  return ag::Reshape(permuted, {b, s, d_model_});
}

Variable MultiHeadAttention::Forward(const Variable& qk_source,
                                     const Variable& v_source) const {
  PRISTI_CHECK_EQ(qk_source.value().ndim(), 3);
  PRISTI_CHECK_EQ(v_source.value().ndim(), 3);
  PRISTI_CHECK_EQ(qk_source.value().dim(-1), d_model_);
  PRISTI_CHECK_EQ(v_source.value().dim(-1), d_model_);
  PRISTI_CHECK_EQ(qk_source.value().dim(0), v_source.value().dim(0));
  PRISTI_CHECK_EQ(qk_source.value().dim(1), v_source.value().dim(1));

  Variable q = ag::MatMulLastDim(qk_source, wq_);
  Variable key_input = qk_source;
  Variable value_input = v_source;
  if (virtual_nodes_ > 0) {
    // Eq. 9: compress keys/values to k virtual positions before projection.
    key_input = ag::MatMulNodeDim(pk_, qk_source);
    value_input = ag::MatMulNodeDim(pv_, v_source);
  }
  Variable k = ag::MatMulLastDim(key_input, wk_);
  Variable v = ag::MatMulLastDim(value_input, wv_);

  Variable qh = SplitHeads(q);  // (B, h, S, dh)
  Variable kh = SplitHeads(k);  // (B, h, S_k, dh)
  Variable vh = SplitHeads(v);  // (B, h, S_k, dh)

  float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Variable context;
  if (kernels::FusedAttentionEnabled()) {
    // Streaming fused kernel: online softmax over packed K panels, the
    // (B, h, S, S_k) scores never materialize, scale folded into the
    // Q-load. Matches the reference chain to 1e-5, not bitwise
    // (tensor/kernels/attention.h).
    context = ag::FusedAttention(qh, kh, vh, scale);
  } else {
    // Reference chain (PRISTI_ATTN_FUSED=0): Q·Kᵀ via the NT kernel with
    // the scale as an in-place epilogue — bitwise the pre-fusion
    // MulScalar pass, so every recorded golden pins this path.
    Variable weights =
        ag::SoftmaxLastDim(ag::BatchedMatMulNTScaled(qh, kh, scale));
    context = ag::BatchedMatMul(weights, vh);  // (B, h, S, dh)
  }
  return ag::MatMulLastDim(MergeHeads(context), wo_);
}

}  // namespace pristi::nn
