#ifndef PRISTI_NN_LAYERS_H_
#define PRISTI_NN_LAYERS_H_

// Core feed-forward layers. All layers operate on the LAST axis of their
// input, so any leading batch structure (B), (B,N), (B,N,L) works unchanged.

#include <string>

#include "autograd/ops.h"
#include "nn/module.h"

namespace pristi::nn {

// Affine map on the last axis: y = x W + b, W of shape (in, out).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Variable Forward(const Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;
  Variable bias_;
  bool has_bias_;
};

// The paper's Conv(.) is a 1x1 convolution over the channel axis, which for
// channel-last layout is exactly a Linear on the last axis. Kept as its own
// type so model code reads like the paper.
using Conv1x1 = Linear;

// LayerNorm over the last axis with learnable affine.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Variable Forward(const Variable& x) const;

 private:
  Variable gamma_;
  Variable beta_;
  float eps_;
};

// Two-layer perceptron with ReLU: Linear -> ReLU -> Linear.
class Mlp : public Module {
 public:
  Mlp(int64_t in_features, int64_t hidden_features, int64_t out_features,
      Rng& rng);

  Variable Forward(const Variable& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
};

// DiffWave-style gated activation: splits the last axis in half and returns
// tanh(first) * sigmoid(second). Input last dim must be even.
Variable GatedActivation(const Variable& x);

}  // namespace pristi::nn

#endif  // PRISTI_NN_LAYERS_H_
