#include "nn/ema.h"

#include <utility>

#include "common/check.h"

namespace pristi::nn {

using autograd::Variable;
using tensor::Tensor;

EmaWeights::EmaWeights(std::vector<Variable> params, float decay)
    : params_(std::move(params)), decay_(decay) {
  PRISTI_CHECK_GT(decay_, 0.0f);
  PRISTI_CHECK_LT(decay_, 1.0f);
  shadow_.reserve(params_.size());
  for (const Variable& p : params_) {
    PRISTI_CHECK(p.defined());
    shadow_.push_back(p.value());  // initialize shadow at current weights
  }
}

void EmaWeights::Update() {
  PRISTI_CHECK(!shadow_applied_) << "Update() while shadow weights are applied";
  for (size_t i = 0; i < params_.size(); ++i) {
    const Tensor& live = params_[i].value();
    Tensor& shadow = shadow_[i];
    float* ps = shadow.data();
    const float* pl = live.data();
    int64_t n = shadow.numel();
    for (int64_t j = 0; j < n; ++j) {
      ps[j] = decay_ * ps[j] + (1.0f - decay_) * pl[j];
    }
  }
}

void EmaWeights::RestoreShadow(std::vector<Tensor> shadow) {
  PRISTI_CHECK(!shadow_applied_)
      << "RestoreShadow() while shadow weights are applied";
  PRISTI_CHECK_EQ(shadow.size(), params_.size());
  shadow_ = std::move(shadow);
}

void EmaWeights::ApplyShadow() {
  PRISTI_CHECK(!shadow_applied_);
  stash_.clear();
  stash_.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    stash_.push_back(params_[i].value());
    params_[i].mutable_value() = shadow_[i];
  }
  shadow_applied_ = true;
}

void EmaWeights::Restore() {
  PRISTI_CHECK(shadow_applied_) << "Restore() without ApplyShadow()";
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i].mutable_value() = stash_[i];
  }
  stash_.clear();
  shadow_applied_ = false;
}

}  // namespace pristi::nn
