#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace pristi::nn {

using autograd::Variable;
using tensor::Tensor;

Adam::Adam(std::vector<Variable> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    PRISTI_CHECK(p.defined());
    m_.push_back(Tensor::Zeros(p.value().shape()));
    v_.push_back(Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  float bias1 = 1.0f - std::pow(options_.beta1,
                                static_cast<float>(step_count_));
  float bias2 = 1.0f - std::pow(options_.beta2,
                                static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& w = p.mutable_value();
    float* pm = m.data();
    float* pv = v.data();
    float* pw = w.data();
    const float* pg = g.data();
    int64_t n = w.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = pg[j] + options_.weight_decay * pw[j];
      pm[j] = options_.beta1 * pm[j] + (1.0f - options_.beta1) * grad;
      pv[j] = options_.beta2 * pv[j] + (1.0f - options_.beta2) * grad * grad;
      float m_hat = pm[j] / bias1;
      float v_hat = pv[j] / bias2;
      pw[j] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
    if (NanCheckEnabled()) {
      int64_t bad = FirstNonFinite(pw, n);
      PRISTI_CHECK(bad < 0)
          << "PRISTI_DEBUG_NANCHECK: Adam::Step drove parameter " << i
          << " (shape " << tensor::ShapeToString(w.shape())
          << ") non-finite at flat index " << bad
          << "; gradient there is " << pg[bad];
    }
  }
}

void Adam::ZeroGrad() {
  for (Variable& p : params_) p.ZeroGrad();
}

void Adam::RestoreState(int64_t step_count, std::vector<Tensor> m,
                        std::vector<Tensor> v) {
  PRISTI_CHECK_GE(step_count, 0);
  PRISTI_CHECK_EQ(m.size(), params_.size());
  PRISTI_CHECK_EQ(v.size(), params_.size());
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

MultiStepLr::MultiStepLr(Adam* optimizer, std::vector<int64_t> milestones,
                         float gamma)
    : optimizer_(optimizer),
      milestones_(std::move(milestones)),
      gamma_(gamma),
      base_lr_(optimizer->lr()) {
  PRISTI_CHECK(optimizer_ != nullptr);
  std::sort(milestones_.begin(), milestones_.end());
}

void MultiStepLr::Step(int64_t epoch) {
  float lr = base_lr_;
  for (int64_t milestone : milestones_) {
    if (epoch >= milestone) lr *= gamma_;
  }
  optimizer_->set_lr(lr);
}

}  // namespace pristi::nn
