#include "nn/gru.h"

#include "common/check.h"

namespace pristi::nn {

namespace ag = ::pristi::autograd;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  auto wx = [&](const char* name) {
    return AddParameter(
        name, GlorotUniform({input_size, hidden_size}, input_size,
                            hidden_size, rng));
  };
  auto wh = [&](const char* name) {
    return AddParameter(
        name, GlorotUniform({hidden_size, hidden_size}, hidden_size,
                            hidden_size, rng));
  };
  auto b = [&](const char* name) {
    return AddParameter(name, Tensor::Zeros({hidden_size}));
  };
  wxz_ = wx("wxz");
  whz_ = wh("whz");
  bz_ = b("bz");
  wxr_ = wx("wxr");
  whr_ = wh("whr");
  br_ = b("br");
  wxn_ = wx("wxn");
  whn_ = wh("whn");
  bn_ = b("bn");
}

Variable GruCell::Forward(const Variable& x, const Variable& h) const {
  PRISTI_CHECK_EQ(x.value().dim(-1), input_size_);
  PRISTI_CHECK_EQ(h.value().dim(-1), hidden_size_);
  Variable z = ag::Sigmoid(ag::Add(
      ag::Add(ag::MatMulLastDim(x, wxz_), ag::MatMulLastDim(h, whz_)), bz_));
  Variable r = ag::Sigmoid(ag::Add(
      ag::Add(ag::MatMulLastDim(x, wxr_), ag::MatMulLastDim(h, whr_)), br_));
  Variable n = ag::Tanh(ag::Add(
      ag::Add(ag::MatMulLastDim(x, wxn_),
              ag::Mul(r, ag::MatMulLastDim(h, whn_))),
      bn_));
  // h' = (1 - z) * n + z * h
  Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, n), ag::Mul(z, h));
}

Variable GruCell::InitialState(int64_t batch) const {
  return ag::Constant(Tensor::Zeros({batch, hidden_size_}));
}

}  // namespace pristi::nn
