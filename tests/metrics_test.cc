// Tests for MAE/MSE/RMSE accumulators and the discretized-quantile CRPS
// (paper Eq. 10-12), including its identities (point mass = absolute error,
// scale equivariance).

#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pristi::metrics {
namespace {

namespace t = ::pristi::tensor;
using t::Tensor;

TEST(ErrorAccumulatorTest, HandComputedValues) {
  Tensor pred({2, 2}, {1, 2, 3, 4});
  Tensor truth({2, 2}, {1, 4, 5, 4});
  Tensor mask = Tensor::Ones({2, 2});
  ErrorAccumulator acc;
  acc.Add(pred, truth, mask);
  EXPECT_EQ(acc.count(), 4);
  EXPECT_NEAR(acc.Mae(), (0 + 2 + 2 + 0) / 4.0, 1e-9);
  EXPECT_NEAR(acc.Mse(), (0 + 4 + 4 + 0) / 4.0, 1e-9);
  EXPECT_NEAR(acc.Rmse(), std::sqrt(2.0), 1e-9);
}

TEST(ErrorAccumulatorTest, MaskExcludesEntries) {
  Tensor pred({1, 3}, {0, 100, 0});
  Tensor truth({1, 3}, {0, 0, 0});
  Tensor mask({1, 3}, {1, 0, 1});
  EXPECT_NEAR(MaskedMae(pred, truth, mask), 0.0, 1e-9);
  EXPECT_NEAR(MaskedMse(pred, truth, mask), 0.0, 1e-9);
}

TEST(ErrorAccumulatorTest, AggregatesAcrossWindowsByCount) {
  ErrorAccumulator acc;
  // First window: 2 entries with error 1.
  acc.Add(Tensor({2}, {1, 1}), Tensor({2}, {0, 0}), Tensor::Ones({2}));
  // Second window: 6 entries with error 4.
  acc.Add(Tensor({6}, {4, 4, 4, 4, 4, 4}), Tensor::Zeros({6}),
          Tensor::Ones({6}));
  EXPECT_NEAR(acc.Mae(), (2 * 1 + 6 * 4) / 8.0, 1e-9);
}

TEST(ErrorAccumulatorTest, EmptyMaskGivesZero) {
  ErrorAccumulator acc;
  acc.Add(Tensor({2}, {5, 5}), Tensor::Zeros({2}), Tensor::Zeros({2}));
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.Mae(), 0.0);
}

// ---------------------------------------------------------------------------
// CRPS
// ---------------------------------------------------------------------------

TEST(CrpsTest, PointMassEqualsAbsoluteError) {
  // A degenerate distribution at v scores exactly |truth - v| under the
  // discretized quantile-loss CRPS.
  std::vector<float> samples(50, 3.0f);
  EXPECT_NEAR(CrpsFromSamples(samples, 5.0f), 2.0, 1e-5);
  EXPECT_NEAR(CrpsFromSamples(samples, 3.0f), 0.0, 1e-6);
  EXPECT_NEAR(CrpsFromSamples(samples, 1.5f), 1.5, 1e-5);
}

TEST(CrpsTest, ConcentratedBeatsDiffuse) {
  Rng rng(1);
  std::vector<float> tight, wide;
  for (int i = 0; i < 400; ++i) {
    tight.push_back(static_cast<float>(rng.Normal(0.0, 0.3)));
    wide.push_back(static_cast<float>(rng.Normal(0.0, 3.0)));
  }
  EXPECT_LT(CrpsFromSamples(tight, 0.0f), CrpsFromSamples(wide, 0.0f));
}

TEST(CrpsTest, CalibrationBeatsBias) {
  Rng rng(2);
  std::vector<float> centered, biased;
  for (int i = 0; i < 400; ++i) {
    float draw = static_cast<float>(rng.Normal(0.0, 1.0));
    centered.push_back(draw);
    biased.push_back(draw + 5.0f);
  }
  EXPECT_LT(CrpsFromSamples(centered, 0.0f), CrpsFromSamples(biased, 0.0f));
}

TEST(CrpsTest, ScaleEquivariance) {
  Rng rng(3);
  std::vector<float> samples;
  for (int i = 0; i < 300; ++i) {
    samples.push_back(static_cast<float>(rng.Normal(1.0, 1.0)));
  }
  double base = CrpsFromSamples(samples, 2.0f);
  std::vector<float> scaled;
  for (float s : samples) scaled.push_back(3.0f * s);
  EXPECT_NEAR(CrpsFromSamples(scaled, 6.0f), 3.0 * base, 1e-3);
}

TEST(CrpsAccumulatorTest, NormalizationByTargetMagnitude) {
  // Point-mass samples: CRPS = |error|; normalized = sum|err| / sum|truth|.
  Tensor truth({2}, {10.0f, 20.0f});
  Tensor mask = Tensor::Ones({2});
  std::vector<Tensor> samples(5, Tensor({2}, {11.0f, 18.0f}));
  CrpsAccumulator acc;
  acc.Add(samples, truth, mask);
  EXPECT_EQ(acc.count(), 2);
  EXPECT_NEAR(acc.Crps(), (1.0 + 2.0) / 2.0, 1e-5);
  EXPECT_NEAR(acc.NormalizedCrps(), (1.0 + 2.0) / 30.0, 1e-6);
}

TEST(CrpsAccumulatorTest, MaskRestrictsEntries) {
  Tensor truth({3}, {1.0f, 2.0f, 3.0f});
  Tensor mask({3}, {0.0f, 1.0f, 0.0f});
  std::vector<Tensor> samples(4, Tensor({3}, {9.0f, 2.0f, 9.0f}));
  CrpsAccumulator acc;
  acc.Add(samples, truth, mask);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_NEAR(acc.Crps(), 0.0, 1e-6);
}

}  // namespace
}  // namespace pristi::metrics
