#ifndef PRISTI_TESTS_TEST_TMPDIR_H_
#define PRISTI_TESTS_TEST_TMPDIR_H_

// Per-test scratch directory for file-writing tests.
//
// Every test that writes files (checkpoints, golden regeneration, bench
// JSON) must route them through a TestTempDir instead of the working
// directory or fixed names under /tmp: fixed paths collide when the suite
// runs with `ctest -j` and leak artifacts into the source tree when tests
// run from a checkout. The directory is created fresh under the system temp
// root with a name derived from the running test and the process id, and is
// removed recursively on destruction.

#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace pristi::testing {

class TestTempDir {
 public:
  TestTempDir() {
    std::string name = "pristi_test";
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    if (info != nullptr) {
      name += std::string("_") + info->test_suite_name() + "_" + info->name();
    }
    for (char& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    name += '_';
    name += std::to_string(static_cast<long long>(getpid()));
    path_ = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(path_);  // stale leftovers from a crash
    std::filesystem::create_directories(path_);
  }

  ~TestTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
  }

  TestTempDir(const TestTempDir&) = delete;
  TestTempDir& operator=(const TestTempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

  // "<dir>/<name>" as a string, for APIs that take file paths.
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

}  // namespace pristi::testing

#endif  // PRISTI_TESTS_TEST_TMPDIR_H_
