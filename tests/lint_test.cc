// Tests for the repo linter: each rule must fire on a planted violation in
// a synthetic repository tree and stay silent on conforming files.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pristi_lint_lib.h"
#include "test_tmpdir.h"

namespace pristi::lint {
namespace {

namespace fs = std::filesystem;

void WriteFileAt(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << "failed to write " << path;
}

bool HasViolation(const std::vector<Violation>& violations,
                  const std::string& rule, const std::string& needle) {
  for (const Violation& v : violations) {
    if (v.rule == rule && (v.file.find(needle) != std::string::npos ||
                           v.message.find(needle) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

// A fresh synthetic repo root per test, isolated via TestTempDir so
// parallel ctest invocations cannot collide on a shared fixed path.
class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = tmp_.path() / "repo";
    fs::create_directories(root_);
  }

  pristi::testing::TestTempDir tmp_;
  fs::path root_;
};

TEST(StripCommentsAndStrings, RemovesCommentsAndLiteralsKeepsLines) {
  std::string src =
      "int a; // rand()\n"
      "/* std::cout\n"
      "   spans lines */ int b;\n"
      "const char* s = \"new int\";\n"
      "char c = '\\n';\n";
  std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("cout"), std::string::npos);
  EXPECT_EQ(stripped.find("new int"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // Line structure is preserved so reported line numbers stay valid.
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
}

TEST(CanonicalHeaderGuard, MapsPathToGuard) {
  EXPECT_EQ(CanonicalHeaderGuard("common/check.h"), "PRISTI_COMMON_CHECK_H_");
  EXPECT_EQ(CanonicalHeaderGuard("tensor/tensor.h"),
            "PRISTI_TENSOR_TENSOR_H_");
}

TEST(DifferentiableOps, ExtractsDeclaredOps) {
  std::string header =
      "Variable Foo(const Variable& a);\n"
      "Variable Bar(const Variable& a, float s);\n"
      "void NotAnOp(int x);\n"
      "  Variable Indented(const Variable& a);\n";  // not at line start
  std::vector<std::string> ops = DifferentiableOps(header);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], "Foo");
  EXPECT_EQ(ops[1], "Bar");
}

TEST_F(LintTest, HeaderGuardRuleFiresOnPlantedViolations) {
  WriteFileAt(root_ / "src/common/bad.h",
              "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n");
  WriteFileAt(root_ / "src/common/missing.h", "int x;\n");
  WriteFileAt(
      root_ / "src/common/good.h",
      "#ifndef PRISTI_COMMON_GOOD_H_\n#define PRISTI_COMMON_GOOD_H_\n"
      "#endif  // PRISTI_COMMON_GOOD_H_\n");
  std::vector<Violation> v = CheckHeaderGuards(root_.string());
  EXPECT_TRUE(HasViolation(v, "header-guard", "bad.h"));
  EXPECT_TRUE(HasViolation(v, "header-guard", "missing.h"));
  EXPECT_FALSE(HasViolation(v, "header-guard", "good.h"));
  EXPECT_EQ(v.size(), 2u);
}

TEST_F(LintTest, BannedPatternRuleFiresOnEachPattern) {
  WriteFileAt(root_ / "src/common/uses_rand.cc",
              "int f() { return rand() % 7; }\n");
  WriteFileAt(root_ / "src/common/uses_cout.cc",
              "#include <iostream>\nvoid g() { std::cout << 1; }\n");
  WriteFileAt(root_ / "src/common/uses_new.cc",
              "int* h() { return new int(3); }\n");
  std::vector<Violation> v = CheckBannedPatterns(root_.string());
  EXPECT_TRUE(HasViolation(v, "banned-pattern", "uses_rand.cc"));
  EXPECT_TRUE(HasViolation(v, "banned-pattern", "uses_cout.cc"));
  EXPECT_TRUE(HasViolation(v, "banned-pattern", "uses_new.cc"));
}

TEST_F(LintTest, BannedPatternsInCommentsAndStringsAreIgnored) {
  WriteFileAt(root_ / "src/common/clean.cc",
              "// rand() and std::cout and new are fine in comments\n"
              "const char* doc = \"call rand() or new std::cout\";\n"
              "int renewed = 1;  // 'new' inside an identifier is fine too\n");
  std::vector<Violation> v = CheckBannedPatterns(root_.string());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LintTest, CmakeSourceListRuleFindsUnlistedSibling) {
  WriteFileAt(root_ / "src/common/listed.cc", "int a;\n");
  WriteFileAt(root_ / "src/common/orphan.cc", "int b;\n");
  WriteFileAt(root_ / "src/common/CMakeLists.txt",
              "add_library(pristi_common listed.cc)\n");
  std::vector<Violation> v = CheckCmakeSourceLists(root_.string());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cmake-sources");
  EXPECT_NE(v[0].message.find("orphan.cc"), std::string::npos);
}

TEST_F(LintTest, GradCoverageRuleFindsUntestedOp) {
  WriteFileAt(root_ / "src/autograd/ops.h",
              "Variable Foo(const Variable& a);\n"
              "Variable Bar(const Variable& a);\n");
  WriteFileAt(root_ / "tests/autograd_test.cc",
              "TEST(GradCheck, Foo) { SumAll(Foo(v[0])); }\n");
  std::vector<Violation> v = CheckGradCoverage(root_.string());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "grad-coverage");
  EXPECT_NE(v[0].message.find("Bar"), std::string::npos);
}

TEST_F(LintTest, LintRepoAggregatesAllRulesAndFormats) {
  WriteFileAt(root_ / "src/common/bad.h",
              "#ifndef NOPE_H_\n#define NOPE_H_\nint* p = new int;\n"
              "#endif\n");
  std::vector<Violation> v = LintRepo(root_.string());
  EXPECT_TRUE(HasViolation(v, "header-guard", "bad.h"));
  EXPECT_TRUE(HasViolation(v, "banned-pattern", "bad.h"));
  for (const Violation& violation : v) {
    std::string line = FormatViolation(violation);
    EXPECT_NE(line.find(violation.rule), std::string::npos);
    EXPECT_NE(line.find("bad.h"), std::string::npos);
  }
}

TEST_F(LintTest, CmakeSourceListRuleAuditsTestsToolsAndBench) {
  // tests/ registers by stem (pristi_add_test(foo_test ...)) — accepted;
  // an orphan test file must still fire.
  WriteFileAt(root_ / "tests/listed_test.cc", "int a;\n");
  WriteFileAt(root_ / "tests/orphan_test.cc", "int b;\n");
  WriteFileAt(root_ / "tests/CMakeLists.txt",
              "pristi_add_test(listed_test pristi_common)\n");
  WriteFileAt(root_ / "tools/orphan_tool.cc", "int c;\n");
  WriteFileAt(root_ / "tools/CMakeLists.txt", "# nothing registered\n");
  WriteFileAt(root_ / "bench/orphan_bench.cc", "int d;\n");
  WriteFileAt(root_ / "bench/CMakeLists.txt", "# nothing registered\n");
  std::vector<Violation> v = CheckCmakeSourceLists(root_.string());
  EXPECT_FALSE(HasViolation(v, "cmake-sources", "listed_test.cc"));
  EXPECT_TRUE(HasViolation(v, "cmake-sources", "orphan_test.cc"));
  EXPECT_TRUE(HasViolation(v, "cmake-sources", "orphan_tool.cc"));
  EXPECT_TRUE(HasViolation(v, "cmake-sources", "orphan_bench.cc"));
}

// Builds a planted src/serialize/format.h whose fingerprint comment is
// `fingerprint` (hex text) over the given layout region.
std::string FormatHeaderWith(const std::string& region,
                             const std::string& fingerprint_line) {
  return "#ifndef PRISTI_SERIALIZE_FORMAT_H_\n"
         "#define PRISTI_SERIALIZE_FORMAT_H_\n"
         "// serialize-layout-begin\n" +
         region + "// serialize-layout-end\n" + fingerprint_line +
         "#endif\n";
}

std::string FingerprintComment(uint32_t fp) {
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                "// serialize-layout-fingerprint: 0x%08X\n", fp);
  return buf;
}

TEST_F(LintTest, SerializeVersionGuardAcceptsMatchingFingerprint) {
  std::string region = "inline constexpr uint32_t kFormatVersion = 1;\n";
  WriteFileAt(root_ / "src/serialize/format.h",
              FormatHeaderWith(region,
                               FingerprintComment(LayoutFingerprint(region))));
  std::vector<Violation> v = CheckSerializeVersionGuard(root_.string());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LintTest, SerializeVersionGuardFiresOnLayoutEditWithoutBump) {
  std::string region = "inline constexpr uint32_t kFormatVersion = 1;\n";
  std::string stale = FingerprintComment(LayoutFingerprint(region));
  // Edit the layout (new record tag) but keep the stale fingerprint.
  std::string edited = region + "enum class RecordTag : uint32_t { kNew };\n";
  WriteFileAt(root_ / "src/serialize/format.h",
              FormatHeaderWith(edited, stale));
  std::vector<Violation> v = CheckSerializeVersionGuard(root_.string());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "serialize-version-guard");
  EXPECT_NE(v[0].message.find("kFormatVersion"), std::string::npos);
}

TEST_F(LintTest, SerializeVersionGuardFiresOnMissingMarkersOrComment) {
  WriteFileAt(root_ / "src/serialize/format.h", "int x;\n");
  std::vector<Violation> missing_markers =
      CheckSerializeVersionGuard(root_.string());
  ASSERT_EQ(missing_markers.size(), 1u);
  EXPECT_NE(missing_markers[0].message.find("markers"), std::string::npos);

  std::string region = "inline constexpr uint32_t kFormatVersion = 1;\n";
  WriteFileAt(root_ / "src/serialize/format.h",
              FormatHeaderWith(region, "// no fingerprint here\n"));
  std::vector<Violation> missing_comment =
      CheckSerializeVersionGuard(root_.string());
  ASSERT_EQ(missing_comment.size(), 1u);
  EXPECT_NE(missing_comment[0].message.find("missing fingerprint"),
            std::string::npos);
}

TEST_F(LintTest, TensorByValueRuleFiresOnByValueParams) {
  WriteFileAt(root_ / "src/nn/copies.cc",
              "void Plain(Tensor t) {}\n"
              "void Qualified(tensor::Tensor weights, int n) {}\n"
              "void Aliased(int steps,\n"
              "             ag::Variable loss) {}\n"
              "Variable Full(pristi::autograd::Variable v) { return v; }\n");
  std::vector<Violation> v = CheckTensorByValueParams(root_.string());
  ASSERT_EQ(v.size(), 4u);
  EXPECT_TRUE(HasViolation(v, "tensor-by-value", "copies.cc"));
  EXPECT_EQ(v[0].line, 1);
  EXPECT_EQ(v[1].line, 2);
  // Wrapped parameter lists report the parameter's line, not the `(`.
  EXPECT_EQ(v[2].line, 4);
  EXPECT_NE(v[0].message.find("const Tensor&"), std::string::npos);
  EXPECT_NE(v[2].message.find("const Variable&"), std::string::npos);
}

TEST_F(LintTest, TensorByValueRuleAcceptsReferencesContainersAndSuppression) {
  WriteFileAt(
      root_ / "src/nn/clean.cc",
      "void Ref(const Tensor& t, Variable* out) {}\n"
      "void Mut(tensor::Tensor& t) {}\n"
      "void Container(std::vector<Tensor> parts,\n"
      "               std::pair<std::string, Variable> named) {}\n"
      "void Loop(const std::vector<Tensor>& v) {\n"
      "  for (Tensor t : v) Ref(t, nullptr);\n"
      "}\n"
      "void Sink(Tensor t) {}  // pristi-lint: allow-tensor-by-value\n");
  std::vector<Violation> v = CheckTensorByValueParams(root_.string());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LintTest, NoMaterializedTransposeRuleFiresOnTransposeIntoMatMul) {
  WriteFileAt(
      root_ / "src/nn/hot.cc",
      "void Scores() {\n"
      "  auto s = ag::BatchedMatMul(qh, ag::TransposeLast2(kh));\n"
      "  auto adj = t::MatMul(e1, t::TransposeLast2(e2));\n"
      "  auto g = t::MatMulLastDim(x,\n"
      "                            t::Permute(w, {1, 0}));\n"
      "}\n");
  std::vector<Violation> v = CheckNoMaterializedTranspose(root_.string());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].line, 2);
  EXPECT_EQ(v[1].line, 3);
  // Wrapped argument lists still attribute to the MatMul call's line.
  EXPECT_EQ(v[2].line, 4);
  EXPECT_NE(v[0].message.find("TransposeLast2"), std::string::npos);
  EXPECT_NE(v[0].message.find("BatchedMatMul"), std::string::npos);
  EXPECT_NE(v[2].message.find("Permute"), std::string::npos);
}

TEST_F(LintTest, NoMaterializedTransposeRuleAcceptsNTVariantsAndSuppression) {
  WriteFileAt(
      root_ / "src/nn/clean_mm.cc",
      "void Clean() {\n"
      "  auto s = ag::BatchedMatMulNT(qh, kh);\n"
      "  auto adj = t::MatMulNT(e1, e2);\n"
      // Transpose of a product (not feeding a MatMul) is fine.
      "  auto tr = t::TransposeLast2(t::MatMul(a, b));\n"
      // Transpose mentioned in a comment only.
      "  auto c = t::MatMul(a, b);  // was TransposeLast2(b)\n"
      "  auto ok = t::MatMul(a, t::TransposeLast2(b));"
      "  // pristi-lint: allow-materialized-transpose\n"
      "}\n");
  std::vector<Violation> v = CheckNoMaterializedTranspose(root_.string());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST(LayoutFingerprintTest, MatchesFnv1aReferenceVectors) {
  // Standard FNV-1a 32-bit reference values.
  EXPECT_EQ(LayoutFingerprint(""), 0x811C9DC5u);
  EXPECT_EQ(LayoutFingerprint("a"), 0xE40C292Cu);
  EXPECT_EQ(LayoutFingerprint("foobar"), 0xBF9CF968u);
}

TEST_F(LintTest, CleanTreeProducesNoViolations) {
  WriteFileAt(
      root_ / "src/common/good.h",
      "#ifndef PRISTI_COMMON_GOOD_H_\n#define PRISTI_COMMON_GOOD_H_\n"
      "#endif\n");
  WriteFileAt(root_ / "src/common/good.cc", "#include \"common/good.h\"\n");
  WriteFileAt(root_ / "src/common/CMakeLists.txt",
              "add_library(pristi_common good.cc)\n");
  std::vector<Violation> v = LintRepo(root_.string());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

}  // namespace
}  // namespace pristi::lint
