// Tests for the pristi_analyze engine: the tokenizer, the include graph,
// and every pass must fire on a planted violation in a synthetic
// repository tree and stay silent on conforming files; the uniform
// `pristi-lint: allow-<rule>` suppression must silence each rule.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis.h"
#include "include_graph.h"
#include "manifest.h"
#include "test_tmpdir.h"

namespace pristi::analysis {
namespace {

namespace fs = std::filesystem;

void WriteFileAt(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << "failed to write " << path;
}

bool HasViolation(const std::vector<Violation>& violations,
                  const std::string& rule, const std::string& needle) {
  for (const Violation& v : violations) {
    if (v.rule == rule && (v.file.find(needle) != std::string::npos ||
                           v.message.find(needle) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

size_t CountRule(const std::vector<Violation>& violations,
                 const std::string& rule) {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.rule == rule) ++n;
  }
  return n;
}

// A fresh synthetic repo root per test, isolated via TestTempDir so
// parallel ctest invocations cannot collide on a shared fixed path.
class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = tmp_.path() / "repo";
    fs::create_directories(root_);
  }

  RepoContext Ctx() { return BuildRepoContext(root_.string()); }

  // Runs one pass through the engine (so central suppression applies).
  std::vector<Violation> Analyze(const std::string& rule) {
    RepoContext ctx = Ctx();
    return AnalyzeRepo(ctx, {rule});
  }

  pristi::testing::TestTempDir tmp_;
  fs::path root_;
};

// ---- Tokenizer ------------------------------------------------------------

TEST(StripCommentsAndStringsTest, RemovesCommentsAndLiteralsKeepsLines) {
  std::string src =
      "int a; // rand()\n"
      "/* std::cout\n"
      "   spans lines */ int b;\n"
      "const char* s = \"new int\";\n"
      "char c = '\\n';\n";
  std::string stripped = StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("cout"), std::string::npos);
  EXPECT_EQ(stripped.find("new int"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  // Line structure is preserved so reported line numbers stay valid.
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
}

TEST(TokenizeTest, ProducesKindsLinesAndLongestMatchPunct) {
  TokenizedSource tok = Tokenize(
      "int a = 1'000;\n"
      "a += b;  // comment\n"
      "s = \"lit\";\n");
  ASSERT_GE(tok.tokens.size(), 10u);
  EXPECT_EQ(tok.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tok.tokens[0].text, "int");
  EXPECT_EQ(tok.tokens[0].line, 1);
  // `1'000` is one number token; `+=` is one punct token (not `+` `=`).
  bool saw_number = false, saw_pluseq = false, saw_string = false;
  for (const Token& t : tok.tokens) {
    if (t.kind == TokenKind::kNumber && t.text == "1'000") saw_number = true;
    if (t.kind == TokenKind::kPunct && t.text == "+=" && t.line == 2) {
      saw_pluseq = true;
    }
    if (t.kind == TokenKind::kString && t.text == "lit" && t.line == 3) {
      saw_string = true;
    }
  }
  EXPECT_TRUE(saw_number);
  EXPECT_TRUE(saw_pluseq);
  EXPECT_TRUE(saw_string);
}

TEST(TokenizeTest, CollectsSuppressionsPerLine) {
  TokenizedSource tok = Tokenize(
      "int a;  // pristi-lint: allow-banned-pattern\n"
      "/* pristi-lint: allow-layering */\n"
      "int b;\n");
  ASSERT_EQ(tok.suppressions.count(1), 1u);
  EXPECT_EQ(tok.suppressions.at(1).count("banned-pattern"), 1u);
  ASSERT_EQ(tok.suppressions.count(2), 1u);
  EXPECT_EQ(tok.suppressions.at(2).count("layering"), 1u);
  EXPECT_EQ(tok.suppressions.count(3), 0u);
}

TEST(CanonicalHeaderGuardTest, MapsPathToGuard) {
  EXPECT_EQ(CanonicalHeaderGuard("common/check.h"), "PRISTI_COMMON_CHECK_H_");
  EXPECT_EQ(CanonicalHeaderGuard("tensor/tensor.h"),
            "PRISTI_TENSOR_TENSOR_H_");
}

TEST(DifferentiableOpsTest, ExtractsDeclaredOps) {
  std::string header =
      "Variable Foo(const Variable& a);\n"
      "Variable Bar(const Variable& a, float s);\n"
      "void NotAnOp(int x);\n"
      "  Variable Indented(const Variable& a);\n";  // not at line start
  std::vector<std::string> ops = DifferentiableOps(header);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0], "Foo");
  EXPECT_EQ(ops[1], "Bar");
}

TEST(LayoutFingerprintTest, MatchesFnv1aReferenceVectors) {
  // Standard FNV-1a 32-bit reference values.
  EXPECT_EQ(LayoutFingerprint(""), 0x811C9DC5u);
  EXPECT_EQ(LayoutFingerprint("a"), 0xE40C292Cu);
  EXPECT_EQ(LayoutFingerprint("foobar"), 0xBF9CF968u);
}

// ---- Include graph --------------------------------------------------------

TEST_F(LintTest, IncludeGraphResolvesRelativeSrcAndRootIncludes) {
  WriteFileAt(root_ / "src/common/a.h", "#include \"sibling.h\"\n");
  WriteFileAt(root_ / "src/common/sibling.h", "\n");
  WriteFileAt(root_ / "src/tensor/b.h", "#include \"common/a.h\"\n");
  WriteFileAt(root_ / "tests/t.cc", "#include \"tests/helper.h\"\n");
  WriteFileAt(root_ / "tests/helper.h", "\n");
  RepoContext ctx = Ctx();
  IncludeGraph graph = BuildIncludeGraph(ctx);
  // Includer-relative resolution.
  ASSERT_EQ(graph.EdgesFrom("src/common/a.h").size(), 1u);
  EXPECT_EQ(graph.EdgesFrom("src/common/a.h")[0].to, "src/common/sibling.h");
  EXPECT_EQ(graph.EdgesFrom("src/common/a.h")[0].line, 1);
  // src/-relative resolution (the build's -I src).
  ASSERT_EQ(graph.EdgesFrom("src/tensor/b.h").size(), 1u);
  EXPECT_EQ(graph.EdgesFrom("src/tensor/b.h")[0].to, "src/common/a.h");
  // Repo-root-relative resolution.
  ASSERT_EQ(graph.EdgesFrom("tests/t.cc").size(), 1u);
  EXPECT_EQ(graph.EdgesFrom("tests/t.cc")[0].to, "tests/helper.h");
}

TEST_F(LintTest, IncludeGraphSkipsSystemAndCommentedAndUnresolved) {
  WriteFileAt(root_ / "src/common/a.cc",
              "#include <vector>\n"
              "// #include \"common/gone.h\"\n"
              "#include \"third_party/absent.h\"\n");
  RepoContext ctx = Ctx();
  IncludeGraph graph = BuildIncludeGraph(ctx);
  EXPECT_TRUE(graph.edges().empty());
  // The angled include is still parsed (as a directive), just never an edge.
  const SourceFile* file = ctx.Find("src/common/a.cc");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(file->includes.size(), 2u);  // <vector> + absent.h; comment dropped
  EXPECT_TRUE(file->includes[0].angled);
}

TEST_F(LintTest, IncludeGraphFindsCycles) {
  WriteFileAt(root_ / "src/common/a.h", "#include \"common/b.h\"\n");
  WriteFileAt(root_ / "src/common/b.h", "#include \"common/c.h\"\n");
  WriteFileAt(root_ / "src/common/c.h", "#include \"common/a.h\"\n");
  WriteFileAt(root_ / "src/common/acyclic.h", "#include \"common/a.h\"\n");
  RepoContext ctx = Ctx();
  IncludeGraph graph = BuildIncludeGraph(ctx);
  std::vector<std::vector<std::string>> cycles = graph.FindCycles("src/");
  ASSERT_EQ(cycles.size(), 1u);
  // Canonicalized: starts (and ends) at the smallest member.
  ASSERT_EQ(cycles[0].size(), 4u);
  EXPECT_EQ(cycles[0].front(), "src/common/a.h");
  EXPECT_EQ(cycles[0].back(), "src/common/a.h");
}

TEST(ModuleOfTest, MapsPathsToModules) {
  EXPECT_EQ(ModuleOf("src/tensor/kernels/sgemm.cc"), "tensor");
  EXPECT_EQ(ModuleOf("src/common/env.h"), "common");
  EXPECT_EQ(ModuleOf("tests/lint_test.cc"), "");
  EXPECT_EQ(ModuleOf("src/lone.cc"), "");
}

// ---- Manifest -------------------------------------------------------------

TEST(ManifestTest, ParsesLayersAndBlessedAndReportsErrors) {
  LayerManifest m = ParseLayerManifest(
      "# comment\n"
      "[layers]\n"
      "common =\n"
      "tensor = common  # trailing comment\n"
      "[fp-blessed]\n"
      "ReferenceGemmRows\n"
      "bogus line here\n");
  EXPECT_TRUE(m.loaded);
  ASSERT_EQ(m.layers.count("tensor"), 1u);
  EXPECT_EQ(m.layers.at("tensor").count("common"), 1u);
  EXPECT_TRUE(m.layers.at("common").empty());
  EXPECT_EQ(m.blessed_accumulators.count("ReferenceGemmRows"), 1u);
  ASSERT_EQ(m.parse_errors.size(), 1u);
  EXPECT_NE(m.parse_errors[0].find("line 7"), std::string::npos);
  EXPECT_TRUE(ManifestCycleMembers(m).empty());
}

TEST(ManifestTest, DetectsDeclaredCycle) {
  LayerManifest m = ParseLayerManifest(
      "[layers]\n"
      "a = b\n"
      "b = a\n"
      "c =\n");
  std::vector<std::string> cyclic = ManifestCycleMembers(m);
  ASSERT_EQ(cyclic.size(), 2u);
  EXPECT_EQ(cyclic[0], "a");
  EXPECT_EQ(cyclic[1], "b");
}

// ---- Legacy rules on the new substrate ------------------------------------

TEST_F(LintTest, HeaderGuardRuleFiresOnPlantedViolations) {
  WriteFileAt(root_ / "src/common/bad.h",
              "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n");
  WriteFileAt(root_ / "src/common/missing.h", "int x;\n");
  WriteFileAt(
      root_ / "src/common/good.h",
      "#ifndef PRISTI_COMMON_GOOD_H_\n#define PRISTI_COMMON_GOOD_H_\n"
      "#endif  // PRISTI_COMMON_GOOD_H_\n");
  std::vector<Violation> v = CheckHeaderGuards(Ctx());
  EXPECT_TRUE(HasViolation(v, "header-guard", "bad.h"));
  EXPECT_TRUE(HasViolation(v, "header-guard", "missing.h"));
  EXPECT_FALSE(HasViolation(v, "header-guard", "good.h"));
  EXPECT_EQ(v.size(), 2u);
}

TEST_F(LintTest, BannedPatternRuleFiresOnEachPattern) {
  WriteFileAt(root_ / "src/common/uses_rand.cc",
              "int f() { return rand() % 7; }\n");
  WriteFileAt(root_ / "src/common/uses_cout.cc",
              "#include <iostream>\nvoid g() { std::cout << 1; }\n");
  WriteFileAt(root_ / "src/common/uses_new.cc",
              "int* h() { return new int(3); }\n");
  std::vector<Violation> v = CheckBannedPatterns(Ctx());
  EXPECT_TRUE(HasViolation(v, "banned-pattern", "uses_rand.cc"));
  EXPECT_TRUE(HasViolation(v, "banned-pattern", "uses_cout.cc"));
  EXPECT_TRUE(HasViolation(v, "banned-pattern", "uses_new.cc"));
}

TEST_F(LintTest, BannedPatternsInCommentsAndStringsAreIgnored) {
  WriteFileAt(root_ / "src/common/clean.cc",
              "// rand() and std::cout and new are fine in comments\n"
              "const char* doc = \"call rand() or new std::cout\";\n"
              "int renewed = 1;  // 'new' inside an identifier is fine too\n");
  std::vector<Violation> v = CheckBannedPatterns(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LintTest, CmakeSourceListRuleFindsUnlistedSibling) {
  WriteFileAt(root_ / "src/common/listed.cc", "int a;\n");
  WriteFileAt(root_ / "src/common/orphan.cc", "int b;\n");
  WriteFileAt(root_ / "src/common/CMakeLists.txt",
              "add_library(pristi_common listed.cc)\n");
  std::vector<Violation> v = CheckCmakeSourceLists(Ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cmake-sources");
  EXPECT_NE(v[0].message.find("orphan.cc"), std::string::npos);
}

TEST_F(LintTest, CmakeSourceListRuleAuditsTestsToolsAndBench) {
  // tests/ registers by stem (pristi_add_test(foo_test ...)) — accepted;
  // an orphan test file must still fire.
  WriteFileAt(root_ / "tests/listed_test.cc", "int a;\n");
  WriteFileAt(root_ / "tests/orphan_test.cc", "int b;\n");
  WriteFileAt(root_ / "tests/CMakeLists.txt",
              "pristi_add_test(listed_test pristi_common)\n");
  WriteFileAt(root_ / "tools/orphan_tool.cc", "int c;\n");
  WriteFileAt(root_ / "tools/CMakeLists.txt", "# nothing registered\n");
  WriteFileAt(root_ / "bench/orphan_bench.cc", "int d;\n");
  WriteFileAt(root_ / "bench/CMakeLists.txt", "# nothing registered\n");
  std::vector<Violation> v = CheckCmakeSourceLists(Ctx());
  EXPECT_FALSE(HasViolation(v, "cmake-sources", "listed_test.cc"));
  EXPECT_TRUE(HasViolation(v, "cmake-sources", "orphan_test.cc"));
  EXPECT_TRUE(HasViolation(v, "cmake-sources", "orphan_tool.cc"));
  EXPECT_TRUE(HasViolation(v, "cmake-sources", "orphan_bench.cc"));
}

TEST_F(LintTest, GradCoverageRuleFindsUntestedOp) {
  WriteFileAt(root_ / "src/autograd/ops.h",
              "Variable Foo(const Variable& a);\n"
              "Variable Bar(const Variable& a);\n");
  WriteFileAt(root_ / "tests/autograd_test.cc",
              "TEST(GradCheck, Foo) { SumAll(Foo(v[0])); }\n");
  std::vector<Violation> v = CheckGradCoverage(Ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "grad-coverage");
  EXPECT_NE(v[0].message.find("Bar"), std::string::npos);
}

// Builds a planted src/serialize/format.h whose fingerprint comment is
// `fingerprint` (hex text) over the given layout region.
std::string FormatHeaderWith(const std::string& region,
                             const std::string& fingerprint_line) {
  return "#ifndef PRISTI_SERIALIZE_FORMAT_H_\n"
         "#define PRISTI_SERIALIZE_FORMAT_H_\n"
         "// serialize-layout-begin\n" +
         region + "// serialize-layout-end\n" + fingerprint_line +
         "#endif\n";
}

std::string FingerprintComment(uint32_t fp) {
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                "// serialize-layout-fingerprint: 0x%08X\n", fp);
  return buf;
}

TEST_F(LintTest, SerializeVersionGuardAcceptsMatchingFingerprint) {
  std::string region = "inline constexpr uint32_t kFormatVersion = 1;\n";
  WriteFileAt(root_ / "src/serialize/format.h",
              FormatHeaderWith(region,
                               FingerprintComment(LayoutFingerprint(region))));
  std::vector<Violation> v = CheckSerializeVersionGuard(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LintTest, SerializeVersionGuardFiresOnLayoutEditWithoutBump) {
  std::string region = "inline constexpr uint32_t kFormatVersion = 1;\n";
  std::string stale = FingerprintComment(LayoutFingerprint(region));
  // Edit the layout (new record tag) but keep the stale fingerprint.
  std::string edited = region + "enum class RecordTag : uint32_t { kNew };\n";
  WriteFileAt(root_ / "src/serialize/format.h",
              FormatHeaderWith(edited, stale));
  std::vector<Violation> v = CheckSerializeVersionGuard(Ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "serialize-version-guard");
  EXPECT_NE(v[0].message.find("kFormatVersion"), std::string::npos);
}

TEST_F(LintTest, SerializeVersionGuardFiresOnMissingMarkersOrComment) {
  WriteFileAt(root_ / "src/serialize/format.h", "int x;\n");
  std::vector<Violation> missing_markers = CheckSerializeVersionGuard(Ctx());
  ASSERT_EQ(missing_markers.size(), 1u);
  EXPECT_NE(missing_markers[0].message.find("markers"), std::string::npos);

  std::string region = "inline constexpr uint32_t kFormatVersion = 1;\n";
  WriteFileAt(root_ / "src/serialize/format.h",
              FormatHeaderWith(region, "// no fingerprint here\n"));
  std::vector<Violation> missing_comment = CheckSerializeVersionGuard(Ctx());
  ASSERT_EQ(missing_comment.size(), 1u);
  EXPECT_NE(missing_comment[0].message.find("missing fingerprint"),
            std::string::npos);
}

TEST_F(LintTest, TensorByValueRuleFiresOnByValueParams) {
  WriteFileAt(root_ / "src/nn/copies.cc",
              "void Plain(Tensor t) {}\n"
              "void Qualified(tensor::Tensor weights, int n) {}\n"
              "void Aliased(int steps,\n"
              "             ag::Variable loss) {}\n"
              "Variable Full(pristi::autograd::Variable v) { return v; }\n");
  std::vector<Violation> v = CheckTensorByValueParams(Ctx());
  ASSERT_EQ(v.size(), 4u);
  EXPECT_TRUE(HasViolation(v, "tensor-by-value", "copies.cc"));
  EXPECT_EQ(v[0].line, 1);
  EXPECT_EQ(v[1].line, 2);
  // Wrapped parameter lists report the parameter's line, not the `(`.
  EXPECT_EQ(v[2].line, 4);
  EXPECT_NE(v[0].message.find("const Tensor&"), std::string::npos);
  EXPECT_NE(v[2].message.find("const Variable&"), std::string::npos);
}

TEST_F(LintTest, TensorByValueRuleAcceptsReferencesContainersAndSuppression) {
  WriteFileAt(
      root_ / "src/nn/clean.cc",
      "void Ref(const Tensor& t, Variable* out) {}\n"
      "void Mut(tensor::Tensor& t) {}\n"
      "void Container(std::vector<Tensor> parts,\n"
      "               std::pair<std::string, Variable> named) {}\n"
      "void Loop(const std::vector<Tensor>& v) {\n"
      "  for (Tensor t : v) Ref(t, nullptr);\n"
      "}\n"
      "void Sink(Tensor t) {}  // pristi-lint: allow-tensor-by-value\n");
  std::vector<Violation> v = Analyze("tensor-by-value");
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LintTest, NoMaterializedTransposeRuleFiresOnTransposeIntoMatMul) {
  WriteFileAt(
      root_ / "src/nn/hot.cc",
      "void Scores() {\n"
      "  auto s = ag::BatchedMatMul(qh, ag::TransposeLast2(kh));\n"
      "  auto adj = t::MatMul(e1, t::TransposeLast2(e2));\n"
      "  auto g = t::MatMulLastDim(x,\n"
      "                            t::Permute(w, {1, 0}));\n"
      "}\n");
  std::vector<Violation> v = CheckNoMaterializedTranspose(Ctx());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].line, 2);
  EXPECT_EQ(v[1].line, 3);
  // Wrapped argument lists still attribute to the MatMul call's line.
  EXPECT_EQ(v[2].line, 4);
  EXPECT_NE(v[0].message.find("TransposeLast2"), std::string::npos);
  EXPECT_NE(v[0].message.find("BatchedMatMul"), std::string::npos);
  EXPECT_NE(v[2].message.find("Permute"), std::string::npos);
}

TEST_F(LintTest, NoMaterializedTransposeRuleAcceptsNTVariantsAndSuppression) {
  WriteFileAt(
      root_ / "src/nn/clean_mm.cc",
      "void Clean() {\n"
      "  auto s = ag::BatchedMatMulNT(qh, kh);\n"
      "  auto adj = t::MatMulNT(e1, e2);\n"
      // Transpose of a product (not feeding a MatMul) is fine.
      "  auto tr = t::TransposeLast2(t::MatMul(a, b));\n"
      // Transpose mentioned in a comment only.
      "  auto c = t::MatMul(a, b);  // was TransposeLast2(b)\n"
      "  auto ok = t::MatMul(a, t::TransposeLast2(b));"
      "  // pristi-lint: allow-no-materialized-transpose\n"
      "}\n");
  std::vector<Violation> v = Analyze("no-materialized-transpose");
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

// ---- layering -------------------------------------------------------------

// A minimal two-module tree with the manifest written to its checked-in
// location; `b` may depend on `a`, never the reverse.
class LayeringTest : public LintTest {
 protected:
  void WriteManifest(const std::string& text) {
    WriteFileAt(root_ / kManifestRelPath, text);
  }
  void WriteCleanModules() {
    WriteFileAt(root_ / "src/a/a.h",
                "#ifndef PRISTI_A_A_H_\n#define PRISTI_A_A_H_\n#endif\n");
    WriteFileAt(root_ / "src/b/b.h",
                "#ifndef PRISTI_B_B_H_\n#define PRISTI_B_B_H_\n"
                "#include \"a/a.h\"\n#endif\n");
  }
};

TEST_F(LayeringTest, CleanTreeMatchingManifestIsQuiet) {
  WriteManifest("[layers]\na =\nb = a\n");
  WriteCleanModules();
  std::vector<Violation> v = CheckLayering(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LayeringTest, SeededForbiddenIncludeIsRejected) {
  WriteManifest("[layers]\na =\nb = a\n");
  WriteCleanModules();
  // Seed the forbidden edge: the low module reaches up into the high one.
  WriteFileAt(root_ / "src/a/bad.cc", "#include \"b/b.h\"\n");
  std::vector<Violation> v = CheckLayering(Ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "layering");
  EXPECT_EQ(v[0].file, "src/a/bad.cc");
  EXPECT_EQ(v[0].line, 1);
  EXPECT_NE(v[0].message.find("forbidden include edge"), std::string::npos);
  EXPECT_NE(v[0].message.find("`a` may not depend on `b`"),
            std::string::npos);
}

TEST_F(LayeringTest, ForbiddenIncludeCanBeSuppressed) {
  WriteManifest("[layers]\na =\nb = a\n");
  WriteCleanModules();
  WriteFileAt(root_ / "src/a/bad.cc",
              "// pristi-lint: allow-layering\n"
              "#include \"b/b.h\"\n");
  std::vector<Violation> v = Analyze("layering");
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LayeringTest, MissingManifestIsItselfAViolation) {
  WriteCleanModules();
  std::vector<Violation> v = CheckLayering(Ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("manifest is missing"), std::string::npos);
}

TEST_F(LayeringTest, UndeclaredAndAbsentModulesAreReported) {
  WriteManifest("[layers]\na =\nghost = a\n");
  WriteCleanModules();  // module b exists but is not declared
  std::vector<Violation> v = CheckLayering(Ctx());
  EXPECT_TRUE(HasViolation(v, "layering",
                           "`b` exists under src/ but is not declared"));
  EXPECT_TRUE(HasViolation(v, "layering", "`ghost` is declared"));
}

TEST_F(LayeringTest, ManifestCycleAndIncludeCycleAreReported) {
  WriteManifest("[layers]\na = b\nb = a\n");
  WriteFileAt(root_ / "src/a/a.h", "#include \"b/b.h\"\n");
  WriteFileAt(root_ / "src/b/b.h", "#include \"a/a.h\"\n");
  std::vector<Violation> v = CheckLayering(Ctx());
  EXPECT_TRUE(HasViolation(v, "layering", "not a DAG"));
  EXPECT_TRUE(HasViolation(v, "layering", "include cycle"));
}

// ---- env-registry ---------------------------------------------------------

class EnvRegistryTest : public LintTest {
 protected:
  // Registry declaring exactly `names`.
  void WriteEnvHeader(const std::vector<std::string>& names) {
    std::string body =
        "#ifndef PRISTI_COMMON_ENV_H_\n#define PRISTI_COMMON_ENV_H_\n"
        "// pristi-env-registry-begin\n";
    for (const std::string& name : names) {
      body += "//   " + name + "  doc\n";
    }
    body += "// pristi-env-registry-end\n#endif\n";
    WriteFileAt(root_ / "src/common/env.h", body);
  }
};

TEST_F(EnvRegistryTest, DeclaredAndReadKnobsAreQuiet) {
  WriteEnvHeader({"PRISTI_ALPHA", "PRISTI_BETA"});
  WriteFileAt(root_ / "src/common/reader.cc",
              "int a = GetEnvIntOr(\"PRISTI_ALPHA\", 1);\n");
  WriteFileAt(root_ / "tools/run.sh", "echo ${PRISTI_BETA:-0}\n");
  std::vector<Violation> v = CheckEnvRegistry(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(EnvRegistryTest, UndeclaredReadRawGetenvAndDeadKnobFire) {
  WriteEnvHeader({"PRISTI_DEAD"});
  WriteFileAt(root_ / "src/common/reader.cc",
              "const char* u = getenv(\"PRISTI_UNDECLARED\");\n");
  std::vector<Violation> v = CheckEnvRegistry(Ctx());
  // The one read site is both undeclared and a raw getenv; the declared
  // knob is never read.
  EXPECT_TRUE(HasViolation(v, "env-registry", "PRISTI_UNDECLARED"));
  EXPECT_TRUE(HasViolation(v, "env-registry", "raw std::getenv"));
  EXPECT_TRUE(HasViolation(v, "env-registry", "PRISTI_DEAD"));
  EXPECT_EQ(CountRule(v, "env-registry"), 3u);
}

TEST_F(EnvRegistryTest, ShellReadOfUndeclaredKnobFires) {
  WriteEnvHeader({});
  WriteFileAt(root_ / "tools/run.sh", "echo $PRISTI_SHELL_ONLY\n");
  std::vector<Violation> v = CheckEnvRegistry(Ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].file, "tools/run.sh");
  EXPECT_NE(v[0].message.find("PRISTI_SHELL_ONLY"), std::string::npos);
}

TEST_F(EnvRegistryTest, KnobNamesInStringsOfOtherCallsDoNotCount) {
  WriteEnvHeader({});
  // A PRISTI_* literal not consumed by getenv/GetEnvOr (e.g. a log
  // message or test fixture) is not a read.
  WriteFileAt(root_ / "src/common/doc.cc",
              "const char* hint = \"set PRISTI_FAKE=1 to ...\";\n"
              "int x = Lookup(\"PRISTI_FAKE\");\n");
  std::vector<Violation> v = CheckEnvRegistry(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(EnvRegistryTest, SuppressionSilencesTheRead) {
  WriteEnvHeader({});
  WriteFileAt(root_ / "src/common/reader.cc",
              "// pristi-lint: allow-env-registry\n"
              "std::string v = GetEnvOr(\"PRISTI_EPHEMERAL\", \"\");\n");
  std::vector<Violation> v = Analyze("env-registry");
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(EnvRegistryTest, MissingRegistryWithReadsFires) {
  WriteFileAt(root_ / "src/tensor/reader.cc",
              "int n = GetEnvIntOr(\"PRISTI_N\", 4);\n");
  std::vector<Violation> v = CheckEnvRegistry(Ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("does not exist"), std::string::npos);
}

// ---- dcheck-purity --------------------------------------------------------

TEST_F(LintTest, DcheckPurityFiresOnSideEffects) {
  WriteFileAt(root_ / "src/common/checks.cc",
              "void F(int i, int n, Tensor& t) {\n"
              "  PRISTI_DCHECK(i++ < n);\n"
              "  PRISTI_DCHECK_EQ(n = 3, 3);\n"
              "  PRISTI_DCHECK(Mutate(t));\n"
              "  PRISTI_DCHECK_LT(i, t.numel());\n"  // allowlisted: quiet
              "}\n");
  std::vector<Violation> v = CheckDcheckPurity(Ctx());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].line, 2);
  EXPECT_NE(v[0].message.find("++"), std::string::npos);
  EXPECT_EQ(v[1].line, 3);
  EXPECT_NE(v[1].message.find("assignment"), std::string::npos);
  EXPECT_EQ(v[2].line, 4);
  EXPECT_NE(v[2].message.find("Mutate"), std::string::npos);
}

TEST_F(LintTest, DcheckPurityQuietOnPureChecksAndSuppression) {
  WriteFileAt(root_ / "src/common/checks.cc",
              "void F(int i, int n, const Tensor& t) {\n"
              "  PRISTI_DCHECK(i < n);\n"
              "  PRISTI_DCHECK_EQ(t.numel(), static_cast<int64_t>(n));\n"
              "  PRISTI_DCHECK(i == n && t.shape().size() > 0);\n"
              "  // pristi-lint: allow-dcheck-purity\n"
              "  PRISTI_DCHECK(ProvablyPureButUnknown(t));\n"
              "}\n");
  std::vector<Violation> v = Analyze("dcheck-purity");
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

// ---- parallel-region ------------------------------------------------------

TEST_F(LintTest, ParallelRegionFiresOnLockIoAndTensorConstruction) {
  WriteFileAt(root_ / "src/tensor/hot.cc",
              "void F(int64_t n) {\n"
              "  ParallelFor(0, n, [&](int64_t b, int64_t e) {\n"
              "    std::lock_guard<std::mutex> g(mu);\n"
              "    printf(\"%ld\\n\", b);\n"
              "    Tensor scratch({e - b});\n"
              "  });\n"
              "}\n");
  std::vector<Violation> v = CheckParallelRegion(Ctx());
  // lock_guard + mutex (both mutex idents), printf, Tensor construction.
  EXPECT_EQ(CountRule(v, "parallel-region"), 4u);
  EXPECT_TRUE(HasViolation(v, "parallel-region", "lock_guard"));
  EXPECT_TRUE(HasViolation(v, "parallel-region", "printf"));
  EXPECT_TRUE(HasViolation(v, "parallel-region", "Tensor construction"));
}

TEST_F(LintTest, ParallelRegionQuietOnCleanLambdaAndOutsideCode) {
  WriteFileAt(root_ / "src/tensor/clean.cc",
              "void F(int64_t n, float* out, const Tensor& in) {\n"
              "  std::lock_guard<std::mutex> g(mu);  // outside: fine\n"
              "  Tensor staged({n});                 // outside: fine\n"
              "  const float* src = in.data();\n"
              "  ParallelFor(0, n, [&](int64_t b, int64_t e) {\n"
              "    for (int64_t i = b; i < e; ++i) out[i] = src[i] * 2.0f;\n"
              "  });\n"
              "}\n");
  std::vector<Violation> v = CheckParallelRegion(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(LintTest, ParallelRegionSuppressionSilencesSite) {
  WriteFileAt(root_ / "src/tensor/noisy.cc",
              "void F(int64_t n) {\n"
              "  ParallelFor(0, n, [&](int64_t b, int64_t e) {\n"
              "    // pristi-lint: allow-parallel-region\n"
              "    PRISTI_LOG_INFO(\"chunk\");\n"
              "  });\n"
              "}\n");
  std::vector<Violation> v = Analyze("parallel-region");
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

// ---- fp-contraction -------------------------------------------------------

class FpContractionTest : public LintTest {
 protected:
  void WriteManifestWithBlessed(const std::string& name) {
    WriteFileAt(root_ / kManifestRelPath,
                "[layers]\ntensor =\n[fp-blessed]\n" + name + "\n");
  }
};

TEST_F(FpContractionTest, FiresOnFmaPragmaAndUnblessedAccumulation) {
  WriteManifestWithBlessed("BlessedKernel");
  WriteFileAt(root_ / "src/tensor/kernels/bad.cc",
              "#pragma STDC FP_CONTRACT ON\n"
              "float F(const float* a, const float* b, int n) {\n"
              "  float acc = 0.0f;\n"
              "  for (int i = 0; i < n; ++i) acc += a[i] * b[i];\n"
              "  return std::fma(acc, 2.0f, 1.0f);\n"
              "}\n");
  std::vector<Violation> v = CheckFpContraction(Ctx());
  EXPECT_TRUE(HasViolation(v, "fp-contraction", "FP_CONTRACT pragma"));
  EXPECT_TRUE(HasViolation(v, "fp-contraction", "`fma`"));
  EXPECT_TRUE(HasViolation(v, "fp-contraction", "multiply-accumulate"));
  EXPECT_TRUE(HasViolation(v, "fp-contraction", "F()"));
  EXPECT_EQ(CountRule(v, "fp-contraction"), 3u);
}

TEST_F(FpContractionTest, BlessedHelperAndNonKernelCodeAreQuiet) {
  WriteManifestWithBlessed("BlessedKernel");
  WriteFileAt(root_ / "src/tensor/kernels/good.cc",
              "float BlessedKernel(const float* a, const float* b, int n) {\n"
              "  float acc = 0.0f;\n"
              "  for (int i = 0; i < n; ++i) acc += a[i] * b[i];\n"
              "  return acc;\n"
              "}\n");
  // Accumulation outside src/tensor/kernels/ is not this rule's business.
  WriteFileAt(root_ / "src/metrics/mae.cc",
              "float Mae(const float* e, const float* w, int n) {\n"
              "  float acc = 0.0f;\n"
              "  for (int i = 0; i < n; ++i) acc += e[i] * w[i];\n"
              "  return acc;\n"
              "}\n");
  std::vector<Violation> v = CheckFpContraction(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(FpContractionTest, LambdaInsideBlessedHelperInheritsBlessing) {
  WriteManifestWithBlessed("BlessedKernel");
  WriteFileAt(root_ / "src/tensor/kernels/lambda.cc",
              "void BlessedKernel(float* c, const float* a, int n) {\n"
              "  auto body = [&](int64_t b, int64_t e) {\n"
              "    for (int64_t i = b; i < e; ++i) c[i] += a[i] * a[i];\n"
              "  };\n"
              "  body(0, n);\n"
              "}\n");
  std::vector<Violation> v = CheckFpContraction(Ctx());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

TEST_F(FpContractionTest, SuppressionSilencesSite) {
  WriteManifestWithBlessed("BlessedKernel");
  WriteFileAt(root_ / "src/tensor/kernels/special.cc",
              "int Histogram(int* h, const int* idx, int n, int stride) {\n"
              "  // integer strides, not float accumulation\n"
              "  // pristi-lint: allow-fp-contraction\n"
              "  int off = 0; for (int i = 0; i < n; ++i) off += idx[i] * "
              "stride;\n"
              "  return off;\n"
              "}\n");
  std::vector<Violation> v = Analyze("fp-contraction");
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

// ---- engine ---------------------------------------------------------------

TEST_F(LintTest, AnalyzeRepoAggregatesSelectsAndFormats) {
  WriteFileAt(root_ / "src/common/bad.h",
              "#ifndef NOPE_H_\n#define NOPE_H_\nint* p = new int;\n"
              "#endif\n");
  RepoContext ctx = Ctx();
  std::vector<Violation> all = AnalyzeRepo(ctx);
  EXPECT_TRUE(HasViolation(all, "header-guard", "bad.h"));
  EXPECT_TRUE(HasViolation(all, "banned-pattern", "bad.h"));
  // No manifest in this synthetic tree: layering must fire rather than
  // silently disable.
  EXPECT_TRUE(HasViolation(all, "layering", "manifest is missing"));
  for (const Violation& violation : all) {
    std::string line = FormatViolation(violation);
    EXPECT_NE(line.find(violation.rule), std::string::npos);
    EXPECT_NE(line.find(violation.file), std::string::npos);
  }
  // Rule selection runs only the named pass.
  std::vector<Violation> only = AnalyzeRepo(ctx, {"banned-pattern"});
  EXPECT_EQ(CountRule(only, "banned-pattern"), only.size());
  EXPECT_FALSE(only.empty());
}

TEST_F(LintTest, PassRegistryCoversEveryRule) {
  std::set<std::string> names;
  for (const Pass& pass : Passes()) names.insert(pass.name);
  for (const char* expected :
       {"header-guard", "banned-pattern", "cmake-sources", "grad-coverage",
        "serialize-version-guard", "no-materialized-transpose",
        "tensor-by-value", "layering", "env-registry", "dcheck-purity",
        "parallel-region", "fp-contraction"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  EXPECT_EQ(names.size(), 12u);
}

TEST_F(LintTest, CleanTreeProducesNoViolations) {
  WriteFileAt(
      root_ / "src/common/good.h",
      "#ifndef PRISTI_COMMON_GOOD_H_\n#define PRISTI_COMMON_GOOD_H_\n"
      "#endif\n");
  WriteFileAt(root_ / "src/common/good.cc", "#include \"common/good.h\"\n");
  WriteFileAt(root_ / "src/common/CMakeLists.txt",
              "add_library(pristi_common good.cc)\n");
  WriteFileAt(root_ / kManifestRelPath, "[layers]\ncommon =\n");
  std::vector<Violation> v = LintRepo(root_.string());
  EXPECT_TRUE(v.empty()) << FormatViolation(v.front());
}

}  // namespace
}  // namespace pristi::analysis
