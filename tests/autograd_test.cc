// Tests for the reverse-mode autodiff tape: closed-form gradients plus
// finite-difference property checks over every operator.

#include "autograd/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/variable.h"
#include "common/rng.h"

namespace pristi::autograd {
namespace {

namespace t = ::pristi::tensor;
using t::AllClose;
using t::Shape;

TEST(VariableBasics, LeafProperties) {
  Variable v(Tensor::Ones({2, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.numel(), 4);
}

TEST(VariableBasics, BackwardThroughSum) {
  Variable x(Tensor({3}, {1, 2, 3}), true);
  Variable loss = SumAll(x);
  loss.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor::Ones({3})));
}

TEST(VariableBasics, GradAccumulatesAcrossBackwardCalls) {
  Variable x(Tensor({2}, {1, 1}), true);
  SumAll(x).Backward();
  SumAll(x).Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor::Full({2}, 2.0f)));
  x.ZeroGrad();
  EXPECT_TRUE(AllClose(x.grad(), Tensor::Zeros({2})));
}

TEST(VariableBasics, DetachCutsGraph) {
  Variable x(Tensor({2}, {3, 4}), true);
  Variable y = MulScalar(x, 2.0f);
  Variable z = SumAll(y.Detach());
  z.Backward();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableBasics, ConstantInputsPruneGraph) {
  Variable c = Constant(Tensor({2}, {1, 2}));
  Variable y = MulScalar(c, 3.0f);
  // No grads anywhere: the op node should not even hold a backward edge.
  EXPECT_EQ(y.node()->parents.size(), 0u);
}

TEST(ChainRule, TwoLayerComposition) {
  // f(x) = sum((2x + 1)^2); df/dx = 2 * (2x+1) * 2 = 8x + 4.
  Variable x(Tensor({3}, {0, 1, -2}), true);
  Variable y = Square(AddScalar(MulScalar(x, 2.0f), 1.0f));
  SumAll(y).Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor({3}, {4, 12, -12})));
}

TEST(ChainRule, DiamondGraphAccumulates) {
  // f(x) = sum(x * x + x): both branches contribute to dx.
  Variable x(Tensor({2}, {3, -1}), true);
  Variable y = Add(Mul(x, x), x);
  SumAll(y).Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor({2}, {7, -1})));
}

TEST(MatMulGrad, ClosedForm) {
  // f = sum(A B); dA = 1 B^T, dB = A^T 1.
  Variable a(Tensor({2, 2}, {1, 2, 3, 4}), true);
  Variable b(Tensor({2, 2}, {5, 6, 7, 8}), true);
  SumAll(MatMul(a, b)).Backward();
  EXPECT_TRUE(AllClose(a.grad(), Tensor({2, 2}, {11, 15, 11, 15})));
  EXPECT_TRUE(AllClose(b.grad(), Tensor({2, 2}, {4, 4, 6, 6})));
}

TEST(BroadcastGrad, ReducesToParentShape) {
  Variable a(Tensor::Ones({2, 3}), true);
  Variable row(Tensor({1, 3}, {1, 2, 3}), true);
  SumAll(Mul(a, row)).Backward();
  EXPECT_EQ(row.grad().shape(), (Shape{1, 3}));
  // Each row entry is multiplied against 2 ones.
  EXPECT_TRUE(AllClose(row.grad(), Tensor({1, 3}, {2, 2, 2})));
  EXPECT_TRUE(AllClose(a.grad(), Tensor({2, 3}, {1, 2, 3, 1, 2, 3})));
}

TEST(MaskedMseGrad, ZeroAtOptimumAndOnMaskedOut) {
  Tensor target({2, 2}, {1, 2, 3, 4});
  Tensor mask({2, 2}, {1, 0, 1, 0});
  Variable pred(Tensor({2, 2}, {1, 9, 5, 9}), true);
  Variable loss = MaskedMse(pred, target, mask);
  // loss = ((1-1)^2 + (5-3)^2) / 2 = 2.
  EXPECT_NEAR(loss.value()[0], 2.0f, 1e-5f);
  loss.Backward();
  const Tensor& g = pred.grad();
  EXPECT_FLOAT_EQ(g[0], 0.0f);   // at optimum
  EXPECT_FLOAT_EQ(g[1], 0.0f);   // masked out
  EXPECT_FLOAT_EQ(g[3], 0.0f);   // masked out
  EXPECT_NEAR(g[2], 2.0f * 2.0f / 2.0f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Finite-difference checks for every operator (property-based).
// ---------------------------------------------------------------------------

TEST(GradCheck, Add) {
  Rng rng(1);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) { return SumAll(Mul(Add(v[0], v[1]), v[0])); },
      {Tensor::Randn({3, 2}, rng), Tensor::Randn({3, 2}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, SubDivBroadcast) {
  Rng rng(2);
  Tensor b = t::AddScalar(t::Abs(Tensor::Randn({1, 4}, rng)), 1.0f);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(Div(Sub(v[0], v[1]), v[1])));
      },
      {Tensor::Randn({3, 4}, rng), b});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, UnaryChain) {
  Rng rng(3);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Tanh(Sigmoid(MulScalar(v[0], 1.5f))));
      },
      {Tensor::Randn({5}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, ExpLogSqrt) {
  Rng rng(4);
  Tensor x = t::AddScalar(t::Abs(Tensor::Randn({4}, rng)), 0.8f);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Log(Sqrt(Exp(MulScalar(v[0], 0.5f)))));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(5);
  // Shift inputs away from 0 so finite differences are valid.
  Tensor x = Tensor::Randn({6}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.15f) x[i] = 0.5f;
  }
  auto r = CheckGradients(
      [](std::vector<Variable>& v) { return SumAll(Square(Relu(v[0]))); },
      {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, MatMulBoth) {
  Rng rng(6);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(MatMul(v[0], v[1])));
      },
      {Tensor::Randn({3, 4}, rng), Tensor::Randn({4, 2}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, BatchedMatMul) {
  Rng rng(7);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(BatchedMatMul(v[0], v[1])));
      },
      {Tensor::Randn({2, 3, 2}, rng), Tensor::Randn({2, 2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, MatMulNT) {
  Rng rng(61);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(MatMulNT(v[0], v[1])));
      },
      {Tensor::Randn({3, 4}, rng), Tensor::Randn({2, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, MatMulTN) {
  Rng rng(62);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(MatMulTN(v[0], v[1])));
      },
      {Tensor::Randn({4, 3}, rng), Tensor::Randn({4, 2}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, BatchedMatMulNT) {
  Rng rng(63);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(BatchedMatMulNT(v[0], v[1])));
      },
      {Tensor::Randn({2, 3, 4}, rng), Tensor::Randn({2, 5, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, BatchedMatMulTN) {
  Rng rng(64);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(BatchedMatMulTN(v[0], v[1])));
      },
      {Tensor::Randn({2, 4, 3}, rng), Tensor::Randn({2, 4, 5}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, BatchedMatMulNTScaled) {
  Rng rng(66);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(BatchedMatMulNTScaled(v[0], v[1], 0.37f)));
      },
      {Tensor::Randn({2, 3, 4}, rng), Tensor::Randn({2, 5, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

// The scaled NT product must equal the MulScalar composition it replaced,
// bitwise, forward and backward (the reference attention path's goldens
// depend on it).
TEST(BatchedMatMulNTScaledGrad, MatchesMulScalarComposition) {
  Rng rng(67);
  const float scale = 1.0f / std::sqrt(8.0f);
  Tensor a0 = Tensor::Randn({3, 4, 6}, rng);
  Tensor b0 = Tensor::Randn({3, 5, 6}, rng);
  Variable a1 = Variable(a0, true), b1 = Variable(b0, true);
  Variable a2 = Variable(a0, true), b2 = Variable(b0, true);
  Variable fused = BatchedMatMulNTScaled(a1, b1, scale);
  Variable composed = MulScalar(BatchedMatMulNT(a2, b2), scale);
  ASSERT_EQ(fused.value().numel(), composed.value().numel());
  for (int64_t i = 0; i < fused.value().numel(); ++i) {
    ASSERT_EQ(fused.value()[i], composed.value()[i]) << "forward at " << i;
  }
  SumAll(Square(fused)).Backward();
  SumAll(Square(composed)).Backward();
  for (int64_t i = 0; i < a0.numel(); ++i) {
    ASSERT_EQ(a1.grad()[i], a2.grad()[i]) << "da at " << i;
  }
  for (int64_t i = 0; i < b0.numel(); ++i) {
    ASSERT_EQ(b1.grad()[i], b2.grad()[i]) << "db at " << i;
  }
}

// Fused streaming attention: the custom backward (block recomputation from
// the saved logsumexp) against central differences. Plain self-attention
// shape, a virtual-node shape (s_k << s_q, the pk_/pv_ path's geometry),
// and ragged sizes that exercise the kv-block tail (s_k not a multiple of
// the kColTile block width) and an odd head_dim.
TEST(GradCheck, FusedAttention) {
  Rng rng(68);
  auto attn = [](std::vector<Variable>& v) {
    int64_t dh = v[0].value().dim(-1);
    float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    return SumAll(Square(FusedAttention(v[0], v[1], v[2], scale)));
  };
  // Plain: s_q == s_k == 5, dh = 4, batched (2, 2) leading dims.
  auto r = CheckGradients(attn, {Tensor::Randn({2, 2, 5, 4}, rng),
                                 Tensor::Randn({2, 2, 5, 4}, rng),
                                 Tensor::Randn({2, 2, 5, 4}, rng)});
  EXPECT_TRUE(r.ok) << "plain: " << r.message;
  // Virtual-node geometry: 7 query positions against 2 compressed kv rows.
  r = CheckGradients(attn, {Tensor::Randn({2, 7, 4}, rng),
                            Tensor::Randn({2, 2, 4}, rng),
                            Tensor::Randn({2, 2, 4}, rng)});
  EXPECT_TRUE(r.ok) << "virtual-node: " << r.message;
  // Tail block + odd head_dim: s_k = 19 spans one full kv block and a
  // ragged remainder; dh = 3 is not a SIMD-friendly width.
  r = CheckGradients(attn, {Tensor::Randn({2, 6, 3}, rng),
                            Tensor::Randn({2, 19, 3}, rng),
                            Tensor::Randn({2, 19, 3}, rng)});
  EXPECT_TRUE(r.ok) << "tail: " << r.message;
}

// The NT composition must also agree with the transpose-then-multiply
// spelling it replaced, both forward (bitwise) and backward.
TEST(MatMulNTGrad, MatchesExplicitTransposeComposition) {
  Rng rng(65);
  Tensor a_init = Tensor::Randn({3, 4}, rng);
  Tensor b_init = Tensor::Randn({2, 4}, rng);

  Variable a1(a_init.Clone(), true), b1(b_init.Clone(), true);
  Variable out_nt = MatMulNT(a1, b1);
  SumAll(Square(out_nt)).Backward();

  Variable a2(a_init.Clone(), true), b2(b_init.Clone(), true);
  Variable out_tr = MatMul(a2, TransposeLast2(b2));
  SumAll(Square(out_tr)).Backward();

  EXPECT_TRUE(AllClose(out_nt.value(), out_tr.value(), 0.0f, 0.0f));
  EXPECT_TRUE(AllClose(a1.grad(), a2.grad(), 1e-6f, 1e-6f));
  EXPECT_TRUE(AllClose(b1.grad(), b2.grad(), 1e-6f, 1e-6f));
}

TEST(GradCheck, MatMulLastDim) {
  Rng rng(8);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(MatMulLastDim(v[0], v[1])));
      },
      {Tensor::Randn({2, 3, 4}, rng), Tensor::Randn({4, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, MatMulNodeDim) {
  Rng rng(9);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(MatMulNodeDim(v[0], v[1])));
      },
      {Tensor::Randn({2, 4}, rng), Tensor::Randn({3, 4, 2}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, SoftmaxLastDim) {
  Rng rng(10);
  Tensor probe = Tensor::Randn({3, 4}, rng);
  auto r = CheckGradients(
      [probe](std::vector<Variable>& v) {
        return SumAll(Mul(SoftmaxLastDim(v[0]), Constant(probe)));
      },
      {Tensor::Randn({3, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, LayerNorm) {
  Rng rng(11);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(LayerNormLastDim(v[0], v[1], v[2])));
      },
      {Tensor::Randn({3, 5}, rng), Tensor::Randn({5}, rng),
       Tensor::Randn({5}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, PermuteReshapeConcatSlice) {
  Rng rng(12);
  Tensor probe = Tensor::Randn({4, 2, 3}, rng);
  auto r = CheckGradients(
      [probe](std::vector<Variable>& v) {
        Variable p = Permute(v[0], {2, 0, 1});       // (2,3,4) -> (4,2,3)
        Variable c = Concat({p, Constant(probe)}, 0);  // (8,2,3)
        Variable s = SliceAxis(c, 0, 1, 5);
        return SumAll(Square(Reshape(s, {5, 6})));
      },
      {Tensor::Randn({2, 3, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, AxisReductions) {
  Rng rng(13);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        Variable m = MeanAxisKeepdim(v[0], 1);
        Variable s = SumAxisKeepdim(Square(Sub(v[0], m)), 0);
        return MeanAll(s);
      },
      {Tensor::Randn({3, 4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, MaskedMse) {
  Rng rng(14);
  Tensor target = Tensor::Randn({2, 3}, rng);
  Tensor mask({2, 3}, {1, 0, 1, 1, 0, 1});
  auto r = CheckGradients(
      [target, mask](std::vector<Variable>& v) {
        return MaskedMse(v[0], target, mask);
      },
      {Tensor::Randn({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

// Attention-shaped composite: the exact computation pattern PriSTI uses for
// prior-conditioned attention (Q/K from one stream, V from another).
TEST(GradCheck, AttentionComposite) {
  Rng rng(15);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        Variable q = MatMulLastDim(v[0], v[2]);
        Variable k = MatMulLastDim(v[0], v[3]);
        Variable val = MatMulLastDim(v[1], v[4]);
        Variable scores =
            MulScalar(BatchedMatMul(q, TransposeLast2(k)), 1.0f / 2.0f);
        Variable attn = SoftmaxLastDim(scores);
        return SumAll(Square(BatchedMatMul(attn, val)));
      },
      {Tensor::Randn({2, 3, 4}, rng), Tensor::Randn({2, 3, 4}, rng),
       Tensor::Randn({4, 4}, rng), Tensor::Randn({4, 4}, rng),
       Tensor::Randn({4, 4}, rng)},
      /*epsilon=*/1e-2f, /*atol=*/5e-2f, /*rtol=*/8e-2f);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, Neg) {
  Rng rng(16);
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Mul(Neg(v[0]), Exp(Neg(v[0]))));
      },
      {Tensor::Randn({3, 2}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, ClampStraddlingRange) {
  // Values chosen away from the clamp boundaries (+-2) so the subgradient
  // kink does not invalidate central differences: two clipped low, one
  // clipped high, three passed through.
  Tensor x({6}, {0.5f, -0.3f, 7.0f, -8.0f, 1.2f, -3.0f});
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        return SumAll(Square(Clamp(v[0], -2.0f, 2.0f)));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, WhereRoutesGradientBySide) {
  Rng rng(17);
  Tensor cond({2, 3}, {1, 0, 1, 0, 0, 1});
  auto r = CheckGradients(
      [cond](std::vector<Variable>& v) {
        return SumAll(Square(Where(cond, v[0], v[1])));
      },
      {Tensor::Randn({2, 3}, rng), Tensor::Randn({2, 3}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GradCheck, MakeCustomOp) {
  Rng rng(18);
  // Hand-built op y = 2x with a manual backward closure, mirroring how the
  // sparse message-passing kernels hook into the tape.
  auto r = CheckGradients(
      [](std::vector<Variable>& v) {
        auto node = v[0].node();
        Variable y = MakeCustomOp(
            t::MulScalar(v[0].value(), 2.0f), {v[0]},
            [node](const Tensor& grad_out) {
              node->AccumulateGrad(t::MulScalar(grad_out, 2.0f));
            });
        return SumAll(Square(y));
      },
      {Tensor::Randn({4}, rng)});
  EXPECT_TRUE(r.ok) << r.message;
}

// ---------------------------------------------------------------------------
// Inference mode (NoGradGuard)
// ---------------------------------------------------------------------------

TEST(InferenceMode, GuardDisablesRecordingAndNests) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    // Still inside the outer guard after the inner one unwinds.
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(InferenceMode, OpsUnderGuardBuildNoTape) {
  Variable x(Tensor({2}, {3, 4}), /*requires_grad=*/true);
  NoGradGuard no_grad;
  Variable y = MulScalar(x, 2.0f);
  // Values are computed normally...
  EXPECT_TRUE(AllClose(y.value(), Tensor({2}, {6, 8})));
  // ...but the node holds no graph: no parents, no backward closure.
  EXPECT_TRUE(y.node()->inference_mode);
  EXPECT_EQ(y.node()->parents.size(), 0u);
  EXPECT_FALSE(y.requires_grad());
}

TEST(InferenceMode, InferenceResultsActAsConstantsInGradGraphs) {
  Variable x(Tensor({2}, {1, 2}), /*requires_grad=*/true);
  Variable frozen = [&] {
    NoGradGuard no_grad;
    return MulScalar(x, 5.0f);
  }();
  // Outside the guard, mixing the frozen value into a differentiable graph
  // treats it like Constant(): gradients flow to x only through the live
  // branch.
  Variable live = MulScalar(x, 3.0f);
  Variable loss = SumAll(Mul(frozen, live));
  loss.Backward();
  // d/dx of sum(5x ⊙ 3x) through the live branch only: 3 * frozen = 15x.
  EXPECT_TRUE(AllClose(x.grad(), Tensor({2}, {15, 30})));
}

TEST(InferenceMode, BackwardThroughInferenceGraphDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Variable x(Tensor({2}, {1, 2}), /*requires_grad=*/true);
        NoGradGuard no_grad;
        Variable y = SumAll(MulScalar(x, 2.0f));
        y.Backward();
      },
      "built under NoGradGuard");
}

// ---------------------------------------------------------------------------
// GradCaptureScope: the shard-parallel trainer's leaf-gradient redirect
// ---------------------------------------------------------------------------

TEST(GradCaptureScope, RedirectsLeafGradsIntoCallerBuffers) {
  Variable x(Tensor({2}, {1, 2}), true);
  Variable y(Tensor({2}, {3, 4}), true);
  std::vector<Variable> targets = {x, y};
  std::vector<Tensor> buffers(2);
  {
    GradCaptureScope scope(targets, &buffers);
    SumAll(Mul(x, y)).Backward();
    SumAll(Mul(x, y)).Backward();  // second pass accumulates into buffers
  }
  // The shared leaf nodes stayed untouched...
  EXPECT_FALSE(x.has_grad());
  EXPECT_FALSE(y.has_grad());
  // ...and the buffers caught both passes: d/dx sum(x*y) = y, twice.
  EXPECT_TRUE(AllClose(buffers[0], Tensor({2}, {6, 8})));
  EXPECT_TRUE(AllClose(buffers[1], Tensor({2}, {2, 4})));
}

TEST(GradCaptureScope, UntouchedTargetBufferStaysEmpty) {
  Variable x(Tensor({2}, {1, 2}), true);
  Variable unused(Tensor({3}, {1, 1, 1}), true);
  std::vector<Variable> targets = {x, unused};
  std::vector<Tensor> buffers(2);
  {
    GradCaptureScope scope(targets, &buffers);
    SumAll(x).Backward();
  }
  EXPECT_TRUE(AllClose(buffers[0], Tensor::Ones({2})));
  // Empty buffer == "this leaf never reached the parameter": the sharded
  // tree reduce treats it as an identity.
  EXPECT_EQ(buffers[1].numel(), 0);
}

TEST(GradCaptureScope, DropsUnregisteredConstantGrads) {
  // A pure-constant leaf (no requires_grad, no backward — e.g. a GraphConv
  // support matrix shared by all shards) must not be written from inside a
  // capture scope: its gradient is never consumed, and the node is shared
  // across concurrent sweeps. Constants are normally pruned from the tape,
  // so drive AccumulateGrad directly — the redirect layer is what's under
  // test.
  Variable x(Tensor({2}, {1, 2}), true);
  Variable shared = Constant(Tensor({2}, {5, 6}));
  std::vector<Variable> targets = {x};
  std::vector<Tensor> buffers(1);
  {
    GradCaptureScope scope(targets, &buffers);
    SumAll(x).Backward();
    shared.node()->AccumulateGrad(Tensor::Ones({2}));
    EXPECT_FALSE(shared.has_grad()) << "constant grad not dropped in scope";
  }
  EXPECT_TRUE(AllClose(buffers[0], Tensor::Ones({2})));
  // Outside the scope, accumulation reaches the node again.
  shared.node()->AccumulateGrad(Tensor::Ones({2}));
  EXPECT_TRUE(AllClose(shared.grad(), Tensor::Ones({2})));
}

TEST(GradCaptureScope, NestingDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Variable x(Tensor({2}, {1, 2}), true);
        std::vector<Variable> targets = {x};
        std::vector<Tensor> outer_buffers(1);
        std::vector<Tensor> inner_buffers(1);
        GradCaptureScope outer(targets, &outer_buffers);
        GradCaptureScope inner(targets, &inner_buffers);
      },
      "");
}

}  // namespace
}  // namespace pristi::autograd
