// Tests for the PriSTI model: forward shapes, gradient flow, ablation
// variants, checkpointing, and end-to-end training/imputation smoke tests.

#include "pristi/pristi_model.h"

#include <sstream>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "data/windows.h"
#include "diffusion/ddpm.h"
#include "graph/adjacency.h"

namespace pristi::core {
namespace {

namespace ag = ::pristi::autograd;
namespace t = ::pristi::tensor;
using ::pristi::diffusion::DiffusionBatch;
using ::pristi::diffusion::NoiseSchedule;
using t::Shape;
using t::Tensor;

PristiConfig TinyConfig(int64_t n = 6, int64_t l = 8) {
  PristiConfig config;
  config.num_nodes = n;
  config.window_len = l;
  config.channels = 8;
  config.heads = 2;
  config.layers = 2;
  config.virtual_nodes = 3;
  config.diffusion_emb_dim = 16;
  config.temporal_emb_dim = 16;
  config.node_emb_dim = 8;
  config.adaptive_rank = 4;
  return config;
}

Tensor TestAdjacency(int64_t n, uint64_t seed = 9) {
  Rng rng(seed);
  return graph::BuildSensorGraph(n, rng).adjacency;
}

DiffusionBatch RandomBatch(int64_t b, int64_t n, int64_t l, Rng& rng) {
  DiffusionBatch batch;
  Tensor values = Tensor::Randn({b, n, l}, rng);
  Tensor mask = Tensor::Zeros({b, n, l});
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng.Bernoulli(0.7) ? 1.0f : 0.0f;
  }
  batch.cond_mask = mask;
  batch.cond_values = t::Mul(values, mask);
  // Per-sample linear interpolation.
  batch.interpolated = Tensor({b, n, l});
  for (int64_t bi = 0; bi < b; ++bi) {
    Tensor v = t::SliceAxis(values, 0, bi, 1).Reshaped({n, l});
    Tensor m = t::SliceAxis(mask, 0, bi, 1).Reshaped({n, l});
    Tensor interp = data::LinearInterpolate(v, m);
    std::copy(interp.data(), interp.data() + n * l,
              batch.interpolated.data() + bi * n * l);
  }
  batch.target_mask = Tensor::Zeros({b, n, l});
  for (int64_t i = 0; i < batch.target_mask.numel(); ++i) {
    if (mask[i] < 0.5f) batch.target_mask[i] = 1.0f;
  }
  return batch;
}

TEST(LayoutHelpers, TemporalAndSpatialRoundTrip) {
  Rng rng(1);
  Tensor x = Tensor::Randn({2, 3, 4, 5}, rng);
  auto v = ag::Constant(x);
  auto tflat = FlattenTemporal(v);
  EXPECT_EQ(tflat.value().shape(), (Shape{6, 4, 5}));
  EXPECT_TRUE(t::AllClose(UnflattenTemporal(tflat, 2, 3).value(), x));
  auto sflat = FlattenSpatial(v);
  EXPECT_EQ(sflat.value().shape(), (Shape{8, 3, 5}));
  EXPECT_TRUE(t::AllClose(UnflattenSpatial(sflat, 2, 4).value(), x));
}

TEST(PristiModelTest, ForwardShape) {
  Rng rng(2);
  PristiConfig config = TinyConfig();
  PristiModel model(config, TestAdjacency(config.num_nodes), rng);
  Rng data_rng(3);
  DiffusionBatch batch =
      RandomBatch(2, config.num_nodes, config.window_len, data_rng);
  Tensor noisy = Tensor::Randn({2, config.num_nodes, config.window_len},
                               data_rng);
  auto eps_hat = model.PredictNoise(noisy, batch, 5);
  EXPECT_EQ(eps_hat.value().shape(),
            (Shape{2, config.num_nodes, config.window_len}));
  for (int64_t i = 0; i < eps_hat.value().numel(); ++i) {
    EXPECT_TRUE(std::isfinite(eps_hat.value()[i]));
  }
}

TEST(PristiModelTest, GradientsReachEveryParameter) {
  Rng rng(4);
  PristiConfig config = TinyConfig(5, 6);
  config.layers = 1;
  PristiModel model(config, TestAdjacency(5), rng);
  Rng data_rng(5);
  DiffusionBatch batch = RandomBatch(1, 5, 6, data_rng);
  Tensor noisy = Tensor::Randn({1, 5, 6}, data_rng);
  auto eps_hat = model.PredictNoise(noisy, batch, 3);
  ag::SumAll(ag::Square(eps_hat)).Backward();
  int64_t with_grad = 0, total = 0;
  for (auto& [name, param] : model.NamedParameters()) {
    ++total;
    if (param.has_grad()) ++with_grad;
  }
  // Everything except (possibly) unused-by-config parameters must get grads.
  EXPECT_EQ(with_grad, total);
  EXPECT_GT(total, 20);
}

TEST(PristiModelTest, DiffusionStepChangesOutput) {
  Rng rng(6);
  PristiConfig config = TinyConfig(4, 6);
  PristiModel model(config, TestAdjacency(4), rng);
  Rng data_rng(7);
  DiffusionBatch batch = RandomBatch(1, 4, 6, data_rng);
  Tensor noisy = Tensor::Randn({1, 4, 6}, data_rng);
  Tensor at_t1 = model.PredictNoise(noisy, batch, 1).value();
  Tensor at_t9 = model.PredictNoise(noisy, batch, 9).value();
  EXPECT_FALSE(t::AllClose(at_t1, at_t9, 1e-4f));
}

TEST(PristiModelTest, ConditioningChangesOutput) {
  Rng rng(8);
  PristiConfig config = TinyConfig(4, 6);
  PristiModel model(config, TestAdjacency(4), rng);
  Rng data_rng(9);
  DiffusionBatch batch_a = RandomBatch(1, 4, 6, data_rng);
  DiffusionBatch batch_b = RandomBatch(1, 4, 6, data_rng);
  Tensor noisy = Tensor::Randn({1, 4, 6}, data_rng);
  Tensor out_a = model.PredictNoise(noisy, batch_a, 4).value();
  Tensor out_b = model.PredictNoise(noisy, batch_b, 4).value();
  EXPECT_FALSE(t::AllClose(out_a, out_b, 1e-4f));
}

// Every ablation variant must construct and produce the right shape.
struct AblationSpec {
  const char* name;
  void (*apply)(PristiConfig&);
};

class AblationTest : public ::testing::TestWithParam<AblationSpec> {};

TEST_P(AblationTest, ForwardRuns) {
  PristiConfig config = TinyConfig(5, 6);
  config.layers = 1;
  GetParam().apply(config);
  Rng rng(10);
  PristiModel model(config, TestAdjacency(5), rng);
  Rng data_rng(11);
  DiffusionBatch batch = RandomBatch(1, 5, 6, data_rng);
  Tensor noisy = Tensor::Randn({1, 5, 6}, data_rng);
  auto out = model.PredictNoise(noisy, batch, 2);
  EXPECT_EQ(out.value().shape(), (Shape{1, 5, 6}));
  ag::SumAll(ag::Square(out)).Backward();  // backward must also succeed
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AblationTest,
    ::testing::Values(
        AblationSpec{"mix_sti",
                     [](PristiConfig& c) {
                       c.use_interpolation = false;
                       c.use_conditional_feature = false;
                     }},
        AblationSpec{"wo_cf",
                     [](PristiConfig& c) { c.use_conditional_feature = false; }},
        AblationSpec{"wo_spa", [](PristiConfig& c) { c.use_spatial = false; }},
        AblationSpec{"wo_tem", [](PristiConfig& c) { c.use_temporal = false; }},
        AblationSpec{"wo_mpnn", [](PristiConfig& c) { c.use_mpnn = false; }},
        AblationSpec{"wo_attn",
                     [](PristiConfig& c) { c.use_spatial_attention = false; }}),
    [](const ::testing::TestParamInfo<AblationSpec>& info) {
      return info.param.name;
    });

TEST(PristiModelTest, CheckpointRoundTrip) {
  PristiConfig config = TinyConfig(4, 6);
  Rng rng_a(12), rng_b(13);
  PristiModel a(config, TestAdjacency(4), rng_a);
  PristiModel b(config, TestAdjacency(4), rng_b);
  Rng data_rng(14);
  DiffusionBatch batch = RandomBatch(1, 4, 6, data_rng);
  Tensor noisy = Tensor::Randn({1, 4, 6}, data_rng);
  Tensor out_a = a.PredictNoise(noisy, batch, 3).value();
  std::stringstream buffer;
  a.Save(buffer);
  b.Load(buffer);
  Tensor out_b = b.PredictNoise(noisy, batch, 3).value();
  EXPECT_TRUE(t::AllClose(out_a, out_b, 1e-6f));
}

// ---------------------------------------------------------------------------
// End-to-end: training reduces the noise-prediction loss, and the trained
// model imputes planted data better than an untrained one.
// ---------------------------------------------------------------------------

data::ImputationTask TinyTask(uint64_t seed) {
  data::SyntheticConfig dconfig;
  dconfig.num_nodes = 6;
  dconfig.num_steps = 260;
  dconfig.steps_per_day = 24;
  dconfig.original_missing_rate = 0.05;
  Rng rng(seed);
  auto dataset = data::GenerateSynthetic(dconfig, rng);
  return data::MakeTask(std::move(dataset), data::MissingPattern::kPoint,
                        data::TaskOptions{.window_len = 8, .stride = 4}, rng);
}

TEST(PristiEndToEnd, TrainingLossDecreases) {
  data::ImputationTask task = TinyTask(21);
  PristiConfig config = TinyConfig(6, 8);
  config.layers = 1;
  config.channels = 8;
  Rng rng(22);
  PristiModel model(config, task.dataset.graph.adjacency, rng);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(50, 1e-4f, 0.2f);
  diffusion::TrainOptions options;
  options.epochs = 24;
  options.batch_size = 8;
  options.lr = 2e-3f;
  options.mask_strategy = data::MaskStrategy::kPoint;
  std::vector<double> losses =
      diffusion::TrainDiffusionModel(&model, schedule, task, options, rng);
  ASSERT_EQ(losses.size(), 24u);
  double first = (losses[0] + losses[1]) / 2;
  double last = (losses[losses.size() - 2] + losses.back()) / 2;
  EXPECT_LT(last, first);
}

TEST(PristiEndToEnd, TrainedModelBeatsUntrainedOnImputation) {
  data::ImputationTask task = TinyTask(31);
  PristiConfig config = TinyConfig(6, 8);
  config.layers = 1;
  Rng rng(32);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(50, 1e-4f, 0.2f);

  PristiModel trained(config, task.dataset.graph.adjacency, rng);
  diffusion::TrainOptions options;
  options.epochs = 30;
  options.batch_size = 8;
  options.lr = 2e-3f;
  options.mask_strategy = data::MaskStrategy::kPoint;
  diffusion::TrainDiffusionModel(&trained, schedule, task, options, rng);

  Rng rng_untrained(33);
  PristiModel untrained(config, task.dataset.graph.adjacency, rng_untrained);

  auto mae_on_eval = [&](diffusion::ConditionalNoisePredictor* model) {
    Rng sample_rng(99);
    double err_sum = 0;
    int64_t count = 0;
    for (const data::Sample& sample : data::ExtractSamples(task, "test")) {
      auto result = diffusion::ImputeWindow(model, schedule, sample,
                                            {.num_samples = 4}, sample_rng);
      for (int64_t node = 0; node < 6; ++node) {
        for (int64_t step = 0; step < 8; ++step) {
          if (sample.eval.at({node, step}) > 0.5f) {
            err_sum += std::fabs(result.median.at({node, step}) -
                                 sample.values.at({node, step}));
            ++count;
          }
        }
      }
    }
    return err_sum / std::max<int64_t>(count, 1);
  };

  double trained_mae = mae_on_eval(&trained);
  double untrained_mae = mae_on_eval(&untrained);
  EXPECT_LT(trained_mae, untrained_mae);
}

}  // namespace
}  // namespace pristi::core

namespace pristi::core {
namespace {

TEST(PristiModelTest, SparseMpnnMatchesDense) {
  // The sparse message-passing path must be a pure execution detail:
  // identical outputs for identical initialization.
  PristiConfig dense_config = TinyConfig(6, 8);
  PristiConfig sparse_config = dense_config;
  sparse_config.use_sparse_mpnn = true;
  Rng rng_a(71), rng_b(71);
  tensor::Tensor adjacency = TestAdjacency(6, 72);
  PristiModel dense(dense_config, adjacency, rng_a);
  PristiModel sparse(sparse_config, adjacency, rng_b);
  Rng data_rng(73);
  diffusion::DiffusionBatch batch = RandomBatch(1, 6, 8, data_rng);
  tensor::Tensor noisy = tensor::Tensor::Randn({1, 6, 8}, data_rng);
  tensor::Tensor out_dense = dense.PredictNoise(noisy, batch, 4).value();
  tensor::Tensor out_sparse = sparse.PredictNoise(noisy, batch, 4).value();
  EXPECT_TRUE(tensor::AllClose(out_dense, out_sparse, 1e-4f, 1e-4f));
}

}  // namespace
}  // namespace pristi::core
