// KernelBench: GFLOP/s for the tiled GEMM kernel layer on the GEMM shapes
// the PriSTI models actually issue — Linear/Conv1x1 weight products
// (MatMulLastDim), per-head attention scores (BatchedMatMulNT), and
// graph-conv node mixing (MatMulNodeDim) — on the AQI-36 and METR-LA
// presets. Each shape is timed on the tiled path and on the retained
// reference kernel, with a bitwise cross-check between the two (the
// layer's bit-identity contract makes that an exact comparison).
//
// Emits BENCH_kernels.json to PRISTI_BENCH_DIR (or a temp dir). Records
// numbers, asserts nothing about speed; registered under the `bench` ctest
// label so gating runs exclude it (`ctest -LE bench`).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.h"
#include "common/env.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "tensor/kernels/kernels.h"
#include "tensor/tensor.h"
#include "test_tmpdir.h"

namespace pristi::tensor {
namespace {

namespace kn = kernels;

struct BenchShape {
  const char* name;    // which model product this shape comes from
  int64_t batch;       // 1 = single Gemm, >1 = BatchedGemm
  int64_t m, k, n;
  kn::Layout layout_a;
  kn::Layout layout_b;
};

// Preset-derived shapes. Linear rows collapse (B, N, L, d) to
// (B*N*L, d_in) x (d_in, d_out); attention runs per (batch, head, node);
// graph conv mixes the node axis per (batch, step).
const BenchShape kShapes[] = {
    // AQI-36 full window: B=4, N=36, L=36, d=64 Linear.
    {"lastdim-aqi36", 1, 4 * 36 * 36, 64, 64, kn::Layout::kNormal,
     kn::Layout::kNormal},
    // METR-LA full nodes: B=4, N=207, L=24, d=64 Linear.
    {"lastdim-metrla", 1, 4 * 207 * 24, 64, 64, kn::Layout::kNormal,
     kn::Layout::kNormal},
    // Temporal attention scores Q·Kᵀ on AQI-36: batch = B*h*N = 4*8*36,
    // S = L = 36, dh = 8.
    {"attn-scores-aqi36", 4 * 8 * 36, 36, 8, 36, kn::Layout::kNormal,
     kn::Layout::kTransposed},
    // Graph conv on METR-LA quick nodes: (N, N) support applied per
    // (batch, step) slice, d = 64 channels.
    {"nodedim-metrla", 4 * 24, 207, 207, 64, kn::Layout::kNormal,
     kn::Layout::kNormal},
};

// Repeats `fn` until it has run for at least ~0.2 s, returns seconds/call.
template <typename Fn>
double TimePerCall(const Fn& fn) {
  fn();  // warm-up: scratch buffers, pool workers
  int64_t iters = 1;
  for (;;) {
    Stopwatch watch;
    for (int64_t i = 0; i < iters; ++i) fn();
    double sec = watch.ElapsedSeconds();
    if (sec >= 0.2 || iters >= (int64_t{1} << 20)) {
      return sec / static_cast<double>(iters);
    }
    iters *= 2;
  }
}

TEST(KernelBench, GemmGflopsOnPresetShapes) {
  pristi::testing::TestTempDir tmp;
  std::string json_path =
      ::pristi::bench::ArtifactPath("BENCH_kernels.json", tmp.path().string());
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  ASSERT_NE(json, nullptr);
  std::fprintf(json,
               "{\n"
               "  \"threads\": %lld,\n"
               "  \"tiled_enabled\": %s,\n"
               "  \"row_tile\": %lld,\n"
               "  \"col_tile\": %lld,\n"
               "  \"shapes\": [",
               static_cast<long long>(ParallelThreadCount()),
               kn::TiledGemmEnabled() ? "true" : "false",
               static_cast<long long>(kn::kRowTile),
               static_cast<long long>(kn::kColTile));
  std::printf("GEMM kernels (%lld threads)\n",
              static_cast<long long>(ParallelThreadCount()));
  std::printf("%20s %8s %22s %10s %10s %8s\n", "shape", "batch", "m x k x n",
              "tiled", "ref", "ratio");

  Rng rng(97);
  bool first = true;
  for (const BenchShape& s : kShapes) {
    // Operand buffers in the layout the kernel will read them.
    int64_t a_rows = s.layout_a == kn::Layout::kNormal ? s.m : s.k;
    int64_t a_cols = s.layout_a == kn::Layout::kNormal ? s.k : s.m;
    int64_t b_rows = s.layout_b == kn::Layout::kNormal ? s.k : s.n;
    int64_t b_cols = s.layout_b == kn::Layout::kNormal ? s.n : s.k;
    Tensor a = Tensor::Randn({s.batch, a_rows, a_cols}, rng);
    Tensor b = Tensor::Randn({s.batch, b_rows, b_cols}, rng);
    Tensor c(Shape{s.batch, s.m, s.n});
    const double flops =
        2.0 * static_cast<double>(s.batch) * static_cast<double>(s.m) *
        static_cast<double>(s.n) * static_cast<double>(s.k);

    auto run_tiled = [&] {
      c.Fill(0.0f);
      if (s.batch == 1) {
        kn::Gemm(s.layout_a, s.layout_b, s.m, s.n, s.k, a.data(), b.data(),
                 c.data());
      } else {
        kn::BatchedGemm(s.layout_a, s.layout_b, s.batch, s.m, s.n, s.k,
                        a.data(), a_rows * a_cols, b.data(), b_rows * b_cols,
                        c.data());
      }
    };
    Tensor ref(Shape{s.batch, s.m, s.n});
    auto run_ref = [&] {
      ref.Fill(0.0f);
      for (int64_t bi = 0; bi < s.batch; ++bi) {
        kn::ReferenceGemm(s.layout_a, s.layout_b, s.m, s.n, s.k,
                          a.data() + bi * a_rows * a_cols,
                          b.data() + bi * b_rows * b_cols,
                          ref.data() + bi * s.m * s.n);
      }
    };

    // Bitwise cross-check before timing: the contract the goldens rely on.
    run_tiled();
    run_ref();
    for (int64_t i = 0; i < c.numel(); ++i) {
      ASSERT_EQ(c[i], ref[i]) << s.name << " diverged at flat index " << i;
    }

    double tiled_sec = TimePerCall(run_tiled);
    double ref_sec = TimePerCall(run_ref);
    double tiled_gflops = flops / tiled_sec / 1e9;
    double ref_gflops = flops / ref_sec / 1e9;
    EXPECT_GT(tiled_gflops, 0.0);
    std::fprintf(json,
                 "%s\n    {\"name\": \"%s\", \"batch\": %lld, \"m\": %lld, "
                 "\"k\": %lld, \"n\": %lld, "
                 "\"tiled_gflops_per_sec\": %.3f, "
                 "\"reference_gflops_per_sec\": %.3f, "
                 "\"tiled_over_reference\": %.3f}",
                 first ? "" : ",", s.name, static_cast<long long>(s.batch),
                 static_cast<long long>(s.m), static_cast<long long>(s.k),
                 static_cast<long long>(s.n), tiled_gflops, ref_gflops,
                 ref_sec / tiled_sec);
    std::printf("%20s %8lld %10lldx%4lldx%5lld %7.2f GF %7.2f GF %7.2fx\n",
                s.name, static_cast<long long>(s.batch),
                static_cast<long long>(s.m), static_cast<long long>(s.k),
                static_cast<long long>(s.n), tiled_gflops, ref_gflops,
                ref_sec / tiled_sec);
    first = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("[json written to %s]\n", json_path.c_str());
}

}  // namespace
}  // namespace pristi::tensor
