// Sampler-equivalence suite for the sample-batched reverse-diffusion path.
//
// The batched sampler stacks all `num_samples` chains into one (S, N, L)
// tensor and makes a single model call per reverse step; the sequential
// fallback (ImputeOptions::sequential_fallback) runs the same chains one at
// a time at batch size 1 and is the reference oracle. Both draw from
// identical counter-seeded per-chain RNG streams (MakeChainStreams), so:
//
//   * DDIM/PLMS (deterministic after the initial draw) must agree per
//     entry — for PLMS the multistep eps history is stacked chain-major,
//     so a chain's history slice is the same whether it runs solo or
//     batched;
//   * DDPM ancestral sampling must agree because every chain's noise
//     depends only on (root seed, chain index), not on execution order;
//   * results must be invariant to the thread-pool size, because every
//     parallel kernel assigns each output element to exactly one thread
//     with a fixed accumulation order;
//   * mixed-sampler coalesced batches must return each request's solo bits
//     (the per-request-options ImputeWindowsCoalesced overload groups
//     like-configured requests without renumbering their chains).
//
// Also hosts the seeded golden regressions for the batched DDPM and PLMS
// samplers and the ImputationResult property tests.
//
// Regenerating the goldens after an INTENTIONAL sampler change:
//   PRISTI_REGEN_GOLDEN=1 ./build/tests/sampler_equivalence_test
//     --gtest_filter='GoldenRegression.*'
// then commit the rewritten tests/golden/sampler_batched_16node.txt and
// tests/golden/sampler_plms_16node.txt.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/parallel.h"
#include "diffusion/ddpm.h"
#include "diffusion/schedule.h"
#include "pristi/pristi_model.h"

namespace pristi::diffusion {
namespace {

namespace t = ::pristi::tensor;
using t::Shape;
using t::Tensor;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

// Deterministic window with ~30% of entries hidden in a fixed pattern.
data::Sample MakeWindow(int64_t n, int64_t l, uint64_t seed) {
  Rng rng(seed);
  data::Sample sample;
  sample.values = Tensor::Randn({n, l}, rng);
  sample.observed = Tensor::Ones({n, l});
  sample.eval = Tensor::Zeros({n, l});
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if ((node * 7 + step * 3) % 10 < 3) {
        sample.observed.at({node, step}) = 0.0f;
      }
    }
  }
  return sample;
}

// Small but real PriSTI noise predictor (attention + MPNN + layer norm all
// exercised), so batched-vs-sequential covers the full model forward.
std::unique_ptr<core::PristiModel> MakeTinyModel(int64_t n, int64_t l,
                                                 uint64_t seed) {
  core::PristiConfig config;
  config.num_nodes = n;
  config.window_len = l;
  config.channels = 8;
  config.heads = 2;
  config.layers = 1;
  config.virtual_nodes = 2;
  config.diffusion_emb_dim = 8;
  config.temporal_emb_dim = 8;
  config.node_emb_dim = 4;
  config.adaptive_rank = 4;
  config.graph_diffusion_steps = 1;
  Tensor adjacency(Shape{n, n});
  for (int64_t i = 0; i + 1 < n; ++i) {
    adjacency.at({i, i + 1}) = 1.0f;
    adjacency.at({i + 1, i}) = 1.0f;
  }
  Rng rng(seed);
  return std::make_unique<core::PristiModel>(config, adjacency, rng);
}

// Asserts per-entry agreement of two imputation results with a readable
// location on failure.
void ExpectResultsClose(const ImputationResult& batched,
                        const ImputationResult& sequential, float atol) {
  ASSERT_EQ(batched.samples.size(), sequential.samples.size());
  for (size_t s = 0; s < batched.samples.size(); ++s) {
    const Tensor& a = batched.samples[s];
    const Tensor& b = sequential.samples[s];
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i) {
      ASSERT_NEAR(a[i], b[i], atol)
          << "sample " << s << ", flat index " << i;
    }
  }
  for (int64_t i = 0; i < batched.median.numel(); ++i) {
    ASSERT_NEAR(batched.median[i], sequential.median[i], atol)
        << "median flat index " << i;
  }
}

ImputationResult RunImpute(ConditionalNoisePredictor* model,
                           const NoiseSchedule& schedule,
                           const data::Sample& sample, ImputeOptions options,
                           uint64_t seed, bool sequential) {
  options.sequential_fallback = sequential;
  Rng rng(seed);
  return ImputeWindow(model, schedule, sample, options, rng);
}

// ---------------------------------------------------------------------------
// Chain-stream contract
// ---------------------------------------------------------------------------

TEST(ChainStreams, ConsumeOneDrawRegardlessOfCount) {
  Rng a(123), b(123);
  (void)MakeChainStreams(a, 3);
  (void)MakeChainStreams(b, 31);
  // Both parents advanced by exactly one engine draw -> identical continuation.
  EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(ChainStreams, ChainStreamDependsOnlyOnRootAndIndex) {
  Rng a(7), b(7);
  std::vector<Rng> few = MakeChainStreams(a, 2);
  std::vector<Rng> many = MakeChainStreams(b, 8);
  // Chain i's stream is identical whether 2 or 8 chains were derived.
  for (size_t i = 0; i < few.size(); ++i) {
    EXPECT_DOUBLE_EQ(few[i].Normal(), many[i].Normal()) << "chain " << i;
  }
  // Distinct chains differ.
  EXPECT_NE(many[2].Normal(), many[3].Normal());
}

// ---------------------------------------------------------------------------
// Batched == sequential equivalence
// ---------------------------------------------------------------------------

TEST(SamplerEquivalence, BatchedDdimMatchesSequentialOracle) {
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 11);
  auto model = MakeTinyModel(n, l, 12);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(12, 1e-4f, 0.2f);
  // 6 of 12 kept steps == the old stride-2 DDIM subset.
  ImputeOptions options{.num_samples = 4, .sampler = SamplerKind::kDdim,
                        .num_inference_steps = 6};
  ImputationResult batched =
      RunImpute(model.get(), schedule, sample, options, 99, false);
  ImputationResult sequential =
      RunImpute(model.get(), schedule, sample, options, 99, true);
  ExpectResultsClose(batched, sequential, 1e-5f);
}

TEST(SamplerEquivalence, BatchedDdpmMatchesSequentialOracle) {
  // Ancestral sampling draws fresh noise every step; the counter-seeded
  // per-chain streams make the batched draw order irrelevant.
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 21);
  auto model = MakeTinyModel(n, l, 22);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(10, 1e-4f, 0.2f);
  ImputeOptions options{.num_samples = 5};
  ImputationResult batched =
      RunImpute(model.get(), schedule, sample, options, 77, false);
  ImputationResult sequential =
      RunImpute(model.get(), schedule, sample, options, 77, true);
  ExpectResultsClose(batched, sequential, 1e-5f);
}

TEST(SamplerEquivalence, ThreadCountInvariance) {
  // The batched result must be bit-identical whether the pool runs 1 or 4
  // threads: chunking only partitions disjoint output ranges.
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 31);
  auto model = MakeTinyModel(n, l, 32);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(8, 1e-4f, 0.2f);
  ImputeOptions options{.num_samples = 4};
  int64_t restore = ParallelThreadCount();
  SetParallelThreadCount(1);
  ImputationResult one =
      RunImpute(model.get(), schedule, sample, options, 55, false);
  SetParallelThreadCount(4);
  ImputationResult four =
      RunImpute(model.get(), schedule, sample, options, 55, false);
  SetParallelThreadCount(restore);
  ASSERT_EQ(one.samples.size(), four.samples.size());
  for (size_t s = 0; s < one.samples.size(); ++s) {
    EXPECT_TRUE(t::AllClose(one.samples[s], four.samples[s], 0.0f, 0.0f))
        << "sample " << s << " differs between 1 and 4 threads";
  }
  EXPECT_TRUE(t::AllClose(one.median, four.median, 0.0f, 0.0f));
}

TEST(SamplerEquivalence, BatchedPlmsMatchesSequentialOracle) {
  // PLMS is the interesting case for batched == sequential: the stepper
  // carries state between steps (the eps history and the Runge-Kutta
  // intermediates), all stacked chain-major. The sequential oracle runs
  // each chain with its own fresh stepper, so agreement proves the batched
  // history never mixes chains.
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 81);
  auto model = MakeTinyModel(n, l, 82);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(12, 1e-4f, 0.2f);
  ImputeOptions options{.num_samples = 4, .sampler = SamplerKind::kPlms,
                        .num_inference_steps = 6};
  ImputationResult batched =
      RunImpute(model.get(), schedule, sample, options, 44, false);
  ImputationResult sequential =
      RunImpute(model.get(), schedule, sample, options, 44, true);
  ExpectResultsClose(batched, sequential, 1e-5f);
}

TEST(SamplerEquivalence, PlmsThreadCountInvariance) {
  // Bit-invariance at 1 vs 4 pool threads for the multistep sampler: the
  // Adams-Bashforth combination and the RK warm-up are elementwise with a
  // fixed per-entry evaluation order, so chunking cannot change any bit.
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 91);
  auto model = MakeTinyModel(n, l, 92);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(12, 1e-4f, 0.2f);
  ImputeOptions options{.num_samples = 4, .sampler = SamplerKind::kPlms,
                        .num_inference_steps = 6};
  int64_t restore = ParallelThreadCount();
  SetParallelThreadCount(1);
  ImputationResult one =
      RunImpute(model.get(), schedule, sample, options, 33, false);
  SetParallelThreadCount(4);
  ImputationResult four =
      RunImpute(model.get(), schedule, sample, options, 33, false);
  SetParallelThreadCount(restore);
  ASSERT_EQ(one.samples.size(), four.samples.size());
  for (size_t s = 0; s < one.samples.size(); ++s) {
    EXPECT_TRUE(t::AllClose(one.samples[s], four.samples[s], 0.0f, 0.0f))
        << "PLMS sample " << s << " differs between 1 and 4 threads";
  }
  EXPECT_TRUE(t::AllClose(one.median, four.median, 0.0f, 0.0f));
}

TEST(CoalescedEquivalence, MixedSamplerBatchBitIdenticalToSolo) {
  // One coalesced batch carrying all three samplers (plus two requests
  // sharing the PLMS group): every response must be BIT-identical to the
  // solo ImputeWindow run with the request's own options and Rng(seed),
  // at any thread count.
  const int64_t n = 6, l = 8;
  auto model = MakeTinyModel(n, l, 102);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(12, 1e-4f, 0.2f);
  std::vector<data::Sample> windows = {
      MakeWindow(n, l, 111), MakeWindow(n, l, 112), MakeWindow(n, l, 113),
      MakeWindow(n, l, 114)};
  std::vector<uint64_t> seeds = {201, 202, 203, 204};
  std::vector<ImputeOptions> options = {
      {.num_samples = 2, .sampler = SamplerKind::kDdpm},
      {.num_samples = 2, .sampler = SamplerKind::kDdim,
       .num_inference_steps = 6},
      {.num_samples = 2, .sampler = SamplerKind::kPlms,
       .num_inference_steps = 6},
      {.num_samples = 2, .sampler = SamplerKind::kPlms,
       .num_inference_steps = 6},
  };
  int64_t restore = ParallelThreadCount();
  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    SetParallelThreadCount(threads);
    std::vector<ImputationResult> coalesced = ImputeWindowsCoalesced(
        model.get(), schedule, windows, seeds, options);
    ASSERT_EQ(coalesced.size(), windows.size());
    for (size_t r = 0; r < windows.size(); ++r) {
      Rng solo_rng(seeds[r]);
      ImputationResult solo = ImputeWindow(model.get(), schedule, windows[r],
                                           options[r], solo_rng);
      ASSERT_EQ(coalesced[r].samples.size(), solo.samples.size());
      for (size_t s = 0; s < solo.samples.size(); ++s) {
        EXPECT_TRUE(t::AllClose(coalesced[r].samples[s], solo.samples[s],
                                0.0f, 0.0f))
            << "threads=" << threads << " request " << r << " sample " << s
            << " (" << SamplerKindName(options[r].sampler)
            << ") not bit-identical to solo";
      }
      EXPECT_TRUE(
          t::AllClose(coalesced[r].median, solo.median, 0.0f, 0.0f))
          << "threads=" << threads << " request " << r << " median";
    }
  }
  SetParallelThreadCount(restore);
}

TEST(SamplerKindNames, ParseAndPrintRoundTrip) {
  SamplerKind kind = SamplerKind::kDdpm;
  EXPECT_TRUE(ParseSamplerKind("ddim", &kind));
  EXPECT_EQ(kind, SamplerKind::kDdim);
  EXPECT_TRUE(ParseSamplerKind("plms", &kind));
  EXPECT_EQ(kind, SamplerKind::kPlms);
  EXPECT_TRUE(ParseSamplerKind("pndm", &kind));  // family alias
  EXPECT_EQ(kind, SamplerKind::kPlms);
  EXPECT_TRUE(ParseSamplerKind("ddpm", &kind));
  EXPECT_EQ(kind, SamplerKind::kDdpm);
  kind = SamplerKind::kPlms;
  EXPECT_FALSE(ParseSamplerKind("euler", &kind));
  EXPECT_EQ(kind, SamplerKind::kPlms);  // untouched on failure
  EXPECT_STREQ(SamplerKindName(SamplerKind::kDdpm), "ddpm");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kDdim), "ddim");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kPlms), "plms");
}

TEST(PlanReverseSteps, SubsetRuleMatchesClassicStrides) {
  NoiseSchedule schedule = NoiseSchedule::Quadratic(30, 1e-4f, 0.2f);
  // Full schedule when steps <= 0 or >= T.
  for (int64_t k : {int64_t{0}, int64_t{-3}, int64_t{30}, int64_t{100}}) {
    std::vector<ReverseStep> plan = PlanReverseSteps(schedule, k);
    ASSERT_EQ(plan.size(), 30u) << "k=" << k;
    for (size_t i = 0; i < plan.size(); ++i) {
      EXPECT_EQ(plan[i].step, 30 - static_cast<int64_t>(i));
      EXPECT_EQ(plan[i].prev_step, 30 - static_cast<int64_t>(i) - 1);
    }
  }
  // K dividing T reproduces the stride-T/K subset, always starting at T
  // and ending at stride.
  std::vector<ReverseStep> plan = PlanReverseSteps(schedule, 10);
  ASSERT_EQ(plan.size(), 10u);
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].step, 30 - 3 * static_cast<int64_t>(i));
  }
  EXPECT_EQ(plan.back().prev_step, 0);
  // Non-dividing K still yields K strictly decreasing kept steps in [1, T].
  plan = PlanReverseSteps(schedule, 7);
  ASSERT_EQ(plan.size(), 7u);
  EXPECT_EQ(plan.front().step, 30);
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LT(plan[i].step, plan[i - 1].step);
    EXPECT_GE(plan[i].step, 1);
  }
}

TEST(SamplerEquivalence, SequentialFallbackPreservesObservedEntries) {
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 41);
  auto model = MakeTinyModel(n, l, 42);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(6, 1e-4f, 0.2f);
  for (bool sequential : {false, true}) {
    ImputationResult result = RunImpute(model.get(), schedule, sample,
                                        {.num_samples = 3}, 66, sequential);
    for (const Tensor& generated : result.samples) {
      for (int64_t node = 0; node < n; ++node) {
        for (int64_t step = 0; step < l; ++step) {
          if (sample.observed.at({node, step}) > 0.5f) {
            EXPECT_FLOAT_EQ(generated.at({node, step}),
                            sample.values.at({node, step}))
                << "sequential=" << sequential << " node=" << node
                << " step=" << step;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ImputationResult property tests
// ---------------------------------------------------------------------------

TEST(ImputationResultProperties, QuantileMonotonicInQ) {
  Rng rng(51);
  ImputationResult result;
  for (int i = 0; i < 9; ++i) {
    result.samples.push_back(Tensor::Randn({3, 4}, rng));
  }
  for (int64_t node = 0; node < 3; ++node) {
    for (int64_t step = 0; step < 4; ++step) {
      float prev = result.Quantile(node, step, 0.0);
      for (double q = 0.05; q <= 1.0 + 1e-9; q += 0.05) {
        float cur = result.Quantile(node, step, q);
        EXPECT_GE(cur, prev) << "q=" << q << " node=" << node
                             << " step=" << step;
        prev = cur;
      }
    }
  }
}

TEST(ImputationResultProperties, MedianOfOddConstantSampleSetIsExact) {
  ImputationResult result;
  for (float value : {3.0f, 1.0f, 4.0f, 1.5f, 5.0f}) {
    result.samples.push_back(Tensor::Full({2, 2}, value));
  }
  // Sorted: 1, 1.5, 3, 4, 5 -> the odd-count median is exactly the middle
  // element, no interpolation.
  EXPECT_FLOAT_EQ(result.Quantile(0, 0, 0.5), 3.0f);
  EXPECT_FLOAT_EQ(result.Quantile(1, 1, 0.5), 3.0f);
  // Extremes are exact too.
  EXPECT_FLOAT_EQ(result.Quantile(0, 0, 0.0), 1.0f);
  EXPECT_FLOAT_EQ(result.Quantile(0, 0, 1.0), 5.0f);
}

TEST(ImputationResultProperties, MergedOutputsEqualObservationsOnObserved) {
  // Mask-preservation invariant across batched merge: every generated
  // sample and the median agree with the observations wherever observed.
  const int64_t n = 5, l = 6;
  data::Sample sample = MakeWindow(n, l, 61);
  auto model = MakeTinyModel(n, l, 62);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(6, 1e-4f, 0.2f);
  ImputationResult result =
      RunImpute(model.get(), schedule, sample, {.num_samples = 7}, 88, false);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if (sample.observed.at({node, step}) <= 0.5f) continue;
      float truth = sample.values.at({node, step});
      for (const Tensor& generated : result.samples) {
        EXPECT_FLOAT_EQ(generated.at({node, step}), truth);
      }
      EXPECT_FLOAT_EQ(result.median.at({node, step}), truth);
    }
  }
}

// ---------------------------------------------------------------------------
// Golden regression
// ---------------------------------------------------------------------------

// Deterministic affine predictor: nontrivial (uses the noisy stream and the
// conditional interpolation) but free of matmuls/attention, so the golden
// pins the SAMPLER's arithmetic and RNG-stream contract rather than model
// codegen, and stays stable across compilers and optimization levels.
class AffinePredictor : public ConditionalNoisePredictor {
 public:
  Variable PredictNoise(const Tensor& noisy, const DiffusionBatch& batch,
                        int64_t step) override {
    float scale = 0.1f + 0.001f * static_cast<float>(step);
    Tensor out = t::MulScalar(noisy, scale);
    // interpolated is (1, N, L) in the sequential path and (S, N, L) in the
    // batched path; both broadcast-free because ImputeWindow tiles it.
    out.AddInPlace(t::MulScalar(batch.interpolated, -0.05f));
    return autograd::Constant(std::move(out));
  }
  std::vector<Variable> Parameters() override { return {}; }
  void ZeroGrad() override {}
};

struct GoldenRow {
  int64_t node = 0, step = 0;
  float median = 0, q10 = 0, q90 = 0;
};

// Writes the "node step median q10 q90" golden format shared by every
// sampler golden in this suite.
void WriteGoldenFile(const std::string& path, const std::string& description,
                     const ImputationResult& result, int64_t n, int64_t l) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden " << path;
  out << "# " << description << "\n"
      << "# regen: PRISTI_REGEN_GOLDEN=1 ./sampler_equivalence_test "
         "--gtest_filter='GoldenRegression.*'\n"
      << n << " " << l << "\n";
  out.precision(9);
  out << std::scientific;
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      out << node << " " << step << " "
          << result.median.at({node, step}) << " "
          << result.Quantile(node, step, 0.1) << " "
          << result.Quantile(node, step, 0.9) << "\n";
    }
  }
}

// Loads a golden file and asserts the result matches it per entry, with a
// readable diff of every drifted entry on failure.
void ExpectMatchesGolden(const std::string& path,
                         const ImputationResult& result, int64_t n,
                         int64_t l) {
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << "; regenerate with PRISTI_REGEN_GOLDEN=1 ./sampler_equivalence_test"
         " --gtest_filter='GoldenRegression.*'";
  std::string line;
  std::vector<GoldenRow> rows;
  int64_t gn = 0, gl = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    if (gn == 0) {
      ASSERT_TRUE(static_cast<bool>(fields >> gn >> gl)) << "bad header";
      continue;
    }
    GoldenRow row;
    ASSERT_TRUE(static_cast<bool>(fields >> row.node >> row.step >>
                                  row.median >> row.q10 >> row.q90))
        << "bad golden line: " << line;
    rows.push_back(row);
  }
  ASSERT_EQ(gn, n);
  ASSERT_EQ(gl, l);
  ASSERT_EQ(rows.size(), static_cast<size_t>(n * l));

  const float kTol = 1e-4f;
  std::ostringstream diff;
  int64_t drifted = 0;
  for (const GoldenRow& row : rows) {
    struct {
      const char* name;
      float expected;
      float actual;
    } checks[] = {
        {"median", row.median, result.median.at({row.node, row.step})},
        {"q10", row.q10, result.Quantile(row.node, row.step, 0.1)},
        {"q90", row.q90, result.Quantile(row.node, row.step, 0.9)},
    };
    for (const auto& check : checks) {
      if (std::fabs(check.expected - check.actual) > kTol) {
        ++drifted;
        diff << "  (" << row.node << ", " << row.step << ") " << check.name
             << ": golden " << check.expected << " vs actual " << check.actual
             << " (|diff| = " << std::fabs(check.expected - check.actual)
             << ")\n";
      }
    }
  }
  EXPECT_EQ(drifted, 0)
      << drifted << " golden entr(ies) drifted beyond " << kTol << " in "
      << path << ":\n"
      << diff.str()
      << "If the sampler change is intentional, regenerate with:\n"
         "  PRISTI_REGEN_GOLDEN=1 ./sampler_equivalence_test "
         "--gtest_filter='GoldenRegression.*'";
}

// The exact configuration the golden files pin: 16-node preset window,
// 8 samples, T = 20, affine predictor. `options` selects the sampler.
ImputationResult RunGoldenConfig(ImputeOptions options) {
  const int64_t n = 16, l = 8;
  data::Sample sample = MakeWindow(n, l, 71);
  AffinePredictor model;
  NoiseSchedule schedule = NoiseSchedule::Quadratic(20, 1e-4f, 0.2f);
  Rng rng(72);
  return ImputeWindow(&model, schedule, sample, options, rng);
}

TEST(GoldenRegression, BatchedSamplerMatchesCheckedInGolden) {
  const int64_t n = 16, l = 8;
  ImputationResult result = RunGoldenConfig({.num_samples = 8});
  if (!pristi::GetEnvOr("PRISTI_REGEN_GOLDEN", "").empty()) {
    WriteGoldenFile(
        PRISTI_GOLDEN_PATH,
        "sampler golden: 16-node window, 8 samples, 20 ancestral steps",
        result, n, l);
    GTEST_SKIP() << "golden regenerated at " << PRISTI_GOLDEN_PATH;
  }
  ExpectMatchesGolden(PRISTI_GOLDEN_PATH, result, n, l);
}

TEST(GoldenRegression, PlmsSamplerMatchesCheckedInGolden) {
  // Pins the pseudo-numerical path end to end: the Runge-Kutta warm-up,
  // the Adams-Bashforth history handling, and the shared step-subset
  // selection (10 of 20 kept steps).
  const int64_t n = 16, l = 8;
  ImputationResult result =
      RunGoldenConfig({.num_samples = 8, .sampler = SamplerKind::kPlms,
                       .num_inference_steps = 10});
  if (!pristi::GetEnvOr("PRISTI_REGEN_GOLDEN", "").empty()) {
    WriteGoldenFile(
        PRISTI_PLMS_GOLDEN_PATH,
        "PLMS golden: 16-node window, 8 samples, 10 of 20 kept steps",
        result, n, l);
    GTEST_SKIP() << "golden regenerated at " << PRISTI_PLMS_GOLDEN_PATH;
  }
  ExpectMatchesGolden(PRISTI_PLMS_GOLDEN_PATH, result, n, l);
}

// ---------------------------------------------------------------------------
// PLMS degeneracy property
// ---------------------------------------------------------------------------

// Noise predictor whose output depends only on the conditioning — constant
// across reverse steps and states. Along such a trajectory every entry of
// the PLMS history is identical, so the property below is algebraically
// exact and any drift exposes a weighting bug.
class ConditionalConstantPredictor : public ConditionalNoisePredictor {
 public:
  Variable PredictNoise(const Tensor& noisy, const DiffusionBatch& batch,
                        int64_t step) override {
    (void)noisy;
    (void)step;
    return autograd::Constant(t::MulScalar(batch.interpolated, 0.3f));
  }
  std::vector<Variable> Parameters() override { return {}; }
  void ZeroGrad() override {}
};

TEST(PlmsProperties, FullStepPlmsDegeneratesToDdimTrajectory) {
  // Degeneracy property: when the eps prediction is constant along the
  // trajectory, the Runge-Kutta combination ((e + 2e + 2e + e)/6 = e) and
  // every Adams-Bashforth order (weights sum to 1) collapse to the single
  // prediction, so PLMS at the full step count must reproduce the DDIM
  // trajectory exactly up to float rounding. The 1e-4 bound leaves ~three
  // decades of headroom over accumulated ulp noise; any weighting or
  // history-indexing bug blows straight past it.
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 121);
  ConditionalConstantPredictor model;
  NoiseSchedule schedule = NoiseSchedule::Quadratic(20, 1e-4f, 0.2f);
  ImputeOptions ddim{.num_samples = 4, .sampler = SamplerKind::kDdim,
                     .num_inference_steps = 0};
  ImputeOptions plms{.num_samples = 4, .sampler = SamplerKind::kPlms,
                     .num_inference_steps = 0};
  Rng ddim_rng(131), plms_rng(131);
  ImputationResult a = ImputeWindow(&model, schedule, sample, ddim, ddim_rng);
  ImputationResult b = ImputeWindow(&model, schedule, sample, plms, plms_rng);
  ExpectResultsClose(a, b, 1e-4f);
}

}  // namespace
}  // namespace pristi::diffusion
