// Sampler-equivalence suite for the sample-batched reverse-diffusion path.
//
// The batched sampler stacks all `num_samples` chains into one (S, N, L)
// tensor and makes a single model call per reverse step; the sequential
// fallback (ImputeOptions::sequential_fallback) runs the same chains one at
// a time at batch size 1 and is the reference oracle. Both draw from
// identical counter-seeded per-chain RNG streams (MakeChainStreams), so:
//
//   * DDIM (deterministic after the initial draw) must agree per entry;
//   * DDPM ancestral sampling must agree because every chain's noise
//     depends only on (root seed, chain index), not on execution order;
//   * results must be invariant to the thread-pool size, because every
//     parallel kernel assigns each output element to exactly one thread
//     with a fixed accumulation order.
//
// Also hosts the seeded golden regression for the batched sampler and the
// ImputationResult property tests.
//
// Regenerating the golden after an INTENTIONAL sampler change:
//   PRISTI_REGEN_GOLDEN=1 ./build/tests/sampler_equivalence_test
//     --gtest_filter='GoldenRegression.*'
// then commit the rewritten tests/golden/sampler_batched_16node.txt.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/parallel.h"
#include "diffusion/ddpm.h"
#include "diffusion/schedule.h"
#include "pristi/pristi_model.h"

namespace pristi::diffusion {
namespace {

namespace t = ::pristi::tensor;
using t::Shape;
using t::Tensor;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

// Deterministic window with ~30% of entries hidden in a fixed pattern.
data::Sample MakeWindow(int64_t n, int64_t l, uint64_t seed) {
  Rng rng(seed);
  data::Sample sample;
  sample.values = Tensor::Randn({n, l}, rng);
  sample.observed = Tensor::Ones({n, l});
  sample.eval = Tensor::Zeros({n, l});
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if ((node * 7 + step * 3) % 10 < 3) {
        sample.observed.at({node, step}) = 0.0f;
      }
    }
  }
  return sample;
}

// Small but real PriSTI noise predictor (attention + MPNN + layer norm all
// exercised), so batched-vs-sequential covers the full model forward.
std::unique_ptr<core::PristiModel> MakeTinyModel(int64_t n, int64_t l,
                                                 uint64_t seed) {
  core::PristiConfig config;
  config.num_nodes = n;
  config.window_len = l;
  config.channels = 8;
  config.heads = 2;
  config.layers = 1;
  config.virtual_nodes = 2;
  config.diffusion_emb_dim = 8;
  config.temporal_emb_dim = 8;
  config.node_emb_dim = 4;
  config.adaptive_rank = 4;
  config.graph_diffusion_steps = 1;
  Tensor adjacency(Shape{n, n});
  for (int64_t i = 0; i + 1 < n; ++i) {
    adjacency.at({i, i + 1}) = 1.0f;
    adjacency.at({i + 1, i}) = 1.0f;
  }
  Rng rng(seed);
  return std::make_unique<core::PristiModel>(config, adjacency, rng);
}

// Asserts per-entry agreement of two imputation results with a readable
// location on failure.
void ExpectResultsClose(const ImputationResult& batched,
                        const ImputationResult& sequential, float atol) {
  ASSERT_EQ(batched.samples.size(), sequential.samples.size());
  for (size_t s = 0; s < batched.samples.size(); ++s) {
    const Tensor& a = batched.samples[s];
    const Tensor& b = sequential.samples[s];
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i) {
      ASSERT_NEAR(a[i], b[i], atol)
          << "sample " << s << ", flat index " << i;
    }
  }
  for (int64_t i = 0; i < batched.median.numel(); ++i) {
    ASSERT_NEAR(batched.median[i], sequential.median[i], atol)
        << "median flat index " << i;
  }
}

ImputationResult RunImpute(ConditionalNoisePredictor* model,
                           const NoiseSchedule& schedule,
                           const data::Sample& sample, ImputeOptions options,
                           uint64_t seed, bool sequential) {
  options.sequential_fallback = sequential;
  Rng rng(seed);
  return ImputeWindow(model, schedule, sample, options, rng);
}

// ---------------------------------------------------------------------------
// Chain-stream contract
// ---------------------------------------------------------------------------

TEST(ChainStreams, ConsumeOneDrawRegardlessOfCount) {
  Rng a(123), b(123);
  (void)MakeChainStreams(a, 3);
  (void)MakeChainStreams(b, 31);
  // Both parents advanced by exactly one engine draw -> identical continuation.
  EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(ChainStreams, ChainStreamDependsOnlyOnRootAndIndex) {
  Rng a(7), b(7);
  std::vector<Rng> few = MakeChainStreams(a, 2);
  std::vector<Rng> many = MakeChainStreams(b, 8);
  // Chain i's stream is identical whether 2 or 8 chains were derived.
  for (size_t i = 0; i < few.size(); ++i) {
    EXPECT_DOUBLE_EQ(few[i].Normal(), many[i].Normal()) << "chain " << i;
  }
  // Distinct chains differ.
  EXPECT_NE(many[2].Normal(), many[3].Normal());
}

// ---------------------------------------------------------------------------
// Batched == sequential equivalence
// ---------------------------------------------------------------------------

TEST(SamplerEquivalence, BatchedDdimMatchesSequentialOracle) {
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 11);
  auto model = MakeTinyModel(n, l, 12);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(12, 1e-4f, 0.2f);
  ImputeOptions options{.num_samples = 4, .ddim = true, .ddim_stride = 2};
  ImputationResult batched =
      RunImpute(model.get(), schedule, sample, options, 99, false);
  ImputationResult sequential =
      RunImpute(model.get(), schedule, sample, options, 99, true);
  ExpectResultsClose(batched, sequential, 1e-5f);
}

TEST(SamplerEquivalence, BatchedDdpmMatchesSequentialOracle) {
  // Ancestral sampling draws fresh noise every step; the counter-seeded
  // per-chain streams make the batched draw order irrelevant.
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 21);
  auto model = MakeTinyModel(n, l, 22);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(10, 1e-4f, 0.2f);
  ImputeOptions options{.num_samples = 5};
  ImputationResult batched =
      RunImpute(model.get(), schedule, sample, options, 77, false);
  ImputationResult sequential =
      RunImpute(model.get(), schedule, sample, options, 77, true);
  ExpectResultsClose(batched, sequential, 1e-5f);
}

TEST(SamplerEquivalence, ThreadCountInvariance) {
  // The batched result must be bit-identical whether the pool runs 1 or 4
  // threads: chunking only partitions disjoint output ranges.
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 31);
  auto model = MakeTinyModel(n, l, 32);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(8, 1e-4f, 0.2f);
  ImputeOptions options{.num_samples = 4};
  int64_t restore = ParallelThreadCount();
  SetParallelThreadCount(1);
  ImputationResult one =
      RunImpute(model.get(), schedule, sample, options, 55, false);
  SetParallelThreadCount(4);
  ImputationResult four =
      RunImpute(model.get(), schedule, sample, options, 55, false);
  SetParallelThreadCount(restore);
  ASSERT_EQ(one.samples.size(), four.samples.size());
  for (size_t s = 0; s < one.samples.size(); ++s) {
    EXPECT_TRUE(t::AllClose(one.samples[s], four.samples[s], 0.0f, 0.0f))
        << "sample " << s << " differs between 1 and 4 threads";
  }
  EXPECT_TRUE(t::AllClose(one.median, four.median, 0.0f, 0.0f));
}

TEST(SamplerEquivalence, SequentialFallbackPreservesObservedEntries) {
  const int64_t n = 6, l = 8;
  data::Sample sample = MakeWindow(n, l, 41);
  auto model = MakeTinyModel(n, l, 42);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(6, 1e-4f, 0.2f);
  for (bool sequential : {false, true}) {
    ImputationResult result = RunImpute(model.get(), schedule, sample,
                                        {.num_samples = 3}, 66, sequential);
    for (const Tensor& generated : result.samples) {
      for (int64_t node = 0; node < n; ++node) {
        for (int64_t step = 0; step < l; ++step) {
          if (sample.observed.at({node, step}) > 0.5f) {
            EXPECT_FLOAT_EQ(generated.at({node, step}),
                            sample.values.at({node, step}))
                << "sequential=" << sequential << " node=" << node
                << " step=" << step;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ImputationResult property tests
// ---------------------------------------------------------------------------

TEST(ImputationResultProperties, QuantileMonotonicInQ) {
  Rng rng(51);
  ImputationResult result;
  for (int i = 0; i < 9; ++i) {
    result.samples.push_back(Tensor::Randn({3, 4}, rng));
  }
  for (int64_t node = 0; node < 3; ++node) {
    for (int64_t step = 0; step < 4; ++step) {
      float prev = result.Quantile(node, step, 0.0);
      for (double q = 0.05; q <= 1.0 + 1e-9; q += 0.05) {
        float cur = result.Quantile(node, step, q);
        EXPECT_GE(cur, prev) << "q=" << q << " node=" << node
                             << " step=" << step;
        prev = cur;
      }
    }
  }
}

TEST(ImputationResultProperties, MedianOfOddConstantSampleSetIsExact) {
  ImputationResult result;
  for (float value : {3.0f, 1.0f, 4.0f, 1.5f, 5.0f}) {
    result.samples.push_back(Tensor::Full({2, 2}, value));
  }
  // Sorted: 1, 1.5, 3, 4, 5 -> the odd-count median is exactly the middle
  // element, no interpolation.
  EXPECT_FLOAT_EQ(result.Quantile(0, 0, 0.5), 3.0f);
  EXPECT_FLOAT_EQ(result.Quantile(1, 1, 0.5), 3.0f);
  // Extremes are exact too.
  EXPECT_FLOAT_EQ(result.Quantile(0, 0, 0.0), 1.0f);
  EXPECT_FLOAT_EQ(result.Quantile(0, 0, 1.0), 5.0f);
}

TEST(ImputationResultProperties, MergedOutputsEqualObservationsOnObserved) {
  // Mask-preservation invariant across batched merge: every generated
  // sample and the median agree with the observations wherever observed.
  const int64_t n = 5, l = 6;
  data::Sample sample = MakeWindow(n, l, 61);
  auto model = MakeTinyModel(n, l, 62);
  NoiseSchedule schedule = NoiseSchedule::Quadratic(6, 1e-4f, 0.2f);
  ImputationResult result =
      RunImpute(model.get(), schedule, sample, {.num_samples = 7}, 88, false);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < l; ++step) {
      if (sample.observed.at({node, step}) <= 0.5f) continue;
      float truth = sample.values.at({node, step});
      for (const Tensor& generated : result.samples) {
        EXPECT_FLOAT_EQ(generated.at({node, step}), truth);
      }
      EXPECT_FLOAT_EQ(result.median.at({node, step}), truth);
    }
  }
}

// ---------------------------------------------------------------------------
// Golden regression
// ---------------------------------------------------------------------------

// Deterministic affine predictor: nontrivial (uses the noisy stream and the
// conditional interpolation) but free of matmuls/attention, so the golden
// pins the SAMPLER's arithmetic and RNG-stream contract rather than model
// codegen, and stays stable across compilers and optimization levels.
class AffinePredictor : public ConditionalNoisePredictor {
 public:
  Variable PredictNoise(const Tensor& noisy, const DiffusionBatch& batch,
                        int64_t step) override {
    float scale = 0.1f + 0.001f * static_cast<float>(step);
    Tensor out = t::MulScalar(noisy, scale);
    // interpolated is (1, N, L) in the sequential path and (S, N, L) in the
    // batched path; both broadcast-free because ImputeWindow tiles it.
    out.AddInPlace(t::MulScalar(batch.interpolated, -0.05f));
    return autograd::Constant(std::move(out));
  }
  std::vector<Variable> Parameters() override { return {}; }
  void ZeroGrad() override {}
};

struct GoldenRow {
  int64_t node = 0, step = 0;
  float median = 0, q10 = 0, q90 = 0;
};

std::string GoldenPath() { return std::string(PRISTI_GOLDEN_PATH); }

// The exact configuration the golden file pins: 16-node preset window,
// 8 samples, 20 ancestral steps.
ImputationResult RunGoldenConfig() {
  const int64_t n = 16, l = 8;
  data::Sample sample = MakeWindow(n, l, 71);
  AffinePredictor model;
  NoiseSchedule schedule = NoiseSchedule::Quadratic(20, 1e-4f, 0.2f);
  Rng rng(72);
  return ImputeWindow(&model, schedule, sample, {.num_samples = 8}, rng);
}

TEST(GoldenRegression, BatchedSamplerMatchesCheckedInGolden) {
  const int64_t n = 16, l = 8;
  ImputationResult result = RunGoldenConfig();

  if (!pristi::GetEnvOr("PRISTI_REGEN_GOLDEN", "").empty()) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write golden " << GoldenPath();
    out << "# sampler golden: 16-node window, 8 samples, 20 ancestral steps\n"
        << "# regen: PRISTI_REGEN_GOLDEN=1 ./sampler_equivalence_test "
           "--gtest_filter='GoldenRegression.*'\n"
        << n << " " << l << "\n";
    out.precision(9);
    out << std::scientific;
    for (int64_t node = 0; node < n; ++node) {
      for (int64_t step = 0; step < l; ++step) {
        out << node << " " << step << " "
            << result.median.at({node, step}) << " "
            << result.Quantile(node, step, 0.1) << " "
            << result.Quantile(node, step, 0.9) << "\n";
      }
    }
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath()
      << "; regenerate with PRISTI_REGEN_GOLDEN=1 ./sampler_equivalence_test"
         " --gtest_filter='GoldenRegression.*'";
  std::string line;
  std::vector<GoldenRow> rows;
  int64_t gn = 0, gl = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    if (gn == 0) {
      ASSERT_TRUE(static_cast<bool>(fields >> gn >> gl)) << "bad header";
      continue;
    }
    GoldenRow row;
    ASSERT_TRUE(static_cast<bool>(fields >> row.node >> row.step >>
                                  row.median >> row.q10 >> row.q90))
        << "bad golden line: " << line;
    rows.push_back(row);
  }
  ASSERT_EQ(gn, n);
  ASSERT_EQ(gl, l);
  ASSERT_EQ(rows.size(), static_cast<size_t>(n * l));

  // Per-entry comparison with a readable diff of every drifted entry.
  const float kTol = 1e-4f;
  std::ostringstream diff;
  int64_t drifted = 0;
  for (const GoldenRow& row : rows) {
    struct {
      const char* name;
      float expected;
      float actual;
    } checks[] = {
        {"median", row.median, result.median.at({row.node, row.step})},
        {"q10", row.q10, result.Quantile(row.node, row.step, 0.1)},
        {"q90", row.q90, result.Quantile(row.node, row.step, 0.9)},
    };
    for (const auto& check : checks) {
      if (std::fabs(check.expected - check.actual) > kTol) {
        ++drifted;
        diff << "  (" << row.node << ", " << row.step << ") " << check.name
             << ": golden " << check.expected << " vs actual " << check.actual
             << " (|diff| = " << std::fabs(check.expected - check.actual)
             << ")\n";
      }
    }
  }
  EXPECT_EQ(drifted, 0)
      << drifted << " golden entr(ies) drifted beyond " << kTol << ":\n"
      << diff.str()
      << "If the sampler change is intentional, regenerate with:\n"
         "  PRISTI_REGEN_GOLDEN=1 ./sampler_equivalence_test "
         "--gtest_filter='GoldenRegression.*'";
}

}  // namespace
}  // namespace pristi::diffusion
