// Tests for the streaming fused attention kernel
// (src/tensor/kernels/attention.cc) and its ag::FusedAttention wrapper:
// fused-vs-reference tolerance parity at paper-full shapes, module-level
// parity through MultiHeadAttention (plain and virtual-node paths),
// bitwise determinism of the fused path across thread counts and repeated
// runs, kernel-counter accounting, and a seeded output golden.
//
// Regenerating the golden after an INTENTIONAL kernel change:
//   PRISTI_REGEN_GOLDEN=1 ./build/tests/attention_fused_test
//     --gtest_filter='FusedAttentionGolden.*'
// then commit the rewritten tests/golden/attention_fused_seeded.txt.

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/env.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "nn/attention.h"
#include "tensor/kernels/attention.h"
#include "tensor/kernels/kernels.h"
#include "tensor/tensor.h"

namespace pristi::tensor {
namespace {

namespace ag = ::pristi::autograd;
namespace kn = kernels;
using ag::Variable;

#ifndef PRISTI_ATTN_GOLDEN_PATH
#define PRISTI_ATTN_GOLDEN_PATH "tests/golden/attention_fused_seeded.txt"
#endif

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// The reference chain exactly as nn/attention.cc issues it with
// PRISTI_ATTN_FUSED=0: scaled NT scores -> softmax -> context GEMM.
Tensor ReferenceAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          float scale) {
  Variable qv(q), kv(k), vv(v);
  Variable weights =
      ag::SoftmaxLastDim(ag::BatchedMatMulNTScaled(qv, kv, scale));
  return ag::BatchedMatMul(weights, vv).value();
}

Tensor FusedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      float scale) {
  return ag::FusedAttention(Variable(q), Variable(k), Variable(v), scale)
      .value();
}

// ---------------------------------------------------------------------------
// Fused vs reference: tolerance parity (the 1e-5 forward contract)
// ---------------------------------------------------------------------------

// Paper-full spatial attention: every head/window attends over all 325 AQI
// sensors at head_dim 8. batch = B*h for B = 2 windows of 8 heads.
TEST(FusedVsReference, PaperSpatialShape325Nodes) {
  Rng rng(101);
  const float scale = 1.0f / std::sqrt(8.0f);
  Tensor q = Tensor::Randn({16, 325, 8}, rng);
  Tensor k = Tensor::Randn({16, 325, 8}, rng);
  Tensor v = Tensor::Randn({16, 325, 8}, rng);
  EXPECT_LE(MaxAbsDiff(FusedAttention(q, k, v, scale),
                       ReferenceAttention(q, k, v, scale)),
            1e-5f);
}

// Paper-full temporal attention: batch = B*N*h = 1*325*8 rows of the L=36
// window, head_dim 8.
TEST(FusedVsReference, PaperTemporalShapeL36) {
  Rng rng(102);
  const float scale = 1.0f / std::sqrt(8.0f);
  Tensor q = Tensor::Randn({2600, 36, 8}, rng);
  Tensor k = Tensor::Randn({2600, 36, 8}, rng);
  Tensor v = Tensor::Randn({2600, 36, 8}, rng);
  EXPECT_LE(MaxAbsDiff(FusedAttention(q, k, v, scale),
                       ReferenceAttention(q, k, v, scale)),
            1e-5f);
}

// Virtual-node geometry: 325 query positions against 8 compressed kv rows
// (s_k << s_q, one partial kv block).
TEST(FusedVsReference, VirtualNodeGeometry) {
  Rng rng(103);
  const float scale = 1.0f / std::sqrt(8.0f);
  Tensor q = Tensor::Randn({16, 325, 8}, rng);
  Tensor k = Tensor::Randn({16, 8, 8}, rng);
  Tensor v = Tensor::Randn({16, 8, 8}, rng);
  EXPECT_LE(MaxAbsDiff(FusedAttention(q, k, v, scale),
                       ReferenceAttention(q, k, v, scale)),
            1e-5f);
}

// Module-level A/B through MultiHeadAttention::Forward, which is what the
// PRISTI_ATTN_FUSED knob actually routes: plain self-attention and the
// virtual-node pk_/pv_ path, forward outputs within 1e-5.
TEST(FusedVsReference, MultiHeadAttentionModuleParity) {
  Rng rng(104);
  nn::MultiHeadAttention plain(64, 8, rng);
  nn::MultiHeadAttention virt(64, 8, rng, /*virtual_nodes=*/8,
                              /*seq_len=*/57);
  Tensor x = Tensor::Randn({2, 57, 64}, rng);
  for (nn::MultiHeadAttention* attn : {&plain, &virt}) {
    bool prev = kn::SetFusedAttentionEnabled(true);
    Tensor fused = attn->Forward(Variable(x)).value();
    kn::SetFusedAttentionEnabled(false);
    Tensor reference = attn->Forward(Variable(x)).value();
    kn::SetFusedAttentionEnabled(prev);
    EXPECT_LE(MaxAbsDiff(fused, reference), 1e-5f)
        << (attn == &virt ? "virtual-node" : "plain") << " module path";
  }
}

// ---------------------------------------------------------------------------
// Fused-path determinism: bitwise across thread counts and runs
// ---------------------------------------------------------------------------

// One fused forward+backward round at a ragged shape (s_k = 57 spans full
// kv blocks plus a tail), returning every array the kernel writes.
struct FusedRound {
  Tensor out, lse, dq, dk, dv;
};

FusedRound RunFusedRound(const Tensor& q, const Tensor& k, const Tensor& v,
                         const Tensor& grad_out, float scale) {
  const int64_t batch = q.dim(0), s_q = q.dim(1), s_k = k.dim(1),
                dh = q.dim(2);
  FusedRound r{Tensor(q.shape()), Tensor(Shape{batch, s_q}),
               Tensor(q.shape()), Tensor(k.shape()), Tensor(v.shape())};
  kn::FusedAttentionForward(batch, s_q, s_k, dh, scale, q.data(), k.data(),
                            v.data(), r.out.data(), r.lse.data(), &k);
  kn::FusedAttentionBackward(batch, s_q, s_k, dh, scale, q.data(), k.data(),
                             v.data(), r.out.data(), r.lse.data(),
                             grad_out.data(), r.dq.data(), r.dk.data(),
                             r.dv.data(), &k);
  return r;
}

void ExpectRoundsBitEqual(const FusedRound& a, const FusedRound& b,
                          const std::string& what) {
  auto cmp = [&](const Tensor& x, const Tensor& y, const char* name) {
    ASSERT_EQ(x.numel(), y.numel());
    EXPECT_EQ(std::memcmp(x.data(), y.data(),
                          sizeof(float) * static_cast<size_t>(x.numel())),
              0)
        << what << ": " << name << " bytes differ";
  };
  cmp(a.out, b.out, "out");
  cmp(a.lse, b.lse, "lse");
  cmp(a.dq, b.dq, "dq");
  cmp(a.dk, b.dk, "dk");
  cmp(a.dv, b.dv, "dv");
}

TEST(FusedDeterminism, BitIdenticalAcrossThreadCountsAndRuns) {
  Rng rng(105);
  const float scale = 1.0f / std::sqrt(8.0f);
  Tensor q = Tensor::Randn({6, 41, 8}, rng);
  Tensor k = Tensor::Randn({6, 57, 8}, rng);
  Tensor v = Tensor::Randn({6, 57, 8}, rng);
  Tensor g = Tensor::Randn({6, 41, 8}, rng);

  int64_t prev_threads = ParallelThreadCount();
  SetParallelThreadCount(1);
  FusedRound base = RunFusedRound(q, k, v, g, scale);
  FusedRound again = RunFusedRound(q, k, v, g, scale);
  ExpectRoundsBitEqual(base, again, "1 thread, repeated run");
  for (int64_t threads : {2, 4}) {
    SetParallelThreadCount(threads);
    FusedRound r = RunFusedRound(q, k, v, g, scale);
    ExpectRoundsBitEqual(base, r,
                         std::to_string(threads) + " threads vs 1");
  }
  SetParallelThreadCount(prev_threads);
}

// ---------------------------------------------------------------------------
// Kernel counters
// ---------------------------------------------------------------------------

TEST(FusedCounters, RowsBlocksAndAvoidedBytesAdvance) {
  Rng rng(106);
  const int64_t batch = 3, s_q = 10, s_k = 37, dh = 8;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor q = Tensor::Randn({batch, s_q, dh}, rng);
  Tensor k = Tensor::Randn({batch, s_k, dh}, rng);
  Tensor v = Tensor::Randn({batch, s_k, dh}, rng);
  Tensor out(q.shape()), lse(Shape{batch, s_q});

  kn::KernelStats before = kn::GetKernelStats();
  kn::FusedAttentionForward(batch, s_q, s_k, dh, scale, q.data(), k.data(),
                            v.data(), out.data(), lse.data(), &k);
  kn::KernelStats after = kn::GetKernelStats();

  const uint64_t rows = static_cast<uint64_t>(batch * s_q);
  const uint64_t panels = static_cast<uint64_t>((s_k + 15) / 16);
  EXPECT_EQ(after.fused_attn_rows - before.fused_attn_rows, rows);
  EXPECT_EQ(after.fused_attn_kv_blocks - before.fused_attn_kv_blocks,
            rows * panels);
  // Scores written once and softmax rewritten once on the reference chain:
  // 2 * batch * s_q * s_k floats never touched memory.
  EXPECT_EQ(after.fused_attn_bytes_avoided - before.fused_attn_bytes_avoided,
            2u * rows * static_cast<uint64_t>(s_k) * sizeof(float));
}

// ---------------------------------------------------------------------------
// Seeded golden
// ---------------------------------------------------------------------------

// Freezes the fused kernel's exact bits on a seeded problem: the fused path
// promises bitwise self-consistency, so any rounding-order change in the
// kernel must show up here (and be an intentional regen).
TEST(FusedAttentionGolden, SeededForwardMatchesGolden) {
  Rng rng(20260808);
  const int64_t batch = 2, s_q = 9, s_k = 21, dh = 4;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor q = Tensor::Randn({batch, s_q, dh}, rng);
  Tensor k = Tensor::Randn({batch, s_k, dh}, rng);
  Tensor v = Tensor::Randn({batch, s_k, dh}, rng);
  Tensor out(q.shape()), lse(Shape{batch, s_q});
  kn::FusedAttentionForward(batch, s_q, s_k, dh, scale, q.data(), k.data(),
                            v.data(), out.data(), lse.data(), &k);

  const std::string path = PRISTI_ATTN_GOLDEN_PATH;
  if (!pristi::GetEnvOr("PRISTI_REGEN_GOLDEN", "").empty()) {
    std::ofstream golden(path);
    ASSERT_TRUE(golden.good()) << "cannot write golden " << path;
    golden << "# seeded fused-attention forward (out rows then lse rows)\n"
           << "# regen: PRISTI_REGEN_GOLDEN=1 ./attention_fused_test "
              "--gtest_filter='FusedAttentionGolden.*'\n"
           << out.numel() << " " << lse.numel() << "\n";
    golden.precision(9);
    golden << std::scientific;
    for (int64_t i = 0; i < out.numel(); ++i) golden << out[i] << "\n";
    for (int64_t i = 0; i < lse.numel(); ++i) golden << lse[i] << "\n";
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream golden(path);
  ASSERT_TRUE(golden.good())
      << "missing golden " << path
      << "; regenerate with PRISTI_REGEN_GOLDEN=1 ./attention_fused_test";
  std::string line;
  std::vector<float> expected;
  int64_t out_count = -1, lse_count = -1;
  while (std::getline(golden, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    if (out_count < 0) {
      ASSERT_TRUE(static_cast<bool>(fields >> out_count >> lse_count))
          << "bad golden header";
      continue;
    }
    double value = 0.0;
    ASSERT_TRUE(static_cast<bool>(fields >> value)) << "bad golden line";
    expected.push_back(static_cast<float>(value));
  }
  ASSERT_EQ(out_count, out.numel());
  ASSERT_EQ(lse_count, lse.numel());
  ASSERT_EQ(expected.size(),
            static_cast<size_t>(out.numel() + lse.numel()));
  // 9 significant digits round-trip a float exactly, so the comparison is
  // bitwise despite the text encoding.
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_EQ(expected[static_cast<size_t>(i)], out[i]) << "out[" << i << "]";
  }
  for (int64_t i = 0; i < lse.numel(); ++i) {
    EXPECT_EQ(expected[static_cast<size_t>(out.numel() + i)], lse[i])
        << "lse[" << i << "]";
  }
}

}  // namespace
}  // namespace pristi::tensor
