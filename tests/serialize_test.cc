// Tests for the versioned checkpoint format (src/serialize): CRC reference
// vectors, bit-exact round-trip fuzzing over random tensor shapes, full-model
// and component (Adam / EMA / RNG) round trips, typed-error contracts, fault
// injection (truncation at and inside every record, random bit flips),
// atomic-write crash safety, keep-last-K retention, resume equivalence of
// the diffusion trainer, and the seeded training-loss golden.
//
// Regenerating the training golden after an INTENTIONAL trainer change:
//   PRISTI_REGEN_GOLDEN=1 ./build/tests/serialize_test
//     --gtest_filter='TrainingGolden.*'
// then commit the rewritten tests/golden/train_loss_aqi36.txt.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/windows.h"
#include "diffusion/ddpm.h"
#include "diffusion/schedule.h"
#include "nn/ema.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "pristi/pristi_model.h"
#include "serialize/checkpoint.h"
#include "serialize/format.h"
#include "serialize/status.h"
#include "tensor/kernels/attention.h"
#include "test_tmpdir.h"

namespace pristi::serialize {
namespace {

namespace fs = std::filesystem;
namespace t = ::pristi::tensor;
using t::Shape;
using t::Tensor;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

// Small but real PriSTI module (attention + MPNN + embeddings), so model
// round trips cover a deep parameter tree with many distinct shapes.
std::unique_ptr<core::PristiModel> MakeTinyModel(int64_t n, int64_t l,
                                                 uint64_t seed) {
  core::PristiConfig config;
  config.num_nodes = n;
  config.window_len = l;
  config.channels = 8;
  config.heads = 2;
  config.layers = 1;
  config.virtual_nodes = 2;
  config.diffusion_emb_dim = 8;
  config.temporal_emb_dim = 8;
  config.node_emb_dim = 4;
  config.adaptive_rank = 4;
  config.graph_diffusion_steps = 1;
  Tensor adjacency(Shape{n, n});
  for (int64_t i = 0; i + 1 < n; ++i) {
    adjacency.at({i, i + 1}) = 1.0f;
    adjacency.at({i + 1, i}) = 1.0f;
  }
  Rng rng(seed);
  return std::make_unique<core::PristiModel>(config, adjacency, rng);
}

// Serializes through an in-memory stream via `fill`, returns the raw bytes.
template <typename Fill>
std::string WriteBytes(Fill fill) {
  std::ostringstream out(std::ios::binary);
  CheckpointWriter writer(out);
  fill(&writer);
  EXPECT_TRUE(writer.Finish());
  return out.str();
}

Status ParseBytes(const std::string& bytes, CheckpointView* view,
                  bool keep_corrupt = false) {
  std::istringstream in(bytes, std::ios::binary);
  return CheckpointView::Parse(in, view, keep_corrupt);
}

void ExpectBitEqual(const Tensor& a, const Tensor& b,
                    const std::string& what) {
  ASSERT_TRUE(t::ShapesEqual(a.shape(), b.shape()))
      << what << ": " << t::ShapeToString(a.shape()) << " vs "
      << t::ShapeToString(b.shape());
  if (a.numel() == 0) return;  // null data pointers; nothing to compare
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.numel())),
            0)
      << what << ": payload bytes differ";
}

void ExpectModulesBitEqual(nn::Module& a, nn::Module& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].first, pb[i].first);
    ExpectBitEqual(pa[i].second.value(), pb[i].second.value(), pa[i].first);
  }
}

// ---------------------------------------------------------------------------
// CRC-32 reference vectors
// ---------------------------------------------------------------------------

TEST(Crc32Test, MatchesReferenceVectors) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, SeedChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{17}, data.size()}) {
    uint32_t chained = Crc32(data.data(), split);
    chained = Crc32(data.data() + split, data.size() - split, chained);
    EXPECT_EQ(chained, one_shot) << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Tensor round-trip fuzz
// ---------------------------------------------------------------------------

TEST(TensorRoundTrip, FuzzRandomShapesBitExact) {
  Rng rng(20240806);
  for (int64_t c = 0; c < 120; ++c) {
    int64_t rank = rng.UniformInt(1, 4);
    Shape shape(static_cast<size_t>(rank));
    for (int64_t d = 0; d < rank; ++d) {
      // Occasionally a zero-length dimension (numel 0 is a legal tensor).
      shape[static_cast<size_t>(d)] =
          rng.Uniform() < 0.05 ? 0 : rng.UniformInt(1, 7);
    }
    Tensor original(shape);
    for (int64_t i = 0; i < original.numel(); ++i) {
      original.data()[i] = static_cast<float>(rng.Normal(0, 100));
    }
    // Sprinkle non-finite and signed-zero values: the round trip is byte
    // exact, so NaN payloads and -0.0 must survive unchanged.
    if (original.numel() > 0) {
      original.data()[0] = -0.0f;
      if (original.numel() > 2) {
        original.data()[1] = std::numeric_limits<float>::quiet_NaN();
        original.data()[2] = -std::numeric_limits<float>::infinity();
      }
    }
    std::string bytes = WriteBytes(
        [&](CheckpointWriter* w) { w->AddTensor("fuzz", original); });
    CheckpointView view;
    ASSERT_TRUE(ParseBytes(bytes, &view).ok()) << "case " << c;
    Tensor decoded;
    ASSERT_TRUE(view.GetTensor("fuzz", &decoded).ok()) << "case " << c;
    ExpectBitEqual(original, decoded, "case " + std::to_string(c));
  }
}

TEST(TensorRoundTrip, ScalarShapeSurvives) {
  Tensor scalar{Shape{}};
  scalar.data()[0] = 3.75f;
  std::string bytes =
      WriteBytes([&](CheckpointWriter* w) { w->AddTensor("s", scalar); });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());
  Tensor decoded;
  ASSERT_TRUE(view.GetTensor("s", &decoded).ok());
  ExpectBitEqual(scalar, decoded, "scalar");
}

TEST(ScalarRoundTrip, I64F64ListAndStringSurvive) {
  std::vector<double> betas = {1e-4, 0.0317, 0.2,
                               std::numeric_limits<double>::epsilon()};
  std::string bytes = WriteBytes([&](CheckpointWriter* w) {
    w->AddI64("epoch", -3);
    w->AddF64("loss", 0.1234567890123456789);
    w->AddF64List("betas", betas);
    w->AddString("kind", "pristi-training");
    w->AddF64List("empty", {});
  });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());
  int64_t epoch = 0;
  double loss = 0;
  std::vector<double> decoded;
  std::string kind;
  ASSERT_TRUE(view.GetI64("epoch", &epoch).ok());
  ASSERT_TRUE(view.GetF64("loss", &loss).ok());
  ASSERT_TRUE(view.GetF64List("betas", &decoded).ok());
  ASSERT_TRUE(view.GetString("kind", &kind).ok());
  EXPECT_EQ(epoch, -3);
  EXPECT_EQ(loss, 0.1234567890123456789);  // bit-exact, not approximate
  ASSERT_EQ(decoded.size(), betas.size());
  for (size_t i = 0; i < betas.size(); ++i) EXPECT_EQ(decoded[i], betas[i]);
  EXPECT_EQ(kind, "pristi-training");
  ASSERT_TRUE(view.GetF64List("empty", &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

// ---------------------------------------------------------------------------
// Full-model round trips
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Storage-layout golden: pooled, view-backed tensors must serialize to the
// exact bytes the pre-shared-storage implementation wrote
// ---------------------------------------------------------------------------

#ifndef PRISTI_STORAGE_GOLDEN_PATH
#define PRISTI_STORAGE_GOLDEN_PATH "tests/golden/serialize_storage_v1.ckpt"
#endif

TEST(StorageGolden, ViewBackedCheckpointBytesMatchPreRefactorFile) {
  // Build the golden's logical contents deliberately through the
  // shared-storage machinery: `base` comes from the buffer pool, `slice` is
  // a zero-copy leading-dim view reshaped in place, and `scalar` is written
  // via a COW header copy. The on-disk bytes depend only on logical shape
  // and values, so they must equal what the owning-vector implementation
  // produced.
  Tensor base = Tensor::Arange(24).Reshaped({2, 3, 4});
  Tensor slice = t::SliceAxis(base, 0, 1, 1).Reshaped({3, 4});
  ASSERT_TRUE(slice.SharesStorage(base));  // really a view, not a copy
  Tensor scalar_owner = Tensor::Scalar(0.5f);
  Tensor scalar = scalar_owner;  // shared header
  std::string bytes = WriteBytes([&](CheckpointWriter* w) {
    w->AddString("meta.kind", "storage-golden");
    w->AddTensor("storage.base", base);
    w->AddTensor("storage.slice", slice);
    w->AddTensor("storage.scalar", scalar);
    w->AddI64("storage.format", 1);
  });

  if (!pristi::GetEnvOr("PRISTI_REGEN_GOLDEN", "").empty()) {
    std::ofstream out(PRISTI_STORAGE_GOLDEN_PATH, std::ios::binary);
    ASSERT_TRUE(out.is_open())
        << "cannot write golden " << PRISTI_STORAGE_GOLDEN_PATH;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    GTEST_SKIP() << "regenerated " << PRISTI_STORAGE_GOLDEN_PATH;
  }

  std::ifstream in(PRISTI_STORAGE_GOLDEN_PATH, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden " << PRISTI_STORAGE_GOLDEN_PATH
      << "; regenerate with PRISTI_REGEN_GOLDEN=1";
  std::ostringstream golden_stream(std::ios::binary);
  golden_stream << in.rdbuf();
  std::string golden = golden_stream.str();
  ASSERT_EQ(bytes.size(), golden.size()) << "checkpoint size drifted";
  EXPECT_EQ(bytes, golden) << "checkpoint bytes drifted from the "
                              "pre-refactor serialization";

  // The golden also parses back into tensors bit-equal to the views that
  // wrote it.
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(golden, &view).ok());
  Tensor back;
  ASSERT_TRUE(view.GetTensor("storage.slice", &back).ok());
  ExpectBitEqual(back, slice, "storage.slice");
  ASSERT_TRUE(view.GetTensor("storage.base", &back).ok());
  ExpectBitEqual(back, base, "storage.base");
}

TEST(ModuleRoundTrip, PristiModelStreamRoundTripBitExact) {
  auto a = MakeTinyModel(6, 8, 1);
  auto b = MakeTinyModel(6, 8, 2);  // different init, overwritten by load
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(a->SaveCheckpoint(out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  ASSERT_TRUE(b->LoadCheckpoint(in).ok());
  ExpectModulesBitEqual(*a, *b);
}

TEST(ModuleRoundTrip, FileRoundTripAndLegacyAutoDetect) {
  auto a = MakeTinyModel(4, 6, 3);
  pristi::testing::TestTempDir tmp;
  std::string path = tmp.File("model.ckpt");
  ASSERT_TRUE(SaveModuleCheckpointFile(*a, path).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // atomic write left no temp

  auto b = MakeTinyModel(4, 6, 4);
  ASSERT_TRUE(LoadModuleCheckpointFileAuto(*b, path).ok());
  ExpectModulesBitEqual(*a, *b);

  // A legacy Module::SaveToFile checkpoint loads through the same entry
  // point via magic sniffing.
  std::string legacy = tmp.File("legacy.bin");
  ASSERT_TRUE(a->SaveToFile(legacy));
  auto c = MakeTinyModel(4, 6, 5);
  ASSERT_TRUE(LoadModuleCheckpointFileAuto(*c, legacy).ok());
  ExpectModulesBitEqual(*a, *c);

  Status missing = LoadModuleCheckpointFileAuto(*b, tmp.File("absent.ckpt"));
  EXPECT_EQ(missing.code(), ErrorCode::kIoError);
}

// ---------------------------------------------------------------------------
// Component round trips: Adam, EMA, RNG
// ---------------------------------------------------------------------------

TEST(AdamRoundTrip, StateRestoredConfigVerified) {
  Rng rng(11);
  nn::Mlp net_a(3, 4, 2, rng), net_b(3, 4, 2, rng), net_c(3, 4, 2, rng);
  nn::AdamOptions options;
  options.lr = 5e-4f;
  nn::Adam opt_a(net_a.Parameters(), options);
  // Plant non-trivial state: random moments, a non-zero step count and a
  // schedule-decayed learning rate.
  std::vector<Tensor> m, v;
  for (const Tensor& buf : opt_a.moment1()) {
    m.push_back(Tensor::Randn(buf.shape(), rng));
  }
  for (const Tensor& buf : opt_a.moment2()) {
    v.push_back(Tensor::Randn(buf.shape(), rng));
  }
  opt_a.RestoreState(7, m, v);
  opt_a.set_lr(5e-5f);

  std::string bytes =
      WriteBytes([&](CheckpointWriter* w) { AppendAdam(opt_a, w); });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());

  nn::Adam opt_b(net_b.Parameters(), options);
  ASSERT_TRUE(LoadAdam(&opt_b, view).ok());
  EXPECT_EQ(opt_b.step_count(), 7);
  EXPECT_EQ(opt_b.options().lr, 5e-5f);  // lr is state, restored exactly
  for (size_t i = 0; i < m.size(); ++i) {
    ExpectBitEqual(opt_b.moment1()[i], m[i], "m." + std::to_string(i));
    ExpectBitEqual(opt_b.moment2()[i], v[i], "v." + std::to_string(i));
  }

  // beta1 is configuration: a different live value is a typed error, and
  // the live optimizer is left untouched.
  nn::AdamOptions skewed = options;
  skewed.beta1 = 0.8f;
  nn::Adam opt_c(net_c.Parameters(), skewed);
  EXPECT_EQ(LoadAdam(&opt_c, view).code(), ErrorCode::kConfigMismatch);
  EXPECT_EQ(opt_c.step_count(), 0);
}

TEST(EmaRoundTrip, ShadowRestoredDecayVerified) {
  Rng rng(12);
  nn::Mlp net_a(3, 4, 2, rng), net_b(3, 4, 2, rng);
  nn::EmaWeights ema_a(net_a.Parameters(), 0.9f);
  std::vector<Tensor> shadow;
  for (const Tensor& buf : ema_a.shadow()) {
    shadow.push_back(Tensor::Randn(buf.shape(), rng));
  }
  ema_a.RestoreShadow(shadow);

  std::string bytes =
      WriteBytes([&](CheckpointWriter* w) { AppendEma(ema_a, w); });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());

  nn::EmaWeights ema_b(net_b.Parameters(), 0.9f);
  ASSERT_TRUE(LoadEma(&ema_b, view).ok());
  for (size_t i = 0; i < shadow.size(); ++i) {
    ExpectBitEqual(ema_b.shadow()[i], shadow[i],
                   "shadow." + std::to_string(i));
  }

  nn::EmaWeights ema_c(net_b.Parameters(), 0.5f);
  EXPECT_EQ(LoadEma(&ema_c, view).code(), ErrorCode::kConfigMismatch);
}

TEST(RngRoundTrip, StreamPositionContinuesIdentically) {
  Rng source(99);
  for (int i = 0; i < 37; ++i) source.Normal();  // advance mid-stream
  std::string bytes =
      WriteBytes([&](CheckpointWriter* w) { AppendRng(source, w); });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());
  Rng restored(1);  // different seed, overwritten by the load
  ASSERT_TRUE(LoadRng(&restored, view).ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(restored.Normal(), source.Normal()) << "draw " << i;
  }
}

TEST(RngRoundTrip, GarbageStateIsTypedError) {
  std::string bytes = WriteBytes([&](CheckpointWriter* w) {
    w->AddString("rng.train", "not a mersenne twister");
  });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());
  Rng rng(5), witness(5);
  EXPECT_EQ(LoadRng(&rng, view).code(), ErrorCode::kBadRecord);
  // The failed load did not disturb the stream.
  EXPECT_DOUBLE_EQ(rng.Normal(), witness.Normal());
}

// ---------------------------------------------------------------------------
// Typed-error contracts
// ---------------------------------------------------------------------------

TEST(TypedErrors, MissingTypeShapeAndCountMismatches) {
  auto a = MakeTinyModel(4, 6, 6);
  std::string bytes = WriteBytes([&](CheckpointWriter* w) {
    w->AddI64("answer", 42);
    AppendModule(*a, w);
  });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());

  Tensor tensor;
  int64_t i64 = 0;
  EXPECT_EQ(view.GetTensor("no.such.record", &tensor).code(),
            ErrorCode::kMissingRecord);
  EXPECT_EQ(view.GetTensor("answer", &tensor).code(),
            ErrorCode::kTypeMismatch);
  EXPECT_EQ(view.GetI64("model.__count", &i64).code(), ErrorCode::kOk);

  // Same architecture, different node count: parameter counts match but the
  // node-embedding (and adaptive-adjacency) shapes differ.
  auto wrong_shape = MakeTinyModel(5, 6, 7);
  EXPECT_EQ(LoadModule(*wrong_shape, view).code(), ErrorCode::kShapeMismatch);

  // A completely different module tree: parameter count differs.
  Rng rng(8);
  nn::Mlp mlp(3, 4, 2, rng);
  EXPECT_EQ(LoadModule(mlp, view).code(), ErrorCode::kCountMismatch);
}

TEST(TypedErrors, FailedModuleLoadLeavesWeightsUntouched) {
  auto a = MakeTinyModel(4, 6, 9);
  std::string bytes =
      WriteBytes([&](CheckpointWriter* w) { AppendModule(*a, w); });
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());
  auto victim = MakeTinyModel(5, 6, 10);  // shape-skewed target
  auto witness = MakeTinyModel(5, 6, 10);
  ASSERT_EQ(LoadModule(*victim, view).code(), ErrorCode::kShapeMismatch);
  ExpectModulesBitEqual(*victim, *witness);  // staged load: no partial write
}

TEST(TypedErrors, HeaderDamageIsBadMagicOrVersionSkew) {
  std::string bytes =
      WriteBytes([&](CheckpointWriter* w) { w->AddI64("x", 1); });
  CheckpointView view;

  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x20;
  EXPECT_EQ(ParseBytes(bad_magic, &view).code(), ErrorCode::kBadMagic);

  std::string skewed = bytes;
  skewed[sizeof(kMagic)] = static_cast<char>(kFormatVersion + 1);
  EXPECT_EQ(ParseBytes(skewed, &view).code(), ErrorCode::kVersionSkew);

  std::string trailing = bytes + "xx";
  EXPECT_EQ(ParseBytes(trailing, &view).code(), ErrorCode::kBadRecord);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

std::string SmallCheckpointBytes() {
  Rng rng(13);
  nn::Mlp mlp(3, 4, 2, rng);
  return WriteBytes([&](CheckpointWriter* w) {
    w->AddString("meta.kind", "pristi-module");
    AppendModule(mlp, w);
  });
}

TEST(FaultInjection, TruncationAtEveryRecordBoundaryRejected) {
  std::string bytes = SmallCheckpointBytes();
  CheckpointView view;
  ASSERT_TRUE(ParseBytes(bytes, &view).ok());
  ASSERT_GE(view.records().size(), 7u);

  // Every header prefix is typed truncation.
  for (size_t cut = 0; cut < sizeof(kMagic) + sizeof(uint32_t); ++cut) {
    CheckpointView damaged;
    EXPECT_EQ(ParseBytes(bytes.substr(0, cut), &damaged).code(),
              ErrorCode::kTruncated)
        << "header cut at " << cut;
  }
  // Cuts at a record boundary (a clean prefix of records but no end record)
  // are typed truncation; cuts inside a record never parse either.
  for (const Record& record : view.records()) {
    CheckpointView damaged;
    EXPECT_EQ(
        ParseBytes(bytes.substr(0, record.offset), &damaged).code(),
        ErrorCode::kTruncated)
        << "cut before record '" << record.name << "'";
    for (uint64_t inside :
         {record.offset + 4, record.offset + record.byte_size / 2,
          record.offset + record.byte_size - 1}) {
      if (inside >= bytes.size()) continue;
      Status status = ParseBytes(bytes.substr(0, inside), &damaged);
      EXPECT_FALSE(status.ok())
          << "cut inside record '" << record.name << "' at " << inside;
    }
  }
}

TEST(FaultInjection, RandomBitFlipsAlwaysRejectedWithTypedError) {
  std::string bytes = SmallCheckpointBytes();
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    std::string damaged = bytes;
    size_t byte = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    damaged[byte] ^= static_cast<char>(1 << rng.UniformInt(0, 7));
    CheckpointView view;
    Status status = ParseBytes(damaged, &view);
    EXPECT_FALSE(status.ok())
        << "flip in byte " << byte << " went undetected";
    EXPECT_NE(status.code(), ErrorCode::kOk);
    EXPECT_FALSE(status.ToString().empty());
  }
}

TEST(FaultInjection, KeepCorruptModeFlagsTheDamagedRecord) {
  std::string bytes = SmallCheckpointBytes();
  CheckpointView clean;
  ASSERT_TRUE(ParseBytes(bytes, &clean).ok());
  // Flip one payload byte of the second record (a real data record).
  const Record& target = clean.records()[1];
  std::string damaged = bytes;
  damaged[target.offset + target.byte_size - 6] ^= 0x01;

  CheckpointView strict;
  EXPECT_EQ(ParseBytes(damaged, &strict).code(),
            ErrorCode::kChecksumMismatch);

  // Inspect mode still enumerates everything and marks exactly the bad one.
  CheckpointView forensic;
  Status status = ParseBytes(damaged, &forensic, /*keep_corrupt=*/true);
  EXPECT_EQ(status.code(), ErrorCode::kChecksumMismatch);
  ASSERT_EQ(forensic.records().size(), clean.records().size());
  for (size_t i = 0; i < forensic.records().size(); ++i) {
    EXPECT_EQ(forensic.records()[i].crc_ok, i != 1) << "record " << i;
  }
  // Typed access refuses the damaged record even in keep-corrupt mode.
  Tensor tensor;
  int64_t i64 = 0;
  if (forensic.records()[1].tag == RecordTag::kTensor) {
    EXPECT_EQ(forensic.GetTensor(target.name, &tensor).code(),
              ErrorCode::kChecksumMismatch);
  } else {
    EXPECT_EQ(forensic.GetI64(target.name, &i64).code(),
              ErrorCode::kChecksumMismatch);
  }
}

// ---------------------------------------------------------------------------
// Atomic writes and retention
// ---------------------------------------------------------------------------

TEST(AtomicWrite, FailedWriteLeavesTargetAndDropsTemp) {
  pristi::testing::TestTempDir tmp;
  std::string path = tmp.File("state.ckpt");
  ASSERT_TRUE(WriteFileAtomic(path, [](std::ostream& out) {
                out << "good";
                return Status::Ok();
              }).ok());

  Status failed = WriteFileAtomic(path, [](std::ostream& out) {
    out << "partial garbage that must never become visible";
    return Status::Error(ErrorCode::kIoError, "simulated mid-write crash");
  });
  EXPECT_EQ(failed.code(), ErrorCode::kIoError);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "good");  // the original survived untouched
}

TEST(AtomicWrite, StaleTempFromACrashIsReclaimed) {
  pristi::testing::TestTempDir tmp;
  std::string path = tmp.File("state.ckpt");
  {
    std::ofstream leftover(path + ".tmp", std::ios::binary);
    leftover << "crashed writer leftover";
  }
  ASSERT_TRUE(WriteFileAtomic(path, [](std::ostream& out) {
                out << "fresh";
                return Status::Ok();
              }).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "fresh");
}

TEST(Retention, PruneKeepsHighestEpochsAndIgnoresStrangers) {
  pristi::testing::TestTempDir tmp;
  std::string dir = tmp.path().string();
  for (int64_t epoch : {1, 2, 3, 10, 4}) {
    std::ofstream(CheckpointFileName(dir, "ckpt", epoch)) << "x";
  }
  // Non-matching names must never be deleted.
  std::ofstream(tmp.File("other-5.ckpt")) << "x";
  std::ofstream(tmp.File("ckpt-notanumber.ckpt")) << "x";
  std::ofstream(tmp.File("ckpt-3.bin")) << "x";

  ASSERT_TRUE(PruneCheckpoints(dir, "ckpt", 2).ok());
  EXPECT_TRUE(fs::exists(CheckpointFileName(dir, "ckpt", 10)));
  EXPECT_TRUE(fs::exists(CheckpointFileName(dir, "ckpt", 4)));
  for (int64_t gone : {1, 2, 3}) {
    EXPECT_FALSE(fs::exists(CheckpointFileName(dir, "ckpt", gone)));
  }
  EXPECT_TRUE(fs::exists(tmp.File("other-5.ckpt")));
  EXPECT_TRUE(fs::exists(tmp.File("ckpt-notanumber.ckpt")));
  EXPECT_TRUE(fs::exists(tmp.File("ckpt-3.bin")));

  // keep_last <= 0 keeps everything.
  ASSERT_TRUE(PruneCheckpoints(dir, "ckpt", 0).ok());
  EXPECT_TRUE(fs::exists(CheckpointFileName(dir, "ckpt", 4)));
}

// ---------------------------------------------------------------------------
// Resume equivalence of the diffusion trainer
// ---------------------------------------------------------------------------

data::ImputationTask MakeTrainTask(int64_t nodes, int64_t steps,
                                   uint64_t seed) {
  Rng rng(seed);
  auto dataset = data::GenerateSynthetic(data::Aqi36LikeConfig(nodes, steps),
                                         rng);
  return data::MakeTask(std::move(dataset), data::MissingPattern::kPoint,
                        data::TaskOptions{.window_len = 8, .stride = 8},
                        rng);
}

diffusion::TrainOptions BaseTrainOptions() {
  diffusion::TrainOptions options;
  options.epochs = 4;
  options.batch_size = 2;
  options.lr = 1e-3f;
  options.ema_decay = 0.99f;
  return options;
}

// Trains 2N epochs straight through with per-epoch checkpointing, then
// treats the mid-flight checkpoint after N epochs as a crash point: a fresh
// model restored from it and trained for the remaining N epochs must match
// the uninterrupted run bit-for-bit — identical loss curve, identical final
// weights. Resume is a pure continuation, not an approximate restart.
void CheckResumeEquivalence(int64_t threads) {
  int64_t previous_threads = ParallelThreadCount();
  SetParallelThreadCount(threads);
  data::ImputationTask task = MakeTrainTask(8, 240, 31);
  diffusion::NoiseSchedule schedule =
      diffusion::NoiseSchedule::Quadratic(8, 1e-4f, 0.2f);

  pristi::testing::TestTempDir tmp;
  auto full_model = MakeTinyModel(8, 8, 5);
  Rng full_rng(77);
  diffusion::TrainOptions full = BaseTrainOptions();
  full.checkpoint_dir = tmp.File("full");
  full.checkpoint_keep_last = 0;  // keep every epoch's checkpoint
  std::vector<double> full_losses = diffusion::TrainDiffusionModel(
      full_model.get(), schedule, task, full, full_rng);
  ASSERT_TRUE(fs::exists(CheckpointFileName(full.checkpoint_dir, "ckpt", 2)));

  // Fresh model with DIFFERENT init and a DIFFERENT rng seed: everything
  // that matters must come out of the checkpoint.
  auto resumed_model = MakeTinyModel(8, 8, 99);
  Rng resumed_rng(123456);
  diffusion::TrainOptions resumed = BaseTrainOptions();
  resumed.checkpoint_dir = tmp.File("resumed");
  resumed.resume_from = CheckpointFileName(full.checkpoint_dir, "ckpt", 2);
  std::vector<double> resumed_losses = diffusion::TrainDiffusionModel(
      resumed_model.get(), schedule, task, resumed, resumed_rng);

  ASSERT_EQ(resumed_losses.size(), full_losses.size());
  for (size_t i = 0; i < full_losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_losses[i], full_losses[i]) << "epoch " << i;
  }
  ExpectModulesBitEqual(*full_model, *resumed_model);
  SetParallelThreadCount(previous_threads);
}

TEST(ResumeEquivalence, SingleThreadBitIdentical) {
  CheckResumeEquivalence(1);
}

TEST(ResumeEquivalence, MultiThreadBitIdentical) {
  CheckResumeEquivalence(4);
}

TEST(ResumeEquivalence, TrainerRetentionKeepsLastK) {
  data::ImputationTask task = MakeTrainTask(6, 160, 47);
  diffusion::NoiseSchedule schedule =
      diffusion::NoiseSchedule::Quadratic(6, 1e-4f, 0.2f);
  pristi::testing::TestTempDir tmp;
  auto model = MakeTinyModel(6, 8, 21);
  Rng rng(55);
  diffusion::TrainOptions options = BaseTrainOptions();
  options.epochs = 5;
  options.ema_decay = 0.0f;
  options.checkpoint_dir = tmp.File("ckpts");
  options.checkpoint_keep_last = 2;
  diffusion::TrainDiffusionModel(model.get(), schedule, task, options, rng);
  for (int64_t epoch = 1; epoch <= 3; ++epoch) {
    EXPECT_FALSE(
        fs::exists(CheckpointFileName(options.checkpoint_dir, "ckpt", epoch)))
        << "epoch " << epoch;
  }
  for (int64_t epoch = 4; epoch <= 5; ++epoch) {
    EXPECT_TRUE(
        fs::exists(CheckpointFileName(options.checkpoint_dir, "ckpt", epoch)))
        << "epoch " << epoch;
  }
  // The surviving checkpoints restore into a fresh model without error.
  auto probe = MakeTinyModel(6, 8, 22);
  CheckpointView view;
  ASSERT_TRUE(ParseCheckpointFile(
                  CheckpointFileName(options.checkpoint_dir, "ckpt", 5),
                  &view)
                  .ok());
  EXPECT_TRUE(LoadModule(*probe, view).ok());
}

// ---------------------------------------------------------------------------
// Seeded training-loss golden
// ---------------------------------------------------------------------------

#ifndef PRISTI_TRAIN_GOLDEN_PATH
#define PRISTI_TRAIN_GOLDEN_PATH "tests/golden/train_loss_aqi36.txt"
#endif

// The short seeded AQI-36-preset run this golden pins down. Always runs on
// the reference (materialized) attention path so the golden's bitwise
// meaning stays independent of the fused kernel's internals; the fused path
// is covered by the 1e-5 tolerance contract in attention_fused_test.
std::vector<double> GoldenTrainingRun() {
  bool fused_was = t::kernels::SetFusedAttentionEnabled(false);
  struct Restore {
    bool prev;
    ~Restore() { t::kernels::SetFusedAttentionEnabled(prev); }
  } restore{fused_was};
  data::ImputationTask task = MakeTrainTask(36, 192, 2024);
  diffusion::NoiseSchedule schedule =
      diffusion::NoiseSchedule::Quadratic(8, 1e-4f, 0.2f);
  auto model = MakeTinyModel(36, 8, 7);
  diffusion::TrainOptions options;
  options.epochs = 3;
  options.batch_size = 4;
  options.lr = 1e-3f;
  Rng rng(314159);
  return diffusion::TrainDiffusionModel(model.get(), schedule, task, options,
                                        rng);
}

TEST(TrainingGolden, SeededAqi36LossCurveMatchesGolden) {
  std::vector<double> losses = GoldenTrainingRun();
  ASSERT_EQ(losses.size(), 3u);
  for (double loss : losses) {
    ASSERT_TRUE(std::isfinite(loss));
    ASSERT_GT(loss, 0.0);
  }

  if (!pristi::GetEnvOr("PRISTI_REGEN_GOLDEN", "").empty()) {
    std::ofstream out(PRISTI_TRAIN_GOLDEN_PATH);
    ASSERT_TRUE(out.is_open())
        << "cannot write golden " << PRISTI_TRAIN_GOLDEN_PATH;
    out.precision(17);
    for (double loss : losses) out << loss << "\n";
    GTEST_SKIP() << "regenerated " << PRISTI_TRAIN_GOLDEN_PATH;
  }

  std::ifstream in(PRISTI_TRAIN_GOLDEN_PATH);
  ASSERT_TRUE(in.is_open())
      << "missing golden " << PRISTI_TRAIN_GOLDEN_PATH
      << "; regenerate with PRISTI_REGEN_GOLDEN=1";
  std::vector<double> golden;
  double value = 0;
  while (in >> value) golden.push_back(value);
  ASSERT_EQ(golden.size(), losses.size());
  constexpr double kTol = 1e-5;
  for (size_t i = 0; i < losses.size(); ++i) {
    EXPECT_NEAR(losses[i], golden[i], kTol)
        << "epoch " << i << ": got " << losses[i] << ", golden " << golden[i]
        << " (regenerate with PRISTI_REGEN_GOLDEN=1 after an intentional "
           "trainer change)";
  }
}

}  // namespace
}  // namespace pristi::serialize
